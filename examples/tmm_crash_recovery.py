#!/usr/bin/env python
"""Tiled matrix multiplication with crash + Figure 9 recovery.

Runs the paper's flagship workload (Figure 8's LP-instrumented TMM)
with 4 worker threads, injects a power failure mid-run, then drives
the reverse-scan recovery of Figure 9 and verifies the final product
is bit-exact against numpy.

Run:  python examples/tmm_crash_recovery.py [crash_op]
"""

import sys

from repro import CrashPlan, Machine, run_with_crash, scaled_machine
from repro.workloads.tmm import TiledMatMul


def main() -> None:
    crash_at = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    threads = 4

    wl = TiledMatMul(n=48, bsize=8)
    machine = Machine(scaled_machine(num_cores=threads + 1))
    bound = wl.bind(machine, num_threads=threads)

    print(f"running tmm+LP (n=48, bsize=8, {threads} threads), "
          f"crash at op {crash_at} ...")
    result, post = run_with_crash(
        machine, bound.threads("lp"), CrashPlan(at_op=crash_at)
    )
    if not result.crashed:
        print("workload finished before the crash point; nothing to recover")
        assert bound.verify()
        return

    committed = bound.lp.table.committed_keys()
    print(f"crash: {result.ops_executed} ops executed, "
          f"{result.nvmm_writes} NVMM writes, "
          f"{len(committed)} region checksums persisted")

    # recovery runs on the post-crash machine: cold caches, NVMM image
    rebound = wl.bind(post, num_threads=threads, create=False)
    marks = []
    post.on_mark = lambda mark, cid, clock: marks.append(mark.label)
    rres = post.run(rebound.recovery_threads())

    repairs = [m for m in marks if "repair" in m]
    print(f"recovery: {rres.ops_executed} ops, "
          f"{rres.exec_cycles:.0f} cycles, {len(repairs)} blocks repaired")
    for label in repairs[:8]:
        print(f"  {label}")

    ok = rebound.verify()
    print(f"final c == a @ b (exact)? {ok}")
    assert ok
    print("OK")


if __name__ == "__main__":
    main()
