#!/usr/bin/env python
"""Designing LP regions: idempotence and granularity (sections III-C,
III-E, IV).

Two questions decide how to apply Lazy Persistency to a kernel:

1. *Are the regions idempotent?*  If yes, recovery is trivially
   "re-run what mismatches".  This example runs the section III-E
   idempotence analysis over all five kernels and shows it predicting
   each one's recovery strategy.
2. *How big should regions be?*  Smaller regions commit more checksums
   (overhead); bigger regions lose more work per crash.  This example
   sweeps TMM's three natural granularities and measures both sides.

Run:  python examples/region_design.py
"""

from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.experiments import run_variant
from repro.analysis.reporting import format_table
from repro.core.idempotence import classify_workload
from repro.sim.config import scaled_machine
from repro.sim.machine import Machine
from repro.workloads import get_workload
from repro.workloads.tmm import TiledMatMul

SPECS = {
    "conv2d": dict(n=12, ksize=3, row_block=2),
    "fft": dict(n=32),
    "cholesky": dict(n=8, col_block=4),
    "tmm": dict(n=16, bsize=8),
    "gauss": dict(n=8, row_block=4),
}


def main() -> None:
    # -- 1. idempotence analysis ---------------------------------------
    rows = []
    for name, kwargs in SPECS.items():
        wl = get_workload(name)(**kwargs)
        report = classify_workload(
            wl, Machine(scaled_machine(num_cores=2)), num_threads=1
        )
        s = report.summary()
        rows.append(
            [
                name,
                s["regions"],
                s["violating"],
                "re-run regions" if report.all_idempotent else "frontier/replay",
            ]
        )
    print(
        format_table(
            ["kernel", "regions", "violating", "recovery strategy"],
            rows,
            title="Section III-E: idempotence analysis predicts recovery",
        )
    )

    # -- 2. granularity trade-off --------------------------------------
    cfg = scaled_machine(num_cores=5)
    base = run_variant(
        TiledMatMul(n=48, bsize=8), cfg, "base", num_threads=4
    )
    rows = []
    for gran in ("jj", "ii", "kk"):
        timing = run_variant(
            TiledMatMul(n=48, bsize=8, granularity=gran),
            cfg, "lp", num_threads=4,
        )
        campaign = run_crash_campaign(
            TiledMatMul(n=48, bsize=8, granularity=gran),
            cfg,
            crash_points=[150_000],
            num_threads=4,
            cleaner_period=4_000.0,
        )
        rows.append(
            [
                gran,
                round(timing.exec_cycles / base.exec_cycles, 4),
                campaign.trials[0].recovery_ops,
                campaign.all_recovered,
            ]
        )
    print()
    print(
        format_table(
            ["granularity", "LP exec (vs base)", "recovery ops", "exact"],
            rows,
            title="Sections III-C/IV: region granularity trade-off",
        )
    )
    print(
        "\nThe paper picks the middle (ii) granularity: checksum cost\n"
        "within noise of base, with bounded per-crash recomputation."
    )


if __name__ == "__main__":
    main()
