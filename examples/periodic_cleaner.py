#!/usr/bin/env python
"""Bounding recovery time with the periodic hardware cleaner
(paper section III-E.1 and Figure 11).

Without help, a dirty block can stay volatile arbitrarily long, so a
crash can invalidate arbitrarily old LP regions.  The paper's hardware
support writes all dirty blocks back every T cycles.  This example
crashes the same LP run under several cleaner periods and reports the
two sides of the trade-off: extra NVMM writes vs recovery work.

Run:  python examples/periodic_cleaner.py
"""

from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.experiments import run_variant
from repro.analysis.reporting import format_table
from repro.sim.config import scaled_machine
from repro.workloads.tmm import TiledMatMul

PERIODS = [1_000.0, 10_000.0, 50_000.0, None]


def main() -> None:
    cfg = scaled_machine(num_cores=5)

    def tmm():
        return TiledMatMul(n=48, bsize=8)

    # drain=True: count the eventual writeback of lines still dirty at
    # the end of this short run, so ratios aren't dominated by the
    # window boundary (the n=48 working set fits the scaled caches)
    baseline = run_variant(tmm(), cfg, "base", num_threads=4, drain=True)
    rows = []
    for period in PERIODS:
        run = run_variant(tmm(), cfg, "lp", num_threads=4,
                          cleaner_period=period, drain=True)
        campaign = run_crash_campaign(
            tmm(), cfg, crash_points=[250_000], num_threads=4,
            cleaner_period=period,
        )
        trial = campaign.trials[0]
        rows.append(
            [
                "none" if period is None else f"{period:.0f}",
                round(run.total_writes / baseline.total_writes, 3),
                trial.recovery_ops,
                trial.recovered_ok,
            ]
        )
    print(
        format_table(
            [
                "cleaner period (cycles)",
                "writes vs base",
                "recovery ops after crash",
                "recovered",
            ],
            rows,
            title="Periodic cleaner: write overhead vs recovery work",
        )
    )
    print(
        "\nShorter periods cost writes but cap how much work a crash\n"
        "can destroy — the Figure 11 trade-off."
    )


if __name__ == "__main__":
    main()
