#!/usr/bin/env python
"""Quickstart: Lazy Persistency in ~60 lines.

Builds a small NVMM machine, runs a loop kernel protected by an LP
region checksum (the paper's Figure 1 pattern), crashes it mid-run,
shows how the checksum detects the persistency failure, and recovers
by recomputation.

Run:  python examples/quickstart.py
"""

from repro import CrashPlan, Machine, run_with_crash, scaled_machine
from repro.core.lazy import LPRuntime
from repro.core.eager import persist_region
from repro.sim.isa import Compute, Store


def main() -> None:
    machine = Machine(scaled_machine(num_cores=2))

    # persistent arrays C and D, as in Figure 1
    n = 64
    c = machine.alloc("C", n)
    d = machine.alloc("D", n)
    lp = LPRuntime(machine, "cktab", dims=(1,), engine="modular")

    def kernel():
        """for i: C[i] = foo(i); D[i] = bar(i); CkSum(C[i], D[i])"""
        ck = lp.begin_region()
        for i in range(n):
            foo, bar = float(3 * i + 1), float(7 * i - 2)
            yield Compute(2)
            yield Store(c.addr(i), foo)
            yield Store(d.addr(i), bar)
            yield from ck.update(foo)
            yield from ck.update(bar)
        yield from lp.commit(ck, 0)

    # -- crash mid-run: everything still in the caches is lost ---------
    result, post = run_with_crash(machine, [kernel()], CrashPlan(at_op=150))
    print(f"crashed after {result.ops_executed} ops, "
          f"{result.nvmm_writes} lines had reached NVMM")

    # -- detection: replay the checksum over what actually persisted ---
    # (values in the order the kernel updated the checksum: C[i], D[i])
    survived = []
    for ca, da in zip(c.element_addrs(), d.element_addrs()):
        survived.append(post.arch_value(ca))
        survived.append(post.arch_value(da))
    consistent = lp.region_is_consistent(survived, 0)
    print(f"region consistent after crash? {consistent}")
    assert not consistent, "the crash must be detectable"

    # -- recovery: recompute with Eager Persistency (Figure 1, right) --
    def recovery():
        ck = lp.begin_region()
        addrs = []
        for i in range(n):
            foo, bar = float(3 * i + 1), float(7 * i - 2)
            yield Compute(2)
            yield Store(c.addr(i), foo)
            yield Store(d.addr(i), bar)
            ck.update_silent(foo)
            ck.update_silent(bar)
            addrs += [c.addr(i), d.addr(i)]
        yield from persist_region(addrs)
        yield from lp.table.commit_eager(ck.value, 0)

    post.run([recovery()])

    final_c = [post.persistent_value(a) for a in c.element_addrs()]
    print(f"recovered: C[0..4] = {final_c[:5]}")
    assert final_c == [float(3 * i + 1) for i in range(n)]
    print("OK: output durable and exact after crash + recovery")


if __name__ == "__main__":
    main()
