#!/usr/bin/env python
"""Compare the paper's four persistency schemes on one machine.

Reproduces the Figure 10 experiment at example scale: tiled matrix
multiplication as base (no failure safety), Lazy Persistency,
EagerRecompute, and write-ahead-logged durable transactions, printing
normalized execution time and NVMM writes plus the op-mix that
explains them.

Run:  python examples/persistency_comparison.py
"""

from repro.analysis.experiments import compare_variants
from repro.analysis.reporting import format_table
from repro.sim.config import scaled_machine
from repro.workloads.tmm import TiledMatMul

PAPER = {"base": (1.0, 1.0), "lp": (1.002, 1.003), "ep": (1.12, 1.36),
         "wal": (5.97, 3.83)}


def main() -> None:
    results = compare_variants(
        TiledMatMul(n=96, bsize=8, kk_tiles=2),
        scaled_machine(num_cores=9),
        ["base", "lp", "ep", "wal"],
        num_threads=8,
    )
    base = results["base"]
    rows = []
    for scheme in ("base", "lp", "ep", "wal"):
        r = results[scheme]
        norm = r.normalized_to(base)
        rows.append(
            [
                scheme,
                round(norm["exec_time"], 3),
                round(norm["num_writes"], 3),
                PAPER[scheme][0],
                PAPER[scheme][1],
                r.writes_by_cause.get("flush", 0),
                r.hazards["fuw"],
            ]
        )
    print(
        format_table(
            [
                "scheme",
                "exec",
                "writes",
                "paper exec",
                "paper writes",
                "flush writes",
                "FUW events",
            ],
            rows,
            title="Figure 10 at example scale (normalized to base)",
        )
    )
    print(
        "\nLP adds no flushes and no store-queue pressure; WAL pays four\n"
        "flush+fence sets per region (Figure 2) and logs every store."
    )


if __name__ == "__main__":
    main()
