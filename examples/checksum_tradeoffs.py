#!/usr/bin/env python
"""Error-detection code trade-offs (paper sections III-D, Figure 15b).

Sweeps the four checksum engines over an LP TMM run for execution-time
overhead, then runs the error-injection accuracy study: random "stale
value" errors (what an unpersisted store looks like after a crash) and
the paired-bit-flip model that defeats XOR parity structurally.

Run:  python examples/checksum_tradeoffs.py
"""

from repro.analysis.experiments import run_variant
from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_checksum
from repro.core.accuracy import run_error_injection
from repro.core.checksum import available_engines, get_engine
from repro.sim.config import scaled_machine
from repro.workloads.tmm import TiledMatMul

ENGINES = ["parity", "modular", "adler32", "parallel"]


def main() -> None:
    assert ENGINES == sorted(available_engines(), key=ENGINES.index)
    cfg = scaled_machine(num_cores=5)

    def tmm():
        return TiledMatMul(n=48, bsize=8, kk_tiles=2)

    base = run_variant(tmm(), cfg, "base", num_threads=4)
    swept = sweep_checksum(tmm(), cfg, ENGINES, num_threads=4)

    rows = []
    for name in ENGINES:
        overhead = (swept[name].exec_cycles / base.exec_cycles - 1) * 100
        stale = run_error_injection(
            get_engine(name), region_size=128, trials=5000,
            error_model="stale", seed=1,
        )
        paired = run_error_injection(
            get_engine(name), region_size=64, trials=500,
            error_model="paired", seed=2,
        )
        rows.append(
            [
                name,
                round(overhead, 2),
                stale.missed,
                f"{paired.miss_probability:.3f}",
            ]
        )
    print(
        format_table(
            [
                "engine",
                "exec overhead %",
                "missed (5000 stale errors)",
                "P(miss) paired flips",
            ],
            rows,
            title="Checksum engines: cost vs detection strength",
        )
    )
    print(
        "\nThe paper picks the modular checksum: near-parity cost, and\n"
        "none of parity's structural blindness to cancelling bit flips."
    )


if __name__ == "__main__":
    main()
