"""Probe-bus overhead: the zero-overhead-when-disabled claim, measured.

The ``repro.obs`` probe bus installs per-instance taps on a built
machine; nothing in ``repro.sim`` branches on observability, so an
untapped machine runs byte-identical code.  This bench pins that claim
with wall-clock numbers:

* **disabled** — ``attach_probes`` with an empty bus.  No channel has
  a subscriber, so no tap is installed and the run must stay within
  ``OVERHEAD_CEILING`` (2%) of the plain run.  This is the asserted
  bound from the observability PR's acceptance criteria.
* **traced** — a full :class:`TraceRecorder` plus
  :class:`IntervalSampler` attached.  Tracing is allowed to cost real
  time; we report the overhead ratio and the probe-event throughput
  (events/second) rather than asserting a ceiling.

Wall-clock noise is tamed the usual way: each timed sample is a batch
of ``BATCH`` back-to-back runs on fresh machines (so a sample is long
enough that scheduler jitter is a sub-percent effect even at smoke
sizes), the plain and disabled legs are sampled **interleaved** (so
slow machine-wide drift hits both equally), and the **median** of
``REPEATS`` samples per leg is compared — a single descheduled sample
cannot move a median, where it could (and occasionally did, on busy
CI runners) decide a min-vs-min comparison.  The asserted bound
additionally carries an absolute noise floor
(``NOISE_FLOOR_SECONDS``): at full size 2% of the baseline dominates
and the bound is the PR's relative ceiling; at smoke sizes, where 2%
of a sub-second leg is below OS scheduling granularity, the floor
absorbs the jitter a shared runner adds.  The result cache is
irrelevant here — every leg calls ``machine.run`` directly.

Besides the usual ``benchmarks/results/`` record, the headline numbers
are written to ``BENCH_obs.json`` at the repo root so the perf
trajectory of the probe bus is machine-readable across PRs (full-size
runs only; smoke runs assert but do not persist).
"""

import json
import os
import statistics
import time

from repro.analysis.reporting import format_table
from repro.obs import IntervalSampler, ProbeBus, TraceRecorder, probed
from repro.obs.taps import attach_probes, detach_probes

from bench_common import (
    NUM_THREADS,
    SMOKE,
    machine_config,
    make_workload,
    record,
)

#: The asserted disabled-probe bound from the PR acceptance criteria.
OVERHEAD_CEILING = 0.02

#: Interval width for the traced leg's sampler (cycles).
SAMPLER_INTERVAL = 1000.0

#: Runs per timed sample: smoke-size runs are ~150ms, far too short
#: for a 2% bound, so a smoke sample batches several.
BATCH = 6 if SMOKE else 1

#: Samples per leg; the median is compared (robust to one bad sample).
REPEATS = 5

#: Absolute slack on the asserted bound.  40ms is about one scheduler
#: quantum of interference landing on a single sample's worth of runs:
#: negligible against a full-size leg (where the 2% relative ceiling
#: is the binding constraint) but decisive at smoke sizes.
NOISE_FLOOR_SECONDS = 0.040

ROOT_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")


def _one_run(attach=None):
    """One tmm/lp run on a fresh machine; returns (seconds, machine
    run context) with ``attach(machine)`` applied around the run."""
    workload = make_workload("tmm")
    from repro.sim.machine import Machine

    machine = Machine(machine_config())
    bound = workload.bind(machine, num_threads=NUM_THREADS)
    threads = bound.threads("lp")
    if attach is None:
        t0 = time.perf_counter()
        machine.run(threads)
        elapsed = time.perf_counter() - t0
    else:
        observers = attach()
        bus = ProbeBus(observers)
        t0 = time.perf_counter()
        attach_probes(machine, bus)
        try:
            machine.run(threads)
        finally:
            detach_probes(machine)
        elapsed = time.perf_counter() - t0
    assert bound.verify()
    return elapsed


def _sample(attach=None):
    """One timed sample: ``BATCH`` back-to-back runs."""
    return sum(_one_run(attach) for _ in range(BATCH))


def _median_of(attach=None):
    return statistics.median(_sample(attach) for _ in range(REPEATS))


def run_bench():
    # Plain and disabled are the legs compared against the asserted
    # ceiling; sample them interleaved so machine-wide drift (thermal,
    # background load) lands on both sides of the ratio.  One discarded
    # warm-up sample first: allocator/bytecode-cache warm-up otherwise
    # lands entirely on whichever leg runs first.
    _sample()
    base_samples, disabled_samples = [], []
    for _ in range(REPEATS):
        base_samples.append(_sample())
        disabled_samples.append(_sample(lambda: []))
    baseline = statistics.median(base_samples)
    disabled = statistics.median(disabled_samples)

    # Traced leg: keep the recorder around to count events.
    recorder = TraceRecorder()
    sampler = IntervalSampler(SAMPLER_INTERVAL)

    def traced_once():
        nonlocal recorder, sampler
        recorder = TraceRecorder()
        sampler = IntervalSampler(SAMPLER_INTERVAL)
        return [recorder, sampler]

    traced = _median_of(traced_once)
    return baseline, disabled, traced, len(recorder)


def test_obs_overhead(benchmark):
    baseline, disabled, traced, events = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )

    disabled_overhead = disabled / baseline - 1.0
    traced_overhead = traced / baseline - 1.0
    # Both throughputs matter: the traced rate is what a tracing user
    # gets; the untraced rate (same event stream at plain-run speed) is
    # the simulator's actual hot-loop throughput, the number hot-loop
    # optimizations move.  Reporting only the traced rate hid that
    # difference in the bench trajectory.
    events_per_sec_traced = events / traced if traced > 0 else 0.0
    events_per_sec_untraced = events / baseline if baseline > 0 else 0.0

    table = format_table(
        ["leg", "seconds (median of %d x %d runs)" % (REPEATS, BATCH),
         "overhead"],
        [
            ["plain run", f"{baseline:.3f}", ""],
            ["probes disabled (empty bus)", f"{disabled:.3f}",
             f"{disabled_overhead * 100:+.2f}%"],
            ["fully traced (recorder+sampler)", f"{traced:.3f}",
             f"{traced_overhead * 100:+.2f}%"],
        ],
        title="Probe-bus overhead (tmm/lp, wall-clock)",
    )
    data = {
        "baseline_seconds": round(baseline, 4),
        "disabled_seconds": round(disabled, 4),
        "disabled_overhead_pct": round(disabled_overhead * 100, 2),
        "traced_seconds": round(traced, 4),
        "traced_overhead_pct": round(traced_overhead * 100, 2),
        "events": events,
        "events_per_sec_traced": round(events_per_sec_traced),
        "events_per_sec_untraced": round(events_per_sec_untraced),
        "ceiling_pct": OVERHEAD_CEILING * 100,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
    }
    record("obs_overhead", table + f"\n\nprobe events/sec: "
           f"{events_per_sec_traced:,.0f} traced / "
           f"{events_per_sec_untraced:,.0f} untraced ({events} events)",
           data)
    if not SMOKE:
        with open(ROOT_JSON, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")

    allowance = max(OVERHEAD_CEILING * baseline, NOISE_FLOOR_SECONDS)
    assert disabled - baseline <= allowance, (
        f"disabled-probe overhead {disabled - baseline:.3f}s "
        f"({disabled_overhead * 100:+.2f}%) exceeds the allowance of "
        f"{allowance:.3f}s (max of {OVERHEAD_CEILING * 100:.0f}% of the "
        f"{baseline:.3f}s plain leg and the {NOISE_FLOOR_SECONDS * 1000:.0f}ms "
        f"noise floor)"
    )


def test_probed_context_matches_attach_detach():
    """Sanity companion to the timing legs: the ``probed`` context
    manager and manual attach/detach trace the same event stream."""
    workload = make_workload("tmm")
    from repro.sim.machine import Machine

    machine = Machine(machine_config())
    bound = workload.bind(machine, num_threads=NUM_THREADS)
    recorder = TraceRecorder()
    with probed(machine, [recorder]):
        machine.run(bound.threads("lp"))
    assert len(recorder) > 0
    assert bound.verify()
