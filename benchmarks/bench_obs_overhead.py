"""Probe-bus and stream-path observability overhead, measured.

The ``repro.obs`` probe bus installs per-instance taps on a built
machine; nothing in ``repro.sim`` branches on observability, so an
untapped machine runs byte-identical code.  This bench pins that claim
with wall-clock numbers, across both execution paths:

* **disabled** — ``attach_probes`` with an empty bus.  No channel has
  a subscriber, so no tap is installed and the run must stay within
  ``OVERHEAD_CEILING`` (2%) of the plain run.  This is the asserted
  bound from the observability PR's acceptance criteria.
* **traced** — a full :class:`TraceRecorder` plus
  :class:`IntervalSampler` attached.  Tracing costs real time; the
  overhead ratio is ratcheted (``TRACED_OVERHEAD_CEILING``) so
  regressions in the recorder/bus/sampler hot paths trip the bench,
  and the probe-event throughput is reported.
* **stream obs** — the op-stream fast path with the full observer
  surface *derived* in batch (:mod:`repro.obs.streamobs`): one bare
  stream-path run (``record_stream``, exactly what ``repro run --tier
  stream`` executes) against the same run plus the
  ``derive_sampler``/``derive_heatmap``/``derive_flame`` trio.  The
  derivations happen once per recorded stream, so comparing them
  against the run that produces the stream mirrors the machine-path
  legs (plain vs traced, both timing full runs); the delta must stay
  within ``STREAM_OBS_CEILING`` (10%) — observability on the 100x
  path cannot cost the path.

Wall-clock noise is tamed by the shared harness
(:func:`bench_common.interleaved_medians`): per-leg warm-up, legs
sampled interleaved, median of ``REPEATS`` compared, and every
asserted bound carries the absolute noise floor via
:func:`bench_common.overhead_allowance`.  The result cache is
irrelevant here — every leg drives the machine directly.

Besides the usual ``benchmarks/results/`` record, the headline numbers
are written to ``BENCH_obs.json`` at the repo root so the perf
trajectory of the probe bus is machine-readable across PRs (full-size
runs only; smoke runs assert but do not persist).
"""

import json
import os
import time

from repro.analysis.reporting import format_table
from repro.obs import (
    IntervalSampler,
    ProbeBus,
    TraceRecorder,
    derive_flame,
    derive_heatmap,
    derive_sampler,
    probed,
)
from repro.obs.taps import attach_probes, detach_probes

from bench_common import (
    NOISE_FLOOR_SECONDS,
    NUM_THREADS,
    SMOKE,
    interleaved_medians,
    machine_config,
    make_workload,
    overhead_allowance,
    record,
)

#: The asserted disabled-probe bound from the PR acceptance criteria.
OVERHEAD_CEILING = 0.02

#: Ratchet on the fully-traced leg (recorder + sampler attached).
#: History: 90.4% before the recorder/bus/sampler hot paths were
#: flattened (bound-append handlers, single-subscriber bypass, cached
#: column dicts); ~81% full-size / ~62% smoke after.  Headroom for
#: runner noise, but below the pre-optimization figure by design.
TRACED_OVERHEAD_CEILING = 0.88

#: The asserted bound on stream-derived observability vs a bare
#: stream-path run (the fast path must stay fast when observed).
STREAM_OBS_CEILING = 0.10

#: Interval width for the traced leg's sampler (cycles).
SAMPLER_INTERVAL = 1000.0

#: Runs per timed sample: smoke-size runs are ~150ms, far too short
#: for a 2% bound, so a smoke sample batches several.
BATCH = 6 if SMOKE else 1

#: Runs per stream-leg sample: smoke-size recording runs are short,
#: so they batch more to clear the noise floor.
STREAM_BATCH = 8 if SMOKE else 1

#: Samples per leg; the median is compared (robust to one bad sample).
REPEATS = 5

ROOT_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")


def _one_run(attach=None):
    """One tmm/lp run on a fresh machine; returns elapsed seconds with
    ``attach()``'s observers wired around the run."""
    workload = make_workload("tmm")
    from repro.sim.machine import Machine

    machine = Machine(machine_config())
    bound = workload.bind(machine, num_threads=NUM_THREADS)
    threads = bound.threads("lp")
    if attach is None:
        t0 = time.perf_counter()
        machine.run(threads)
        elapsed = time.perf_counter() - t0
    else:
        observers = attach()
        bus = ProbeBus(observers)
        t0 = time.perf_counter()
        attach_probes(machine, bus)
        try:
            machine.run(threads)
        finally:
            detach_probes(machine)
        elapsed = time.perf_counter() - t0
    assert bound.verify()
    return elapsed


def _sample(attach=None):
    """One timed sample: ``BATCH`` back-to-back runs."""
    return sum(_one_run(attach) for _ in range(BATCH))


def run_bench():
    # Legs compared against the asserted ceilings, sampled interleaved
    # by the shared harness; keep the traced leg's last recorder around
    # to count events.
    recorder_box = [TraceRecorder()]

    def traced_once():
        recorder_box[0] = TraceRecorder()
        return [recorder_box[0], IntervalSampler(SAMPLER_INTERVAL)]

    baseline, disabled, traced = interleaved_medians(
        [
            lambda: _sample(),
            lambda: _sample(lambda: []),
            lambda: _sample(traced_once),
        ],
        repeats=REPEATS,
    )
    return baseline, disabled, traced, len(recorder_box[0])


def _stream_run(derive):
    """One stream-path run (``record_stream`` on a fresh bound replay
    machine — what ``repro run --tier stream`` executes), optionally
    plus the full batch-derived observer surface; returns
    ``(seconds, stream_len)``."""
    from repro.sim.machine import Machine
    from repro.sim.opstream import record_stream

    workload = make_workload("tmm")
    machine = Machine(machine_config(), _replay=True)
    bound = workload.bind(machine, num_threads=NUM_THREADS)
    threads = bound.threads("lp")
    t0 = time.perf_counter()
    stream, _ = record_stream(machine, threads)
    if derive:
        derive_sampler(stream, SAMPLER_INTERVAL)
        derive_heatmap(stream, machine)
        derive_flame(stream)
    return time.perf_counter() - t0, len(stream)


def run_stream_bench():
    stream_len_box = [0]

    def stream_sample(derive):
        total = 0.0
        for _ in range(STREAM_BATCH):
            seconds, stream_len = _stream_run(derive)
            total += seconds
            stream_len_box[0] = stream_len
        return total

    bare, derived = interleaved_medians(
        [lambda: stream_sample(False), lambda: stream_sample(True)],
        repeats=REPEATS,
    )
    return bare, derived, stream_len_box[0] * STREAM_BATCH


def test_obs_overhead(benchmark):
    baseline, disabled, traced, events = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )
    stream_bare, stream_obs, stream_events = run_stream_bench()

    disabled_overhead = disabled / baseline - 1.0
    traced_overhead = traced / baseline - 1.0
    stream_overhead = (
        stream_obs / stream_bare - 1.0 if stream_bare > 0 else 0.0
    )
    # Both throughputs matter: the traced rate is what a tracing user
    # gets; the untraced rate (same event stream at plain-run speed) is
    # the simulator's actual hot-loop throughput, the number hot-loop
    # optimizations move.  The stream-obs rate is stream ops/sec
    # through the recording run *including* the derived surface.
    events_per_sec_traced = events / traced if traced > 0 else 0.0
    events_per_sec_untraced = events / baseline if baseline > 0 else 0.0
    events_per_sec_stream_obs = (
        stream_events / stream_obs if stream_obs > 0 else 0.0
    )

    table = format_table(
        ["leg", "seconds (median of %d)" % REPEATS, "overhead"],
        [
            ["plain run", f"{baseline:.3f}", ""],
            ["probes disabled (empty bus)", f"{disabled:.3f}",
             f"{disabled_overhead * 100:+.2f}%"],
            ["fully traced (recorder+sampler)", f"{traced:.3f}",
             f"{traced_overhead * 100:+.2f}%"],
            ["bare stream-path run", f"{stream_bare:.3f}", ""],
            ["stream-path run + derived obs", f"{stream_obs:.3f}",
             f"{stream_overhead * 100:+.2f}%"],
        ],
        title="Observability overhead (tmm/lp, wall-clock)",
    )
    data = {
        "baseline_seconds": round(baseline, 4),
        "disabled_seconds": round(disabled, 4),
        "disabled_overhead_pct": round(disabled_overhead * 100, 2),
        "traced_seconds": round(traced, 4),
        "traced_overhead_pct": round(traced_overhead * 100, 2),
        "traced_overhead_ceiling_pct": TRACED_OVERHEAD_CEILING * 100,
        "stream_bare_seconds": round(stream_bare, 4),
        "stream_obs_seconds": round(stream_obs, 4),
        "stream_obs_overhead_pct": round(stream_overhead * 100, 2),
        "stream_obs_ceiling_pct": STREAM_OBS_CEILING * 100,
        "events": events,
        "events_per_sec_traced": round(events_per_sec_traced),
        "events_per_sec_untraced": round(events_per_sec_untraced),
        "events_per_sec_stream_obs": round(events_per_sec_stream_obs),
        "ceiling_pct": OVERHEAD_CEILING * 100,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
    }
    record("obs_overhead", table + f"\n\nprobe events/sec: "
           f"{events_per_sec_traced:,.0f} traced / "
           f"{events_per_sec_untraced:,.0f} untraced ({events} events); "
           f"stream ops/sec with derived obs: "
           f"{events_per_sec_stream_obs:,.0f}",
           data)
    if not SMOKE:
        with open(ROOT_JSON, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")

    allowance = overhead_allowance(baseline, OVERHEAD_CEILING)
    assert disabled - baseline <= allowance, (
        f"disabled-probe overhead {disabled - baseline:.3f}s "
        f"({disabled_overhead * 100:+.2f}%) exceeds the allowance of "
        f"{allowance:.3f}s (max of {OVERHEAD_CEILING * 100:.0f}% of the "
        f"{baseline:.3f}s plain leg and the {NOISE_FLOOR_SECONDS * 1000:.0f}ms "
        f"noise floor)"
    )
    traced_allowance = overhead_allowance(baseline, TRACED_OVERHEAD_CEILING)
    assert traced - baseline <= traced_allowance, (
        f"traced overhead {traced - baseline:.3f}s "
        f"({traced_overhead * 100:+.2f}%) exceeds the ratcheted allowance "
        f"of {traced_allowance:.3f}s "
        f"({TRACED_OVERHEAD_CEILING * 100:.0f}% of the {baseline:.3f}s "
        f"plain leg) — the recorder/bus/sampler hot paths regressed"
    )
    stream_allowance = overhead_allowance(stream_bare, STREAM_OBS_CEILING)
    assert stream_obs - stream_bare <= stream_allowance, (
        f"stream-derived observability costs {stream_obs - stream_bare:.3f}s "
        f"({stream_overhead * 100:+.2f}%) over the bare {stream_bare:.3f}s "
        f"stream-path leg; allowance is {stream_allowance:.3f}s (max of "
        f"{STREAM_OBS_CEILING * 100:.0f}% and the "
        f"{NOISE_FLOOR_SECONDS * 1000:.0f}ms noise floor)"
    )


def test_probed_context_matches_attach_detach():
    """Sanity companion to the timing legs: the ``probed`` context
    manager and manual attach/detach trace the same event stream."""
    workload = make_workload("tmm")
    from repro.sim.machine import Machine

    machine = Machine(machine_config())
    bound = workload.bind(machine, num_threads=NUM_THREADS)
    recorder = TraceRecorder()
    with probed(machine, [recorder]):
        machine.run(bound.threads("lp"))
    assert len(recorder) > 0
    assert bound.verify()
