"""Table VII: Lazy Persistency execution-time overhead on a real
(DRAM-based) machine, normalized to the non-persistent base.

Paper: TMM 0.8%, Cholesky 1.1%, 2D-conv 0.9%, Gauss 2.1%, FFT 1.1%,
gmean 1.1%.  The real system persists nothing — this experiment
measures only the instruction cost of the checksum computation — so we
run the same kernels on the Table III DRAM-machine preset.
"""

from repro.analysis.experiments import compare_variants
from repro.analysis.reporting import format_table, geomean
from repro.sim.config import real_system_machine

from bench_common import NUM_THREADS, engine_opts, make_workload, record

WORKLOADS = ["tmm", "cholesky", "conv2d", "gauss", "fft"]
PAPER = {"tmm": 0.8, "cholesky": 1.1, "conv2d": 0.9, "gauss": 2.1, "fft": 1.1}


def run_table7():
    cfg = real_system_machine(num_cores=9)
    out = {}
    for name in WORKLOADS:
        out[name] = compare_variants(
            make_workload(name), cfg, ["base", "lp"],
            num_threads=NUM_THREADS, **engine_opts(),
        )
    return out


def test_table7_real_system(benchmark):
    results = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    rows = []
    ratios = []
    for name in WORKLOADS:
        ratio = (
            results[name]["lp"].exec_cycles / results[name]["base"].exec_cycles
        )
        ratios.append(ratio)
        rows.append(
            [name, PAPER[name], round((ratio - 1.0) * 100, 2)]
        )
    rows.append(
        ["gmean", 1.1, round((geomean(ratios) - 1.0) * 100, 2)]
    )
    record(
        "table7_real_system",
        format_table(
            ["benchmark", "paper overhead %", "measured overhead %"],
            rows,
            title="Table VII: LP overhead on the DRAM 'real system'",
        ),
    )
    # overall magnitude: small single-digit percent overheads
    assert all(r < 1.08 for r in ratios)
    assert geomean(ratios) < 1.04
