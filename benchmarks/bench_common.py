"""Shared configuration for the paper-reproduction benchmarks.

Every bench runs the scaled Table II machine (see
``repro.sim.config.scaled_machine`` and DESIGN.md's scaling note) with
8 worker threads on 9 cores, mirroring the paper's default setup.
Problem sizes are the scaled defaults recorded in EXPERIMENTS.md.

Each bench prints a paper-vs-measured table and appends it to
``benchmarks/results/<bench>.txt`` so the numbers survive the pytest
run for EXPERIMENTS.md.

All benches submit their experiment points through the parallel
engine (:mod:`repro.analysis.runner`), controlled by environment
knobs:

* ``REPRO_JOBS=N``   — simulate independent points on N processes.
* ``REPRO_SMOKE=1``  — tiny problem sizes + 2 threads, for CI smoke
  runs (committed result files must NOT be regenerated in this mode;
  shape assertions are relaxed where the scaled-down physics differs).
* ``REPRO_NO_CACHE=1`` — disable the on-disk result cache.
* ``REPRO_CACHE_DIR`` — cache location (default ``benchmarks/.cache``,
  which is gitignored).
"""

from __future__ import annotations

import os
import statistics
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentResult
from repro.analysis.runner import Job, ResultCache, run_jobs
from repro.sim.config import CacheConfig, MachineConfig, scaled_machine
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: CI smoke mode: tiny inputs, 2 threads, relaxed shape assertions.
SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"

#: Parallel fan-out for the experiment engine (1 = serial fallback).
N_JOBS = int(os.environ.get("REPRO_JOBS", "1"))

#: Paper-default thread setup: 8 workers + 1 master core.
NUM_THREADS = 2 if SMOKE else 8
NUM_CORES = NUM_THREADS + 1

#: Scaled problem sizes (paper sizes are 1k-4k square / 100k points;
#: see DESIGN.md section 1 for the scaling rationale).  ``tmm`` uses the
#: paper's simulation methodology of a 2-outer-iteration window.
#: Every size is chosen so the kernel's write set overflows the scaled
#: L2 (48KB) the way the paper's 1k-4k-square inputs overflow 512KB —
#: the base runs must have natural evictions for write-amplification
#: ratios to mean what the paper's do.
WORKLOAD_SPECS: Dict[str, dict] = (
    {
        # Smoke sizes: just big enough that every variant still runs
        # its full code path (regions, checksums, recovery metadata).
        "tmm": dict(n=24, bsize=8),
        "cholesky": dict(n=24, col_block=8),
        "conv2d": dict(n=18, ksize=3, row_block=8),
        "gauss": dict(n=24, row_block=8, pivots=4),
        "fft": dict(n=256),
    }
    if SMOKE
    else {
        "tmm": dict(n=96, bsize=8, kk_tiles=2),
        "cholesky": dict(n=104, col_block=8),
        "conv2d": dict(n=66, ksize=3, row_block=8),
        "gauss": dict(n=96, row_block=8, pivots=8),
        "fft": dict(n=2048),
    }
)

#: Shared on-disk result cache for every bench (content-addressed, so
#: a re-run of the figure suite after an unrelated edit is all hits).
CACHE: Optional[ResultCache] = (
    None
    if os.environ.get("REPRO_NO_CACHE", "") == "1"
    else ResultCache(
        os.environ.get("REPRO_CACHE_DIR")
        or os.path.join(os.path.dirname(__file__), ".cache")
    )
)

#: Memoized (workload, variant) -> ExperimentResult runs shared between
#: benches (Figures 12 and 13 report two metrics of the same runs, as
#: the paper's figures do).
_RESULT_CACHE: Dict[tuple, ExperimentResult] = {}


#: Absolute slack for wall-clock overhead assertions.  40ms is about
#: one scheduler quantum of interference landing on a single sample's
#: worth of runs: negligible against a full-size leg (where a relative
#: ceiling is the binding constraint) but decisive at smoke sizes,
#: where a few percent of a sub-second leg is below OS scheduling
#: granularity.
NOISE_FLOOR_SECONDS = 0.040


def interleaved_medians(
    legs: Sequence[Callable[[], float]], repeats: int = 5
) -> List[float]:
    """Median wall-clock seconds per leg, sampled interleaved.

    Each leg is a zero-arg callable returning one timed sample in
    seconds.  The harness tames noise the standard way: one discarded
    warm-up sample per leg first (allocator/bytecode-cache warm-up
    otherwise lands entirely on whichever leg runs first), then the
    legs are sampled round-robin (so slow machine-wide drift — thermal,
    background load — hits every leg equally), and the **median** of
    ``repeats`` samples per leg is returned — a single descheduled
    sample cannot move a median, where it could (and occasionally did,
    on busy CI runners) decide a min-vs-min comparison.
    """
    for leg in legs:
        leg()
    samples: List[List[float]] = [[] for _ in legs]
    for _ in range(repeats):
        for index, leg in enumerate(legs):
            samples[index].append(leg())
    return [statistics.median(leg_samples) for leg_samples in samples]


def overhead_allowance(
    baseline_seconds: float,
    ceiling: float,
    noise_floor: float = NOISE_FLOOR_SECONDS,
) -> float:
    """Absolute seconds an overhead assertion tolerates: the relative
    ``ceiling`` (e.g. 0.02 for 2%) of the baseline leg, floored at
    ``noise_floor`` so smoke-size legs don't assert below scheduler
    granularity."""
    return max(ceiling * baseline_seconds, noise_floor)


def engine_opts() -> dict:
    """Keyword args every sweep/compare call forwards to the engine."""
    return dict(n_jobs=N_JOBS, cache=CACHE)


def run_batch(jobs: Sequence[Job]) -> List[ExperimentResult]:
    """Fan a list of runner Jobs out through the shared engine config."""
    return run_jobs(jobs, n_jobs=N_JOBS, cache=CACHE)


def bench_run(
    workload: Workload, config: MachineConfig, variant: str, **kwargs
) -> ExperimentResult:
    """One ``run_variant`` point through the shared on-disk cache."""
    (result,) = run_jobs(
        [Job(workload, config, variant, **kwargs)], n_jobs=1, cache=CACHE
    )
    return result


def cached_run(name: str, variant: str) -> ExperimentResult:
    """Run (or reuse) one workload/variant at the shared bench config."""
    key = (name, variant)
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = bench_run(
            make_workload(name),
            machine_config(),
            variant,
            num_threads=NUM_THREADS,
            drain=True,
        )
    return _RESULT_CACHE[key]


def cached_runs(
    pairs: Sequence[Tuple[str, str]],
) -> Dict[Tuple[str, str], ExperimentResult]:
    """Batch form of :func:`cached_run`: all misses go to the engine as
    one parallel submission, then individual ``cached_run`` calls are
    free."""
    misses = [key for key in pairs if key not in _RESULT_CACHE]
    if misses:
        results = run_batch(
            [
                Job(
                    make_workload(name),
                    machine_config(),
                    variant,
                    num_threads=NUM_THREADS,
                    drain=True,
                )
                for name, variant in misses
            ]
        )
        _RESULT_CACHE.update(zip(misses, results))
    return {key: _RESULT_CACHE[key] for key in pairs}


def make_workload(name: str) -> Workload:
    return get_workload(name)(**WORKLOAD_SPECS[name])


def machine_config(num_cores: int = NUM_CORES) -> MachineConfig:
    if SMOKE:
        # Caches shrunk in proportion to the smoke inputs, for the
        # same reason scaled_machine shrinks the paper's: the write
        # set must overflow the L2 or the base runs have no natural
        # evictions and write ratios degenerate to 0/0.
        return MachineConfig(
            num_cores=num_cores,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(8 * 1024, 8, hit_cycles=11.0),
        )
    return scaled_machine(num_cores=num_cores)


def record(bench_name: str, text: str, data=None) -> None:
    """Print a results table and persist it under benchmarks/results/.

    ``data`` (any JSON-serialisable object) is additionally written to
    ``<bench>.json`` for machine consumption.  Smoke-mode runs print
    only: the committed result files document the full-size runs.
    """
    import json

    if SMOKE:
        print(f"\n{text}\n[REPRO_SMOKE=1: not persisted to {RESULTS_DIR}]")
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{bench_name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    if data is not None:
        with open(os.path.join(RESULTS_DIR, f"{bench_name}.json"), "w") as fh:
            json.dump(data, fh, indent=2, default=str)
    print(f"\n{text}\n[saved to {path}]")
