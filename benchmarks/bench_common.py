"""Shared configuration for the paper-reproduction benchmarks.

Every bench runs the scaled Table II machine (see
``repro.sim.config.scaled_machine`` and DESIGN.md's scaling note) with
8 worker threads on 9 cores, mirroring the paper's default setup.
Problem sizes are the scaled defaults recorded in EXPERIMENTS.md.

Each bench prints a paper-vs-measured table and appends it to
``benchmarks/results/<bench>.txt`` so the numbers survive the pytest
run for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.sim.config import MachineConfig, scaled_machine
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Paper-default thread setup: 8 workers + 1 master core.
NUM_THREADS = 8
NUM_CORES = 9

#: Scaled problem sizes (paper sizes are 1k-4k square / 100k points;
#: see DESIGN.md section 1 for the scaling rationale).  ``tmm`` uses the
#: paper's simulation methodology of a 2-outer-iteration window.
#: Every size is chosen so the kernel's write set overflows the scaled
#: L2 (48KB) the way the paper's 1k-4k-square inputs overflow 512KB —
#: the base runs must have natural evictions for write-amplification
#: ratios to mean what the paper's do.
WORKLOAD_SPECS: Dict[str, dict] = {
    "tmm": dict(n=96, bsize=8, kk_tiles=2),
    "cholesky": dict(n=104, col_block=8),
    "conv2d": dict(n=66, ksize=3, row_block=8),
    "gauss": dict(n=96, row_block=8, pivots=8),
    "fft": dict(n=2048),
}

#: Memoized (workload, variant) -> ExperimentResult runs shared between
#: benches (Figures 12 and 13 report two metrics of the same runs, as
#: the paper's figures do).
_RESULT_CACHE: Dict[tuple, object] = {}


def cached_run(name: str, variant: str):
    """Run (or reuse) one workload/variant at the shared bench config."""
    from repro.analysis.experiments import run_variant

    key = (name, variant)
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = run_variant(
            make_workload(name),
            machine_config(),
            variant,
            num_threads=NUM_THREADS,
            drain=True,
        )
    return _RESULT_CACHE[key]


def make_workload(name: str) -> Workload:
    return get_workload(name)(**WORKLOAD_SPECS[name])


def machine_config(num_cores: int = NUM_CORES) -> MachineConfig:
    return scaled_machine(num_cores=num_cores)


def record(bench_name: str, text: str, data=None) -> None:
    """Print a results table and persist it under benchmarks/results/.

    ``data`` (any JSON-serialisable object) is additionally written to
    ``<bench>.json`` for machine consumption.
    """
    import json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{bench_name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    if data is not None:
        with open(os.path.join(RESULTS_DIR, f"{bench_name}.json"), "w") as fh:
            json.dump(data, fh, indent=2, default=str)
    print(f"\n{text}\n[saved to {path}]")
