"""Crash-state campaign throughput (images/sec), with coverage pinned.

The verification layer's unit of work is the *checked image*: one
reachable crash image enumerated, recovered, and compared against the
reference output.  ``CoverageStats`` (PR 10) makes that volume
first-class; this bench measures how fast the checker moves through it
and pins the two properties the observability layer claims:

* **Coverage reconciles.**  The campaign's coverage document is a pure
  fold over the checker's own per-point reports — totals equal the
  per-epoch sums, every point's image count is dominated by its
  enumeration bound, and the exhaustive/sampled split matches the
  frontier decision.
* **Journaling is (nearly) free.**  A campaign streaming per-point
  ``campaign_point`` events to a JSONL :class:`TelemetryJournal` must
  stay within ``JOURNAL_OVERHEAD_CEILING`` of the silent campaign —
  the journal writes one short line per crash *point*, not per image,
  so it cannot tax enumeration.

Wall-clock noise is tamed by the shared harness
(:func:`bench_common.interleaved_medians`): per-leg warm-up,
interleaved sampling, median of ``REPEATS``, absolute noise floor on
every asserted bound.  The result cache is bypassed — the campaign
itself is the thing being timed.

Besides the usual ``benchmarks/results/`` record, the headline
images/sec figure is written to ``BENCH_verify.json`` at the repo root
so the checker's perf trajectory is machine-readable across PRs
(full-size runs only; smoke runs assert but do not persist).
"""

import json
import os
import tempfile
import time

from repro.analysis.reporting import format_table
from repro.obs.journal import TelemetryJournal, journal_summary, read_journal
from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan
from repro.verify import EnumerationPlan, check_variant
from repro.workloads import get_workload

from bench_common import (
    NOISE_FLOOR_SECONDS,
    SMOKE,
    interleaved_medians,
    overhead_allowance,
    record,
)

#: The asserted bound on journal overhead: one JSONL line per crash
#: point must not tax a campaign that checks hundreds of images per
#: point.  Absolute noise floor applies (smoke campaigns are short).
JOURNAL_OVERHEAD_CEILING = 0.10

#: Samples per leg; the median is compared.
REPEATS = 3

#: Campaign shape.  Smoke: the crashcheck-smoke grid.  Full: a wider
#: grid on a bigger kernel, still tiny-machine (the checker always
#: runs on the tiny preset; see docs/crash_testing.md).
if SMOKE:
    WORKLOAD_PARAMS = dict(n=8, bsize=4, kk_tiles=1)
    CRASH_PLANS = [CrashPlan(at_op=o) for o in (200, 400)] + [
        CrashPlan(at_flush=n) for n in (2, 4)
    ]
else:
    WORKLOAD_PARAMS = dict(n=12, bsize=4, kk_tiles=1)
    CRASH_PLANS = [CrashPlan(at_op=o) for o in (200, 500, 800, 1100)] + [
        CrashPlan(at_flush=n) for n in (2, 5, 8, 11)
    ]

PLAN = EnumerationPlan(max_exhaustive_events=12, samples=32, seed=0)

ROOT_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_verify.json")


def _campaign(journal=None):
    """One tmm/lp campaign; returns ``(elapsed_seconds, report)``."""
    workload = get_workload("tmm")(**WORKLOAD_PARAMS)
    t0 = time.perf_counter()
    report = check_variant(
        workload, tiny_machine(), "lp", CRASH_PLANS, PLAN, journal=journal
    )
    return time.perf_counter() - t0, report


def _assert_reconciles(report):
    """The PR 10 acceptance invariants, asserted on a live campaign."""
    cov = report.coverage()
    crashed = [p for p in report.points if p.crashed]
    assert report.ok, "tmm/lp must pass its crash-state check"
    assert cov.images_checked == sum(p.images_checked for p in report.points)
    assert sum(e.images_checked for e in cov.epochs) == sum(
        p.images_checked for p in crashed
    )
    assert sum(e.points for e in cov.epochs) == len(crashed)
    assert cov.enumeration_bound == sum(p.bound for p in crashed)
    for point in crashed:
        assert point.images_checked <= point.bound
        assert point.exhaustive == (
            point.num_events <= PLAN.max_exhaustive_events
        )
    return cov


def test_verify_coverage_throughput(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "campaign.jsonl")
        report_box = [None, None]

        def silent_leg():
            seconds, report = _campaign()
            report_box[0] = report
            return seconds

        def journaled_leg():
            # Fresh journal file per sample so the file never grows
            # unboundedly across repeats (append cost stays constant).
            if os.path.exists(journal_path):
                os.unlink(journal_path)
            seconds, report = _campaign(
                journal=TelemetryJournal(path=journal_path)
            )
            report_box[1] = report
            return seconds

        silent, journaled = benchmark.pedantic(
            lambda: interleaved_medians(
                [silent_leg, journaled_leg], repeats=REPEATS
            ),
            rounds=1,
            iterations=1,
        )

        cov = _assert_reconciles(report_box[0])
        journaled_cov = _assert_reconciles(report_box[1])
        assert journaled_cov.images_checked == cov.images_checked, (
            "journaling changed what the campaign checked"
        )

        # The journal's incremental fold reconciles with the report.
        folded = journal_summary(read_journal(journal_path))
        (from_journal,) = folded["coverage"]
        from_report = report_box[1].coverage().to_dict()
        for doc in (from_journal, from_report):
            doc.pop("wall_s")
            doc.pop("images_per_sec")
        assert from_journal == from_report, (
            "journal fold diverged from the campaign's coverage document"
        )

    overhead = journaled / silent - 1.0 if silent > 0 else 0.0
    images_per_sec = cov.images_checked / silent if silent > 0 else 0.0

    table = format_table(
        ["leg", f"seconds (median of {REPEATS})", "overhead"],
        [
            ["silent campaign", f"{silent:.3f}", ""],
            ["journaled campaign", f"{journaled:.3f}",
             f"{overhead * 100:+.2f}%"],
        ],
        title=(
            f"Crash-campaign throughput (tmm/lp, {cov.points} points, "
            f"{cov.images_checked} images)"
        ),
    )
    data = {
        "images_checked": cov.images_checked,
        "images_per_sec": round(images_per_sec, 1),
        "points": cov.points,
        "enumeration_bound": cov.enumeration_bound,
        "exhaustive_fraction": round(cov.exhaustive_fraction(), 6),
        "silent_seconds": round(silent, 4),
        "journaled_seconds": round(journaled, 4),
        "journal_overhead_pct": round(overhead * 100, 2),
        "journal_overhead_ceiling_pct": JOURNAL_OVERHEAD_CEILING * 100,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
    }
    record(
        "verify_coverage",
        table + f"\n\ncampaign throughput: {images_per_sec:,.0f} images/sec "
        f"({cov.summary()})",
        data,
    )
    if not SMOKE:
        with open(ROOT_JSON, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")

    assert images_per_sec > 0
    allowance = overhead_allowance(silent, JOURNAL_OVERHEAD_CEILING)
    assert journaled - silent <= allowance, (
        f"journaled campaign costs {journaled - silent:.3f}s "
        f"({overhead * 100:+.2f}%) over the {silent:.3f}s silent leg; "
        f"allowance is {allowance:.3f}s (max of "
        f"{JOURNAL_OVERHEAD_CEILING * 100:.0f}% and the "
        f"{NOISE_FLOOR_SECONDS * 1000:.0f}ms noise floor)"
    )
