"""Figure 15(b): LP execution-time overhead per error-detection code.

Paper: parity 0.1%, modular 0.2%, Adler-32 ~1%, parallel
(modular+parity) 3.4% — all far below Eager Persistency's 12%.
"""

from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_checksum

from bench_common import (
    NUM_THREADS,
    bench_run,
    engine_opts,
    machine_config,
    make_workload,
    record,
)

ENGINES = ["parity", "modular", "adler32", "parallel"]
PAPER = {"parity": 0.1, "modular": 0.2, "adler32": 1.0, "parallel": 3.4}


def run_fig15b():
    cfg = machine_config()
    base = bench_run(
        make_workload("tmm"), cfg, "base", num_threads=NUM_THREADS
    )
    ep = bench_run(make_workload("tmm"), cfg, "ep", num_threads=NUM_THREADS)
    swept = sweep_checksum(
        make_workload("tmm"), cfg, ENGINES, num_threads=NUM_THREADS,
        **engine_opts(),
    )
    return base, ep, swept


def test_fig15b_checksum_kind(benchmark):
    base, ep, swept = benchmark.pedantic(run_fig15b, rounds=1, iterations=1)
    rows = []
    overheads = {}
    for engine in ENGINES:
        overhead = (swept[engine].exec_cycles / base.exec_cycles - 1) * 100
        overheads[engine] = overhead
        rows.append([engine, PAPER[engine], round(overhead, 2)])
    ep_overhead = (ep.exec_cycles / base.exec_cycles - 1) * 100
    rows.append(["(EagerRecompute)", 12.0, round(ep_overhead, 2)])
    record(
        "fig15b_checksum_kind",
        format_table(
            ["checksum", "paper overhead %", "measured overhead %"],
            rows,
            title="Figure 15b: LP overhead per error-detection code",
        ),
    )
    # shape (paper Fig 15b): parity cheapest, modular close behind,
    # the parallel combination costliest, everything below EP
    assert overheads["parity"] <= overheads["modular"] + 0.3
    assert overheads["modular"] < overheads["parallel"]
    assert overheads["adler32"] < overheads["parallel"] + 0.3
    assert all(o < ep_overhead for o in overheads.values())
