"""Figure 13: normalized write amplification of LP and EagerRecompute
for all five benchmarks.

Paper: LP ranges 0.1%-4.4% (avg 3%); EagerRecompute ranges 0.2%-55%
(avg 20.6%), with the gap workload-dependent (store coalescing and
memory-footprint effects, section VI-B).
"""

from repro.analysis.reporting import format_table, geomean

from bench_common import cached_run, cached_runs, record

WORKLOADS = ["tmm", "cholesky", "conv2d", "gauss", "fft"]


def run_fig13():
    cached_runs([(n, v) for n in WORKLOADS for v in ("base", "lp", "ep")])
    return {
        name: {v: cached_run(name, v) for v in ("base", "lp", "ep")}
        for name in WORKLOADS
    }


def test_fig13_write_amp(benchmark):
    results = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    rows = []
    lp_ratios, ep_ratios = [], []
    for name in WORKLOADS:
        base = results[name]["base"]
        lp_w = results[name]["lp"].total_writes
        ep_w = results[name]["ep"].total_writes
        lp = lp_w / base.total_writes if base.total_writes else float("nan")
        ep = ep_w / base.total_writes if base.total_writes else float("nan")
        lp_ratios.append(lp)
        ep_ratios.append(ep)
        rows.append(
            [name, base.total_writes, round(lp, 3), round(ep, 3)]
        )
    rows.append(
        [
            "gmean",
            "-",
            round(geomean(lp_ratios), 3),
            round(geomean(ep_ratios), 3),
        ]
    )
    record(
        "fig13_write_amp",
        format_table(
            ["benchmark", "base writes", "LP writes", "EP writes"],
            rows,
            title=(
                "Figure 13: normalized write amplification "
                "(paper: LP avg 1.03, EP avg 1.206)"
            ),
        ),
    )
    for name, lp, ep in zip(WORKLOADS, lp_ratios, ep_ratios):
        assert lp <= ep + 0.01, f"{name}: LP writes must not exceed EP's"
    assert geomean(lp_ratios) < geomean(ep_ratios)
    assert geomean(lp_ratios) < 1.25
