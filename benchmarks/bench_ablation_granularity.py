"""Ablation (sections III-C and IV): LP region granularity.

The paper chooses the ii iteration as TMM's region and argues the
trade-off qualitatively: smaller regions (jj) aggregate more checksum
commits; larger regions (kk) lose more work per crash.  This bench
quantifies both sides: failure-free overhead per granularity, and
recovery work after the same mid-run crash.
"""

from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.reporting import format_table
from repro.workloads.tmm import TiledMatMul

from bench_common import NUM_THREADS, bench_run, machine_config, record

GRANULARITIES = ["jj", "ii", "kk"]
CRASH_POINT = 120_000


def run_granularity_ablation():
    cfg = machine_config()
    base = bench_run(
        TiledMatMul(n=96, bsize=8, kk_tiles=2), cfg, "base",
        num_threads=NUM_THREADS,
    )
    out = {}
    for gran in GRANULARITIES:
        timing = bench_run(
            TiledMatMul(n=96, bsize=8, kk_tiles=2, granularity=gran),
            cfg,
            "lp",
            num_threads=NUM_THREADS,
        )
        campaign = run_crash_campaign(
            TiledMatMul(n=64, bsize=8, granularity=gran),
            machine_config(num_cores=5),
            crash_points=[CRASH_POINT],
            num_threads=4,
            cleaner_period=5_000.0,
        )
        out[gran] = (timing, campaign)
    return base, out


def test_ablation_granularity(benchmark):
    base, results = benchmark.pedantic(
        run_granularity_ablation, rounds=1, iterations=1
    )
    rows = []
    for gran in GRANULARITIES:
        timing, campaign = results[gran]
        trial = campaign.trials[0]
        rows.append(
            [
                gran,
                round(timing.exec_cycles / base.exec_cycles, 4),
                trial.recovery_ops,
                trial.recovered_ok,
            ]
        )
    record(
        "ablation_granularity",
        format_table(
            ["granularity", "LP exec (vs base)", "recovery ops", "recovered"],
            rows,
            title="Ablation: LP region granularity (sections III-C, IV)",
        ),
    )
    for gran in GRANULARITIES:
        timing, campaign = results[gran]
        assert campaign.all_recovered
        assert timing.exec_cycles / base.exec_cycles < 1.10
    # larger regions must not redo less work than smaller ones after
    # the same crash (kk loses at least what ii loses)
    assert (
        results["kk"][1].trials[0].recovery_ops
        >= results["ii"][1].trials[0].recovery_ops * 0.9
    )
