"""Figure 11: write overhead of the periodic hardware cleanup
(section III-E.1) as a function of the time between flushes, expressed
as a fraction of total execution time.

Paper shape: at a tiny 0.08% interval the write overhead (~32%) is
still below EagerRecompute's (36%); it drops rapidly — below 2% once
the interval reaches ~33% of execution time.
"""

from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_cleaner_period

from bench_common import NUM_THREADS, bench_run, engine_opts, machine_config, record
from repro.workloads.tmm import TiledMatMul

#: Cleaner period as a fraction of the baseline execution time.
FRACTIONS = [0.005, 0.02, 0.08, 0.33, 1.0]


def make_tmm():
    # a longer window than the timing benches (6 of 12 kk tiles) so
    # long cleaner periods fire against a representative amount of
    # naturally coalescing traffic
    return TiledMatMul(n=96, bsize=8, kk_tiles=6)


def run_fig11():
    cfg = machine_config()
    base = bench_run(make_tmm(), cfg, "base", num_threads=NUM_THREADS)
    ep = bench_run(make_tmm(), cfg, "ep", num_threads=NUM_THREADS)
    periods = [f * base.exec_cycles for f in FRACTIONS] + [None]
    swept = sweep_cleaner_period(
        make_tmm(), cfg, periods, num_threads=NUM_THREADS, **engine_opts()
    )
    return base, ep, swept, periods


def test_fig11_periodic_flush(benchmark):
    base, ep, swept, periods = benchmark.pedantic(
        run_fig11, rounds=1, iterations=1
    )
    rows = []
    overheads = []
    for frac, period in zip(FRACTIONS + ["no cleaner"], periods):
        r = swept[period]
        overhead = r.nvmm_writes / base.nvmm_writes - 1.0
        overheads.append(overhead)
        rows.append(
            [
                frac if isinstance(frac, str) else f"{frac:.1%}",
                r.cleaner_writes,
                round(overhead * 100, 2),
            ]
        )
    ep_overhead = ep.nvmm_writes / base.nvmm_writes - 1.0
    rows.append(["(EagerRecompute)", "-", round(ep_overhead * 100, 2)])
    record(
        "fig11_periodic_flush",
        format_table(
            ["period (frac of exec)", "cleaner writes", "write overhead %"],
            rows,
            title="Figure 11: write overhead vs time between flushes",
        ),
    )
    # shape: monotone non-increasing overhead with longer periods,
    # and even the shortest period stays below EagerRecompute
    assert all(a >= b - 0.01 for a, b in zip(overheads, overheads[1:]))
    assert overheads[0] < ep_overhead + 0.25
    assert overheads[-2] < 0.10, "long periods must cost almost nothing"
