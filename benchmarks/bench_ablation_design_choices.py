"""Ablation: the paper's remaining LP design choices.

* **Checksum persistency** (section III-D): committing checksums with
  Eager Persistency (flush+fence each commit) vs the paper's lazy
  choice.  Eager removes Figure 6's "R3" false negative but pays a
  measurable flush/fence cost per region.
* **Checksum organization** (Figure 7): embedded-in-matrix columns vs
  the standalone collision-free table, comparing execution overhead
  and metadata footprint.
* **Repair strategy** (section IV): from-scratch vs incremental repair
  (recompute only the delta above the last matching kk), comparing
  recovery work after the same crash.
"""

from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.reporting import format_table
from repro.sim.machine import Machine
from repro.workloads.tmm import TiledMatMul

from bench_common import NUM_THREADS, bench_run, machine_config, record


def run_design_ablation():
    cfg = machine_config()
    base = bench_run(
        TiledMatMul(n=96, bsize=8, kk_tiles=2), cfg, "base",
        num_threads=NUM_THREADS,
    )
    variants = {
        "lazy checksum (paper)": TiledMatMul(n=96, bsize=8, kk_tiles=2),
        "eager checksum": TiledMatMul(
            n=96, bsize=8, kk_tiles=2, eager_checksum=True
        ),
        "embedded org (Fig 7a)": TiledMatMul(
            n=96, bsize=8, kk_tiles=2, checksum_org="embedded"
        ),
    }
    timings = {
        name: bench_run(wl, cfg, "lp", num_threads=NUM_THREADS)
        for name, wl in variants.items()
    }
    # footprints
    spaces = {}
    for name, wl_spec in (
        ("standalone table (Fig 7b)", TiledMatMul(n=96, bsize=8)),
        ("embedded org (Fig 7a)", TiledMatMul(n=96, bsize=8, checksum_org="embedded")),
    ):
        bound = wl_spec.bind(Machine(cfg), num_threads=NUM_THREADS)
        spaces[name] = bound.checksum_space_bytes

    # repair strategies under a crash with durable history (cleaner)
    repair = {}
    for mode in ("scratch", "incremental"):
        campaign = run_crash_campaign(
            TiledMatMul(n=64, bsize=8, repair=mode),
            machine_config(num_cores=5),
            crash_points=[150_000],
            num_threads=4,
            cleaner_period=5_000.0,
        )
        repair[mode] = campaign
    return base, timings, spaces, repair


def test_ablation_design_choices(benchmark):
    base, timings, spaces, repair = benchmark.pedantic(
        run_design_ablation, rounds=1, iterations=1
    )
    rows = [
        [name, round(t.exec_cycles / base.exec_cycles, 4),
         t.writes_by_cause.get("flush", 0)]
        for name, t in timings.items()
    ]
    space_rows = [
        [name, size, f"{size / (3 * 96 * 96 * 8):.1%}"]
        for name, size in spaces.items()
    ]
    repair_rows = [
        [mode, c.trials[0].recovery_ops, c.all_recovered]
        for mode, c in repair.items()
    ]
    text = "\n\n".join(
        [
            format_table(
                ["LP flavour", "exec (vs base)", "checksum flushes"],
                rows,
                title="Ablation: checksum persistency & organization",
            ),
            format_table(
                ["organization", "metadata bytes", "vs matrices"],
                space_rows,
                title="Figure 7: checksum metadata footprint",
            ),
            format_table(
                ["repair strategy", "recovery ops", "recovered"],
                repair_rows,
                title="Section IV: repair strategy after the same crash",
            ),
        ]
    )
    record("ablation_design_choices", text)

    lazy = timings["lazy checksum (paper)"]
    eager = timings["eager checksum"]
    assert eager.writes_by_cause.get("flush", 0) > 0
    assert lazy.writes_by_cause.get("flush", 0) == 0
    assert eager.exec_cycles >= lazy.exec_cycles * 0.999
    assert repair["incremental"].all_recovered
    assert repair["scratch"].all_recovered
    assert (
        repair["incremental"].trials[0].recovery_ops
        <= repair["scratch"].trials[0].recovery_ops * 1.1
    )
