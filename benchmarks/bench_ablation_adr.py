"""Ablation (section II-A): the ADR platform assumption.

The paper's Eager Persistency costs assume ADR — a store is durable
once the memory controller accepts it.  On the pre-ADR platforms the
paper contrasts (where pcommit-style draining is needed), every fence
additionally waits out the NVMM device write, making Eager Persistency
substantially more expensive while Lazy Persistency — which issues no
fences at all — is untouched.  This ablation quantifies that gap.
"""

import dataclasses

from repro.analysis.experiments import compare_variants
from repro.analysis.reporting import format_table
from repro.workloads.tmm import TiledMatMul

from bench_common import NUM_THREADS, engine_opts, machine_config, record


def run_adr_ablation():
    out = {}
    for adr in (True, False):
        cfg = machine_config()
        cfg = dataclasses.replace(
            cfg, nvmm=dataclasses.replace(cfg.nvmm, adr=adr)
        )
        out[adr] = compare_variants(
            TiledMatMul(n=96, bsize=8, kk_tiles=2),
            cfg,
            ["base", "lp", "ep", "wal"],
            num_threads=NUM_THREADS,
            **engine_opts(),
        )
    return out


def test_ablation_adr(benchmark):
    results = benchmark.pedantic(run_adr_ablation, rounds=1, iterations=1)
    rows = []
    norm = {}
    for adr in (True, False):
        base = results[adr]["base"]
        for scheme in ("lp", "ep", "wal"):
            norm[(adr, scheme)] = (
                results[adr][scheme].exec_cycles / base.exec_cycles
            )
        rows.append(
            [
                "ADR" if adr else "pre-ADR (pcommit)",
                round(norm[(adr, "lp")], 3),
                round(norm[(adr, "ep")], 3),
                round(norm[(adr, "wal")], 3),
            ]
        )
    record(
        "ablation_adr",
        format_table(
            ["platform", "LP exec", "EP exec", "WAL exec"],
            rows,
            title="Ablation: Eager Persistency cost with and without ADR",
        ),
    )
    # LP issues no fences: unaffected by the persistence-domain boundary
    assert abs(norm[(False, "lp")] - norm[(True, "lp")]) < 0.02
    # fence-heavy schemes get more expensive without ADR
    assert norm[(False, "wal")] > norm[(True, "wal")] * 1.1
    assert norm[(False, "ep")] > norm[(True, "ep")] * 1.1
