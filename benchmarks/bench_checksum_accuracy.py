"""Section III-D: checksum accuracy under random error injection.

Paper: the probability of failing to detect an error is below 2e-9 for
both the modular checksum and Adler-32 (measured over ~2 billion
injections); parity is noticeably weaker.  Two billion Python trials
are infeasible, so this bench (a) verifies zero misses over a large
random campaign and reports the rule-of-three 95% upper bound, and
(b) demonstrates parity's structural weakness with the paired-flip
error model, which sum-based codes survive.
"""

from repro.analysis.reporting import format_table
from repro.core.accuracy import run_error_injection
from repro.core.checksum import get_engine

from bench_common import record

TRIALS = 40_000
ENGINES = ["parity", "modular", "adler32", "parallel"]


def run_accuracy():
    out = {}
    for name in ENGINES:
        out[(name, "stale")] = run_error_injection(
            get_engine(name),
            region_size=256,
            trials=TRIALS,
            error_model="stale",
            seed=42,
        )
        out[(name, "paired")] = run_error_injection(
            get_engine(name),
            region_size=64,
            trials=2_000,
            error_model="paired",
            seed=43,
        )
    return out


def test_checksum_accuracy(benchmark):
    results = benchmark.pedantic(run_accuracy, rounds=1, iterations=1)
    rows = []
    for name in ENGINES:
        stale = results[(name, "stale")]
        paired = results[(name, "paired")]
        rows.append(
            [
                name,
                stale.missed,
                f"{stale.miss_probability_upper_bound:.2e}",
                f"{paired.miss_probability:.3f}",
            ]
        )
    record(
        "checksum_accuracy",
        format_table(
            [
                "engine",
                "misses (stale)",
                "P(miss) 95% bound",
                "P(miss) paired flips",
            ],
            rows,
            title=(
                "Section III-D: error-injection accuracy "
                f"({TRIALS} stale trials; paper bound: < 2e-9)"
            ),
        ),
    )
    # modular / adler / parallel: no missed error in the whole campaign
    for name in ("modular", "adler32", "parallel"):
        assert results[(name, "stale")].missed == 0
        assert results[(name, "paired")].miss_probability < 0.01
    # parity is structurally blind to paired identical flips
    assert results[("parity", "paired")].miss_probability == 1.0
