"""Ablation: NVMM write endurance (the paper's motivation).

The introduction motivates LP with NVM's "slow and high-power writes
as well as limited write endurance".  Write *amplification* (Figs 10,
13) is the aggregate view; endurance is about the worst-written line —
the cell that fails first.  This bench compares per-line write
distributions across the schemes: EagerRecompute's repeated flushing
of progress markers concentrates wear on single lines, WAL hammers its
log status word, and LP's natural evictions spread writes like the
non-persistent base.
"""

from repro.analysis.reporting import format_table
from repro.sim.machine import Machine
from repro.workloads.tmm import TiledMatMul

from bench_common import NUM_THREADS, machine_config, record


def run_wear():
    # reuse the machinery but keep the raw MachineStats for wear data
    from repro.sim.machine import Machine

    out = {}
    for variant in ("base", "lp", "ep", "wal"):
        machine = Machine(machine_config())
        wl = TiledMatMul(n=96, bsize=8, kk_tiles=2)
        bound = wl.bind(machine, num_threads=NUM_THREADS)
        machine.run(bound.threads(variant))
        assert bound.verify()
        out[variant] = machine.stats
    return out


def test_ablation_wear(benchmark):
    stats = benchmark.pedantic(run_wear, rounds=1, iterations=1)
    rows = []
    for variant in ("base", "lp", "ep", "wal"):
        s = stats[variant]
        rows.append(
            [
                variant,
                s.nvmm_writes,
                s.max_line_writes,
                s.wear_percentile(99),
                s.wear_percentile(50),
            ]
        )
    record(
        "ablation_wear",
        format_table(
            ["scheme", "total writes", "max line writes", "p99", "median"],
            rows,
            title="Ablation: NVMM wear (writes per line)",
        ),
    )
    # LP's wear profile tracks base's
    assert stats["lp"].max_line_writes <= stats["base"].max_line_writes + 4
    # eager schemes concentrate wear on hot metadata lines (EP's
    # progress marker takes a flush per tile; WAL's log status word a
    # flush per fence set — both scale with region count, so even this
    # 2-outer-iteration window puts them above base's hottest line)
    assert stats["ep"].max_line_writes > 2 * max(stats["base"].max_line_writes, 1)
    assert stats["wal"].max_line_writes > stats["base"].max_line_writes
