"""Ablation (section III-E.1 motivation): recovery cost vs the
periodic-cleaner interval.

The paper argues the cleaner bounds recovery time: the longer data may
stay volatile, the more regions a crash can invalidate.  This bench
crashes an LP TMM run at a fixed point under different cleaner
periods, runs recovery, verifies exactness, and reports the recovery
work — the quantitative other half of Figure 11's write-overhead
trade-off.
"""

from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.reporting import format_table
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import scaled_machine, tiny_machine
from repro.sim.crash import CrashPlan, run_to_crash_space
from repro.sim.machine import Machine
from repro.verify.graph import count_ideals
from repro.workloads.tmm import TiledMatMul

from bench_common import record

PERIODS = [2_000.0, 20_000.0, None]
CRASH_POINT = 120_000  # ops; mid-run for the n=64 full TMM below


def run_recovery_ablation():
    out = {}
    for period in PERIODS:
        out[period] = run_crash_campaign(
            TiledMatMul(n=64, bsize=8),
            scaled_machine(num_cores=5),
            crash_points=[CRASH_POINT],
            num_threads=4,
            cleaner_period=period,
        )
    return out


def test_recovery_time_vs_cleaner(benchmark):
    results = benchmark.pedantic(run_recovery_ablation, rounds=1, iterations=1)
    rows = []
    for period in PERIODS:
        trial = results[period].trials[0]
        rows.append(
            [
                "none" if period is None else f"{period:.0f} cyc",
                trial.writes_before_crash,
                trial.recovery_ops,
                round(trial.recovery_cycles, 0),
                results[period].all_recovered,
            ]
        )
    record(
        "recovery_time",
        format_table(
            [
                "cleaner period",
                "writes pre-crash",
                "recovery ops",
                "recovery cycles",
                "recovered",
            ],
            rows,
            title="Ablation: cleaner period vs recovery cost (LP TMM)",
        ),
    )
    assert all(r.all_recovered for r in results.values())
    # a frequent cleaner must not recover slower than no cleaner
    assert (
        results[PERIODS[0]].trials[0].recovery_ops
        <= results[None].trials[0].recovery_ops
    )


# -- crash-state uncertainty vs cleaner period -------------------------------

SPACE_PERIODS = [200.0, 1_000.0, None]
SPACE_CRASH_OP = 500  # mid-run for the tiny TMM below


def run_space_ablation():
    """The other quantity the cleaner bounds: how *many* NVMM images a
    crash can expose.  Every cleanup pass moves dirty lines into the
    durable floor, shrinking the reorderable event set — and with it
    the reachable-image count the crashcheck enumerator must cover
    (see docs/crash_testing.md)."""
    out = {}
    for period in SPACE_PERIODS:
        machine = Machine(tiny_machine())
        if period is not None:
            machine.cleaner = PeriodicCleaner(period)
        workload = TiledMatMul(n=8, bsize=4, kk_tiles=1)
        bound = workload.bind(machine, num_threads=2, engine="modular")
        _, space = run_to_crash_space(
            machine, bound.threads("lp"), CrashPlan(at_op=SPACE_CRASH_OP)
        )
        nodes = [ev.eid for ev in space.events]
        images = count_ideals(nodes, space.edges) if len(nodes) <= 20 else None
        out[period] = (space.num_events, len(space.edges), images)
    return out


def test_crash_state_space_vs_cleaner(benchmark):
    results = benchmark.pedantic(run_space_ablation, rounds=1, iterations=1)
    rows = [
        [
            "none" if period is None else f"{period:.0f} cyc",
            events,
            edges,
            "> 2^20" if images is None else images,
        ]
        for period, (events, edges, images) in results.items()
    ]
    record(
        "crash_state_space",
        format_table(
            ["cleaner period", "reorderable events", "edges", "reachable images"],
            rows,
            title="Ablation: cleaner period vs crash-state uncertainty (LP TMM)",
        ),
    )
    # cleaning can only shrink the uncertain event set
    fastest, _, slowest = SPACE_PERIODS
    assert results[fastest][0] <= results[slowest][0]
