"""Ablation (section III-E.1 motivation): recovery cost vs the
periodic-cleaner interval.

The paper argues the cleaner bounds recovery time: the longer data may
stay volatile, the more regions a crash can invalidate.  This bench
crashes an LP TMM run at a fixed point under different cleaner
periods, runs recovery, verifies exactness, and reports the recovery
work — the quantitative other half of Figure 11's write-overhead
trade-off.
"""

from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.reporting import format_table
from repro.sim.config import scaled_machine
from repro.workloads.tmm import TiledMatMul

from bench_common import record

PERIODS = [2_000.0, 20_000.0, None]
CRASH_POINT = 120_000  # ops; mid-run for the n=64 full TMM below


def run_recovery_ablation():
    out = {}
    for period in PERIODS:
        out[period] = run_crash_campaign(
            TiledMatMul(n=64, bsize=8),
            scaled_machine(num_cores=5),
            crash_points=[CRASH_POINT],
            num_threads=4,
            cleaner_period=period,
        )
    return out


def test_recovery_time_vs_cleaner(benchmark):
    results = benchmark.pedantic(run_recovery_ablation, rounds=1, iterations=1)
    rows = []
    for period in PERIODS:
        trial = results[period].trials[0]
        rows.append(
            [
                "none" if period is None else f"{period:.0f} cyc",
                trial.writes_before_crash,
                trial.recovery_ops,
                round(trial.recovery_cycles, 0),
                results[period].all_recovered,
            ]
        )
    record(
        "recovery_time",
        format_table(
            [
                "cleaner period",
                "writes pre-crash",
                "recovery ops",
                "recovery cycles",
                "recovered",
            ],
            rows,
            title="Ablation: cleaner period vs recovery cost (LP TMM)",
        ),
    )
    assert all(r.all_recovered for r in results.values())
    # a frequent cleaner must not recover slower than no cleaner
    assert (
        results[PERIODS[0]].trials[0].recovery_ops
        <= results[None].trials[0].recovery_ops
    )
