"""Maximum volatility duration (section VI, text): how long a dirty
block stays volatile before reaching NVMM.

Paper: EagerRecompute's maxvdur is 20% of base's (eager flushing
shortens residency); Lazy Persistency's is 101% of base (it relies on
natural evictions, just like base).
"""

from repro.analysis.experiments import compare_variants
from repro.analysis.reporting import format_table

from bench_common import NUM_THREADS, engine_opts, machine_config, make_workload, record

PAPER = {"ep": 0.20, "lp": 1.01}


def run_maxvdur():
    return compare_variants(
        make_workload("tmm"),
        machine_config(),
        ["base", "ep", "lp"],
        num_threads=NUM_THREADS,
        **engine_opts(),
    )


def test_maxvdur(benchmark):
    results = benchmark.pedantic(run_maxvdur, rounds=1, iterations=1)
    base = results["base"].max_volatility_cycles
    rows = []
    for scheme in ("base", "ep", "lp"):
        ratio = results[scheme].max_volatility_cycles / base
        rows.append(
            [
                scheme,
                round(results[scheme].max_volatility_cycles, 0),
                PAPER.get(scheme, 1.00),
                round(ratio, 3),
            ]
        )
    record(
        "maxvdur",
        format_table(
            ["scheme", "maxvdur (cycles)", "paper ratio", "measured ratio"],
            rows,
            title="Max volatility duration vs base (section VI)",
        ),
    )
    ep_ratio = results["ep"].max_volatility_cycles / base
    lp_ratio = results["lp"].max_volatility_cycles / base
    assert ep_ratio < 0.8, "eager flushing must shorten volatility"
    assert 0.8 < lp_ratio < 1.3, "LP's volatility tracks base's"
