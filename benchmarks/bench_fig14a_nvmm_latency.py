"""Figure 14(a): sensitivity of LP and EagerRecompute execution-time
overheads to NVMM latency, at (read, write) = (60,150), (
intermediate), and (150,300) ns — i.e. (120,300), (210,450), (300,600)
cycles at 2GHz.

Paper shape: EP's overhead *grows* with latency (flushes, misses and
durable barriers all get costlier); LP's *shrinks* (the fixed checksum
work is diluted by slower memory).
"""

from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_nvmm_latency

from bench_common import NUM_THREADS, engine_opts, machine_config, make_workload, record

LATENCIES = [(120.0, 300.0), (210.0, 450.0), (300.0, 600.0)]


def run_fig14a():
    return sweep_nvmm_latency(
        make_workload("tmm"),
        machine_config(),
        LATENCIES,
        variants=("base", "lp", "ep"),
        num_threads=NUM_THREADS,
        **engine_opts(),
    )


def test_fig14a_nvmm_latency(benchmark):
    results = benchmark.pedantic(run_fig14a, rounds=1, iterations=1)
    rows = []
    lp_over, ep_over = [], []
    for lat in LATENCIES:
        base = results[lat]["base"]
        lp = results[lat]["lp"].exec_cycles / base.exec_cycles
        ep = results[lat]["ep"].exec_cycles / base.exec_cycles
        lp_over.append(lp)
        ep_over.append(ep)
        ns = (lat[0] / 2, lat[1] / 2)
        rows.append(
            [f"({ns[0]:.0f}ns, {ns[1]:.0f}ns)", round(lp, 3), round(ep, 3)]
        )
    record(
        "fig14a_nvmm_latency",
        format_table(
            ["(read, write)", "LP exec", "EP exec"],
            rows,
            title="Figure 14a: NVMM latency sensitivity (normalized exec time)",
        ),
    )
    # shape: EP overhead grows with latency; LP stays ~flat and is far
    # below EP wherever EP's overhead is visible at all (at the lowest
    # latency both sit inside the ~1% timing-texture noise floor)
    assert ep_over[0] < ep_over[1] < ep_over[2]
    assert all(lp < ep + 0.01 for lp, ep in zip(lp_over, ep_over))
    assert lp_over[-1] < ep_over[-1] - 0.03
    assert all(lp < 1.05 for lp in lp_over)
