"""Figure 14(b): execution time of base and LP as threads scale 1-16,
normalized to base with 1 thread.

Paper shape: LP tracks base at every thread count (same scalability).
"""

from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_threads
from repro.workloads.tmm import TiledMatMul

from bench_common import engine_opts, machine_config, record

THREADS = [1, 2, 4, 8, 16]


def run_fig14b():
    # 16 tiles so 16 threads have balanced work, and a proportionally
    # larger L2 so per-thread capacity stays in the paper's regime
    # (their 512KB is shared the same way at every thread count)
    cfg = machine_config(num_cores=17).with_l2_size(96 * 1024)
    return sweep_threads(
        TiledMatMul(n=128, bsize=8, kk_tiles=1),
        cfg,
        THREADS,
        variants=("base", "lp"),
        **engine_opts(),
    )


def test_fig14b_threads(benchmark):
    results = benchmark.pedantic(run_fig14b, rounds=1, iterations=1)
    base1 = results[1]["base"].exec_cycles
    rows = []
    for p in THREADS:
        b = results[p]["base"].exec_cycles / base1
        lp = results[p]["lp"].exec_cycles / base1
        rows.append([p, round(b, 3), round(lp, 3), round(lp / b, 3)])
    record(
        "fig14b_threads",
        format_table(
            ["threads", "base", "LP", "LP/base"],
            rows,
            title="Figure 14b: thread scaling (normalized to base @ 1 thread)",
        ),
    )
    # shape: both scale; LP tracks base within a few percent everywhere
    for p in THREADS:
        ratio = results[p]["lp"].exec_cycles / results[p]["base"].exec_cycles
        assert ratio < 1.08, f"LP diverges from base at {p} threads"
    assert results[8]["base"].exec_cycles < results[1]["base"].exec_cycles / 3
