"""Figure 12: normalized execution time of LP and EagerRecompute for
all five benchmarks.

Paper: LP overheads range 0.1%-3.5% (avg 1.1%); EagerRecompute ranges
4.4%-17.9% (avg 9%).
"""

from repro.analysis.reporting import format_table, geomean

from bench_common import cached_run, cached_runs, record

WORKLOADS = ["tmm", "cholesky", "conv2d", "gauss", "fft"]

PAPER_RANGE = {"lp": (0.001, 0.035, 0.011), "ep": (0.044, 0.179, 0.09)}


def run_fig12():
    cached_runs([(n, v) for n in WORKLOADS for v in ("base", "lp", "ep")])
    return {
        name: {v: cached_run(name, v) for v in ("base", "lp", "ep")}
        for name in WORKLOADS
    }


def test_fig12_exec_time(benchmark):
    results = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    rows = []
    lp_ratios, ep_ratios = [], []
    for name in WORKLOADS:
        base = results[name]["base"]
        lp = results[name]["lp"].normalized_to(base)["exec_time"]
        ep = results[name]["ep"].normalized_to(base)["exec_time"]
        lp_ratios.append(lp)
        ep_ratios.append(ep)
        rows.append([name, round(lp, 3), round(ep, 3)])
    rows.append(
        ["gmean", round(geomean(lp_ratios), 3), round(geomean(ep_ratios), 3)]
    )
    record(
        "fig12_exec_time",
        format_table(
            ["benchmark", "LP exec", "EP exec"],
            rows,
            title=(
                "Figure 12: normalized execution time "
                "(paper: LP avg 1.011, EP avg 1.09)"
            ),
        ),
    )
    # shape: LP beats EP on every benchmark; LP average stays small
    for name, lp, ep in zip(WORKLOADS, lp_ratios, ep_ratios):
        assert lp < ep, f"{name}: LP must be cheaper than EP"
        assert lp < 1.12, f"{name}: LP overhead must stay small"
    assert geomean(lp_ratios) < 1.06
    assert geomean(ep_ratios) > geomean(lp_ratios)
