"""Write amplification of the persistent-storage family under every
composed persistency scheme (fig13-style, extended to the new axis).

The storage workloads split the scheme space the way real NVMM layouts
do: the append-only ``log`` never rewrites a line, so write-behind's
journal is pure overhead, while the update-heavy ``hashmap`` (few keys,
many puts) rewrites the same slots and write-behind's per-batch
coalescing must land *below* Eager Persistency's per-region flushes —
the committed claim ``tests/schemes/test_scheme_layer.py`` pins at
test scale and this bench documents at bench scale.
"""

from repro.analysis.reporting import format_table

from bench_common import (
    NUM_THREADS,
    SMOKE,
    bench_run,
    machine_config,
    record,
)
from repro.workloads.registry import get_workload

SCHEMES = ["base", "lp", "ep", "wal", "write_behind"]

#: Update-heavy hashmap (ops >> keys) so coalescing has work to do;
#: the log's append-only stream is the no-coalescing control.
STORAGE_SPECS = (
    {
        "log": dict(records=8, width=2, wb_batch=2),
        "hashmap": dict(capacity=8, ops=16, keys=3, wb_batch=4),
    }
    if SMOKE
    else {
        "log": dict(records=32, width=4, wb_batch=8),
        "hashmap": dict(capacity=16, ops=64, keys=4, wb_batch=8),
    }
)


def run_storage():
    return {
        name: {
            scheme: bench_run(
                get_workload(name)(**spec),
                machine_config(),
                scheme,
                num_threads=NUM_THREADS,
                drain=True,
            )
            for scheme in SCHEMES
        }
        for name, spec in STORAGE_SPECS.items()
    }


def test_storage_write_amp(benchmark):
    results = benchmark.pedantic(run_storage, rounds=1, iterations=1)
    rows = []
    for name in STORAGE_SPECS:
        base = results[name]["base"].total_writes
        row = [name, base]
        for scheme in SCHEMES[1:]:
            writes = results[name][scheme].total_writes
            ratio = writes / base if base else float("nan")
            row.append(f"{writes} ({ratio:.2f}x)")
        rows.append(row)
    record(
        "storage_write_amp",
        format_table(
            ["workload", "base writes"] + SCHEMES[1:],
            rows,
            title=(
                "Storage family: NVMM writes per scheme "
                "(write-behind coalesces the update-heavy hashmap "
                "well below EP; the append-only log sees only the "
                "smaller marker-amortization win)"
            ),
        ),
    )
    for name in STORAGE_SPECS:
        for scheme in SCHEMES:
            assert results[name][scheme].verified, (name, scheme)
    # The committed coalescing claim: on update-heavy traffic,
    # write-behind's one-flush-per-line-per-batch beats EP's
    # flush-per-region.
    assert (
        results["hashmap"]["write_behind"].total_writes
        < results["hashmap"]["ep"].total_writes
    )
    # The control: the log's append-only stream cannot coalesce data
    # lines, so write-behind's edge over EP there (batch-amortized
    # marker flushes only) must be strictly smaller than on the
    # hashmap, where slot rewrites coalesce too.
    gain = {
        name: results[name]["ep"].total_writes
        / results[name]["write_behind"].total_writes
        for name in STORAGE_SPECS
    }
    assert gain["hashmap"] > gain["log"]
