"""Table VI: structural-hazard events and L2 miss rate for TMM under
base, EP (EagerRecompute) and LP.

Paper values (normalized to base): EP MSHR 1.84x, FUI 21.57x, FUR
22.4x; raw FUW 31,109; L2MR base 0.01 -> EP 0.05, LP 0.02.  Our
in-order hazard proxies have different baselines (DESIGN.md section 4),
so the reproduction target is the *ordering*: EP >> LP ~= base on every
counter, and EP's L2 miss rate above base's.
"""

from repro.analysis.experiments import compare_variants
from repro.analysis.reporting import format_table

from bench_common import NUM_THREADS, engine_opts, machine_config, make_workload, record


def run_table6():
    return compare_variants(
        make_workload("tmm"),
        machine_config(),
        ["base", "ep", "lp"],
        num_threads=NUM_THREADS,
        **engine_opts(),
    )


def test_table6_hazards(benchmark):
    results = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    rows = []
    for scheme in ("base", "ep", "lp"):
        r = results[scheme]
        hz = r.hazards
        rows.append(
            [
                f"tmm+{scheme.upper()}" if scheme != "base" else "base (tmm)",
                hz["mshr"],
                hz["fui"],
                hz["fur"],
                hz["fuw"],
                round(r.l2_miss_rate, 3),
            ]
        )
    record(
        "table6_hazards",
        format_table(
            ["scheme", "MSHR", "FUI", "FUR", "FUW", "L2MR"],
            rows,
            title="Table VI: pipeline hazards and L2 miss rate",
        ),
    )

    base, ep, lp = (results[s] for s in ("base", "ep", "lp"))
    # ordering assertions (the paper's qualitative claim)
    assert ep.hazards["fui"] > 10 * max(base.hazards["fui"], 1)
    assert ep.hazards["fur"] > 2 * max(base.hazards["fur"], 1)
    assert lp.hazards["fui"] < ep.hazards["fui"] / 10
    assert ep.l2_miss_rate > base.l2_miss_rate
    assert abs(lp.l2_miss_rate - base.l2_miss_rate) < 0.05
