"""Simulator throughput: the timing-model pipeline's speed claims.

Two numbers justify the semantics/timing split:

* **Forward throughput** — simulated ops/second of the same workload
  under ``DetailedTiming`` (paper-faithful latencies),
  ``FastFunctional`` (+1-cycle costs, no structural hazards) on the
  full cache hierarchy, and on a cache-free **replay machine** (the
  semantics-only configuration crash checking uses).  Swapping the
  core timing model alone roughly breaks even — the hierarchy
  simulation dominates, and round-robin interleaving can even worsen
  simulated locality — which is exactly why the fast path drops the
  hierarchy too.
* **Crashcheck campaign wall-clock** — the end-to-end cost of a
  crash-state checking campaign.  The pre-pipeline checker verified
  every enumerated image with a full-machine recovery run (caches,
  coherence, persist tracking); the pipeline default verifies on
  cache-free replay machines under functional timing, which answers
  the same architectural question exactly.  The campaign must drop
  >= 3x wall-clock (the PR's acceptance bar); smoke sizes assert a
  relaxed floor because tiny campaigns amortize less fixed cost.

Timings here are real wall-clock, so the on-disk result cache is
deliberately bypassed: both campaign legs run ``check_variant``
directly.
"""

import time

from repro.analysis.crashlab import crash_plans_for
from repro.analysis.reporting import format_table
from repro.sim.config import tiny_machine
from repro.sim.machine import Machine
from repro.verify import EnumerationPlan, check_variant
from repro.workloads.tmm import TiledMatMul

from bench_common import (
    NUM_THREADS,
    SMOKE,
    machine_config,
    make_workload,
    record,
)

#: Forward modes: two timing models on the full machine, plus the
#: cache-free replay machine (always functional timing).
FORWARD_MODES = ("detailed", "functional", "replay")
FORWARD_WORKLOADS = ("tmm", "fft")

#: Crashcheck campaign shape (kept modest: two full campaign legs run
#: back-to-back, uncached).  Smoke halves everything again.
CAMPAIGN = (
    dict(workload=dict(n=8, bsize=4, kk_tiles=1), op_points=2,
         max_flush_points=4, samples=16)
    if SMOKE
    else dict(workload=dict(n=12, bsize=4), op_points=6,
              max_flush_points=10, samples=48)
)
SPEEDUP_FLOOR = 1.3 if SMOKE else 3.0


def forward_throughput():
    """Ops/second of one LP run per workload under each forward mode."""
    out = {}
    for name in FORWARD_WORKLOADS:
        for mode in FORWARD_MODES:
            workload = make_workload(name)
            if mode == "replay":
                machine = Machine(machine_config(), _replay=True)
            else:
                machine = Machine(machine_config().with_timing(mode))
            bound = workload.bind(machine, num_threads=NUM_THREADS)
            t0 = time.perf_counter()
            result = machine.run(bound.threads("lp"))
            elapsed = time.perf_counter() - t0
            assert bound.verify()
            out[(name, mode)] = (result.ops_executed, elapsed)
    return out


def campaign_times():
    """One crashcheck campaign, timed with full-machine recovery
    (the pre-pipeline behaviour) and with replay recovery (default)."""
    workload = TiledMatMul(**CAMPAIGN["workload"])
    config = tiny_machine()
    plan = EnumerationPlan(
        max_exhaustive_events=12, samples=CAMPAIGN["samples"], seed=0
    )
    plans = crash_plans_for(
        workload, config, "ep",
        op_points=CAMPAIGN["op_points"],
        max_flush_points=CAMPAIGN["max_flush_points"],
    )
    out = {}
    for replay in (False, True):
        t0 = time.perf_counter()
        report = check_variant(
            workload, config, "ep", plans, plan, replay=replay
        )
        elapsed = time.perf_counter() - t0
        assert report.ok
        out[replay] = (report.images_checked, elapsed)
    return out


def run_bench():
    return forward_throughput(), campaign_times()


def test_sim_throughput(benchmark):
    forward, campaign = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    rows = []
    data = {"forward": {}, "campaign": {}}
    for name in FORWARD_WORKLOADS:
        rates = {}
        for mode in FORWARD_MODES:
            ops, elapsed = forward[(name, mode)]
            rates[mode] = ops / elapsed
            data["forward"][f"{name}/{mode}"] = {
                "ops": ops, "seconds": round(elapsed, 3),
                "ops_per_sec": round(rates[mode]),
            }
        rows.append(
            [
                name,
                f"{rates['detailed'] / 1e3:.0f}k",
                f"{rates['functional'] / 1e3:.0f}k",
                f"{rates['replay'] / 1e3:.0f}k",
                f"{rates['replay'] / rates['detailed']:.2f}x",
            ]
        )
    forward_table = format_table(
        ["workload", "detailed ops/s", "functional ops/s",
         "replay ops/s", "replay speedup"],
        rows,
        title="Forward simulation throughput (lp, wall-clock)",
    )

    (images_full, t_full) = campaign[False]
    (images_fast, t_fast) = campaign[True]
    assert images_full == images_fast, "recovery mode must not change the space"
    speedup = t_full / t_fast
    campaign_table = format_table(
        ["recovery", "images", "seconds", "speedup"],
        [
            ["full machine (pre-pipeline)", images_full, f"{t_full:.2f}", ""],
            ["replay (default)", images_fast, f"{t_fast:.2f}",
             f"{speedup:.2f}x"],
        ],
        title="Crashcheck campaign wall-clock (tmm/ep, uncached)",
    )
    data["campaign"] = {
        "images": images_full,
        "full_recovery_seconds": round(t_full, 2),
        "replay_seconds": round(t_fast, 2),
        "speedup": round(speedup, 2),
        "floor": SPEEDUP_FLOOR,
    }

    record("sim_throughput", forward_table + "\n\n" + campaign_table, data)
    assert speedup >= SPEEDUP_FLOOR, (
        f"crashcheck replay speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
