"""Simulator throughput: the timing-model pipeline's speed claims.

Two numbers justify the semantics/timing split:

* **Forward throughput** — simulated ops/second of the same workload
  under ``DetailedTiming`` (paper-faithful latencies),
  ``FastFunctional`` (+1-cycle costs, no structural hazards) on the
  full cache hierarchy, and on a cache-free **replay machine** (the
  semantics-only configuration crash checking uses).  Swapping the
  core timing model alone roughly breaks even — the hierarchy
  simulation dominates, and round-robin interleaving can even worsen
  simulated locality — which is exactly why the fast path drops the
  hierarchy too.
* **Crashcheck campaign wall-clock** — the end-to-end cost of a
  crash-state checking campaign.  The pre-pipeline checker verified
  every enumerated image with a full-machine recovery run (caches,
  coherence, persist tracking); the pipeline default verifies on
  cache-free replay machines under functional timing, which answers
  the same architectural question exactly.  The campaign must drop
  >= 3x wall-clock (the PR's acceptance bar); smoke sizes assert a
  relaxed floor because tiny campaigns amortize less fixed cost.

A third number locks in the pre-decoded op-stream interpreter
(:mod:`repro.sim.opstream`): the ``stream`` forward mode replays the
same run from a recorded integer-coded stream and must beat the
generator replay loop by ``STREAM_SPEEDUP_FLOOR`` — and
``test_throughput_ratchet`` additionally holds the absolute stream
events/sec above a committed floor
(``benchmarks/baselines/throughput_floor.json``), ratcheted the same
way ``repro regress --update-baselines`` ratchets perf baselines (set
``REPRO_UPDATE_FLOOR=1`` to raise it to the measured rate; it never
lowers itself).  ``REPRO_FLOOR_SCALE`` multiplies the floor, which is
how CI proves the ratchet actually trips.

Timings here are real wall-clock, so the on-disk result cache is
deliberately bypassed: both campaign legs run ``check_variant``
directly and streams are recorded in-process.
"""

import json
import os
import time

from repro.analysis.crashlab import crash_plans_for
from repro.analysis.reporting import format_table
from repro.sim.config import tiny_machine
from repro.sim.machine import Machine
from repro.sim.opstream import record_stream
from repro.verify import EnumerationPlan, check_variant
from repro.workloads.tmm import TiledMatMul

from bench_common import (
    NUM_THREADS,
    SMOKE,
    machine_config,
    make_workload,
    record,
)

#: Forward modes: two timing models on the full machine, the cache-free
#: replay machine (always functional timing), and the op-stream
#: interpreter replaying a recorded stream on the same replay machine.
FORWARD_MODES = ("detailed", "functional", "replay", "stream")
FORWARD_WORKLOADS = ("tmm", "fft")

#: The op-stream interpreter must beat the generator replay loop by
#: this much on every forward workload.  Smoke streams are a few
#: thousand ops, so fixed per-run overhead (plan lookup, stats
#: writeback) amortizes far less; the full-size floor is the real bar.
STREAM_SPEEDUP_FLOOR = 3.0 if SMOKE else 10.0

#: Committed absolute floor for the ratchet job (see
#: ``test_throughput_ratchet``).
FLOOR_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "throughput_floor.json"
)

#: A ratchet update writes ``measured * RATCHET_MARGIN`` so normal
#: machine-to-machine and CI-runner variance stays above the floor.
#: Shared CI runners measure several times slower than a quiet dev
#: machine, so the margin is deliberately generous: the floor's job is
#: to catch the interpreter falling back toward generator-replay rates
#: (a ~100x cliff), not to police single-digit percentages.
RATCHET_MARGIN = 0.125

#: Crashcheck campaign shape (kept modest: two full campaign legs run
#: back-to-back, uncached).  Smoke halves everything again.
CAMPAIGN = (
    dict(workload=dict(n=8, bsize=4, kk_tiles=1), op_points=2,
         max_flush_points=4, samples=16)
    if SMOKE
    else dict(workload=dict(n=12, bsize=4), op_points=6,
              max_flush_points=10, samples=48)
)
SPEEDUP_FLOOR = 1.3 if SMOKE else 3.0


def _stream_throughput(workload, config, num_threads, runs=3):
    """Warm events/sec of the op-stream interpreter for one LP run.

    Records the stream once (an ordinary replay run), executes once to
    build the memoized plan — the state a cached stream reaches after
    its first use — then times ``runs`` executions on fresh machines
    and keeps the best (timer noise only adds).
    """
    recorder = Machine(config, _replay=True)
    bound = workload.bind(recorder, num_threads=num_threads)
    stream, _ = record_stream(recorder, bound.threads("lp"))

    def fresh():
        machine = Machine(config, _replay=True)
        return machine, workload.bind(machine, num_threads=num_threads)

    warm, _ = fresh()
    warm.run_stream(stream)

    best = float("inf")
    for _ in range(runs):
        machine, rebound = fresh()
        t0 = time.perf_counter()
        result = machine.run_stream(stream)
        best = min(best, time.perf_counter() - t0)
        assert rebound.verify()
    return result.ops_executed, best


def forward_throughput():
    """Ops/second of one LP run per workload under each forward mode."""
    out = {}
    for name in FORWARD_WORKLOADS:
        for mode in FORWARD_MODES:
            workload = make_workload(name)
            if mode == "stream":
                out[(name, mode)] = _stream_throughput(
                    workload, machine_config(), NUM_THREADS
                )
                continue
            if mode == "replay":
                machine = Machine(machine_config(), _replay=True)
            else:
                machine = Machine(machine_config().with_timing(mode))
            bound = workload.bind(machine, num_threads=NUM_THREADS)
            t0 = time.perf_counter()
            result = machine.run(bound.threads("lp"))
            elapsed = time.perf_counter() - t0
            assert bound.verify()
            out[(name, mode)] = (result.ops_executed, elapsed)
    return out


def campaign_times():
    """One crashcheck campaign, timed with full-machine recovery
    (the pre-pipeline behaviour) and with replay recovery (default)."""
    workload = TiledMatMul(**CAMPAIGN["workload"])
    config = tiny_machine()
    plan = EnumerationPlan(
        max_exhaustive_events=12, samples=CAMPAIGN["samples"], seed=0
    )
    plans = crash_plans_for(
        workload, config, "ep",
        op_points=CAMPAIGN["op_points"],
        max_flush_points=CAMPAIGN["max_flush_points"],
    )
    out = {}
    for replay in (False, True):
        t0 = time.perf_counter()
        report = check_variant(
            workload, config, "ep", plans, plan, replay=replay
        )
        elapsed = time.perf_counter() - t0
        assert report.ok
        out[replay] = (report.images_checked, elapsed)
    return out


def run_bench():
    return forward_throughput(), campaign_times()


def test_sim_throughput(benchmark):
    forward, campaign = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    rows = []
    data = {"forward": {}, "campaign": {}}
    for name in FORWARD_WORKLOADS:
        rates = {}
        for mode in FORWARD_MODES:
            ops, elapsed = forward[(name, mode)]
            rates[mode] = ops / elapsed
            data["forward"][f"{name}/{mode}"] = {
                "ops": ops, "seconds": round(elapsed, 3),
                "ops_per_sec": round(rates[mode]),
            }
        rows.append(
            [
                name,
                f"{rates['detailed'] / 1e3:.0f}k",
                f"{rates['functional'] / 1e3:.0f}k",
                f"{rates['replay'] / 1e3:.0f}k",
                f"{rates['stream'] / 1e3:.0f}k",
                f"{rates['stream'] / rates['replay']:.1f}x",
            ]
        )
        assert rates["stream"] >= STREAM_SPEEDUP_FLOOR * rates["replay"], (
            f"{name}: stream interpreter {rates['stream']:.0f} ev/s is "
            f"only {rates['stream'] / rates['replay']:.1f}x the generator "
            f"replay loop (floor {STREAM_SPEEDUP_FLOOR}x)"
        )
    forward_table = format_table(
        ["workload", "detailed ops/s", "functional ops/s",
         "replay ops/s", "stream ops/s", "stream speedup"],
        rows,
        title="Forward simulation throughput (lp, wall-clock)",
    )

    (images_full, t_full) = campaign[False]
    (images_fast, t_fast) = campaign[True]
    assert images_full == images_fast, "recovery mode must not change the space"
    speedup = t_full / t_fast
    campaign_table = format_table(
        ["recovery", "images", "seconds", "speedup"],
        [
            ["full machine (pre-pipeline)", images_full, f"{t_full:.2f}", ""],
            ["replay (default)", images_fast, f"{t_fast:.2f}",
             f"{speedup:.2f}x"],
        ],
        title="Crashcheck campaign wall-clock (tmm/ep, uncached)",
    )
    data["campaign"] = {
        "images": images_full,
        "full_recovery_seconds": round(t_full, 2),
        "replay_seconds": round(t_fast, 2),
        "speedup": round(speedup, 2),
        "floor": SPEEDUP_FLOOR,
    }

    record("sim_throughput", forward_table + "\n\n" + campaign_table, data)
    assert speedup >= SPEEDUP_FLOOR, (
        f"crashcheck replay speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )


# ----------------------------------------------------------------------
# absolute throughput ratchet (the CI `throughput-ratchet` job)
# ----------------------------------------------------------------------

#: Fixed tiny preset: always this size, regardless of REPRO_SMOKE, so
#: the committed floor means the same thing on every run of the job.
RATCHET_PRESET = dict(n=24, bsize=8)
RATCHET_THREADS = 2


def ratchet_measurement():
    """Warm stream events/sec on the fixed tiny preset (best of 5)."""
    return _stream_throughput(
        TiledMatMul(**RATCHET_PRESET),
        tiny_machine(),
        RATCHET_THREADS,
        runs=5,
    )


def test_throughput_ratchet():
    """The stream interpreter may only ever get faster.

    Fails when measured events/sec on the fixed preset drops below the
    committed floor.  ``REPRO_FLOOR_SCALE=<x>`` multiplies the floor
    (CI uses a large scale to prove the job trips);
    ``REPRO_UPDATE_FLOOR=1`` ratchets the committed floor up to
    ``measured * RATCHET_MARGIN`` when that is higher — it never goes
    down, mirroring ``repro regress --update-baselines``.
    """
    with open(FLOOR_PATH) as fh:
        baseline = json.load(fh)
    events, elapsed = ratchet_measurement()
    rate = events / elapsed

    if os.environ.get("REPRO_UPDATE_FLOOR", "") == "1":
        candidate = int(rate * RATCHET_MARGIN)
        if candidate > baseline["floor_events_per_sec"]:
            baseline["floor_events_per_sec"] = candidate
            baseline["measured_events_per_sec"] = int(rate)
            baseline["events"] = events
            with open(FLOOR_PATH, "w") as fh:
                json.dump(baseline, fh, indent=2)
                fh.write("\n")

    floor = baseline["floor_events_per_sec"] * float(
        os.environ.get("REPRO_FLOOR_SCALE", "1")
    )
    assert rate >= floor, (
        f"stream throughput {rate:,.0f} events/sec fell below the "
        f"committed floor {floor:,.0f} ({events} events in {elapsed:.4f}s); "
        "a real regression must be fixed, a deliberate slowdown must "
        "re-ratchet with REPRO_UPDATE_FLOOR=1"
    )
