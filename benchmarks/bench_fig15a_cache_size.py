"""Figure 15(a): LP's execution-time overhead vs L2 capacity.

Paper: 6.5% overhead with a 256KB L2, 0.2% at 512KB, 0.1% at 1MB, with
L2 miss rates 4% / 2% / 1.5%: a small cache makes the working set plus
checksums overflow, and also evicts dirty blocks too quickly for LP to
exploit.

This sweep uses a TMM whose working set sits *near* the sweep's cache
capacities (the paper's own regime at 256KB-1MB: miss rates of a few
percent, not a pure streaming regime) — at the streaming scale of the
other benches the capacity effect drowns in thrash noise, which
EXPERIMENTS.md records as a scaling deviation.
"""

from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep_l2_size
from repro.workloads.tmm import TiledMatMul

from bench_common import NUM_THREADS, engine_opts, machine_config, record

SIZES = [24 * 1024, 32 * 1024, 48 * 1024, 64 * 1024]


def run_fig15a():
    # bsize=4 makes the checksum table 4x larger relative to the
    # matrices (the paper's footprint knob), so the "working set +
    # checksums overflow the cache" effect is visible at the small end
    return sweep_l2_size(
        TiledMatMul(n=48, bsize=4),
        machine_config(),
        SIZES,
        variants=("base", "lp"),
        num_threads=NUM_THREADS,
        **engine_opts(),
    )


def test_fig15a_cache_size(benchmark):
    results = benchmark.pedantic(run_fig15a, rounds=1, iterations=1)
    rows = []
    overheads = {}
    for size in SIZES:
        base = results[size]["base"]
        lp = results[size]["lp"]
        overhead = lp.exec_cycles / base.exec_cycles
        overheads[size] = overhead
        rows.append(
            [
                f"{size // 1024}KB",
                round(overhead, 3),
                round(base.l2_miss_rate, 3),
                round(lp.l2_miss_rate, 3),
            ]
        )
    record(
        "fig15a_cache_size",
        format_table(
            ["L2", "LP exec", "base L2MR", "LP L2MR"],
            rows,
            title="Figure 15a: L2 capacity sensitivity of LP overhead",
        ),
    )
    # shape: the smallest cache hurts most; large caches make LP ~free
    assert overheads[SIZES[0]] > overheads[SIZES[-1]]
    assert overheads[SIZES[0]] > 1.04, "small-cache overhead must show"
    assert overheads[SIZES[-1]] < 1.03
    # miss rate decreases with capacity, and LP's exceeds base's when
    # the checksums contend for a small cache
    assert (
        results[SIZES[0]]["lp"].l2_miss_rate
        > results[SIZES[-1]]["lp"].l2_miss_rate
    )
    assert (
        results[SIZES[0]]["lp"].l2_miss_rate
        > results[SIZES[0]]["base"].l2_miss_rate
    )
