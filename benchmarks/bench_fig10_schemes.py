"""Figure 10: execution time and number of NVMM writes for the four
TMM schemes (base, +LP, +EP/EagerRecompute, +WAL), normalized to base.

Paper values: LP 1.002 / 1.003, EP 1.12 / 1.36, WAL 5.97 / 3.83.
"""

from repro.analysis.experiments import compare_variants
from repro.analysis.reporting import format_table

from bench_common import (
    NUM_THREADS,
    SMOKE,
    engine_opts,
    machine_config,
    make_workload,
    record,
)

PAPER = {
    "base": (1.00, 1.00),
    "lp": (1.002, 1.003),
    "ep": (1.12, 1.36),
    "wal": (5.97, 3.83),
}


def run_fig10():
    results = compare_variants(
        make_workload("tmm"),
        machine_config(),
        ["base", "lp", "ep", "wal"],
        num_threads=NUM_THREADS,
        **engine_opts(),
    )
    base = results["base"]
    rows = []
    for scheme in ("base", "lp", "ep", "wal"):
        norm = results[scheme].normalized_to(base)
        p_exec, p_writes = PAPER[scheme]
        rows.append(
            [
                f"tmm+{scheme.upper()}" if scheme != "base" else "base (tmm)",
                p_exec,
                round(norm["exec_time"], 3),
                p_writes,
                round(norm["num_writes"], 3),
            ]
        )
    return rows, results


def test_fig10_schemes(benchmark):
    rows, results = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    record(
        "fig10_schemes",
        format_table(
            ["scheme", "paper exec", "exec", "paper writes", "writes"],
            rows,
            title="Figure 10: TMM scheme comparison (normalized to base)",
        ),
    )
    lookup = {r[0]: r for r in rows}
    # shape assertions: who wins, by roughly what factor.  Smoke-size
    # inputs exaggerate every fixed overhead, so smoke runs only check
    # the ordering, not the paper's magnitudes.
    if SMOKE:
        assert lookup["tmm+LP"][2] < lookup["tmm+EP"][2], "LP beats EP"
        assert lookup["tmm+EP"][2] < lookup["tmm+WAL"][2], "EP beats WAL"
        assert lookup["tmm+EP"][4] > lookup["tmm+LP"][4], "EP writes > LP"
        return
    assert lookup["tmm+LP"][2] < 1.05, "LP exec overhead must be ~zero"
    assert lookup["tmm+LP"][4] < 1.05, "LP write overhead must be ~zero"
    assert 1.0 < lookup["tmm+EP"][2] < 1.5, "EP exec overhead is noticeable"
    assert lookup["tmm+EP"][4] > lookup["tmm+LP"][4], "EP writes > LP writes"
    assert lookup["tmm+WAL"][2] > 2.0, "WAL is by far the slowest"
    assert lookup["tmm+WAL"][4] > 2.0, "WAL writes the most"
