"""Unit tests for the checksum engines."""

import pytest

from repro.errors import ConfigError
from repro.core.checksum import (
    Adler32Checksum,
    ModularChecksum,
    ParallelChecksum,
    ParityChecksum,
    available_engines,
    get_engine,
    value_bits,
)

ALL_ENGINES = [ParityChecksum, ModularChecksum, Adler32Checksum, ParallelChecksum]


class TestValueBits:
    def test_deterministic(self):
        assert value_bits(1.5) == value_bits(1.5)

    def test_distinguishes_values(self):
        assert value_bits(1.0) != value_bits(2.0)

    def test_int_and_float_agree(self):
        assert value_bits(5) == value_bits(5.0)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
class TestEngineContract:
    def test_deterministic(self, engine_cls):
        e = engine_cls()
        vals = [1.0, 2.5, -3.0, 1e9]
        assert e.of_values(vals) == e.of_values(vals)

    def test_detects_single_change(self, engine_cls):
        e = engine_cls()
        vals = [1.0, 2.5, -3.0, 1e9]
        changed = [1.0, 2.5, -3.25, 1e9]
        assert e.of_values(vals) != e.of_values(changed)

    def test_detects_missing_trailing_value(self, engine_cls):
        # the archetypal LP failure: the last store never persisted and
        # recovery reads the initial 0.0 instead
        e = engine_cls()
        vals = [7.0, 8.0, 9.0]
        crashed = [7.0, 8.0, 0.0]
        assert e.of_values(vals) != e.of_values(crashed)

    def test_empty_region_valid(self, engine_cls):
        e = engine_cls()
        assert isinstance(e.of_values([]), int)

    def test_finalize_nonnegative(self, engine_cls):
        e = engine_cls()
        assert e.of_values([-1.0, -2.0]) >= 0

    def test_streaming_matches_batch(self, engine_cls):
        e = engine_cls()
        vals = [3.0, 1.0, 4.0, 1.0, 5.0]
        state = e.reset()
        for v in vals:
            state = e.update(state, v)
        assert e.finalize(state) == e.of_values(vals)


class TestParityWeakness:
    def test_parity_blind_to_cancelling_flips(self):
        """XORing the same mask into two elements is invisible to parity."""
        import struct

        def flip(v, mask):
            bits = struct.unpack("<Q", struct.pack("<d", v))[0]
            return struct.unpack("<d", struct.pack("<Q", bits ^ mask))[0]

        vals = [10.0, 20.0, 30.0]
        corrupted = [flip(vals[0], 0xFF), flip(vals[1], 0xFF), vals[2]]
        assert corrupted != vals
        assert ParityChecksum().of_values(vals) == ParityChecksum().of_values(
            corrupted
        )
        # the modular checksum catches this exact corruption
        assert ModularChecksum().of_values(vals) != ModularChecksum().of_values(
            corrupted
        )

    def test_parallel_catches_what_parity_misses(self):
        import struct

        def flip(v, mask):
            bits = struct.unpack("<Q", struct.pack("<d", v))[0]
            return struct.unpack("<d", struct.pack("<Q", bits ^ mask))[0]

        vals = [10.0, 20.0, 30.0]
        corrupted = [flip(vals[0], 0xF0), flip(vals[1], 0xF0), vals[2]]
        e = ParallelChecksum()
        assert e.of_values(vals) != e.of_values(corrupted)


class TestAdler32:
    def test_matches_zlib_for_byte_stream(self):
        """Our from-scratch Adler-32 agrees with zlib on raw bytes."""
        import struct
        import zlib

        e = Adler32Checksum()
        vals = [1.0, -2.0, 3.5]
        raw = b"".join(struct.pack("<d", v) for v in vals)
        assert e.of_values(vals) == zlib.adler32(raw)

    def test_order_sensitive(self):
        e = Adler32Checksum()
        assert e.of_values([1.0, 2.0]) != e.of_values([2.0, 1.0])


class TestCosts:
    def test_relative_costs_match_fig15b_ordering(self):
        # paper Figure 15b: parity 0.1% < modular 0.2% < adler ~1% <
        # parallel (mod+parity) 3.4%
        parity = ParityChecksum().flops_per_update
        modular = ModularChecksum().flops_per_update
        parallel = ParallelChecksum().flops_per_update
        adler = Adler32Checksum().flops_per_update
        assert parity < modular < adler < parallel


class TestRegistry:
    def test_all_registered(self):
        assert available_engines() == ["adler32", "modular", "parallel", "parity"]

    def test_get_engine(self):
        assert isinstance(get_engine("modular"), ModularChecksum)

    def test_unknown_engine(self):
        with pytest.raises(ConfigError):
            get_engine("crc-unobtainium")
