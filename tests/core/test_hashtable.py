"""Unit tests for the checksum hash table."""

import pytest

from repro.errors import ConfigError
from repro.core.checksum import ModularChecksum
from repro.core.hashtable import INVALID_CHECKSUM, ChecksumTable
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 2, hit_cycles=11.0),
        )
    )


def make_table(machine=None, dims=(4, 3, 2)):
    machine = machine or tiny_machine()
    return machine, ChecksumTable(machine, "cktab", dims, ModularChecksum())


class TestKeying:
    def test_collision_free(self):
        _, tab = make_table()
        seen = set()
        for i in range(4):
            for j in range(3):
                for t in range(2):
                    slot = tab.slot(i, j, t)
                    assert slot not in seen
                    seen.add(slot)
        assert seen == set(range(24))

    def test_key_arity_checked(self):
        _, tab = make_table()
        with pytest.raises(ConfigError):
            tab.slot(1, 2)

    def test_key_range_checked(self):
        _, tab = make_table()
        with pytest.raises(ConfigError):
            tab.slot(4, 0, 0)
        with pytest.raises(ConfigError):
            tab.slot(0, -1, 0)

    def test_bad_dims_rejected(self):
        m = tiny_machine()
        with pytest.raises(ConfigError):
            ChecksumTable(m, "bad", (0, 3), ModularChecksum())
        with pytest.raises(ConfigError):
            ChecksumTable(m, "bad2", (), ModularChecksum())


class TestInitialState:
    def test_slots_start_invalid(self):
        _, tab = make_table()
        assert not tab.is_committed(0, 0, 0)
        assert tab.persisted_checksum(0, 0, 0) == INVALID_CHECKSUM
        assert tab.committed_keys() == ()

    def test_invalid_slot_never_matches(self):
        _, tab = make_table()
        # an uncommitted region is inconsistent even for "empty" data
        assert not tab.matches([], 0, 0, 0)


class TestCommit:
    def test_lazy_commit_is_volatile_until_evicted(self):
        m, tab = make_table()
        ck = tab.engine.of_values([5.0, 6.0])
        m.run([tab.commit_lazy(ck, 1, 1, 1)])
        # still only in cache
        assert not tab.is_committed(1, 1, 1)
        m.drain()
        assert tab.is_committed(1, 1, 1)
        assert tab.matches([5.0, 6.0], 1, 1, 1)

    def test_eager_commit_is_durable_immediately(self):
        m, tab = make_table()
        ck = tab.engine.of_values([5.0, 6.0])
        m.run([tab.commit_eager(ck, 1, 1, 1)])
        assert tab.is_committed(1, 1, 1)  # no drain needed
        assert tab.matches([5.0, 6.0], 1, 1, 1)

    def test_matches_rejects_wrong_values(self):
        m, tab = make_table()
        ck = tab.engine.of_values([5.0, 6.0])
        m.run([tab.commit_eager(ck, 0, 0, 0)])
        assert not tab.matches([5.0, 7.0], 0, 0, 0)
        # order-insensitive sums may match
        assert not tab.matches([6.0, 5.0], 0, 0, 0) or True
        assert not tab.matches([5.0], 0, 0, 0)

    def test_committed_keys_lists_slots(self):
        m, tab = make_table()
        m.run([tab.commit_eager(123, 2, 1, 0)])
        assert tab.committed_keys() == (tab.slot(2, 1, 0),)


class TestFootprint:
    def test_size_matches_paper_shape(self):
        # (N/bsize) x (N/bsize) x P slots of one element each
        m = tiny_machine()
        tab = ChecksumTable(m, "t", (8, 8, 2), ModularChecksum())
        assert tab.num_slots == 128
        assert tab.size_bytes == 128 * 8
