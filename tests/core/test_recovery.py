"""Unit tests for the recovery drivers."""

from repro.core.recovery import (
    RecoveryReport,
    find_restart_frontier,
    partition_regions,
)


class TestFrontierScan:
    def test_finds_latest_consistent_major(self):
        # regions consistent through major 2, nothing at 3/4
        consistent = {(m, i) for m in range(3) for i in range(4)}
        frontier = find_restart_frontier(
            range(5), range(4), lambda m, i: (m, i) in consistent
        )
        assert frontier == 2

    def test_reverse_order_short_circuits(self):
        calls = []

        def probe(m, i):
            calls.append((m, i))
            return m == 4

        frontier = find_restart_frontier(range(5), range(3), probe)
        assert frontier == 4
        assert calls == [(4, 0)]  # stopped at the very first probe

    def test_none_when_nothing_consistent(self):
        assert find_restart_frontier(range(3), range(3), lambda m, i: False) is None

    def test_partial_major_still_counts(self):
        # only one region of major 1 persisted: frontier is still 1,
        # and its siblings get repaired (Figure 9's inner loop)
        frontier = find_restart_frontier(
            range(3), range(4), lambda m, i: (m, i) == (1, 2)
        )
        assert frontier == 1

    def test_report_populated(self):
        report = RecoveryReport()
        find_restart_frontier(
            range(3), range(2), lambda m, i: m == 0, report=report
        )
        assert report.frontier == 0
        assert report.regions_checked == 5  # (2,0)(2,1)(1,0)(1,1)(0,0)
        assert report.regions_consistent == 1


class TestPartition:
    def test_split(self):
        good, bad = partition_regions(range(6), lambda i: i % 2 == 0)
        assert good == [0, 2, 4]
        assert bad == [1, 3, 5]


class TestReport:
    def test_recomputed_fraction(self):
        r = RecoveryReport(regions_checked=10, regions_repaired=3)
        assert r.recomputed_fraction == 0.3

    def test_empty_fraction(self):
        assert RecoveryReport().recomputed_fraction == 0.0

    def test_notes(self):
        r = RecoveryReport()
        r.note("hello")
        assert r.notes == ["hello"]
