"""Unit tests for write-ahead-logging durable transactions (Figure 2)."""

import pytest

from repro.errors import ConfigError
from repro.core.wal import WriteAheadLog
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.isa import Fence, Flush
from repro.sim.machine import Machine


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 2, hit_cycles=11.0),
        )
    )


class TestTransaction:
    def test_commit_persists_all_writes(self):
        m = tiny_machine()
        data = m.alloc("data", 8)
        log = WriteAheadLog(m, "log", capacity=8)
        writes = [(data.addr(i), float(i + 1)) for i in range(4)]
        m.run([log.transaction(writes)])
        for i in range(4):
            assert m.persistent_value(data.addr(i)) == float(i + 1)
        assert not log.needs_recovery()

    def test_four_fence_sets(self):
        """Figure 2: four flush+fence sets per durable transaction."""
        m = tiny_machine()
        data = m.alloc("data", 8)
        log = WriteAheadLog(m, "log", capacity=8)
        ops = list(log.transaction([(data.addr(0), 1.0)]))
        assert sum(1 for o in ops if isinstance(o, Fence)) == 4
        assert sum(1 for o in ops if isinstance(o, Flush)) >= 4

    def test_capacity_enforced(self):
        m = tiny_machine()
        data = m.alloc("data", 8)
        log = WriteAheadLog(m, "log", capacity=2)
        with pytest.raises(ConfigError):
            list(log.transaction([(data.addr(i), 1.0) for i in range(3)]))

    def test_zero_capacity_rejected(self):
        m = tiny_machine()
        with pytest.raises(ConfigError):
            WriteAheadLog(m, "log", capacity=0)


class TestRecovery:
    def run_crash_at(self, at_op):
        m = tiny_machine()
        data = m.alloc_init("data", [10.0, 20.0, 30.0, 40.0])
        m.drain()
        log = WriteAheadLog(m, "log", capacity=8)
        writes = [(data.addr(i), 100.0 + i) for i in range(4)]
        result, post = run_with_crash(
            m, [log.transaction(writes)], CrashPlan(at_op=at_op)
        )
        return m, post, data, result

    def total_ops(self):
        m = tiny_machine()
        data = m.alloc_init("data", [10.0, 20.0, 30.0, 40.0])
        log = WriteAheadLog(m, "log", capacity=8)
        writes = [(data.addr(i), 100.0 + i) for i in range(4)]
        return len(list(log.transaction(writes)))

    @pytest.mark.parametrize("fraction", [0.15, 0.35, 0.55, 0.75, 0.95])
    def test_atomicity_at_any_crash_point(self, fraction):
        """After crash + rollback, data is all-old or all-new."""
        n_ops = self.total_ops()
        at_op = max(1, int(n_ops * fraction))
        m, post, data, result = self.run_crash_at(at_op)
        assert result.crashed

        post_log = WriteAheadLog.__new__(WriteAheadLog)
        post_log.__dict__.update(
            machine=post, capacity=8, region=post.region("log")
        )
        post.run([post_log.recovery_ops()]) if post_log.needs_recovery() else None

        values = [post.persistent_value(data.addr(i)) for i in range(4)]
        old = [10.0, 20.0, 30.0, 40.0]
        new = [100.0, 101.0, 102.0, 103.0]
        assert values in (old, new), f"non-atomic state {values} at op {at_op}"

    def test_recovery_noop_when_clean(self):
        m = tiny_machine()
        data = m.alloc("data", 4)
        log = WriteAheadLog(m, "log", capacity=4)
        m.run([log.transaction([(data.addr(0), 5.0)])])
        assert not log.needs_recovery()
        assert list(log.recovery_ops()) == []
