"""Unit tests for the section III-D checksum accuracy study."""

import pytest

from repro.errors import ConfigError
from repro.core.accuracy import run_error_injection
from repro.core.checksum import (
    Adler32Checksum,
    ModularChecksum,
    ParallelChecksum,
    ParityChecksum,
)


class TestStaleModel:
    @pytest.mark.parametrize(
        "engine_cls", [ModularChecksum, Adler32Checksum, ParallelChecksum]
    )
    def test_strong_engines_miss_nothing(self, engine_cls):
        res = run_error_injection(
            engine_cls(), region_size=64, trials=2000, error_model="stale", seed=1
        )
        assert res.missed == 0
        assert res.miss_probability == 0.0
        assert res.miss_probability_upper_bound <= 3.0 / 1000

    def test_result_bookkeeping(self):
        res = run_error_injection(
            ModularChecksum(), region_size=16, trials=100, seed=2
        )
        assert res.trials == 100
        assert res.engine == "modular"
        assert res.error_model == "stale"
        assert 0 <= res.degenerate <= 100


class TestPairedModel:
    def test_parity_misses_everything(self):
        res = run_error_injection(
            ParityChecksum(),
            region_size=32,
            trials=500,
            error_model="paired",
            seed=3,
        )
        # XOR parity is structurally blind to paired identical flips
        assert res.miss_probability == 1.0

    def test_modular_catches_paired_flips(self):
        res = run_error_injection(
            ModularChecksum(),
            region_size=32,
            trials=500,
            error_model="paired",
            seed=3,
        )
        assert res.miss_probability < 0.01

    def test_parallel_catches_paired_flips(self):
        res = run_error_injection(
            ParallelChecksum(),
            region_size=32,
            trials=500,
            error_model="paired",
            seed=3,
        )
        assert res.miss_probability < 0.01


class TestValidation:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            run_error_injection(ModularChecksum(), error_model="cosmic-rays")

    def test_deterministic_given_seed(self):
        a = run_error_injection(ParityChecksum(), trials=200, seed=7)
        b = run_error_injection(ParityChecksum(), trials=200, seed=7)
        assert (a.missed, a.degenerate) == (b.missed, b.degenerate)
