"""Property tests for the collision-free checksum table."""

from hypothesis import given, settings, strategies as st

from repro.core.checksum import ModularChecksum
from repro.core.hashtable import ChecksumTable
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine

dims_strategy = st.lists(
    st.integers(min_value=1, max_value=5), min_size=1, max_size=4
)


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 2, hit_cycles=11.0),
        )
    )


@given(dims_strategy)
@settings(max_examples=50, deadline=None)
def test_slot_mapping_is_a_bijection(dims):
    """Every key maps to a distinct slot and all slots are covered —
    the paper's "our design eliminates hash collisions"."""
    table = ChecksumTable(tiny_machine(), "t", dims, ModularChecksum())

    def all_keys(ds):
        if not ds:
            yield ()
            return
        for head in range(ds[0]):
            for rest in all_keys(ds[1:]):
                yield (head,) + rest

    slots = [table.slot(*key) for key in all_keys(tuple(dims))]
    assert sorted(slots) == list(range(table.num_slots))


@given(
    dims_strategy,
    st.lists(st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e9, max_value=1e9),
             min_size=1, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_eager_commit_then_match_roundtrip(dims, values):
    m = tiny_machine()
    table = ChecksumTable(m, "t", dims, ModularChecksum())
    key = tuple(0 for _ in dims)
    ck = table.engine.of_values(values)
    m.run([table.commit_eager(ck, *key)])
    assert table.matches(values, *key)
    # and a different value list must not match (unless checksum-equal)
    altered = [v + 1.0 for v in values]
    if table.engine.of_values(altered) != ck:
        assert not table.matches(altered, *key)
