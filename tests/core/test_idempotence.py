"""Tests for the idempotent-region analysis (section III-E)."""

import pytest

from repro.core.idempotence import (
    RegionFootprint,
    analyze_trace,
    classify_workload,
)
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Compute, Load, RegionMark, Store
from repro.sim.machine import Machine
from repro.sim.trace import Trace
from repro.workloads import get_workload


def machine(cores=2):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(8192, 4, hit_cycles=11.0),
        )
    )


class TestFootprint:
    def test_pure_producer_is_idempotent(self):
        fp = RegionFootprint("r")
        fp.observe(Load(64))
        fp.observe(Store(128, 1.0))
        assert fp.is_idempotent

    def test_read_then_write_violates(self):
        fp = RegionFootprint("r")
        fp.observe(Load(64))
        fp.observe(Store(64, 1.0))
        assert not fp.is_idempotent
        assert fp.overwritten_live_ins == {64}

    def test_write_then_read_is_fine(self):
        """Reading your own output is regenerated on re-execution."""
        fp = RegionFootprint("r")
        fp.observe(Store(64, 1.0))
        fp.observe(Load(64))
        assert fp.is_idempotent

    def test_counters(self):
        fp = RegionFootprint("r")
        fp.observe(Load(64))
        fp.observe(Store(64, 1.0))
        fp.observe(Store(72, 2.0))
        assert fp.loads == 1
        assert fp.store_ops == 2


class TestAnalyzeTrace:
    def make_trace(self, ops):
        t = Trace()
        t.events = [(op, None) for op in ops]
        return t

    def test_splits_at_marks(self):
        trace = self.make_trace(
            [
                RegionMark("r0"),
                Store(64, 1.0),
                RegionMark("r1"),
                Load(64),
                Store(64, 2.0),
            ]
        )
        report = analyze_trace(trace)
        assert [r.label for r in report.regions] == ["r0", "r1"]
        assert report.regions[0].is_idempotent
        assert not report.regions[1].is_idempotent
        assert not report.all_idempotent
        assert report.summary() == {
            "regions": 2,
            "idempotent": 1,
            "violating": 1,
        }

    def test_preamble_region(self):
        trace = self.make_trace([Store(64, 1.0), RegionMark("r0"), Load(64)])
        report = analyze_trace(trace)
        assert report.regions[0].label == "<preamble>"

    def test_compute_ops_ignored(self):
        trace = self.make_trace([RegionMark("r0"), Compute(4)])
        report = analyze_trace(trace)
        assert report.regions[0].loads == 0


class TestWorkloadClassification:
    """The analysis must reproduce the recovery-strategy split the
    workloads implement (docs/recovery.md)."""

    @pytest.mark.parametrize(
        "name,kwargs,expect_idempotent",
        [
            ("conv2d", dict(n=12, ksize=3, row_block=2), True),
            ("fft", dict(n=32), True),
            ("cholesky", dict(n=8, col_block=4), True),
            ("tmm", dict(n=16, bsize=8), False),
            ("gauss", dict(n=8, row_block=4), False),
        ],
    )
    def test_classification(self, name, kwargs, expect_idempotent):
        wl = get_workload(name)(**kwargs)
        report = classify_workload(wl, machine(), num_threads=1)
        assert report.regions, "no regions observed"
        assert report.all_idempotent == expect_idempotent, (
            f"{name}: expected all_idempotent={expect_idempotent}, "
            f"got {report.summary()}"
        )

    def test_tmm_violations_are_the_c_accumulations(self):
        wl = get_workload("tmm")(n=16, bsize=8)
        bound_probe = wl.bind(machine(), num_threads=1)
        c_addrs = set(bound_probe.c.region.element_addrs())

        wl2 = get_workload("tmm")(n=16, bsize=8)
        report = classify_workload(wl2, machine(), num_threads=1)
        for region in report.violating_regions:
            assert region.overwritten_live_ins <= c_addrs
