"""Unit tests for the LP runtime and region checksums."""

from repro.core.checksum import ModularChecksum
from repro.core.lazy import LPRuntime
from repro.core.region import RegionChecksum
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Compute, Store
from repro.sim.machine import Machine


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 2, hit_cycles=11.0),
        )
    )


class TestRegionChecksum:
    def test_update_charges_engine_cost(self):
        ck = RegionChecksum(ModularChecksum())
        ops = list(ck.update(5.0))
        assert len(ops) == 1
        assert isinstance(ops[0], Compute)
        assert ops[0].flops == ModularChecksum.flops_per_update

    def test_value_matches_engine(self):
        e = ModularChecksum()
        ck = RegionChecksum(e)
        for v in (1.0, 2.0, 3.0):
            list(ck.update(v))
        assert ck.value == e.of_values([1.0, 2.0, 3.0])

    def test_reset(self):
        ck = RegionChecksum(ModularChecksum())
        list(ck.update(1.0))
        ck.reset()
        assert ck.updates == 0
        assert ck.value == ModularChecksum().of_values([])

    def test_silent_update_equivalent(self):
        a = RegionChecksum(ModularChecksum())
        b = RegionChecksum(ModularChecksum())
        list(a.update(9.0))
        b.update_silent(9.0)
        assert a.value == b.value


class TestLPRuntime:
    def lp_kernel(self, lp, data_region, values, key):
        """A minimal LP region: store values, checksum them, commit."""
        ck = lp.begin_region()
        for i, v in enumerate(values):
            yield Store(data_region.addr(i), v)
            yield from ck.update(v)
        yield from lp.commit(ck, *key)

    def test_consistent_after_drain(self):
        m = tiny_machine()
        lp = LPRuntime(m, "tab", (2, 2), engine="modular")
        data = m.alloc("data", 8)
        vals = [3.0, 1.0, 4.0]
        m.run([self.lp_kernel(lp, data, vals, (0, 1))])
        m.drain()
        persisted = [m.persistent_value(data.addr(i)) for i in range(3)]
        assert lp.region_is_consistent(persisted, 0, 1)

    def test_inconsistent_after_crash_without_eviction(self):
        m = tiny_machine()
        lp = LPRuntime(m, "tab", (2, 2), engine="modular")
        data = m.alloc("data", 8)
        vals = [3.0, 1.0, 4.0]
        m.run([self.lp_kernel(lp, data, vals, (0, 1))])
        post = m.after_crash()  # nothing drained: all volatile
        persisted = [post.arch_value(data.addr(i)) for i in range(3)]
        assert not lp.region_is_consistent(persisted, 0, 1)
        assert not lp.region_committed(0, 1)

    def test_string_engine_resolution(self):
        m = tiny_machine()
        lp = LPRuntime(m, "tab", (2,), engine="parity")
        assert lp.engine.name == "parity"

    def test_space_overhead(self):
        m = tiny_machine()
        lp = LPRuntime(m, "tab", (8, 8), engine="modular")
        assert lp.space_overhead_bytes == 64 * 8

    def test_false_negative_region_r3(self):
        """Figure 6's R3: data persisted, checksum not -> flagged for
        (unnecessary but safe) recomputation."""
        m = tiny_machine()
        lp = LPRuntime(m, "tab", (2, 2), engine="modular")
        data = m.alloc("data", 8)

        def kernel():
            ck = lp.begin_region()
            for i, v in enumerate([3.0, 1.0, 4.0]):
                yield Store(data.addr(i), v)
                yield from ck.update(v)
            # persist the data but crash before the checksum commit
            from repro.core.eager import persist_region

            yield from persist_region([data.addr(i) for i in range(3)])
            yield from lp.commit(ck, 0, 0)

        m.run([kernel()])
        post = m.after_crash()
        persisted = [post.arch_value(data.addr(i)) for i in range(3)]
        assert persisted == [3.0, 1.0, 4.0]  # data survived
        assert not lp.region_is_consistent(persisted, 0, 0)  # but flagged
