"""Unit tests for the Eager Persistency helpers."""

from repro.core.eager import durable_store, lines_covering, persist_region
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Fence, Flush, Store
from repro.sim.machine import Machine


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 2, hit_cycles=11.0),
        )
    )


class TestLinesCovering:
    def test_dedupes_within_line(self):
        # eight 8B elements share one 64B line
        addrs = [64 + 8 * i for i in range(8)]
        assert lines_covering(addrs) == [64]

    def test_spans_lines(self):
        addrs = [64, 128, 136]
        assert lines_covering(addrs) == [64, 128]

    def test_preserves_first_seen_order(self):
        assert lines_covering([128, 64]) == [128, 64]


class TestPersistRegion:
    def test_one_flush_per_line_plus_fence(self):
        ops = list(persist_region([64, 72, 128]))
        flushes = [op for op in ops if isinstance(op, Flush)]
        fences = [op for op in ops if isinstance(op, Fence)]
        assert len(flushes) == 2
        assert len(fences) == 1
        assert isinstance(ops[-1], Fence)

    def test_persists_data(self):
        m = tiny_machine()
        r = m.alloc("a", 16)

        def kernel():
            for i in range(16):
                yield Store(r.addr(i), 2.0)
            yield from persist_region([r.addr(i) for i in range(16)])

        m.run([kernel()])
        assert m.read_region(r, persistent=True) == [2.0] * 16


class TestDurableStore:
    def test_sequence(self):
        ops = list(durable_store(64, 1.0))
        assert [type(o) for o in ops] == [Store, Flush, Fence]

    def test_durability(self):
        m = tiny_machine()
        r = m.alloc("a", 1)
        m.run([durable_store(r.base, 9.0)])
        assert m.persistent_value(r.base) == 9.0
