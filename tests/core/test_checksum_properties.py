"""Property-based tests for the checksum engines."""

import struct
import zlib

from hypothesis import given, settings, strategies as st

from repro.core.checksum import (
    Adler32Checksum,
    ModularChecksum,
    ParallelChecksum,
    ParityChecksum,
)

reasonable_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e12, max_value=1e12,
)
value_lists = st.lists(reasonable_floats, min_size=1, max_size=40)

ENGINES = [ParityChecksum, ModularChecksum, Adler32Checksum, ParallelChecksum]


@given(value_lists, st.integers(min_value=0, max_value=39), reasonable_floats)
@settings(max_examples=120, deadline=None)
def test_single_substitution_detected(values, index, replacement):
    """Any single changed value changes every engine's checksum —
    unless the replacement has the identical bit pattern."""
    index %= len(values)
    original_bits = struct.pack("<d", values[index])
    if struct.pack("<d", replacement) == original_bits:
        return
    corrupted = list(values)
    corrupted[index] = replacement
    for engine_cls in ENGINES:
        e = engine_cls()
        assert e.of_values(values) != e.of_values(corrupted), engine_cls.name


@given(value_lists)
@settings(max_examples=80, deadline=None)
def test_streaming_equals_batch(values):
    for engine_cls in ENGINES:
        e = engine_cls()
        state = e.reset()
        for v in values:
            state = e.update(state, v)
        assert e.finalize(state) == e.of_values(values)


@given(value_lists)
@settings(max_examples=80, deadline=None)
def test_adler_matches_zlib(values):
    raw = b"".join(struct.pack("<d", v) for v in values)
    assert Adler32Checksum().of_values(values) == zlib.adler32(raw)


@given(value_lists)
@settings(max_examples=80, deadline=None)
def test_truncation_detected(values):
    """Losing the tail of a region (the classic crash pattern where the
    last stores never persisted and read back as 0.0) is detected."""
    truncated = values[:-1] + [0.0]
    if truncated == values:
        return
    for engine_cls in ENGINES:
        e = engine_cls()
        assert e.of_values(values) != e.of_values(truncated), engine_cls.name


@given(value_lists)
@settings(max_examples=80, deadline=None)
def test_parallel_at_least_as_strong_as_parts(values):
    """If either the modular or parity component would detect a change,
    so does the parallel combination (its word embeds both)."""
    corrupted = [v + 1.0 for v in values]
    mod_detects = ModularChecksum().of_values(
        values
    ) != ModularChecksum().of_values(corrupted)
    par_detects = ParityChecksum().of_values(
        values
    ) != ParityChecksum().of_values(corrupted)
    combo_detects = ParallelChecksum().of_values(
        values
    ) != ParallelChecksum().of_values(corrupted)
    if mod_detects or par_detects:
        assert combo_detects


@given(value_lists)
@settings(max_examples=60, deadline=None)
def test_finalize_ranges(values):
    """Single codes fit 32 bits; the parallel combination fits 64."""
    for engine_cls in (ParityChecksum, ModularChecksum, Adler32Checksum):
        ck = engine_cls().of_values(values)
        assert 0 <= ck < (1 << 32)
    ck = ParallelChecksum().of_values(values)
    assert 0 <= ck < (1 << 64)
