"""Smoke tests for the example scripts (the fast ones).

Examples are user-facing documentation; they must keep running as the
API evolves.  Heavier examples are exercised implicitly through the
same analysis-layer entry points they call.
"""

import importlib.util
import pathlib


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_to_completion(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "OK: output durable and exact after crash + recovery" in out

    def test_crash_is_detected(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "region consistent after crash? False" in out


class TestExampleHygiene:
    def test_all_examples_have_main(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            source = path.read_text()
            assert "def main" in source, f"{path.name} lacks main()"
            assert '__name__ == "__main__"' in source, path.name

    def test_examples_documented_in_readme(self):
        readme = (EXAMPLES_DIR / "README.md").read_text()
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            assert path.name in readme, f"{path.name} missing from examples/README.md"
