"""Tests for the experiment runner."""

import pytest

from repro.errors import WorkloadError
from repro.analysis.experiments import compare_variants, run_variant
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads.tmm import TiledMatMul


def config(cores=3):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(1024, 2, hit_cycles=2.0),
        l2=CacheConfig(4096, 4, hit_cycles=11.0),
    )


def tmm():
    return TiledMatMul(n=16, bsize=8)


class TestRunVariant:
    def test_returns_metrics(self):
        res = run_variant(tmm(), config(), "lp", num_threads=2)
        assert res.workload == "tmm"
        assert res.variant == "lp"
        assert res.exec_cycles > 0
        assert res.verified
        assert set(res.hazards) == {"mshr", "fui", "fur", "fuw"}

    def test_verification_failure_raises(self):
        # sabotage: a workload whose verify() fails would raise; instead
        # check the wiring via verify=False not raising on a good run
        res = run_variant(tmm(), config(), "base", num_threads=1, verify=False)
        assert res.verified  # reported True when skipped

    def test_thread_count_validated(self):
        with pytest.raises(WorkloadError):
            run_variant(tmm(), config(cores=2), "lp", num_threads=4)

    def test_unknown_variant_rejected(self):
        with pytest.raises(WorkloadError):
            run_variant(tmm(), config(), "hyper", num_threads=1)

    def test_cleaner_period_counts_writes(self):
        res = run_variant(
            tmm(), config(), "lp", num_threads=2, cleaner_period=500.0
        )
        assert res.cleaner_writes > 0

    def test_normalized_to(self):
        base = run_variant(tmm(), config(), "base", num_threads=2)
        lp = run_variant(tmm(), config(), "lp", num_threads=2)
        norm = lp.normalized_to(base)
        assert norm["exec_time"] == pytest.approx(
            lp.exec_cycles / base.exec_cycles
        )


class TestCompareVariants:
    def test_runs_all(self):
        out = compare_variants(
            tmm(), config(), ["base", "lp"], num_threads=2
        )
        assert set(out) == {"base", "lp"}
        assert all(r.verified for r in out.values())
