"""Tests for the parallel experiment engine and its on-disk cache."""

import json
import os

import pytest

from repro.analysis.experiments import ExperimentResult, run_variant
from repro.analysis.runner import (
    Job,
    ResultCache,
    code_version,
    run_jobs,
    run_variant_cached,
    workload_from_spec,
    workload_spec,
)
from repro.errors import ConfigError
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads.tmm import TiledMatMul


def config(cores=3):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(1024, 2, hit_cycles=2.0),
        l2=CacheConfig(4096, 4, hit_cycles=11.0),
    )


def tmm(**kw):
    kw.setdefault("n", 16)
    kw.setdefault("bsize", 8)
    return TiledMatMul(**kw)


def jobs_for(variants=("base", "lp")):
    return [Job(tmm(), config(), v, num_threads=2) for v in variants]


class TestCacheKey:
    def test_stable_across_instances(self):
        assert jobs_for()[0].cache_key() == jobs_for()[0].cache_key()

    def test_sensitive_to_every_knob(self):
        base = Job(tmm(), config(), "lp", num_threads=2)
        different = [
            Job(tmm(n=24), config(), "lp", num_threads=2),
            Job(tmm(seed=8), config(), "lp", num_threads=2),
            Job(tmm(), config(cores=4), "lp", num_threads=2),
            Job(tmm(), config().with_l2_size(8192), "lp", num_threads=2),
            Job(tmm(), config(), "base", num_threads=2),
            Job(tmm(), config(), "lp", num_threads=1),
            Job(tmm(), config(), "lp", num_threads=2, engine="parity"),
            Job(tmm(), config(), "lp", num_threads=2, cleaner_period=100.0),
            Job(tmm(), config(), "lp", num_threads=2, drain=True),
        ]
        keys = {j.cache_key() for j in different}
        assert len(keys) == len(different)
        assert base.cache_key() not in keys

    def test_machine_config_cache_key_canonical(self):
        assert config().cache_key() == config().cache_key()
        assert config().cache_key() != config(cores=4).cache_key()
        assert "num_cores" in config().cache_key()

    def test_workload_spec_is_scalars(self):
        spec = workload_spec(tmm())
        assert spec["__name__"] == "tmm"
        assert spec["n"] == 16
        json.dumps(spec)  # JSON-safe by construction

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)


class TestWorkloadSpecRoundTrip:
    """workload_from_spec rebuilds exactly the workload a spec named."""

    def test_round_trips_every_registered_workload(self):
        from repro.workloads import available_workloads, get_workload

        params = {
            "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
            "fft": {"n": 16},
            "gauss": {"n": 8, "row_block": 4},
            "cholesky": {"n": 8, "col_block": 4},
            "conv2d": {"n": 8, "row_block": 2},
        }
        for name in available_workloads():
            workload = get_workload(name)(**params.get(name, {}))
            spec = workload_spec(workload)
            rebuilt = workload_from_spec(spec)
            assert type(rebuilt) is type(workload)
            assert workload_spec(rebuilt) == spec

    def test_derived_attributes_are_rederived_not_passed(self):
        # tmm's spec records the derived tile count; the constructor
        # does not accept it, so the round trip must re-derive it.
        spec = workload_spec(tmm(n=16, bsize=8))
        assert "tiles" in spec
        rebuilt = workload_from_spec(spec)
        assert rebuilt.tiles == tmm(n=16, bsize=8).tiles

    def test_rejects_specs_without_a_name(self):
        with pytest.raises(ConfigError):
            workload_from_spec({"n": 16})

    def test_rejects_unknown_workloads(self):
        with pytest.raises(Exception):
            workload_from_spec({"__name__": "nope"})

    def test_rejects_drifted_specs(self):
        # A stored spec whose parameters no longer reproduce themselves
        # (here: a stale derived attribute) must fail loudly instead of
        # silently measuring a different problem.
        spec = workload_spec(tmm(n=16, bsize=8))
        spec["tiles"] = 99
        with pytest.raises(ConfigError):
            workload_from_spec(spec)


class TestObsCacheIsolation:
    """Observability must never poison (or be served from) plain keys."""

    def test_obs_interval_changes_the_key(self):
        plain = Job(tmm(), config(), "lp", num_threads=2)
        sampled = Job(
            tmm(), config(), "lp", num_threads=2, obs_interval=500.0
        )
        other = Job(
            tmm(), config(), "lp", num_threads=2, obs_interval=1000.0
        )
        assert len(
            {plain.cache_key(), sampled.cache_key(), other.cache_key()}
        ) == 3

    def test_unsampled_key_matches_pre_observability_layout(self):
        # The pre-observability key layout must survive byte-for-byte,
        # or this PR would orphan every existing cache entry.
        import hashlib

        from repro.analysis.runner import CACHE_FORMAT_VERSION

        job = Job(tmm(), config(), "lp", num_threads=2)
        payload = json.dumps(
            {
                "workload": workload_spec(job.workload),
                "config": job.config.cache_key(),
                "variant": "lp",
                "num_threads": 2,
                "engine": "modular",
                "cleaner_period": None,
                "verify": True,
                "drain": False,
                "code": code_version(),
                "format": CACHE_FORMAT_VERSION,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        expected = hashlib.sha256(payload.encode()).hexdigest()
        assert job.cache_key() == expected

    def test_provenance_keying_mirrors_obs_interval(self):
        # Off (the default) leaves the key byte-identical to a plain
        # job — the pre-provenance pin above keeps holding — and on
        # moves the result under a distinct key.
        plain = Job(tmm(), config(), "lp", num_threads=2)
        off = Job(tmm(), config(), "lp", num_threads=2, provenance=False)
        on = Job(tmm(), config(), "lp", num_threads=2, provenance=True)
        assert off.cache_key() == plain.cache_key()
        assert on.cache_key() != plain.cache_key()

    def test_sampled_results_round_trip_through_the_cache(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        job = Job(tmm(), config(), "lp", num_threads=2, obs_interval=500.0)
        (first,) = run_jobs([job], cache=cache)
        assert first.intervals is not None
        assert first.intervals["num_buckets"] > 0
        (second,) = run_jobs([job], cache=cache)
        assert cache.stats.hits == 1
        assert second.intervals == first.intervals

    def test_plain_and_sampled_results_agree_on_metrics(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        (plain,) = run_jobs(
            [Job(tmm(), config(), "lp", num_threads=2)], cache=cache
        )
        (sampled,) = run_jobs(
            [Job(tmm(), config(), "lp", num_threads=2, obs_interval=500.0)],
            cache=cache,
        )
        assert plain.intervals is None
        assert plain.exec_cycles == sampled.exec_cycles
        assert plain.nvmm_writes == sampled.nvmm_writes
        assert plain.hazards == sampled.hazards


class TestSerialEngine:
    def test_matches_run_variant_exactly(self):
        direct = run_variant(tmm(), config(), "lp", num_threads=2)
        (engine,) = run_jobs([Job(tmm(), config(), "lp", num_threads=2)])
        assert engine == direct

    def test_order_preserved(self):
        results = run_jobs(jobs_for(("base", "lp", "ep")))
        assert [r.variant for r in results] == ["base", "lp", "ep"]

    def test_duplicate_jobs_simulated_once(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        results = run_jobs(jobs_for(("lp", "lp")), cache=cache)
        assert results[0] == results[1]
        assert cache.stats.stores == 1

    def test_rejects_bad_n_jobs(self):
        with pytest.raises(ConfigError):
            run_jobs(jobs_for(), n_jobs=0)


class TestParallelEngine:
    def test_bitwise_equal_to_serial(self):
        serial = run_jobs(jobs_for(("base", "lp", "ep")), n_jobs=1)
        parallel = run_jobs(jobs_for(("base", "lp", "ep")), n_jobs=2)
        assert serial == parallel  # full dataclass equality, every field

    def test_parallel_fills_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_jobs(jobs_for(), n_jobs=2, cache=cache)
        assert cache.stats.stores == 2
        rerun = ResultCache(str(tmp_path))
        results = run_jobs(jobs_for(), n_jobs=2, cache=rerun)
        assert rerun.stats.hits == 2 and rerun.stats.misses == 0
        assert [r.variant for r in results] == ["base", "lp"]


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = run_jobs(jobs_for(), cache=cache)
        assert cache.stats.misses == 2 and cache.stats.stores == 2
        second = run_jobs(jobs_for(), cache=cache)
        assert cache.stats.hits == 2
        assert first == second

    def test_hits_only_need_no_simulation(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        run_jobs(jobs_for(), cache=cache)
        monkeypatch.setattr(
            "repro.analysis.runner.run_variant",
            lambda *a, **k: pytest.fail("cache hit must not re-simulate"),
        )
        results = run_jobs(jobs_for(), cache=cache)
        assert [r.variant for r in results] == ["base", "lp"]

    def test_corrupted_entry_falls_back_to_rerun(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (good,) = run_jobs(jobs_for(("lp",)), cache=cache)
        key = jobs_for(("lp",))[0].cache_key()
        path = cache._path(key)
        with open(path, "w") as fh:
            fh.write("{ not json at all")
        fresh = ResultCache(str(tmp_path))
        (recovered,) = run_jobs(jobs_for(("lp",)), cache=fresh)
        assert recovered == good
        assert fresh.stats.corrupt == 1
        # the re-run rewrote a valid entry
        assert ResultCache(str(tmp_path)).get(key) == good

    def test_wrong_schema_entry_is_corrupt(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (good,) = run_jobs(jobs_for(("lp",)), cache=cache)
        key = jobs_for(("lp",))[0].cache_key()
        with open(cache._path(key), "r+") as fh:
            record = json.load(fh)
            record["result"]["not_a_field"] = 1
            fh.seek(0)
            json.dump(record, fh)
            fh.truncate()
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.stats.corrupt == 1

    def test_key_mismatch_is_corrupt(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (good,) = run_jobs(jobs_for(("lp",)), cache=cache)
        key = jobs_for(("lp",))[0].cache_key()
        other = "ab" + key[2:]
        os.makedirs(os.path.dirname(cache._path(other)), exist_ok=True)
        os.rename(cache._path(key), cache._path(other))
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(other) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_jobs(jobs_for(), cache=cache)
        assert cache.clear() == 2
        assert cache.get(jobs_for()[0].cache_key()) is None

    def test_run_variant_cached_wrapper(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        r1 = run_variant_cached(tmm(), config(), "lp", cache=cache,
                                num_threads=2)
        r2 = run_variant_cached(tmm(), config(), "lp", cache=cache,
                                num_threads=2)
        assert r1 == r2
        assert cache.stats.hits == 1


class TestResultRoundtrip:
    def test_to_from_dict_lossless(self):
        result = run_variant(tmm(), config(), "lp", num_threads=2, drain=True)
        clone = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone == result

    def test_from_dict_rejects_unknown_fields(self):
        result = run_variant(tmm(), config(), "base", num_threads=2)
        data = result.to_dict()
        data["bogus"] = 1
        with pytest.raises(KeyError):
            ExperimentResult.from_dict(data)


class TestCrashCheckJob:
    def make_job(self, **kw):
        from repro.analysis.runner import CrashCheckJob

        kw.setdefault("workload", TiledMatMul(n=8, bsize=4, kk_tiles=1))
        kw.setdefault("config", config())
        kw.setdefault("variant", "ep")
        kw.setdefault("crash_plans", ({"at_flush": 2}, {"at_op": 100}))
        kw.setdefault("max_exhaustive_events", 8)
        kw.setdefault("samples", 4)
        return CrashCheckJob(**kw)

    def test_run_returns_report(self):
        report = self.make_job().run()
        assert report.variant == "ep"
        assert len(report.points) == 2
        assert report.ok

    def test_cache_key_distinct_from_experiment_jobs(self):
        job = self.make_job()
        exp = Job(TiledMatMul(n=8, bsize=4, kk_tiles=1), config(), "ep")
        assert job.cache_key() != exp.cache_key()

    def test_cache_key_sensitive_to_plans_and_bounds(self):
        keys = {
            self.make_job().cache_key(),
            self.make_job(crash_plans=({"at_flush": 3},)).cache_key(),
            self.make_job(max_exhaustive_events=9).cache_key(),
            self.make_job(samples=5).cache_key(),
            self.make_job(seed=1).cache_key(),
            self.make_job(variant="lp").cache_key(),
        }
        assert len(keys) == 6

    def test_run_jobs_with_decode_roundtrips_cache(self, tmp_path):
        from repro.verify import CrashCheckReport

        cache = ResultCache(str(tmp_path))
        decode = CrashCheckReport.from_dict
        (first,) = run_jobs([self.make_job()], cache=cache, decode=decode)
        assert cache.stats.stores == 1
        (second,) = run_jobs([self.make_job()], cache=cache, decode=decode)
        assert cache.stats.hits == 1
        assert second.to_dict() == first.to_dict()

    def test_decode_mismatch_treated_as_corruption(self, tmp_path):
        # An ExperimentResult record must never decode as a crashcheck
        # report (or vice versa): the decoder rejects it, the engine
        # re-runs.
        from repro.verify import CrashCheckReport

        cache = ResultCache(str(tmp_path))
        (result,) = run_jobs(jobs_for(("lp",)), cache=cache)
        key = jobs_for(("lp",))[0].cache_key()
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(key, decode=CrashCheckReport.from_dict) is None
        assert fresh.stats.corrupt == 1
