"""The ``tier="stream"`` contract in run_variant and the runner.

Requesting the op-stream tier must either take it — batch-deriving
any requested observability (``obs_path == "stream"``) — or fall back
to the machine path with the *reason* surfaced on the result and
warned about.  Never a silent downgrade.  The runner side: ``Job``
carries the tier into its cache key (stream results must not alias
machine results), and ``run_jobs`` records harness telemetry spans.
"""

import dataclasses
import warnings

import pytest

from repro.analysis.experiments import (
    ExperimentResult,
    run_variant,
    stream_fallback_reason,
)
from repro.analysis.runner import (
    CacheStats,
    Job,
    ResultCache,
    RunTelemetry,
    collect_telemetry,
    run_jobs,
)
from repro.errors import ConfigError
from repro.obs import IntervalSampler, StallFlame, TraceRecorder, WriteHeatmap
from repro.sim.config import tiny_machine
from repro.workloads import get_workload

TINY = {"n": 8, "bsize": 4, "kk_tiles": 1}


def _wl():
    return get_workload("tmm")(**TINY)


class TestStreamTier:
    def test_stream_tier_derives_observability(self):
        result = run_variant(
            _wl(), tiny_machine(), "lp", num_threads=2,
            obs_interval=500.0, tier="stream",
        )
        assert result.obs_path == "stream"
        assert result.obs_fallback_reason is None
        assert result.intervals is not None
        assert result.heatmap is not None
        assert result.flame is not None
        # Replay-tier functional metrics: no caches, no NVMM traffic.
        assert result.nvmm_writes == 0
        assert result.verified

    def test_stream_tier_plain_run_reports_no_obs_path(self):
        result = run_variant(
            _wl(), tiny_machine(), "lp", num_threads=2, tier="stream"
        )
        assert result.obs_path is None
        assert result.intervals is None

    def test_machine_tier_reports_probe_bus_path(self):
        result = run_variant(
            _wl(), tiny_machine(), "lp", num_threads=2,
            obs_interval=500.0,
        )
        assert result.obs_path == "probe-bus"
        assert result.obs_fallback_reason is None

    def test_stream_tier_transplants_observers(self):
        recorder = TraceRecorder()
        sampler = IntervalSampler(500.0)
        heatmap = WriteHeatmap()
        flame = StallFlame(root="tmm/lp")
        result = run_variant(
            _wl(), tiny_machine(), "lp", num_threads=2,
            observers=[recorder, sampler, heatmap, flame],
            tier="stream",
        )
        assert result.obs_path == "stream"
        assert 0 < len(recorder.ops) <= result.ops_executed
        totals = sampler.totals()
        assert sum(
            v for k, v in totals.items() if k.startswith("ops.core")
        ) == result.ops_executed
        assert heatmap.to_dict()["regions"]
        assert flame.to_dict() is not None

    def test_invalid_tier_rejected(self):
        with pytest.raises(ConfigError):
            run_variant(
                _wl(), tiny_machine(), "lp", num_threads=2, tier="gpu"
            )


class TestStreamFallback:
    def _expect_fallback(self, match, **kwargs):
        with pytest.warns(RuntimeWarning, match="stream tier unavailable"):
            result = run_variant(
                _wl(), kwargs.pop("config", tiny_machine()), "lp",
                num_threads=2, obs_interval=500.0, tier="stream",
                **kwargs,
            )
        assert result.obs_path == "probe-bus"
        assert result.obs_fallback_reason is not None
        assert match in result.obs_fallback_reason
        return result

    def test_cleaner_falls_back_with_reason(self):
        self._expect_fallback("cleaner", cleaner_period=200.0)

    def test_drain_falls_back_with_reason(self):
        self._expect_fallback("drain", drain=True)

    def test_schedule_jitter_falls_back_with_reason(self):
        config = dataclasses.replace(tiny_machine(), schedule_jitter=2.0)
        self._expect_fallback("jitter", config=config)

    def test_underivable_observer_falls_back_with_reason(self):
        class Exotic:
            def on_event(self, event):
                pass

        with pytest.warns(RuntimeWarning, match="stream tier unavailable"):
            result = run_variant(
                _wl(), tiny_machine(), "lp", num_threads=2,
                observers=[Exotic()], tier="stream",
            )
        assert "Exotic" in (result.obs_fallback_reason or "")

    def test_fallback_reason_is_none_for_clean_points(self):
        assert stream_fallback_reason(_wl(), tiny_machine()) is None

    def test_machine_tier_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_variant(
                _wl(), tiny_machine(), "lp", num_threads=2,
                cleaner_period=200.0, drain=True,
            )


class TestJobTier:
    def test_tier_distinguishes_cache_keys(self):
        machine_job = Job(_wl(), tiny_machine(), "lp", num_threads=2)
        stream_job = Job(
            _wl(), tiny_machine(), "lp", num_threads=2, tier="stream"
        )
        assert machine_job.cache_key() != stream_job.cache_key()

    def test_default_tier_leaves_key_unchanged(self):
        # Key-stability contract: optional payload fields appear only
        # when non-default, so pre-existing cached machine results
        # survive the tier field's introduction.
        job = Job(_wl(), tiny_machine(), "lp", num_threads=2)
        explicit = Job(
            _wl(), tiny_machine(), "lp", num_threads=2, tier="machine"
        )
        assert job.cache_key() == explicit.cache_key()

    def test_stream_job_runs_through_the_engine(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = Job(
            _wl(), tiny_machine(), "lp", num_threads=2,
            obs_interval=500.0, tier="stream",
        )
        (first,) = run_jobs([job], n_jobs=1, cache=cache)
        assert first.obs_path == "stream"
        (second,) = run_jobs([job], n_jobs=1, cache=cache)
        assert cache.stats.hits == 1
        assert isinstance(second, ExperimentResult)
        assert second.to_dict() == first.to_dict()


class TestTelemetry:
    def _jobs(self):
        return [
            Job(_wl(), tiny_machine(), variant, num_threads=2)
            for variant in ("lp", "ep")
        ]

    def test_run_jobs_records_spans(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        telemetry = RunTelemetry()
        run_jobs(self._jobs(), n_jobs=1, cache=cache, telemetry=telemetry)
        assert [s["status"] for s in telemetry.spans] == ["run", "run"]
        assert telemetry.counts() == {"jobs": 2, "hits": 0, "runs": 2}
        assert telemetry.wall_clock_s > 0
        assert 0 < telemetry.utilization() <= 1.0
        assert [s["label"] for s in telemetry.spans] == ["tmm/lp", "tmm/ep"]
        for span in telemetry.spans:
            assert span["end_s"] >= span["start_s"] >= 0.0

    def test_cache_hits_recorded_as_hit_spans(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        telemetry = RunTelemetry()
        run_jobs(self._jobs(), n_jobs=1, cache=cache)
        run_jobs(self._jobs(), n_jobs=1, cache=cache, telemetry=telemetry)
        assert [s["status"] for s in telemetry.spans] == ["hit", "hit"]
        assert telemetry.cache is not None
        assert telemetry.cache["hits"] == 2

    def test_batches_accumulate_on_one_clock(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with collect_telemetry() as telemetry:
            for job in self._jobs():
                run_jobs([job], n_jobs=1, cache=cache)
        assert telemetry.counts()["jobs"] == 2
        starts = [s["start_s"] for s in telemetry.spans]
        assert starts == sorted(starts)

    def test_to_dict_round_trip_shape(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with collect_telemetry() as telemetry:
            run_jobs(self._jobs(), n_jobs=1, cache=cache)
        doc = telemetry.to_dict()
        assert doc["workers"] == 1
        assert len(doc["spans"]) == 2
        assert doc["summary"]["jobs"] == 2
        assert doc["cache"]["misses"] == 2

    def test_cache_stats_summary_format(self):
        stats = CacheStats(hits=3, misses=4)
        assert stats.summary() == "3/7 hits (42.9%)"
