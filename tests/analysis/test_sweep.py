"""Tests for the sensitivity-study sweep drivers."""

from repro.analysis.sweep import (
    cores_for_workers,
    sweep_checksum,
    sweep_cleaner_period,
    sweep_l2_size,
    sweep_nvmm_latency,
    sweep_threads,
)
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads.tmm import TiledMatMul


def config(cores=4):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(1024, 2, hit_cycles=2.0),
        l2=CacheConfig(4096, 4, hit_cycles=11.0),
    )


def tmm():
    return TiledMatMul(n=16, bsize=8)


class TestNVMMLatencySweep:
    def test_points_and_variants(self):
        out = sweep_nvmm_latency(
            tmm(),
            config(),
            latencies=[(120.0, 300.0), (300.0, 600.0)],
            variants=("base", "lp"),
            num_threads=2,
        )
        assert set(out) == {(120.0, 300.0), (300.0, 600.0)}
        assert set(out[(120.0, 300.0)]) == {"base", "lp"}

    def test_higher_latency_slower_base(self):
        out = sweep_nvmm_latency(
            tmm(),
            config(),
            latencies=[(60.0, 150.0), (600.0, 1200.0)],
            variants=("base",),
            num_threads=2,
        )
        assert (
            out[(600.0, 1200.0)]["base"].exec_cycles
            > out[(60.0, 150.0)]["base"].exec_cycles
        )


class TestCoresForWorkers:
    def test_reserves_master_core(self):
        # p workers always get p + 1 cores (the paper's 8-on-9 setup)
        assert cores_for_workers(8, config(cores=4)) == 9

    def test_never_shrinks_the_machine(self):
        assert cores_for_workers(1, config(cores=4)) == 4
        assert cores_for_workers(3, config(cores=4)) == 4
        assert cores_for_workers(4, config(cores=4)) == 5


class TestThreadSweep:
    def test_more_threads_faster(self):
        out = sweep_threads(tmm(), config(cores=4), [1, 2], variants=("base",))
        assert out[2]["base"].exec_cycles < out[1]["base"].exec_cycles

    def test_large_counts_get_enough_cores(self):
        out = sweep_threads(tmm(), config(cores=4), [8], variants=("base",))
        assert out[8]["base"].num_threads == 8


class TestEngineIntegration:
    def test_parallel_sweep_matches_serial(self):
        points = [(120.0, 300.0), (300.0, 600.0)]
        serial = sweep_nvmm_latency(
            tmm(), config(), points, variants=("base", "lp"), num_threads=2
        )
        parallel = sweep_nvmm_latency(
            tmm(), config(), points, variants=("base", "lp"), num_threads=2,
            n_jobs=2,
        )
        assert serial == parallel

    def test_sweep_through_disk_cache(self, tmp_path):
        from repro.analysis.runner import ResultCache

        cache = ResultCache(str(tmp_path))
        first = sweep_checksum(
            tmm(), config(), ["parity", "modular"], num_threads=2, cache=cache
        )
        second = sweep_checksum(
            tmm(), config(), ["parity", "modular"], num_threads=2, cache=cache
        )
        assert first == second
        assert cache.stats.hits == 2 and cache.stats.misses == 2


class TestL2Sweep:
    def test_sizes_run(self):
        out = sweep_l2_size(
            tmm(), config(), [2048, 4096], variants=("base",), num_threads=2
        )
        assert set(out) == {2048, 4096}


class TestChecksumSweep:
    def test_engines_run_and_verify(self):
        out = sweep_checksum(
            tmm(), config(), ["parity", "modular", "adler32"], num_threads=2
        )
        assert all(r.verified for r in out.values())

    def test_adler_slower_than_parity(self):
        out = sweep_checksum(
            tmm(), config(), ["parity", "adler32"], num_threads=2
        )
        assert out["adler32"].exec_cycles > out["parity"].exec_cycles


class TestCleanerSweep:
    def test_shorter_period_more_writes(self):
        out = sweep_cleaner_period(
            tmm(), config(), [200.0, 20000.0, None], num_threads=2
        )
        assert (
            out[200.0].nvmm_writes
            > out[20000.0].nvmm_writes
            >= out[None].nvmm_writes
        )
