"""Cache-key isolation across the scheme-layer refactor.

The on-disk result cache survives refactors only if the key schema is
stable: same field set, same workload specs, same serialization.  These
tests re-derive ``Job.cache_key`` by hand from its documented payload
— any accidental field addition, removal or rename breaks them — and
pin that the new scheme axis lands in the key the same way variants
always did (every scheme gets its own key; nothing else leaks in).
"""

import hashlib
import json

import pytest

from repro.analysis.runner import (
    CACHE_FORMAT_VERSION,
    Job,
    code_version,
    workload_from_spec,
    workload_spec,
)
from repro.errors import ConfigError
from repro.sim.config import tiny_machine
from repro.workloads import get_workload


def manual_key(job):
    """``Job.cache_key`` recomputed from its documented schema."""
    payload = {
        "workload": workload_spec(job.workload),
        "config": job.config.cache_key(),
        "variant": job.variant,
        "num_threads": job.num_threads,
        "engine": job.engine,
        "cleaner_period": job.cleaner_period,
        "verify": job.verify,
        "drain": job.drain,
        "code": code_version(),
        "format": CACHE_FORMAT_VERSION,
    }
    if job.obs_interval is not None:
        payload["obs_interval"] = job.obs_interval
    if job.provenance:
        payload["provenance"] = True
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


class TestKeySchemaStability:
    def test_kernel_job_key_matches_documented_schema(self):
        wl = get_workload("tmm")(n=8, bsize=4, kk_tiles=1)
        job = Job(wl, tiny_machine(), "lp", num_threads=2)
        assert job.cache_key() == manual_key(job)

    def test_storage_job_key_matches_documented_schema(self):
        wl = get_workload("hashmap")(capacity=8, ops=6, keys=3)
        for variant in ("base", "lp", "ep", "wal", "write_behind"):
            job = Job(wl, tiny_machine(), variant, num_threads=2)
            assert job.cache_key() == manual_key(job)

    def test_observability_fields_stay_conditional(self):
        wl = get_workload("log")(records=4, width=2)
        plain = Job(wl, tiny_machine(), "lp", num_threads=2)
        sampled = Job(
            wl, tiny_machine(), "lp", num_threads=2, obs_interval=500.0
        )
        tagged = Job(
            wl, tiny_machine(), "lp", num_threads=2, provenance=True
        )
        assert sampled.cache_key() == manual_key(sampled)
        assert tagged.cache_key() == manual_key(tagged)
        assert len({plain.cache_key(), sampled.cache_key(), tagged.cache_key()}) == 3


class TestWorkloadSpecs:
    def test_tmm_spec_golden(self):
        # Kernel specs must be untouched by the scheme layer: a spec
        # change re-keys (and so invalidates) every cached kernel run.
        wl = get_workload("tmm")(n=8, bsize=4, kk_tiles=1)
        assert workload_spec(wl) == {
            "__class__": "TiledMatMul",
            "__name__": "tmm",
            "bsize": 4,
            "checksum_org": "table",
            "eager_checksum": False,
            "granularity": "ii",
            "kk_tiles": 1,
            "n": 8,
            "repair": "scratch",
            "seed": 7,
            "tiles": 2,
        }

    def test_storage_specs_are_scalar_and_round_trip(self):
        for name, params in (
            ("log", {"records": 4, "width": 2, "seed": 3, "wb_batch": 2}),
            (
                "hashmap",
                {"capacity": 8, "ops": 6, "keys": 3, "seed": 5, "wb_batch": 2},
            ),
        ):
            wl = get_workload(name)(**params)
            spec = workload_spec(wl)
            rebuilt = workload_from_spec(spec)
            assert workload_spec(rebuilt) == spec

    def test_non_scalar_attrs_are_refused(self):
        wl = get_workload("log")(records=4, width=2)
        wl.extra = [1, 2, 3]
        with pytest.raises(ConfigError):
            workload_spec(wl)


class TestSchemeAxisKeysApart:
    def test_every_scheme_gets_its_own_key(self):
        wl = get_workload("hashmap")(capacity=8, ops=6, keys=3)
        keys = {
            variant: Job(wl, tiny_machine(), variant, num_threads=2).cache_key()
            for variant in ("base", "lp", "ep", "wal", "write_behind")
        }
        assert len(set(keys.values())) == len(keys)

    def test_wb_batch_is_part_of_the_identity(self):
        a = get_workload("hashmap")(capacity=8, ops=6, keys=3, wb_batch=2)
        b = get_workload("hashmap")(capacity=8, ops=6, keys=3, wb_batch=3)
        key_a = Job(a, tiny_machine(), "write_behind", 2).cache_key()
        key_b = Job(b, tiny_machine(), "write_behind", 2).cache_key()
        assert key_a != key_b

    def test_workloads_never_collide(self):
        log = get_workload("log")(records=4, width=2)
        hashmap = get_workload("hashmap")(capacity=8, ops=6, keys=3)
        assert (
            Job(log, tiny_machine(), "lp", 2).cache_key()
            != Job(hashmap, tiny_machine(), "lp", 2).cache_key()
        )
