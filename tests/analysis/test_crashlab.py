"""Tests for the crash-campaign driver."""

from repro.analysis.crashlab import run_crash_campaign
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads.conv2d import Conv2D
from repro.workloads.tmm import TiledMatMul


def config(cores=3):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(1024, 2, hit_cycles=2.0),
        l2=CacheConfig(4096, 4, hit_cycles=11.0),
    )


class TestCrashCampaign:
    def test_tmm_campaign_all_recover(self):
        campaign = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[3, 700, 2500],
            num_threads=2,
        )
        assert campaign.crashes >= 1
        assert campaign.all_recovered
        assert campaign.mean_recovery_ops() > 0

    def test_conv_campaign_all_recover(self):
        campaign = run_crash_campaign(
            Conv2D(n=12, ksize=3, row_block=2),
            config(),
            crash_points=[10, 900],
            num_threads=2,
        )
        assert campaign.all_recovered

    def test_late_crash_point_may_not_crash(self):
        campaign = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[10_000_000],
            num_threads=2,
        )
        assert campaign.crashes == 0
        assert campaign.trials[0].recovered_ok  # verified clean finish
        assert campaign.mean_recovery_ops() == 0.0

    def test_cleaner_bounds_recovery(self):
        slow = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[2500],
            num_threads=2,
        )
        fast = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[2500],
            num_threads=2,
            cleaner_period=500.0,
        )
        assert fast.all_recovered and slow.all_recovered
        assert (
            fast.trials[0].recovery_ops <= slow.trials[0].recovery_ops
        )
