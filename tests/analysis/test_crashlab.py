"""Tests for the crash-campaign driver."""

from repro.analysis.crashlab import run_crash_campaign
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads.conv2d import Conv2D
from repro.workloads.tmm import TiledMatMul


def config(cores=3):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(1024, 2, hit_cycles=2.0),
        l2=CacheConfig(4096, 4, hit_cycles=11.0),
    )


class TestCrashCampaign:
    def test_tmm_campaign_all_recover(self):
        campaign = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[3, 700, 2500],
            num_threads=2,
        )
        assert campaign.crashes >= 1
        assert campaign.all_recovered
        assert campaign.mean_recovery_ops() > 0

    def test_conv_campaign_all_recover(self):
        campaign = run_crash_campaign(
            Conv2D(n=12, ksize=3, row_block=2),
            config(),
            crash_points=[10, 900],
            num_threads=2,
        )
        assert campaign.all_recovered

    def test_late_crash_point_may_not_crash(self):
        campaign = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[10_000_000],
            num_threads=2,
        )
        assert campaign.crashes == 0
        assert campaign.trials[0].recovered_ok  # verified clean finish
        assert campaign.mean_recovery_ops() == 0.0

    def test_cleaner_bounds_recovery(self):
        slow = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[2500],
            num_threads=2,
        )
        fast = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[2500],
            num_threads=2,
            cleaner_period=500.0,
        )
        assert fast.all_recovered and slow.all_recovered
        assert (
            fast.trials[0].recovery_ops <= slow.trials[0].recovery_ops
        )


class TestAllRecoveredAccounting:
    def test_failed_verify_on_non_crashed_trial_counts(self):
        # Regression: a graceful (non-crashed) trial whose verify failed
        # used to be filtered out of all_recovered entirely.
        from repro.analysis.crashlab import CrashCampaignResult, CrashTrial

        campaign = CrashCampaignResult(
            workload="x",
            trials=[CrashTrial(10, False, False, 0, 0, 0.0)],
        )
        assert not campaign.all_recovered

    def test_failed_crashed_trial_counts(self):
        from repro.analysis.crashlab import CrashCampaignResult, CrashTrial

        campaign = CrashCampaignResult(
            workload="x",
            trials=[
                CrashTrial(10, True, True, 5, 3, 1.0),
                CrashTrial(20, True, False, 5, 3, 1.0),
            ],
        )
        assert not campaign.all_recovered


class TestVariantCampaigns:
    def test_ep_campaign_recovers_with_marker_recovery(self):
        campaign = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[700, 2500],
            num_threads=2,
            variant="ep",
        )
        assert campaign.crashes >= 1
        assert campaign.all_recovered

    def test_wal_campaign_recovers_with_log_rollback(self):
        campaign = run_crash_campaign(
            TiledMatMul(n=16, bsize=8),
            config(),
            crash_points=[700, 2500],
            num_threads=2,
            variant="wal",
        )
        assert campaign.crashes >= 1
        assert campaign.all_recovered


class TestCrashPlansFor:
    def test_grid_covers_ops_and_flush_boundaries(self):
        from repro.analysis.crashlab import crash_plans_for

        plans = crash_plans_for(
            TiledMatMul(n=8, bsize=4, kk_tiles=1), config(), "ep",
            op_points=4, max_flush_points=6,
        )
        op_plans = [p for p in plans if p.at_op is not None]
        flush_plans = [p for p in plans if p.at_flush is not None]
        assert len(op_plans) == 4
        assert 1 <= len(flush_plans) <= 6
        assert flush_plans[-1].at_flush >= flush_plans[0].at_flush

    def test_lp_has_no_flush_boundaries(self):
        from repro.analysis.crashlab import crash_plans_for

        plans = crash_plans_for(
            TiledMatMul(n=8, bsize=4, kk_tiles=1), config(), "lp",
            op_points=3,
        )
        assert all(p.at_flush is None for p in plans)
        assert len(plans) == 3

    def test_all_boundaries_kept_when_uncapped(self):
        from repro.analysis.crashlab import crash_plans_for

        plans = crash_plans_for(
            TiledMatMul(n=8, bsize=4, kk_tiles=1), config(), "ep",
            op_points=0, max_flush_points=None,
        )
        flushes = [p.at_flush for p in plans]
        assert flushes == list(range(1, len(flushes) + 1))


class TestCrashcheckCampaign:
    def test_campaign_runs_and_caches(self, tmp_path):
        from repro.analysis.crashlab import run_crashcheck_campaign
        from repro.analysis.runner import ResultCache

        kwargs = dict(
            op_points=2,
            max_flush_points=2,
            max_exhaustive_events=6,
            samples=4,
            num_threads=2,
        )
        workload = TiledMatMul(n=8, bsize=4, kk_tiles=1)
        cache = ResultCache(str(tmp_path))
        reports = run_crashcheck_campaign(
            workload, config(), ["lp", "ep"], cache=cache, **kwargs
        )
        assert set(reports) == {"lp", "ep"}
        assert all(r.ok for r in reports.values())
        assert cache.stats.stores == 2

        warm = ResultCache(str(tmp_path))
        again = run_crashcheck_campaign(
            workload, config(), ["lp", "ep"], cache=warm, **kwargs
        )
        assert warm.stats.hits == 2 and warm.stats.misses == 0
        assert again["ep"].to_dict() == reports["ep"].to_dict()

    def test_campaign_flags_broken_variant(self):
        from repro.analysis.crashlab import run_crashcheck_campaign

        reports = run_crashcheck_campaign(
            TiledMatMul(n=8, bsize=4, kk_tiles=1),
            config(),
            ["ep_nofence"],
            op_points=0,
            max_flush_points=12,
            max_exhaustive_events=10,
            samples=4,
            num_threads=2,
        )
        report = reports["ep_nofence"]
        assert not report.ok
        assert all(len(c.minimized_eids) >= 1 for c in report.counterexamples)
