"""Tests for reporting helpers."""

import pytest

from repro.analysis.reporting import format_table, geomean, normalize, paper_vs_measured


class TestNormalize:
    def test_ratio(self):
        assert normalize(12.0, 10.0) == 1.2

    def test_zero_base(self):
        assert normalize(5.0, 0.0) == float("inf")
        assert normalize(0.0, 0.0) == 1.0


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_matches_paper_style_average(self):
        overheads = [1.008, 1.011, 1.009, 1.021, 1.011]
        g = geomean(overheads)
        assert 1.0 < g < 1.03

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        s = format_table(["scheme", "exec"], [["lp", 1.002], ["ep", 1.12]])
        assert "scheme" in s
        assert "lp" in s and "1.002" in s

    def test_title(self):
        s = format_table(["a"], [[1]], title="Figure 10")
        assert s.splitlines()[0] == "Figure 10"

    def test_alignment_consistent(self):
        s = format_table(["x", "y"], [["aa", 1], ["b", 22]])
        lines = s.splitlines()
        assert len({len(line) for line in lines[0:1]}) == 1


class TestPaperVsMeasured:
    def test_ratio_column(self):
        s = paper_vs_measured({"lp": (1.002, 1.005)}, "exec")
        assert "lp" in s
        assert "1.002" in s and "1.005" in s
