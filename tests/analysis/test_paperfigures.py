"""Tests for the one-command reproduction facade."""

import pytest

from repro.errors import ConfigError
from repro.analysis.paperfigures import reproduce


class TestReproduce:
    def test_smoke_report_structure(self):
        report = reproduce(scale="smoke")
        assert "TMM schemes" in report
        assert "Crash recovery" in report
        assert "Checksum accuracy" in report
        assert "True" in report  # recovery exactness row

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            reproduce(scale="galactic")

    def test_cli_integration(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.md"
        rc = main(["reproduce", "--scale", "smoke", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "reproduction report" in out.read_text()
