"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def isolated_result_cache(tmp_path, monkeypatch):
    """Point the experiment result cache at a per-test directory.

    Keeps tests that exercise default-cache code paths (the CLI's
    ``sweep``/``compare`` commands) from writing under the user's real
    ``~/.cache``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))
