"""The scheme registry is the single source of truth for the variant
axis: names, soundness metadata, and the constants every other layer
(workloads, CLI, crashcheck routing) imports from it.
"""

import pytest

from repro.errors import WorkloadError
from repro.schemes import (
    SCHEME_BASE,
    SCHEME_EP,
    SCHEME_EP_NOFENCE,
    SCHEME_LP,
    SCHEME_WAL,
    SCHEME_WB_NOJOURNAL,
    SCHEME_WRITE_BEHIND,
    broken_scheme_names,
    composable_scheme_names,
    get_scheme,
    scheme_names,
    sound_scheme_names,
)


class TestNames:
    def test_every_scheme_registered(self):
        assert scheme_names() == [
            "base",
            "ep",
            "ep_nofence",
            "lp",
            "wal",
            "wb_nojournal",
            "write_behind",
        ]

    def test_sound_schemes(self):
        assert sound_scheme_names() == ["ep", "lp", "wal", "write_behind"]

    def test_broken_schemes(self):
        assert broken_scheme_names() == ["ep_nofence", "wb_nojournal"]

    def test_composable_schemes_exclude_native_ep_nofence(self):
        assert "ep_nofence" not in composable_scheme_names()
        assert "base" in composable_scheme_names()
        assert "write_behind" in composable_scheme_names()

    def test_unknown_scheme(self):
        with pytest.raises(WorkloadError):
            get_scheme("clwb_magic")

    def test_lookup_is_consistent_with_metadata(self):
        for name in scheme_names():
            scheme = get_scheme(name)
            assert scheme.name == name
            assert scheme.summary
            # Sound and broken are mutually exclusive verdicts.
            assert not (scheme.sound and scheme.broken)


class TestVariantConstants:
    def test_workload_layer_reuses_scheme_constants(self):
        # Satellite: the VARIANT_* names the workload layer exports are
        # the registry's strings, not parallel copies.
        from repro.workloads.base import (
            VARIANT_BASE,
            VARIANT_EP,
            VARIANT_LP,
            VARIANT_WAL,
        )

        assert VARIANT_BASE is SCHEME_BASE
        assert VARIANT_LP is SCHEME_LP
        assert VARIANT_EP is SCHEME_EP
        assert VARIANT_WAL is SCHEME_WAL

    def test_tmm_reuses_scheme_constants(self):
        from repro.workloads.tmm import VARIANT_EP_NOFENCE, VARIANT_WAL

        assert VARIANT_EP_NOFENCE is SCHEME_EP_NOFENCE
        assert VARIANT_WAL is SCHEME_WAL

    def test_scheme_strings_are_the_cli_variant_values(self):
        assert SCHEME_BASE == "base"
        assert SCHEME_LP == "lp"
        assert SCHEME_EP == "ep"
        assert SCHEME_WAL == "wal"
        assert SCHEME_WRITE_BEHIND == "write_behind"
        assert SCHEME_EP_NOFENCE == "ep_nofence"
        assert SCHEME_WB_NOJOURNAL == "wb_nojournal"


class TestNativeOnlySchemes:
    def test_ep_nofence_refuses_composition(self):
        scheme = get_scheme("ep_nofence")
        assert not scheme.composable
        with pytest.raises(WorkloadError):
            scheme.forward_threads(host=None)
        with pytest.raises(WorkloadError):
            scheme.recovery_threads(host=None)
