"""The composed scheme layer: forward protocols, declared-write
enforcement, and the write-behind coalescing win.

These tests drive the region-declared storage workloads through every
composable scheme on one machine and assert the layer's contracts: the
run verifies, lying bodies are rejected, and write-behind's per-batch
flushes beat Eager Persistency's per-region flushes on update-heavy
traffic.
"""

import pytest

from repro.analysis.experiments import run_variant
from repro.errors import WorkloadError
from repro.schemes import RegionDecl, composable_scheme_names
from repro.sim.config import tiny_machine
from repro.sim.machine import Machine
from repro.workloads import get_workload

SMALL = {
    "log": {"records": 4, "width": 2, "wb_batch": 2},
    "hashmap": {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2},
}


def run_forward(name, variant):
    wl = get_workload(name)(**SMALL[name])
    machine = Machine(tiny_machine())
    bound = wl.bind(machine, num_threads=2)
    machine.run(bound.threads(variant))
    return bound


@pytest.mark.parametrize("name", sorted(SMALL))
@pytest.mark.parametrize("variant", composable_scheme_names())
class TestForwardProtocols:
    def test_every_scheme_produces_exact_output(self, name, variant):
        assert run_forward(name, variant).verify()

    def test_wal_defers_architecturally(self, name, variant):
        # Under every scheme the *architectural* state agrees at the
        # end; what differs is the persist traffic, checked elsewhere.
        bound = run_forward(name, variant)
        assert bound.verify(persistent=False)


class TestDeclaredWriteEnforcement:
    def test_body_must_match_declared_writes(self):
        wl = get_workload("log")(**SMALL["log"])
        machine = Machine(tiny_machine())
        bound = wl.bind(machine, num_threads=1)
        decl = bound.plans[0][0]
        # Tamper with the declaration after binding: the body now
        # performs writes that disagree with it, and the scheme layer
        # must refuse to seal the region.
        bound.plans[0][0] = RegionDecl(
            seq=decl.seq,
            label=decl.label,
            writes=decl.writes[:-1] + ((decl.writes[-1][0], 99.0),),
        )
        with pytest.raises(WorkloadError):
            machine.run(bound.threads("ep"))

    def test_probe_disagreement_is_detected(self):
        wl = get_workload("hashmap")(**SMALL["hashmap"])
        machine = Machine(tiny_machine())
        bound = wl.bind(machine, num_threads=1)
        key, value, slot = bound.put_sequences[0][0]
        bound.put_sequences[0][0] = (key, value, (slot + 1) % wl.capacity)
        with pytest.raises(WorkloadError):
            machine.run(bound.threads("lp"))

    def test_plan_validation_rejects_shared_addresses(self):
        from repro.schemes import validate_plans

        decl_a = RegionDecl(seq=0, label="a", writes=((100, 1.0),))
        decl_b = RegionDecl(seq=0, label="b", writes=((100, 2.0),))
        with pytest.raises(WorkloadError):
            validate_plans("shared", [[decl_a], [decl_b]])

    def test_plan_validation_rejects_sparse_seq(self):
        from repro.schemes import validate_plans

        decl = RegionDecl(seq=3, label="late", writes=((100, 1.0),))
        with pytest.raises(WorkloadError):
            validate_plans("sparse", [[decl]])

    def test_plan_validation_rejects_empty_write_set(self):
        from repro.schemes import validate_plans

        decl = RegionDecl(seq=0, label="empty", writes=())
        with pytest.raises(WorkloadError):
            validate_plans("empty", [[decl]])


class TestWriteBehindCoalescing:
    def test_batching_beats_eager_on_update_heavy_traffic(self):
        # Few keys + many ops = regions rewriting the same slots, the
        # write-behind cache's coalescing case: one flush per distinct
        # line per batch instead of per region.  This is the committed
        # write-amplification claim (benchmarks/bench_storage_write_amp).
        wl = get_workload("hashmap")(capacity=16, ops=64, keys=4, wb_batch=8)
        config = tiny_machine()
        ep = run_variant(wl, config, "ep", num_threads=2)
        wb = run_variant(wl, config, "write_behind", num_threads=2)
        assert ep.verified and wb.verified
        assert wb.total_writes < ep.total_writes

    def test_append_only_log_gets_no_coalescing_win(self):
        # Append-only traffic never rewrites a line inside a batch, so
        # write-behind pays its journal for nothing — the family's
        # log-vs-in-place contrast.
        wl = get_workload("log")(records=16, width=4, wb_batch=4)
        config = tiny_machine()
        ep = run_variant(wl, config, "ep", num_threads=2)
        wb = run_variant(wl, config, "write_behind", num_threads=2)
        assert ep.verified and wb.verified
        assert wb.total_writes >= ep.total_writes
