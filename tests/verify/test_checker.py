"""Regression tests for the crash-state checker.

Sound persistency schemes — LP, eager-marker (ep), WAL — must recover
exact output on *every* reachable image at every crash point.  The
deliberately broken ``ep_nofence`` variant (marker persisted without
fencing the data it covers) must be flagged, with a minimized,
replayable counterexample.
"""

import pytest

from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan
from repro.verify import (
    Counterexample,
    CrashCheckReport,
    EnumerationPlan,
    check_variant,
    minimize_failure,
    plan_from_dict,
    plan_to_dict,
    replay_counterexample,
)
from repro.workloads.fft import FFT
from repro.workloads.tmm import TiledMatMul

PLAN = EnumerationPlan(max_exhaustive_events=12, samples=16, seed=0)


def small_tmm():
    # kk_tiles=1 so every pass over a tile is its last: a crash that
    # persists a tile's marker without its data can never be papered
    # over by a later repair pass.
    return TiledMatMul(n=8, bsize=4, kk_tiles=1)


def check(workload, variant, plans, plan=PLAN):
    return check_variant(workload, tiny_machine(), variant, plans, plan)


class TestSoundVariantsPass:
    def test_tmm_lp_passes_everywhere(self):
        report = check(
            small_tmm(), "lp",
            [CrashPlan(at_op=o) for o in (50, 200, 400, 600)],
        )
        assert report.ok
        assert report.images_checked > len(report.points)

    def test_tmm_ep_passes_at_persist_boundaries(self):
        report = check(
            small_tmm(), "ep",
            [CrashPlan(at_flush=n) for n in range(1, 13)],
        )
        assert report.ok
        # Persist boundaries must expose real reordering to check.
        assert any(p.images_checked > 1 for p in report.points)

    def test_tmm_wal_passes_at_persist_boundaries(self):
        report = check(
            small_tmm(), "wal",
            [CrashPlan(at_flush=n) for n in (2, 9, 16, 23)],
        )
        assert report.ok
        assert any(p.images_checked > 1 for p in report.points)

    def test_fft_ep_passes(self):
        report = check(
            FFT(n=16), "ep",
            [CrashPlan(at_op=o) for o in (40, 160, 320)]
            + [CrashPlan(at_flush=n) for n in (1, 3, 5)],
        )
        assert report.ok

    def test_fft_lp_passes(self):
        # WAL exists only for tmm; fft's non-eager coverage is lp.
        report = check(
            FFT(n=16), "lp",
            [CrashPlan(at_op=o) for o in (80, 240, 400)],
        )
        assert report.ok
        assert any(p.images_checked > 1 for p in report.points)


class TestBrokenVariantFlagged:
    @pytest.fixture(scope="class")
    def report(self):
        return check(
            small_tmm(), "ep_nofence",
            [CrashPlan(at_flush=n) for n in range(1, 13)],
        )

    def test_counterexample_found(self, report):
        assert not report.ok
        assert report.counterexamples

    def test_counterexample_is_minimized(self, report):
        cex = report.counterexamples[0]
        # The no-fence hole is a single unordered marker persist: the
        # shrinker must reduce the failure to exactly that one event.
        assert len(cex.minimized_eids) == 1
        assert set(cex.minimized_eids) <= set(cex.eids) or not cex.eids

    def test_counterexample_replays(self, report):
        cex = report.counterexamples[0]
        assert replay_counterexample(small_tmm(), tiny_machine(), cex)

    def test_counterexample_survives_serialization(self, report):
        cex = Counterexample.from_dict(report.counterexamples[0].to_dict())
        assert replay_counterexample(small_tmm(), tiny_machine(), cex)

    def test_report_roundtrips(self, report):
        clone = CrashCheckReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert not clone.ok
        assert clone.images_checked == report.images_checked


class TestPlanSerialization:
    @pytest.mark.parametrize(
        "plan",
        [
            CrashPlan(at_op=7),
            CrashPlan(at_cycle=12.5),
            CrashPlan(at_mark=3),
            CrashPlan(at_flush=9),
        ],
    )
    def test_roundtrip(self, plan):
        assert plan_from_dict(plan_to_dict(plan)) == plan


class TestMinimizeFailure:
    def test_shrinks_to_root_cause(self):
        from repro.sim.persist import CrashStateSpace, PersistEvent

        events = [
            PersistEvent(
                eid=i, line_addr=64 * (i + 1), kind="flush", core_id=0,
                time=float(i), values={8 * (i + 1): 1.0},
            )
            for i in range(5)
        ]
        space = CrashStateSpace(floor={}, events=events, edges=[(0, 1)])

        # Failure iff event 1 is present (which drags event 0 along).
        minimized = minimize_failure(
            space, frozenset(range(5)), lambda s: 1 in s
        )
        assert minimized == frozenset({0, 1})
