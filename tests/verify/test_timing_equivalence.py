"""Equivalence pins for the timing-model pipeline.

The semantics/timing split is only safe if the fast paths answer the
checker's questions exactly like the slow ones.  Three contracts are
pinned here:

* **Single-threaded crash spaces are timing-independent.**  With one
  core there is no interleaving for a model to change, so the
  reachable-image space at any crash point must be *identical* (by
  time-stripped :meth:`CrashStateSpace.signature`) under detailed and
  functional timing.
* **Multi-threaded verdicts agree.**  Different models legally expose
  different interleavings (functional round-robin keeps every core
  mid-flight), so spaces differ — but soundness verdicts must not:
  ``ep`` passes and ``ep_nofence`` is flagged under both.
* **Replay recovery is exact.**  Checking images on cache-free replay
  machines (the campaign default) must produce the same per-point
  verdicts and counterexamples as full-machine recovery runs, and
  ``Machine._run_replay``'s tight loop must be op-for-op equivalent to
  the general heap scheduler on the same replay machine — including
  barrier parking/release and free region marks.
"""

import pytest

from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan, run_to_crash_space
from repro.sim.isa import Barrier, Compute, Fence, Flush, RegionMark, Store
from repro.sim.machine import Machine
from repro.verify import EnumerationPlan, check_variant
from repro.workloads.tmm import TiledMatMul

PLAN = EnumerationPlan(max_exhaustive_events=12, samples=16, seed=0)
TIMINGS = ["detailed", "functional"]


def small_tmm():
    return TiledMatMul(n=8, bsize=4, kk_tiles=1)


def space_at(timing, plan, num_threads=1):
    config = tiny_machine().with_timing(timing)
    machine = Machine(config)
    bound = small_tmm().bind(machine, num_threads=num_threads)
    result, space = run_to_crash_space(machine, bound.threads("ep"), plan)
    assert result.crashed
    assert space is not None
    return space


class TestSingleThreadedSpacesIdentical:
    @pytest.mark.parametrize("at_op", [30, 150, 400])
    def test_same_signature_at_op_points(self, at_op):
        detailed = space_at("detailed", CrashPlan(at_op=at_op))
        functional = space_at("functional", CrashPlan(at_op=at_op))
        assert detailed.signature() == functional.signature()

    @pytest.mark.parametrize("at_flush", [1, 4, 9])
    def test_same_signature_at_persist_boundaries(self, at_flush):
        detailed = space_at("detailed", CrashPlan(at_flush=at_flush))
        functional = space_at("functional", CrashPlan(at_flush=at_flush))
        sig = detailed.signature()
        assert sig == functional.signature()
        # The boundary actually exposes reorderable events under both.
        assert detailed.num_events >= 1

    def test_signature_strips_times_but_not_structure(self):
        detailed = space_at("detailed", CrashPlan(at_flush=4))
        other = space_at("detailed", CrashPlan(at_flush=5))
        assert detailed.signature() != other.signature()


class TestMultiThreadedVerdictsAgree:
    @pytest.mark.parametrize("timing", TIMINGS)
    def test_ep_sound_under_both_models(self, timing):
        report = check_variant(
            small_tmm(),
            tiny_machine(),
            "ep",
            [CrashPlan(at_flush=n) for n in (2, 5, 8)],
            PLAN,
            timing=timing,
        )
        assert report.ok

    @pytest.mark.parametrize("timing", TIMINGS)
    def test_ep_nofence_flagged_under_both_models(self, timing):
        # Every persist boundary: the bug-exposing marker flush lands
        # at a different *global* flush index under each interleaving,
        # so a sparse grid could legitimately miss it for one model.
        report = check_variant(
            small_tmm(),
            tiny_machine(),
            "ep_nofence",
            [CrashPlan(at_flush=n) for n in range(1, 21)],
            PLAN,
            timing=timing,
        )
        assert not report.ok
        assert report.counterexamples


class TestReplayRecoveryIsExact:
    @pytest.mark.parametrize("variant", ["ep", "ep_nofence"])
    def test_same_verdicts_as_full_machine_recovery(self, variant):
        plans = [CrashPlan(at_flush=n) for n in range(1, 7)]
        reports = {
            replay: check_variant(
                small_tmm(), tiny_machine(), variant, plans, PLAN,
                replay=replay,
            )
            for replay in (True, False)
        }
        fast, full = reports[True], reports[False]
        assert [p.ok for p in fast.points] == [p.ok for p in full.points]
        assert fast.images_checked == full.images_checked
        assert len(fast.counterexamples) == len(full.counterexamples)
        for a, b in zip(fast.counterexamples, full.counterexamples):
            assert list(a.minimized_eids) == list(b.minimized_eids)
            assert a.image == b.image


def lumpy_thread(machine, tid, n):
    """Stores/flushes/fences with barrier-adjacent free marks; thread
    lengths differ so barrier parking order is exercised."""
    region = machine.region("data")
    for i in range(n):
        yield RegionMark(f"t{tid}:pre{i}")
        yield Store(region.base + 8 * ((tid * 7 + i) % 8), float(i))
        yield Compute(2)
        yield Flush(region.base + 8 * tid)
        if i % 2 == 0:
            yield Fence()
        yield RegionMark(f"t{tid}:post{i}")
        yield Barrier()
        yield RegionMark(f"t{tid}:after-barrier{i}")


class TestReplayLoopMatchesGeneralScheduler:
    def run_pair(self, num_threads=3, lengths=(5, 3, 4)):
        results = []
        states = []
        for force_general in (False, True):
            config = tiny_machine(num_cores=num_threads)
            machine = Machine(config, _replay=True)
            machine.alloc("data", 8)
            threads = [
                lumpy_thread(machine, tid, lengths[tid])
                for tid in range(num_threads)
            ]
            # A never-reached op limit disqualifies the tight loop and
            # routes the same replay machine through the heap scheduler.
            kwargs = {"op_limit": 10**9} if force_general else {}
            results.append(machine.run(threads, **kwargs))
            states.append(machine)
        return results, states

    def test_results_and_state_identical(self):
        (fast, general), (m_fast, m_general) = self.run_pair()
        assert fast.ops_executed == general.ops_executed
        assert fast.region_marks == general.region_marks
        assert fast.flush_ops == general.flush_ops
        assert fast.finished_threads == general.finished_threads
        assert not fast.crashed and not general.crashed
        assert m_fast.mem.arch == m_general.mem.arch
        assert m_fast.mem.persistent == m_general.mem.persistent
        for a, b in zip(m_fast.cores, m_general.cores):
            assert a.clock == b.clock
            assert a.stats.ops == b.stats.ops

    def test_tmm_recovery_generators_match(self):
        runs = []
        for force_general in (False, True):
            config = tiny_machine()
            machine = Machine(config)
            wl = small_tmm()
            bound = wl.bind(machine, num_threads=2)
            machine.run(bound.threads("ep"), crash_at_flush=5)
            post = machine.after_crash_with_image(
                machine.mem.persistent, replay=True
            )
            rebound = wl.bind(post, num_threads=2, create=False)
            kwargs = {"op_limit": 10**9} if force_general else {}
            result = post.run(rebound.recovery_threads_for("ep"), **kwargs)
            runs.append((result, post, rebound.verify()))
        (r_fast, m_fast, ok_fast), (r_gen, m_gen, ok_gen) = runs
        assert r_fast.ops_executed == r_gen.ops_executed
        assert m_fast.mem.arch == m_gen.mem.arch
        assert ok_fast and ok_gen
