"""Bit-identical pins for the op-stream interpreter.

The third execution tier (:meth:`Machine.run_stream
<repro.sim.machine.Machine.run_stream>` over a recorded
:mod:`repro.sim.opstream` stream) must be indistinguishable from
driving the original coroutines through the generator replay loop —
which is itself pinned against the general heap scheduler by
``test_timing_equivalence.py``.  For every registry workload x
base/lp/ep this compares, exactly:

* final architectural and persistent memory maps,
* every per-core :class:`CoreStats` field and every core clock,
* the :class:`MachineStats` summary (so ``nvmm_writes`` et al. stay
  zero on both replay paths),
* every :class:`RunResult` field.

Also pinned: the recording run itself is an unmodified replay run, and
re-executing a stream (memoized plan/init) changes nothing.

The persistency-model axis rides the same harness: every enumerable
model (:mod:`repro.sim.model`) must keep the three tiers bit-identical
— eADR-class models persist at store time through the one
``MemoryState.store`` entry point, which the op-stream interpreter's
vectorised final-image pass must reproduce exactly.  A Hypothesis
property extends the pin to arbitrary op soups and to the
``decode(encode())`` round-trip.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import MachineConfig
from repro.sim.isa import Compute, Fence, Flush, FlushWB, Load, Phase, RegionMark, Store
from repro.sim.machine import Machine
from repro.sim.model import enumerable_model_names
from repro.sim.opstream import encode_ops, record_stream
from repro.workloads.registry import get_workload

SPECS = {
    "tmm": dict(n=24, bsize=8),
    "cholesky": dict(n=24, col_block=8),
    "conv2d": dict(n=18, ksize=3, row_block=8),
    "gauss": dict(n=24, row_block=8, pivots=4),
    "fft": dict(n=256),
}
VARIANTS = ("base", "lp", "ep")
NUM_THREADS = 4
CONFIG = MachineConfig(num_cores=NUM_THREADS + 1)

RESULT_FIELDS = (
    "crashed",
    "ops_executed",
    "region_marks",
    "finished_threads",
    "total_threads",
    "flush_ops",
)


def bound_point(name, model="adr"):
    machine = Machine(CONFIG.with_model(model), _replay=True)
    bound = get_workload(name)(**SPECS[name]).bind(
        machine, num_threads=NUM_THREADS
    )
    return machine, bound


def assert_machines_identical(m_stream, m_gen, r_stream, r_gen):
    assert m_stream.mem.arch == m_gen.mem.arch
    assert m_stream.mem.persistent == m_gen.mem.persistent
    assert r_stream.stats.summary() == r_gen.stats.summary()
    for cid in range(len(m_gen.stats.per_core)):
        assert vars(r_stream.stats.per_core[cid]) == vars(
            r_gen.stats.per_core[cid]
        ), f"core {cid} stats"
        assert m_stream.cores[cid].clock == m_gen.cores[cid].clock, (
            f"core {cid} clock"
        )
    for field in RESULT_FIELDS:
        assert getattr(r_stream, field) == getattr(r_gen, field), field


@pytest.mark.parametrize("name", sorted(SPECS))
@pytest.mark.parametrize("variant", VARIANTS)
def test_stream_matches_generator_replay(name, variant):
    m_rec, b_rec = bound_point(name)
    stream, r_rec = record_stream(m_rec, b_rec.threads(variant))

    m_gen, b_gen = bound_point(name)
    r_gen = m_gen.run(b_gen.threads(variant))
    assert b_gen.verify()

    m_stream, b_stream = bound_point(name)
    r_stream = m_stream.run_stream(stream)
    assert b_stream.verify()

    assert_machines_identical(m_stream, m_gen, r_stream, r_gen)
    # the recording pass is itself an unmodified replay run
    assert_machines_identical(m_rec, m_gen, r_rec, r_gen)


def test_reexecution_is_stable():
    """A stream's memoized plan/init must not leak state between runs."""
    m_rec, b_rec = bound_point("tmm")
    stream, _ = record_stream(m_rec, b_rec.threads("lp"))

    m1, _ = bound_point("tmm")
    r1 = m1.run_stream(stream)
    m2, _ = bound_point("tmm")
    r2 = m2.run_stream(stream)

    assert_machines_identical(m2, m1, r2, r1)


def test_wal_variant_streams_exactly():
    """tmm's WAL variant (undo logging, extra flush traffic) too."""
    m_rec, b_rec = bound_point("tmm")
    stream, _ = record_stream(m_rec, b_rec.threads("wal"))
    m_gen, b_gen = bound_point("tmm")
    r_gen = m_gen.run(b_gen.threads("wal"))
    m_stream, _ = bound_point("tmm")
    r_stream = m_stream.run_stream(stream)
    assert_machines_identical(m_stream, m_gen, r_stream, r_gen)


# ----------------------------------------------------------------------
# the persistency-model axis
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model", [m for m in enumerable_model_names() if m != "adr"])
@pytest.mark.parametrize("variant", ("lp", "ep"))
def test_stream_matches_generator_replay_per_model(model, variant):
    """Every enumerable model keeps the two replay tiers bit-identical
    — in particular eADR/strict's store-time persistence must flow
    through the interpreter's vectorised final-image pass exactly as
    through MemoryState.store."""
    m_rec, b_rec = bound_point("tmm", model)
    stream, r_rec = record_stream(m_rec, b_rec.threads(variant))

    m_gen, b_gen = bound_point("tmm", model)
    r_gen = m_gen.run(b_gen.threads(variant))

    m_stream, _ = bound_point("tmm", model)
    r_stream = m_stream.run_stream(stream)

    assert_machines_identical(m_stream, m_gen, r_stream, r_gen)
    assert_machines_identical(m_rec, m_gen, r_rec, r_gen)


def test_store_time_persistence_reaches_the_stream_image():
    """Under eADR the stream interpreter's persistent map must match
    the generator tier's address-for-address (last-wins on every line,
    not just verified output regions)."""
    m_gen, b_gen = bound_point("tmm", "eadr")
    m_gen.run(b_gen.threads("base"))
    m_rec, b_rec = bound_point("tmm", "eadr")
    stream, _ = record_stream(m_rec, b_rec.threads("base"))
    m_stream, _ = bound_point("tmm", "eadr")
    m_stream.run_stream(stream)
    assert m_stream.mem.persistent == m_gen.mem.persistent
    assert m_gen.mem.persistent  # non-vacuous: stores did persist


# ----------------------------------------------------------------------
# property pins (Hypothesis)
# ----------------------------------------------------------------------

NUM_ELEMS = 16

op_strategy = st.tuples(
    st.sampled_from(["load", "store", "compute", "flush", "flushwb",
                     "fence", "mark", "phase"]),
    st.integers(min_value=0, max_value=NUM_ELEMS - 1),
    st.integers(min_value=1, max_value=100),
)
scripts = st.lists(
    st.lists(op_strategy, min_size=1, max_size=20),
    min_size=1,
    max_size=3,
)


def _script_ops(region, script):
    for kind, idx, value in script:
        addr = region.addr(idx)
        if kind == "load":
            yield Load(addr)
        elif kind == "store":
            yield Store(addr, float(value))
        elif kind == "compute":
            yield Compute(value, "work")
        elif kind == "flush":
            yield Flush(addr)
        elif kind == "flushwb":
            yield FlushWB(addr)
        elif kind == "fence":
            yield Fence()
        elif kind == "mark":
            yield RegionMark(f"m{value % 3}")
        else:
            yield Phase(f"p{value % 3}" if value % 2 else None)


@given(scripts)
@settings(max_examples=40, deadline=None)
def test_decode_is_the_exact_inverse_of_encode(script_set):
    """decode(encode(records)) == records for arbitrary op soups."""
    records = []
    for cid, script in enumerate(script_set):
        for op in _script_ops(_RoundTripRegion(), script):
            records.append((cid, op))
    stream = encode_ops(records, num_threads=len(script_set))
    assert stream.decode() == records


class _RoundTripRegion:
    """Address helper for the round-trip test (no machine needed)."""

    def addr(self, idx):
        return 1024 + idx * 8


@pytest.mark.parametrize("model", ("adr", "eadr", "epoch"))
@given(scripts)
@settings(max_examples=25, deadline=None)
def test_random_scripts_stream_identically_per_model(model, script_set):
    """Recorded random scripts replay bit-identically through the
    stream interpreter under every model class (baseline, store-time
    persistence, epoch ordering)."""

    def fresh():
        machine = Machine(
            MachineConfig(num_cores=len(script_set)).with_model(model),
            _replay=True,
        )
        region = machine.alloc("a", NUM_ELEMS)
        return machine, region

    m_rec, r_rec_region = fresh()
    stream, _ = record_stream(
        m_rec, [_script_ops(r_rec_region, s) for s in script_set]
    )

    m_gen, r_gen_region = fresh()
    r_gen = m_gen.run([_script_ops(r_gen_region, s) for s in script_set])

    m_stream, _ = fresh()
    r_stream = m_stream.run_stream(stream)

    assert_machines_identical(m_stream, m_gen, r_stream, r_gen)
