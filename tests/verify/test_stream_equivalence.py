"""Bit-identical pins for the op-stream interpreter.

The third execution tier (:meth:`Machine.run_stream
<repro.sim.machine.Machine.run_stream>` over a recorded
:mod:`repro.sim.opstream` stream) must be indistinguishable from
driving the original coroutines through the generator replay loop —
which is itself pinned against the general heap scheduler by
``test_timing_equivalence.py``.  For every registry workload x
base/lp/ep this compares, exactly:

* final architectural and persistent memory maps,
* every per-core :class:`CoreStats` field and every core clock,
* the :class:`MachineStats` summary (so ``nvmm_writes`` et al. stay
  zero on both replay paths),
* every :class:`RunResult` field.

Also pinned: the recording run itself is an unmodified replay run, and
re-executing a stream (memoized plan/init) changes nothing.
"""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.opstream import record_stream
from repro.workloads.registry import get_workload

SPECS = {
    "tmm": dict(n=24, bsize=8),
    "cholesky": dict(n=24, col_block=8),
    "conv2d": dict(n=18, ksize=3, row_block=8),
    "gauss": dict(n=24, row_block=8, pivots=4),
    "fft": dict(n=256),
}
VARIANTS = ("base", "lp", "ep")
NUM_THREADS = 4
CONFIG = MachineConfig(num_cores=NUM_THREADS + 1)

RESULT_FIELDS = (
    "crashed",
    "ops_executed",
    "region_marks",
    "finished_threads",
    "total_threads",
    "flush_ops",
)


def bound_point(name):
    machine = Machine(CONFIG, _replay=True)
    bound = get_workload(name)(**SPECS[name]).bind(
        machine, num_threads=NUM_THREADS
    )
    return machine, bound


def assert_machines_identical(m_stream, m_gen, r_stream, r_gen):
    assert m_stream.mem.arch == m_gen.mem.arch
    assert m_stream.mem.persistent == m_gen.mem.persistent
    assert r_stream.stats.summary() == r_gen.stats.summary()
    for cid in range(len(m_gen.stats.per_core)):
        assert vars(r_stream.stats.per_core[cid]) == vars(
            r_gen.stats.per_core[cid]
        ), f"core {cid} stats"
        assert m_stream.cores[cid].clock == m_gen.cores[cid].clock, (
            f"core {cid} clock"
        )
    for field in RESULT_FIELDS:
        assert getattr(r_stream, field) == getattr(r_gen, field), field


@pytest.mark.parametrize("name", sorted(SPECS))
@pytest.mark.parametrize("variant", VARIANTS)
def test_stream_matches_generator_replay(name, variant):
    m_rec, b_rec = bound_point(name)
    stream, r_rec = record_stream(m_rec, b_rec.threads(variant))

    m_gen, b_gen = bound_point(name)
    r_gen = m_gen.run(b_gen.threads(variant))
    assert b_gen.verify()

    m_stream, b_stream = bound_point(name)
    r_stream = m_stream.run_stream(stream)
    assert b_stream.verify()

    assert_machines_identical(m_stream, m_gen, r_stream, r_gen)
    # the recording pass is itself an unmodified replay run
    assert_machines_identical(m_rec, m_gen, r_rec, r_gen)


def test_reexecution_is_stable():
    """A stream's memoized plan/init must not leak state between runs."""
    m_rec, b_rec = bound_point("tmm")
    stream, _ = record_stream(m_rec, b_rec.threads("lp"))

    m1, _ = bound_point("tmm")
    r1 = m1.run_stream(stream)
    m2, _ = bound_point("tmm")
    r2 = m2.run_stream(stream)

    assert_machines_identical(m2, m1, r2, r1)


def test_wal_variant_streams_exactly():
    """tmm's WAL variant (undo logging, extra flush traffic) too."""
    m_rec, b_rec = bound_point("tmm")
    stream, _ = record_stream(m_rec, b_rec.threads("wal"))
    m_gen, b_gen = bound_point("tmm")
    r_gen = m_gen.run(b_gen.threads("wal"))
    m_stream, _ = bound_point("tmm")
    r_stream = m_stream.run_stream(stream)
    assert_machines_identical(m_stream, m_gen, r_stream, r_gen)
