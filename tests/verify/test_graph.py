"""Property-based tests for order-ideal enumeration.

The enumerator's correctness claim is combinatorial: the reachable
post-crash images are exactly the order ideals (downward-closed
subsets) of the persist-order DAG, and the number of order ideals of a
poset equals its number of antichains.  These tests cross-check both
against independent brute-force implementations on random DAGs.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.verify.graph import (
    count_ideals,
    is_ideal,
    iter_ideals,
    sample_ideals,
    topo_order,
)


@st.composite
def dags(draw, max_nodes=7):
    """Random DAGs: nodes 0..n-1, edges only low -> high (acyclic)."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    nodes = list(range(n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if pairs:
        edges = draw(st.lists(st.sampled_from(pairs), unique=True))
    else:
        edges = []
    return nodes, edges


def transitive_preds(nodes, edges):
    """Independent closure: node -> every node reachable backwards."""
    preds = {n: set() for n in nodes}
    for before, after in edges:
        preds[after].add(before)
    changed = True
    while changed:
        changed = False
        for n in nodes:
            extra = set()
            for p in preds[n]:
                extra |= preds[p]
            if not extra <= preds[n]:
                preds[n] |= extra
                changed = True
    return preds


def brute_force_ideals(nodes, edges):
    """All downward-closed subsets, via powerset + transitive closure."""
    preds = transitive_preds(nodes, edges)
    out = set()
    for r in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, r):
            chosen = set(combo)
            if all(preds[n] <= chosen for n in chosen):
                out.add(frozenset(chosen))
    return out


def brute_force_antichains(nodes, edges):
    """All subsets with no two comparable elements."""
    preds = transitive_preds(nodes, edges)
    count = 0
    for r in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, r):
            chosen = set(combo)
            if all(not (preds[a] & chosen) for a in chosen):
                count += 1
    return count


class TestTopoOrder:
    def test_respects_edges_and_is_deterministic(self):
        nodes = [3, 1, 2, 0]
        edges = [(3, 1), (2, 0)]
        order = topo_order(nodes, edges)
        assert order.index(3) < order.index(1)
        assert order.index(2) < order.index(0)
        assert order == topo_order(nodes, edges)

    def test_cycle_rejected(self):
        with pytest.raises(ConfigError):
            topo_order([0, 1], [(0, 1), (1, 0)])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ConfigError):
            topo_order([0, 1], [(0, 9)])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigError):
            topo_order([0, 0, 1], [])


class TestIterIdeals:
    def test_chain_counts(self):
        # A chain of n events has n+1 ideals (its prefixes).
        nodes = [0, 1, 2, 3]
        edges = [(0, 1), (1, 2), (2, 3)]
        ideals = list(iter_ideals(nodes, edges))
        assert len(ideals) == 5
        assert count_ideals(nodes, edges) == 5
        assert all(i == frozenset(range(len(i))) for i in ideals)

    def test_independent_events_give_powerset(self):
        nodes = [0, 1, 2]
        ideals = set(iter_ideals(nodes, []))
        assert len(ideals) == 8

    def test_empty_first_full_last(self):
        nodes = [0, 1, 2]
        edges = [(0, 2)]
        ideals = list(iter_ideals(nodes, edges))
        assert ideals[0] == frozenset()
        assert ideals[-1] == frozenset(nodes)

    @given(dags())
    @settings(max_examples=120, deadline=None)
    def test_matches_bruteforce(self, dag):
        nodes, edges = dag
        got = list(iter_ideals(nodes, edges))
        expected = brute_force_ideals(nodes, edges)
        assert len(got) == len(set(got)), "duplicate ideals yielded"
        assert set(got) == expected
        assert count_ideals(nodes, edges) == len(expected)
        assert all(is_ideal(i, nodes, edges) for i in got)

    @given(dags())
    @settings(max_examples=120, deadline=None)
    def test_ideal_count_equals_antichain_count(self, dag):
        # Classic poset bijection (ideal <-> its maximal elements); the
        # docstring claim the whole approach leans on.
        nodes, edges = dag
        assert count_ideals(nodes, edges) == brute_force_antichains(
            nodes, edges
        )


class TestSampleIdeals:
    @given(dags(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_deterministic_per_seed_and_all_ideals(self, dag, seed):
        nodes, edges = dag
        first = sample_ideals(nodes, edges, seed, count=16)
        second = sample_ideals(nodes, edges, seed, count=16)
        assert first == second, "same seed must replay the same samples"
        assert len(first) == len(set(first)), "samples must be deduplicated"
        assert all(is_ideal(s, nodes, edges) for s in first)
        assert len(first) <= 16

    def test_samples_respect_edges(self):
        nodes = list(range(10))
        edges = [(i, i + 1) for i in range(9)]
        for sample in sample_ideals(nodes, edges, seed=3, count=32):
            # Ideals of a chain are prefixes.
            assert sample == frozenset(range(len(sample)))

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            sample_ideals([0], [], seed=0, count=-1)
