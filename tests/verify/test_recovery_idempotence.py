"""Recovery must be idempotent: running it twice on one crash image
yields the same NVMM image as running it once.

This is a scheme-layer contract (frontiers are recomputed from the
image; redo blindly rewrites declared values; markers and checksums
refinalise to the same state) and the property that makes recovery
itself crash-safe — a crash *during* recovery just means recovering
again, which must converge on the same image.  Checked for every
registered workload under every sound scheme it supports.
"""

import pytest

from repro.schemes import get_scheme
from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads import available_workloads, get_workload

SMALL_PARAMS = {
    "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
    "fft": {"n": 16},
    "gauss": {"n": 8, "row_block": 4},
    "cholesky": {"n": 8, "col_block": 4},
    "conv2d": {"n": 8, "row_block": 2},
    "log": {"records": 6, "width": 2, "wb_batch": 2},
    "hashmap": {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2},
}

CASES = [
    (name, variant)
    for name in available_workloads()
    for variant in get_workload(name).variants
    if get_scheme(variant).sound
]


def recover(machine, workload, variant):
    """One recovery pass; returns the drained persistent image."""
    rebound = workload.bind(machine, num_threads=2, create=False)
    machine.run(rebound.recovery_threads_for(variant))
    machine.drain()
    return rebound, dict(machine.mem.persistent)


@pytest.mark.parametrize("name,variant", CASES)
def test_recovering_twice_yields_identical_image(name, variant):
    workload = get_workload(name)(**SMALL_PARAMS[name])
    machine = Machine(tiny_machine())
    bound = workload.bind(machine, num_threads=2)
    result, post = run_with_crash(
        machine, bound.threads(variant), CrashPlan(at_op=60)
    )
    assert result.crashed, "workload finished before the crash point"

    rebound, first = recover(post, workload, variant)
    assert rebound.verify()

    # Crash again immediately after recovery (arch state reset to the
    # recovered persistent image) and recover a second time.
    again = post.after_crash()
    rebound2, second = recover(again, workload, variant)
    assert rebound2.verify()
    assert second == first
