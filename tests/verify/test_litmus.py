"""Tests for the litmus harness (repro.verify.litmus).

The harness cross-checks the crash-state enumerator against
declarative per-model specs; these tests pin the corpus generator's
determinism, the per-model image sets on the classic shapes, the
broken-model detection path (shrinking, JSON round-trip, replay), and
the harness's own guard rails.
"""

import pytest

from repro.errors import ConfigError
from repro.verify.litmus import (
    KIND_FENCE,
    KIND_FLUSH,
    KIND_STORE,
    MAX_EVENTS,
    DivergenceReport,
    LitmusOp,
    LitmusProgram,
    check_model,
    check_program,
    divergence_report,
    generate_programs,
    replay_divergence,
    run_program,
    shrink_program,
    spec_images,
)

ST0 = LitmusOp(KIND_STORE, 0, 101.0)
FL0 = LitmusOp(KIND_FLUSH, 0)
FENCE = LitmusOp(KIND_FENCE)


def program(*threads, num_vars=1, name="t"):
    return LitmusProgram(
        name=name, threads=tuple(tuple(t) for t in threads), num_vars=num_vars
    )


class TestPrograms:
    def test_validation(self):
        with pytest.raises(ConfigError):
            program(num_vars=1)  # no threads
        with pytest.raises(ConfigError):
            program([ST0], num_vars=0)
        with pytest.raises(ConfigError):
            program([LitmusOp("load", 0)], num_vars=1)
        with pytest.raises(ConfigError):
            program([LitmusOp(KIND_STORE, 3, 1.0)], num_vars=2)

    def test_fence_is_var_exempt(self):
        p = program([ST0, FENCE], num_vars=1)
        assert p.num_ops == 2

    def test_pretty(self):
        p = program([ST0, FL0, FENCE], [ST0], num_vars=1)
        assert p.pretty() == "st x0; fl x0; fence || st x0"

    def test_dict_round_trip(self):
        p = program([ST0, FL0, FENCE], [ST0], num_vars=1, name="rt")
        assert LitmusProgram.from_dict(p.to_dict()) == p


class TestCorpus:
    def test_deterministic(self):
        a = generate_programs(threads=2, max_ops=3, num_vars=2, limit=24)
        b = generate_programs(threads=2, max_ops=3, num_vars=2, limit=24)
        assert a == b
        assert len(a) == 24

    def test_classics_lead_the_corpus(self):
        names = [p.name for p in generate_programs(limit=48)]
        for classic in (
            "classic_publish",
            "classic_unfenced",
            "classic_chain",
            "classic_cross_core",
            "classic_epochs",
            "classic_dirty",
        ):
            assert classic in names

    def test_var_ceiling(self):
        with pytest.raises(ConfigError, match="4 variables"):
            generate_programs(num_vars=5)

    def test_distinct_store_values(self):
        for p in generate_programs(threads=2, max_ops=4, limit=32):
            values = [
                op.value
                for ops in p.threads
                for op in ops
                if op.kind == KIND_STORE
            ]
            assert len(values) == len(set(values)), p.name


class TestRunProgram:
    def test_unfenced_flush_is_reorderable_under_adr(self):
        run = run_program(program([ST0, FL0], name="unfenced"), "adr")
        assert run.sim_images == {(0.0,), (101.0,)}

    def test_fenced_flush_is_durable_under_adr(self):
        run = run_program(program([ST0, FL0, FENCE], name="fenced"), "adr")
        assert run.sim_images == {(101.0,)}

    def test_eadr_sees_exactly_the_final_state(self):
        run = run_program(program([ST0], name="bare"), "eadr")
        assert run.sim_images == {(101.0,)}
        assert run.num_events == 0

    def test_trace_records_global_order(self):
        run = run_program(program([ST0, FL0, FENCE], name="tr"), "adr")
        assert run.trace == [
            (0, KIND_STORE, 0, 101.0),
            (0, KIND_FLUSH, 0, 0.0),
            (0, KIND_FENCE, 0, 0.0),
        ]

    def test_event_ceiling_enforced(self):
        big = program(
            [
                op
                for i in range(MAX_EVENTS + 1)
                for op in (LitmusOp(KIND_STORE, 0, float(i + 1)), FL0)
            ],
            name="big",
        )
        with pytest.raises(ConfigError, match="persist events"):
            run_program(big, "adr")


class TestSpecs:
    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigError, match="no litmus spec"):
            spec_images(program([ST0], name="x"), "bogus", [])

    def test_adr_spec_matches_enumerator_on_classics(self):
        for p in generate_programs(limit=6):  # exactly the classics
            assert check_program(p, "adr").ok, p.name

    @pytest.mark.parametrize("model", ("eadr", "strict", "epoch"))
    def test_other_sound_models_match_on_classics(self, model):
        for p in generate_programs(limit=6):
            assert check_program(p, model).ok, p.name

    def test_epoch_spec_orders_but_never_commits(self):
        # st x0; fl x0; fence; st x1; fl x1 — ADR commits epoch 1;
        # epoch persistency only orders it before epoch 2.
        p = program(
            [ST0, FL0, FENCE, LitmusOp(KIND_STORE, 1, 102.0),
             LitmusOp(KIND_FLUSH, 1)],
            num_vars=2,
            name="epochs",
        )
        adr = check_program(p, "adr")
        epoch = check_program(p, "epoch")
        assert adr.ok and epoch.ok
        # ADR: x0 committed, x1 uncertain
        assert adr.run.sim_images == {(101.0, 0.0), (101.0, 102.0)}
        # epoch: nothing committed, but x1 requires x0
        assert epoch.run.sim_images == {
            (0.0, 0.0),
            (101.0, 0.0),
            (101.0, 102.0),
        }


class TestBrokenModel:
    def test_divergence_found_and_shrunk(self):
        result = check_program(program([ST0], name="bare"), "eadr_nofence")
        assert not result.ok
        # the claimed (eADR) spec says 101.0 persisted; the volatile
        # implementation still allows the 0.0 image
        assert (0.0,) in result.extra
        small = shrink_program(result.program, "eadr_nofence")
        assert small.num_ops <= result.program.num_ops
        assert not check_program(small, "eadr_nofence").ok

    def test_report_round_trip_replays(self):
        result = check_program(
            program([ST0, FL0, FENCE], name="fenced"), "eadr_nofence"
        )
        assert not result.ok
        report = divergence_report(result)
        assert report.model == "eadr_nofence"
        assert report.spec == "eadr"
        revived = DivergenceReport.from_dict(report.to_dict())
        assert revived == report
        assert not replay_divergence(revived).ok


class TestCheckModel:
    CORPUS = generate_programs(threads=2, max_ops=3, num_vars=2, limit=12)

    @pytest.mark.parametrize("model", ("adr", "eadr", "strict", "epoch"))
    def test_sound_models_pass(self, model):
        verdict = check_model(model, self.CORPUS)
        assert verdict.ok
        assert verdict.divergent == 0
        assert verdict.programs_checked == len(self.CORPUS)

    def test_broken_model_is_flagged(self):
        verdict = check_model("eadr_nofence", self.CORPUS, max_reports=2)
        assert verdict.broken
        assert verdict.divergent > 0
        assert verdict.ok  # broken + divergent = the harness worked
        assert 0 < len(verdict.reports) <= 2
        for report in verdict.reports:
            assert not replay_divergence(report).ok

    def test_non_enumerable_model_rejected(self):
        with pytest.raises(ConfigError, match="enumeration"):
            check_model("pre_adr", self.CORPUS)
