"""Tests for reachable-image enumeration over a CrashStateSpace."""

import pytest

from repro.errors import ConfigError
from repro.sim.persist import KIND_DIRTY, KIND_FLUSH, CrashStateSpace, PersistEvent
from repro.verify.enumerate import EnumerationPlan, enumerate_images


def flush(eid, line, values):
    return PersistEvent(
        eid=eid, line_addr=line, kind=KIND_FLUSH, core_id=0, time=float(eid),
        values=values,
    )


def dirty(eid, line, values):
    return PersistEvent(
        eid=eid, line_addr=line, kind=KIND_DIRTY, core_id=None,
        time=float(eid), values=values,
    )


def space_of(events, edges, floor=None):
    return CrashStateSpace(
        floor=dict(floor or {}), events=list(events), edges=list(edges),
        crash_time=100.0,
    )


class TestEnumerationPlan:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EnumerationPlan(max_exhaustive_events=-1)
        with pytest.raises(ConfigError):
            EnumerationPlan(samples=0)
        with pytest.raises(ConfigError):
            EnumerationPlan(max_images=0)

    def test_frontier(self):
        space = space_of([flush(i, 64 * i, {8 * i: 1.0}) for i in range(5)], [])
        assert EnumerationPlan(max_exhaustive_events=5).is_exhaustive_for(space)
        assert not EnumerationPlan(max_exhaustive_events=4).is_exhaustive_for(
            space
        )


class TestExhaustive:
    def test_independent_events_all_images(self):
        # 3 independent single-value events with distinct addresses:
        # 8 ideals, 8 distinct images.
        events = [flush(i, 64 * (i + 1), {8 * (i + 1): float(i)}) for i in range(3)]
        space = space_of(events, [], floor={8: -1.0})
        images = enumerate_images(space, EnumerationPlan())
        assert len(images) == 8
        assert images[0].image == {8: -1.0}  # floor first
        assert images[-1].eids == frozenset({0, 1, 2})

    def test_chain_edges_limit_images(self):
        # Two versions of the same line: old-only, old+new, or neither.
        events = [flush(0, 64, {8: 1.0}), flush(1, 64, {8: 2.0})]
        space = space_of(events, [(0, 1)], floor={8: 0.0})
        images = enumerate_images(space, EnumerationPlan())
        values = sorted(img.image[8] for img in images)
        assert values == [0.0, 1.0, 2.0]

    def test_duplicate_images_deduplicated(self):
        # A dirty line whose value matches the floor produces no new
        # image: the ideal differs, the image does not.
        events = [dirty(0, 64, {8: 5.0})]
        space = space_of(events, [], floor={8: 5.0})
        images = enumerate_images(space, EnumerationPlan())
        assert len(images) == 1

    def test_max_images_cap(self):
        events = [
            flush(i, 64 * (i + 1), {8 * (i + 1): float(i)}) for i in range(6)
        ]
        space = space_of(events, [])
        plan = EnumerationPlan(max_images=10)
        assert len(enumerate_images(space, plan)) == 10


class TestSampled:
    def space(self, n=20):
        return space_of(
            [flush(i, 64 * (i + 1), {8 * (i + 1): float(i)}) for i in range(n)],
            [],
        )

    def test_distinguished_images_always_present(self):
        space = self.space()
        plan = EnumerationPlan(max_exhaustive_events=4, samples=4, seed=1)
        images = enumerate_images(space, plan)
        eid_sets = [img.eids for img in images]
        assert frozenset() in eid_sets  # floor
        assert frozenset(range(20)) in eid_sets  # everything persisted
        assert frozenset(space.schedule_eids()) in eid_sets

    def test_deterministic_per_seed(self):
        space = self.space()
        plan = EnumerationPlan(max_exhaustive_events=4, samples=16, seed=7)
        first = [img.eids for img in enumerate_images(space, plan)]
        second = [img.eids for img in enumerate_images(space, plan)]
        assert first == second

    def test_bounded_by_sample_budget(self):
        space = self.space()
        plan = EnumerationPlan(max_exhaustive_events=4, samples=8, seed=0)
        images = enumerate_images(space, plan)
        # 8 samples + up to 3 distinguished ideals, minus dedup overlap.
        assert 2 <= len(images) <= 11
