"""Tests for the crash-state enumeration checker (repro.verify)."""
