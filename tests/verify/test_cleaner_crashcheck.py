"""PeriodicCleaner x crash-state interaction, across the registry.

The cleaner's guarantee is durability: once it writes a line back, the
ADR domain has accepted that line, so the line's data must be present
in *every* reachable post-crash image — it can never be lost to
flush/fence reordering.  These tests record which lines each cleanup
pass wrote and assert exactly that over the enumerated image set, for
every registered workload.
"""

import pytest

from repro.sim.address import element_addrs_of_line
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan, run_to_crash_space
from repro.sim.machine import Machine
from repro.verify import EnumerationPlan, enumerate_images
from repro.workloads import get_workload

SMALL_PARAMS = {
    "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
    "fft": {"n": 16},
    "gauss": {"n": 8, "row_block": 4},
    "cholesky": {"n": 8, "col_block": 4},
    "conv2d": {"n": 8, "row_block": 2},
}


class RecordingCleaner(PeriodicCleaner):
    """PeriodicCleaner that remembers what it wrote back, and with
    which values — independent ground truth for the tracker's floor."""

    def __init__(self, period_cycles):
        super().__init__(period_cycles)
        self.cleaned_lines = set()
        self.cleaned_values = {}

    def maybe_clean(self, hierarchy, now):
        due = now >= self._next_due
        dirty = set(hierarchy.dirty_line_addrs()) if due else set()
        written = super().maybe_clean(hierarchy, now)
        if written:
            self.cleaned_lines |= dirty
            for line in dirty:
                for addr in element_addrs_of_line(line):
                    if addr in hierarchy.mem.arch:
                        self.cleaned_values[addr] = hierarchy.mem.arch[addr]
        return written


@pytest.mark.parametrize("timing", ["detailed", "functional"])
@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_cleaned_lines_survive_in_every_image(name, timing):
    # The cleaner is timing-model-agnostic: under functional timing a
    # period of N cycles means "roughly every N ops", which still
    # produces mid-run cleanups at these problem sizes — the durability
    # guarantee must hold identically on both pipelines.
    workload = get_workload(name)(**SMALL_PARAMS[name])
    config = tiny_machine().with_timing(timing)
    # Functional clocks advance one cycle per op, so the same period
    # covers far fewer ops than under detailed latencies; shrink it to
    # keep several mid-run cleanup passes at these problem sizes.
    period = 400.0 if timing == "detailed" else 100.0
    machine = Machine(config)
    cleaner = RecordingCleaner(period)
    machine.cleaner = cleaner
    bound = workload.bind(machine, num_threads=2, engine="modular")

    # Profile the run length, then crash near the end with the same
    # setup, so every workload has gone through dirty-line cleanups.
    total = machine.run(bound.threads("lp")).ops_executed
    machine = Machine(config)
    cleaner = RecordingCleaner(period)
    machine.cleaner = cleaner
    bound = workload.bind(machine, num_threads=2, engine="modular")
    result, space = run_to_crash_space(
        machine, bound.threads("lp"), CrashPlan(at_op=total - 2)
    )

    assert result.crashed
    assert cleaner.cleanups >= 1, "period too long for this workload"
    assert cleaner.cleaned_lines, "no dirty lines at any cleanup pass"

    # Cleaned addresses the program never touched again: their cleaned
    # value is unconditionally durable.  The tracker's floor must agree
    # with the cleaner's own record — a pending-flush undo must never
    # roll a cleaned line back below its cleaned value.
    event_addrs = set()
    for ev in space.events:
        event_addrs |= set(ev.values)
    stable = {
        addr: value
        for addr, value in cleaner.cleaned_values.items()
        if machine.mem.arch.get(addr) == value and addr not in event_addrs
    }
    assert stable, "every cleaned address was overwritten; shrink the period"
    for addr, value in stable.items():
        assert space.floor.get(addr) == value

    images = enumerate_images(
        space, EnumerationPlan(max_exhaustive_events=10, samples=16, seed=0)
    )
    assert images
    cleaned_addrs = {
        addr
        for line in cleaner.cleaned_lines
        for addr in element_addrs_of_line(line)
        if addr in machine.mem.arch
    }
    for candidate in images:
        missing = cleaned_addrs - set(candidate.image)
        assert not missing, (
            f"{name}: cleaned addresses absent from image "
            f"{sorted(candidate.eids)}: {sorted(missing)[:4]}"
        )
        for addr, value in stable.items():
            assert candidate.image[addr] == value


@pytest.mark.parametrize("timing", ["detailed", "functional"])
def test_cleaner_shrinks_uncertain_event_set(timing):
    """More frequent cleaning -> fewer reorderable events at a crash."""
    workload = get_workload("tmm")(**SMALL_PARAMS["tmm"])

    def events_at_crash(period):
        machine = Machine(tiny_machine().with_timing(timing))
        if period is not None:
            machine.cleaner = PeriodicCleaner(period)
        bound = workload.bind(machine, num_threads=2, engine="modular")
        _, space = run_to_crash_space(
            machine, bound.threads("lp"), CrashPlan(at_op=400)
        )
        assert space is not None
        return space.num_events

    uncleaned = events_at_crash(None)
    cleaned = events_at_crash(200.0)
    assert cleaned <= uncleaned
