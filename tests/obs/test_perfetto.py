"""Chrome-trace export: schema validity and stats reconciliation."""

import json

from repro.obs import TraceRecorder, to_chrome_trace, write_chrome_trace
from repro.obs.perfetto import CORES_PID, MEMORY_PID

VALID_PHASES = {"X", "i", "C", "M"}


def _events(run):
    recorder = run[0]
    return to_chrome_trace(recorder)["traceEvents"]


class TestSchema:
    def test_every_event_has_required_fields(self, ep_run):
        for ev in _events(ep_run):
            assert {"ph", "ts", "pid", "tid"} <= set(ev)
            assert ev["ph"] in VALID_PHASES
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert ev["pid"] in (CORES_PID, MEMORY_PID)

    def test_complete_slices_have_nonnegative_duration(self, ep_run):
        for ev in _events(ep_run):
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_instants_have_scope(self, ep_run):
        for ev in _events(ep_run):
            if ev["ph"] == "i":
                assert ev["s"] in ("g", "p", "t")

    def test_track_metadata_names_every_core(self, ep_run):
        recorder = ep_run[0]
        events = _events(ep_run)
        thread_names = {
            (ev["pid"], ev["tid"]): ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        for core_id in recorder.core_ids():
            assert thread_names[(CORES_PID, 2 * core_id)].endswith("ops")
            assert thread_names[(CORES_PID, 2 * core_id + 1)].endswith(
                "stalls"
            )

    def test_document_loads_as_json(self, ep_run, tmp_path):
        out = tmp_path / "run.trace.json"
        count = write_chrome_trace(ep_run[0], str(out))
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == count
        assert "otherData" in doc

    def test_metadata_lands_in_other_data(self, ep_run):
        doc = to_chrome_trace(ep_run[0], metadata={"workload": "tmm"})
        assert doc["otherData"]["workload"] == "tmm"


class TestReconciliation:
    def test_op_slices_match_recorder_per_core(self, ep_run):
        recorder = ep_run[0]
        events = _events(ep_run)
        for core_id in recorder.core_ids():
            op_slices = [
                ev
                for ev in events
                if ev["ph"] == "X"
                and ev["pid"] == CORES_PID
                and ev["tid"] == 2 * core_id
            ]
            expected = sum(
                n for n in recorder.op_counts(core_id).values()
            )
            assert len(op_slices) == expected

    def test_stall_slices_match_stats_fence_cycles(self, ep_run):
        recorder, _, result, _ = ep_run
        events = _events(ep_run)
        stall_cycles = sum(
            ev["dur"]
            for ev in events
            if ev["ph"] == "X"
            and ev["pid"] == CORES_PID
            and ev.get("cat") == "stall"
            and ev["name"] == "fence_drain"
        )
        expected = sum(c.fence_stall_cycles for c in result.stats.per_core)
        assert stall_cycles == expected

    def test_writeback_slices_match_nvmm_writes(self, ep_run):
        _, _, result, _ = ep_run
        events = _events(ep_run)
        wb_slices = [
            ev
            for ev in events
            if ev["ph"] == "X"
            and ev["pid"] == MEMORY_PID
            and ev.get("cat") == "writeback"
        ]
        assert len(wb_slices) == result.stats.nvmm_writes
        by_cause = {}
        for ev in wb_slices:
            cause = ev["name"].split(":", 1)[1]
            by_cause[cause] = by_cause.get(cause, 0) + 1
        assert by_cause == dict(result.stats.writes_by_cause)

    def test_read_slices_match_nvmm_reads(self, ep_run):
        _, _, result, _ = ep_run
        events = _events(ep_run)
        reads = [
            ev for ev in events if ev.get("cat") == "nvmm_read"
        ]
        assert len(reads) == result.stats.nvmm_reads

    def test_empty_recorder_exports_only_metadata(self):
        doc = to_chrome_trace(TraceRecorder())
        assert all(ev["ph"] == "M" for ev in doc["traceEvents"])
