"""Unit tests for the attribution profilers (repro.obs.profile).

The reconciliation suite (tests/obs/test_reconcile.py) pins the
observers against real runs; these tests pin the mechanics — region
mapping, stack maintenance, export formats, renderers — on small
hand-built event streams.
"""

import json

from repro.obs.events import OpExecuted, StallCharged, WritebackAccepted
from repro.obs.profile import (
    MEM_FRAME,
    UNMAPPED,
    StallFlame,
    WriteHeatmap,
    render_flame,
    render_heatmap,
)
from repro.sim.address import ELEMENT_BYTES, LINE_BYTES, Region
from repro.sim.isa import Flush, Phase, Store


class FakeAllocator:
    def __init__(self, regions):
        self.regions = {r.name: r for r in regions}


class FakeMachine:
    def __init__(self, regions):
        self.allocator = FakeAllocator(regions)


ELEMS_PER_LINE = LINE_BYTES // ELEMENT_BYTES


def make_heatmap(regions=None):
    heatmap = WriteHeatmap()
    if regions is None:
        regions = [
            Region("a", base=LINE_BYTES, num_elements=2 * ELEMS_PER_LINE),
            Region(
                "b", base=3 * LINE_BYTES, num_elements=ELEMS_PER_LINE
            ),
        ]
    heatmap.on_attach(FakeMachine(regions))
    return heatmap


def writeback(line_addr, cause="flush", queue_delay=0.0, core_id=0):
    return WritebackAccepted(
        line_addr=line_addr,
        cause=cause,
        core_id=core_id,
        issued=0.0,
        accept_time=1.0,
        durable_time=2.0,
        queue_delay=queue_delay,
        queue_depth=1,
        volatility=None,
    )


def op_event(op, core_id=0):
    return OpExecuted(core_id=core_id, op=op, result=None, start=0.0, end=1.0)


def stall(cause, cycles, core_id=0):
    return StallCharged(
        core_id=core_id, cause=cause, start=0.0, cycles=cycles, lost_slots=0
    )


class TestWriteHeatmap:
    def test_region_mapping_covers_bases_interiors_and_gaps(self):
        heatmap = make_heatmap()
        assert heatmap.region_name(LINE_BYTES) == "a"
        assert heatmap.region_name(2 * LINE_BYTES) == "a"
        assert heatmap.region_name(3 * LINE_BYTES - 1) == "a"
        assert heatmap.region_name(3 * LINE_BYTES) == "b"
        # Below the first region and past the last: unmapped.
        assert heatmap.region_name(0) == UNMAPPED
        assert heatmap.region_name(4 * LINE_BYTES) == UNMAPPED

    def test_counts_roll_up_by_line_and_cause(self):
        heatmap = make_heatmap()
        heatmap.on_writeback(writeback(LINE_BYTES, "flush"))
        heatmap.on_writeback(writeback(LINE_BYTES, "evict"))
        heatmap.on_writeback(writeback(3 * LINE_BYTES, "flush"))
        assert heatmap.line_totals() == {
            LINE_BYTES: 2, 3 * LINE_BYTES: 1
        }
        assert heatmap.totals_by_cause() == {"flush": 2, "evict": 1}
        assert heatmap.total_writes == 3

    def test_hot_lines_rank_by_writes_then_address(self):
        heatmap = make_heatmap()
        for _ in range(3):
            heatmap.on_writeback(writeback(3 * LINE_BYTES))
        heatmap.on_writeback(writeback(LINE_BYTES))
        heatmap.on_writeback(writeback(2 * LINE_BYTES))
        hot = heatmap.hot_lines(k=2)
        assert hot == [
            (3 * LINE_BYTES, 3, "b"),
            (LINE_BYTES, 1, "a"),
        ]

    def test_region_summary_derives_coalescing(self):
        heatmap = make_heatmap()
        heatmap.on_op(op_event(Store(LINE_BYTES, 1.0)))
        heatmap.on_op(op_event(Store(LINE_BYTES + ELEMENT_BYTES, 2.0)))
        heatmap.on_op(op_event(Flush(LINE_BYTES)))
        heatmap.on_writeback(writeback(LINE_BYTES, "flush"))
        summary = heatmap.region_summary()
        info = summary["a"]
        assert info["writes"] == 1
        assert info["stores"] == 2
        assert info["flushes"] == 1
        assert info["stores_per_write"] == 2.0
        assert info["lines_touched"] == 1
        assert info["region_lines"] == 2

    def test_csv_and_to_dict_agree_with_totals(self):
        heatmap = make_heatmap()
        heatmap.on_op(op_event(Store(3 * LINE_BYTES, 1.0)))
        heatmap.on_writeback(writeback(3 * LINE_BYTES, "evict"))
        doc = heatmap.to_dict()
        assert doc["total_writes"] == 1
        assert doc["writes_by_cause"] == {"evict": 1}
        assert doc["lines"] == {str(3 * LINE_BYTES): {"evict": 1}}
        json.dumps(doc)  # JSON-safe
        lines = heatmap.csv().strip().splitlines()
        assert lines[0] == "line,region,writes,stores,flushes"
        assert lines[1] == f"{3 * LINE_BYTES},b,1,1,0"

    def test_render_includes_amplification_vs_base(self):
        base = make_heatmap()
        base.on_writeback(writeback(LINE_BYTES))
        lp = make_heatmap()
        for _ in range(2):
            lp.on_writeback(writeback(LINE_BYTES))
        text = render_heatmap(lp, base=base)
        assert "x2.00" in text
        assert "write amplification vs base: x2.000" in text

    def test_render_without_base_has_no_amp_column(self):
        heatmap = make_heatmap()
        heatmap.on_writeback(writeback(LINE_BYTES))
        text = render_heatmap(heatmap)
        assert "amp vs base" not in text
        assert "total NVMM writes: 1" in text


class TestStallFlame:
    def test_frames_nest_with_phase_push_and_pop(self):
        flame = StallFlame(root="tmm/lp")
        flame.on_op(op_event(Phase("kk0")))
        flame.on_op(op_event(Phase("ii1")))
        flame.on_stall(stall("fence_drain", 10.0))
        flame.on_op(op_event(Phase(None)))
        flame.on_stall(stall("fence_drain", 5.0))
        stacks = flame.stacks()
        assert stacks == {
            ("tmm/lp", "core0", "kk0", "ii1", "fence_drain"): 10.0,
            ("tmm/lp", "core0", "kk0", "fence_drain"): 5.0,
        }

    def test_per_core_stacks_are_independent(self):
        flame = StallFlame()
        flame.on_op(op_event(Phase("x"), core_id=0))
        flame.on_stall(stall("fence_drain", 1.0, core_id=1))
        assert flame.stacks() == {("core1", "fence_drain"): 1.0}

    def test_pop_on_empty_stack_is_ignored(self):
        flame = StallFlame()
        flame.on_op(op_event(Phase(None)))
        flame.on_op(op_event(Phase("x")))
        flame.on_stall(stall("fence_drain", 1.0))
        assert ("core0", "x", "fence_drain") in flame.stacks()

    def test_queue_delays_charge_the_mc_cause(self):
        flame = StallFlame()
        flame.on_writeback(writeback(LINE_BYTES, queue_delay=3.0))
        flame.on_writeback(writeback(LINE_BYTES, queue_delay=0.0))
        flame.on_writeback(
            writeback(LINE_BYTES, queue_delay=2.0, core_id=None)
        )
        assert flame.totals_by_cause() == {"mc_write_queue": 5.0}
        assert ("core0", "mc_write_queue") in flame.stacks()
        assert (MEM_FRAME, "mc_write_queue") in flame.stacks()

    def test_collapsed_rounds_and_drops_zero_weights(self):
        flame = StallFlame()
        flame.on_stall(stall("a", 1.6))
        flame.on_stall(stall("b", 0.2))
        assert flame.collapsed() == "core0;a 2\n"

    def test_collapsed_empty_flame_is_empty_string(self):
        assert StallFlame().collapsed() == ""

    def test_to_dict_reports_stacks_and_events(self):
        flame = StallFlame(root="r")
        flame.on_stall(stall("a", 1.0))
        flame.on_stall(stall("a", 2.0))
        doc = flame.to_dict()
        assert doc["total_stall_cycles"] == 3.0
        assert doc["by_cause"] == {"a": 3.0}
        assert doc["stacks"] == [
            {"frames": ["r", "core0", "a"], "cycles": 3.0, "events": 2}
        ]
        json.dumps(doc)

    def test_render_shares_sum_to_total(self):
        flame = StallFlame(root="r")
        flame.on_stall(stall("a", 75.0))
        flame.on_stall(stall("b", 25.0))
        text = render_flame(flame)
        assert "75.0%" in text
        assert "25.0%" in text
        assert "total attributed stall cycles: 100.0" in text


def test_on_attach_is_called_by_attach_probes():
    # The taps layer must hand every observer the machine before any
    # event flows — WriteHeatmap needs the allocator's region map.
    from repro.obs import probed
    from repro.sim.config import tiny_machine
    from repro.sim.machine import Machine
    from repro.workloads import get_workload

    wl = get_workload("tmm")(n=8, bsize=4, kk_tiles=1)
    machine = Machine(tiny_machine())
    bound = wl.bind(machine, num_threads=2)
    heatmap = WriteHeatmap()
    with probed(machine, [heatmap]):
        # Eager persistency flushes during the run, so writebacks flow
        # while the probes are attached even at this tiny size.
        machine.run(bound.threads("ep"))
    names = {
        heatmap.region_name(line) for line in heatmap.line_totals()
    }
    assert names and UNMAPPED not in names
