"""IntervalSampler bucketing, series shape, and CSV output."""

import pytest

from repro.errors import ConfigError
from repro.obs import IntervalSampler
from repro.obs.events import OpExecuted, StallCharged, WritebackAccepted
from repro.sim.isa import Compute, Fence

from tests.obs.conftest import INTERVAL


def _op(core_id, end, op=None):
    return OpExecuted(core_id, op or Compute(), None, end - 1.0, end)


def _wb(accept_time, cause="flush", depth=2, volatility=10.0):
    return WritebackAccepted(
        line_addr=64,
        cause=cause,
        core_id=0,
        issued=accept_time,
        accept_time=accept_time,
        durable_time=accept_time + 4.0,
        queue_delay=0.0,
        queue_depth=depth,
        volatility=volatility,
    )


class TestBucketing:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigError):
            IntervalSampler(0)
        with pytest.raises(ConfigError):
            IntervalSampler(-100)

    def test_ops_land_in_end_cycle_bucket(self):
        s = IntervalSampler(100.0)
        s.on_op(_op(0, end=50.0))
        s.on_op(_op(0, end=99.0))
        s.on_op(_op(0, end=100.0))  # exactly on the boundary -> bucket 1
        s.on_op(_op(0, end=250.0))
        series = s.series()
        assert series["num_buckets"] == 3
        assert series["columns"]["ops.core0"] == [2.0, 1.0, 1.0]

    def test_fences_counted_separately(self):
        s = IntervalSampler(100.0)
        s.on_op(_op(0, end=10.0))
        s.on_op(_op(0, end=20.0, op=Fence()))
        totals = s.totals()
        assert totals["ops.core0"] == 2.0
        assert totals["fences"] == 1.0

    def test_stall_charged_whole_to_start_bucket(self):
        # A stall spanning a boundary lands entirely in its start
        # bucket so per-cause totals reconcile exactly with the ledger.
        s = IntervalSampler(100.0)
        s.on_stall(StallCharged(0, "fence_drain", 90.0, 50.0, 100))
        series = s.series()
        assert series["columns"]["stalls.fence_drain"] == [50.0]
        assert s.totals()["lost_slots"] == 100.0

    def test_queue_depth_is_a_peak_not_a_sum(self):
        s = IntervalSampler(100.0)
        s.on_writeback(_wb(10.0, depth=3))
        s.on_writeback(_wb(20.0, depth=7))
        s.on_writeback(_wb(30.0, depth=5))
        assert s.series()["columns"]["mc_queue_depth.max"] == [7.0]

    def test_empty_sampler_series(self):
        s = IntervalSampler(100.0)
        series = s.series()
        assert series["num_buckets"] == 0
        assert series["columns"] == {}
        assert s.totals() == {}


class TestDerivedColumns:
    def test_ipc_is_ops_per_interval(self):
        s = IntervalSampler(100.0)
        for end in (10.0, 20.0, 30.0, 150.0):
            s.on_op(_op(1, end=end))
        cols = s.series()["columns"]
        assert cols["ipc.core1"] == [0.03, 0.01]

    def test_l2_miss_rate_guards_empty_buckets(self):
        s = IntervalSampler(100.0)

        class _Miss:
            l1_hit = False

        from repro.obs.events import MemEvent, NvmmRead

        s.on_mem_event(MemEvent(0, 10.0, _Miss()))
        s.on_mem_event(MemEvent(0, 15.0, _Miss()))
        s.on_nvmm_read(NvmmRead(64, 10.0, 20.0))
        s.on_nvmm_read(NvmmRead(128, 150.0, 160.0))  # read, no miss seen
        cols = s.series()["columns"]
        assert cols["l2_miss_rate"][0] == pytest.approx(0.5)
        assert cols["l2_miss_rate"][1] == 0.0  # no l1_misses -> guarded


class TestSeriesJsonAndCsv:
    def test_series_is_json_safe(self):
        import json

        s = IntervalSampler(100.0)
        s.on_op(_op(0, end=10.0))
        s.on_writeback(_wb(20.0))
        json.dumps(s.series())  # must not raise

    def test_csv_shape(self):
        s = IntervalSampler(INTERVAL)
        s.on_op(_op(0, end=10.0))
        s.on_op(_op(0, end=INTERVAL + 1))
        text = s.csv()
        lines = text.strip().split("\n")
        header = lines[0].split(",")
        assert header[:2] == ["bucket", "start_cycle"]
        assert len(lines) == 1 + s.num_buckets
        first = lines[1].split(",")
        assert first[0] == "0" and float(first[1]) == 0.0
