"""ProbeBus subscription and fan-out semantics."""

from repro.obs import ProbeBus, ProbeObserver
from repro.obs.bus import CHANNELS
from repro.obs.events import OpExecuted, WritebackAccepted
from repro.sim.isa import Compute


def _op_event():
    return OpExecuted(0, Compute(), None, 1.0, 2.0)


def _wb_event():
    return WritebackAccepted(
        line_addr=64,
        cause="flush",
        core_id=0,
        issued=1.0,
        accept_time=1.0,
        durable_time=5.0,
        queue_delay=0.0,
        queue_depth=1,
        volatility=4.0,
    )


class OpCounter(ProbeObserver):
    def __init__(self):
        self.n = 0

    def on_op(self, ev):
        self.n += 1


class EveryChannel(ProbeObserver):
    def __init__(self):
        self.calls = []

    def on_op(self, ev):
        self.calls.append("op")

    def on_mem_event(self, ev):
        self.calls.append("mem_event")

    def on_stall(self, ev):
        self.calls.append("stall")

    def on_hazard(self, ev):
        self.calls.append("hazard")

    def on_writeback(self, ev):
        self.calls.append("writeback")

    def on_nvmm_read(self, ev):
        self.calls.append("nvmm_read")

    def on_cleaner(self, ev):
        self.calls.append("cleaner")


class TestSubscription:
    def test_only_overridden_channels_subscribe(self):
        bus = ProbeBus([OpCounter()])
        assert bus.wants("op")
        for channel in CHANNELS:
            if channel != "op":
                assert not bus.wants(channel)

    def test_empty_bus_wants_nothing(self):
        bus = ProbeBus([])
        for channel in CHANNELS:
            assert not bus.wants(channel)

    def test_duck_typed_observer_subscribes(self):
        # No ProbeObserver inheritance: any class defining on_op rides
        # the op channel (this is how repro.sim.trace.Trace plugs in).
        class Duck:
            def __init__(self):
                self.seen = []

            def on_op(self, ev):
                self.seen.append(ev)

        duck = Duck()
        bus = ProbeBus([duck])
        assert bus.wants("op")
        assert not bus.wants("writeback")
        bus.op(_op_event())
        assert len(duck.seen) == 1
        # Publishing to channels the duck lacks must not raise.
        bus.writeback(_wb_event())

    def test_channels_table_matches_observer_api(self):
        for method in CHANNELS.values():
            assert callable(getattr(ProbeObserver, method))


class TestFanOut:
    def test_event_reaches_every_subscriber(self):
        a, b = OpCounter(), OpCounter()
        bus = ProbeBus([a, b])
        bus.op(_op_event())
        bus.op(_op_event())
        assert a.n == 2 and b.n == 2

    def test_publish_order_is_observer_order(self):
        order = []

        class Tagged(ProbeObserver):
            def __init__(self, tag):
                self.tag = tag

            def on_op(self, ev):
                order.append(self.tag)

        bus = ProbeBus([Tagged("first"), Tagged("second")])
        bus.op(_op_event())
        assert order == ["first", "second"]

    def test_all_channels_deliver(self):
        obs = EveryChannel()
        bus = ProbeBus([obs])
        for channel in CHANNELS:
            assert bus.wants(channel)
        bus.op(_op_event())
        bus.writeback(_wb_event())
        assert obs.calls == ["op", "writeback"]
