"""Exact reconciliation: stream-derived observers vs the probe bus.

:mod:`repro.obs.streamobs` derives each observer's end state from an
op stream's numpy arrays in batch.  The contract is *bit*
reconciliation: for every registry workload x variant, under both
timing-model configs, the derived instance must be indistinguishable
from the same observer attached to a probed replay machine running the
identical point through the general scheduling loop — same
``series()``, same ``to_dict()``, same internal stacks, same
Chrome-trace document.  No sampling slop, no "close enough".

A Hypothesis property extends the pin beyond the registry: for
arbitrary op soups, the derived interval-series totals must equal the
:class:`MachineStats` per-core counters the simulator kept itself.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    IntervalSampler,
    StallFlame,
    TraceRecorder,
    WriteHeatmap,
    derive_flame,
    derive_heatmap,
    derive_recorder,
    derive_sampler,
    probed,
    to_chrome_trace,
)
from repro.sim.config import MachineConfig, tiny_machine
from repro.sim.isa import Compute, Fence, Flush, FlushWB, Load, Store
from repro.sim.machine import Machine
from repro.sim.opstream import record_stream
from repro.workloads import available_workloads, get_workload

#: Crashcheck-sized problems: small enough that the full grid of
#: (workload, variant, timing) cases stays fast.
SMALL_PARAMS = {
    "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
    "fft": {"n": 16},
    "gauss": {"n": 8, "row_block": 4},
    "cholesky": {"n": 8, "col_block": 4},
    "conv2d": {"n": 8, "row_block": 2},
    "log": {"records": 4, "width": 2, "wb_batch": 2},
    "hashmap": {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2},
}

INTERVAL = 500.0

#: Both timing-model *configs*: replay machines force functional
#: timing either way, but the derivation must reconcile regardless of
#: what the config asked for — the tier decision must not leak into
#: the derived numbers.
CASES = [
    (name, variant, timing)
    for name in available_workloads()
    for variant in get_workload(name).variants
    for timing in ("detailed", "functional")
]


def _bound_replay(name, variant, timing):
    config = tiny_machine()
    if timing != config.timing:
        config = config.with_timing(timing)
    machine = Machine(config, _replay=True)
    wl = get_workload(name)(**SMALL_PARAMS.get(name, {}))
    bound = wl.bind(machine, num_threads=2, engine="modular")
    # Provenance on: Phase frames must survive the stream round trip
    # into the derived flame and recorder, not just the counters.
    bound.provenance = True
    return machine, bound


@pytest.fixture(scope="module")
def reconciled_runs():
    """For every case: the probed-replay reference observers plus the
    stream-derived ones, built from the same point."""
    runs = {}
    for name, variant, timing in CASES:
        machine, bound = _bound_replay(name, variant, timing)
        recorder = TraceRecorder()
        sampler = IntervalSampler(INTERVAL)
        heatmap = WriteHeatmap()
        flame = StallFlame(root=f"{name}/{variant}")
        with probed(machine, [recorder, sampler, heatmap, flame]):
            machine.run(bound.threads(variant))

        m_rec, b_rec = _bound_replay(name, variant, timing)
        stream, _ = record_stream(m_rec, b_rec.threads(variant))
        m_fresh, _ = _bound_replay(name, variant, timing)
        derived = {
            "sampler": derive_sampler(stream, INTERVAL),
            "heatmap": derive_heatmap(stream, m_rec),
            "flame": derive_flame(stream, root=f"{name}/{variant}"),
            "recorder": derive_recorder(stream, m_fresh),
        }
        reference = {
            "sampler": sampler,
            "heatmap": heatmap,
            "flame": flame,
            "recorder": recorder,
        }
        runs[(name, variant, timing)] = (reference, derived)
    return runs


@pytest.mark.parametrize("name,variant,timing", CASES)
class TestStreamReconciliation:
    def test_sampler_series_identical(
        self, reconciled_runs, name, variant, timing
    ):
        ref, derived = reconciled_runs[(name, variant, timing)]
        assert derived["sampler"].series() == ref["sampler"].series()
        assert derived["sampler"].totals() == ref["sampler"].totals()
        assert derived["sampler"].csv() == ref["sampler"].csv()

    def test_heatmap_identical(
        self, reconciled_runs, name, variant, timing
    ):
        ref, derived = reconciled_runs[(name, variant, timing)]
        assert derived["heatmap"].to_dict() == ref["heatmap"].to_dict()
        assert (
            derived["heatmap"].region_summary()
            == ref["heatmap"].region_summary()
        )
        assert derived["heatmap"].csv() == ref["heatmap"].csv()

    def test_flame_identical(
        self, reconciled_runs, name, variant, timing
    ):
        ref, derived = reconciled_runs[(name, variant, timing)]
        assert derived["flame"].to_dict() == ref["flame"].to_dict()
        assert derived["flame"].collapsed() == ref["flame"].collapsed()
        # Internal provenance stacks too — the derivation replays
        # Phase push/pop, it doesn't just fake the public totals.
        assert derived["flame"]._stacks == ref["flame"]._stacks

    def test_recorder_and_chrome_trace_identical(
        self, reconciled_runs, name, variant, timing
    ):
        ref, derived = reconciled_runs[(name, variant, timing)]
        assert derived["recorder"].ops == ref["recorder"].ops
        assert to_chrome_trace(derived["recorder"]) == to_chrome_trace(
            ref["recorder"]
        )

    def test_replay_reference_is_eventless_beyond_ops(
        self, reconciled_runs, name, variant, timing
    ):
        # The completeness half of the contract: the probed replay run
        # publishes nothing but op retirements, so deriving only op
        # state loses no events.
        ref, _ = reconciled_runs[(name, variant, timing)]
        assert ref["recorder"].stalls == []
        assert ref["recorder"].hazards == []
        assert ref["recorder"].writebacks == []
        assert ref["recorder"].nvmm_reads == []


# ----------------------------------------------------------------------
# property pin (Hypothesis): derived totals == MachineStats counters
# ----------------------------------------------------------------------

NUM_ELEMS = 16

#: Only ops with CoreStats counters: RegionMark/Phase retire without
#: touching any per-core counter, so they'd make the reconciled
#: population ragged (they ARE covered by the registry grid above).
op_strategy = st.tuples(
    st.sampled_from(["load", "store", "compute", "flush", "flushwb",
                     "fence"]),
    st.integers(min_value=0, max_value=NUM_ELEMS - 1),
    st.integers(min_value=1, max_value=100),
)
scripts = st.lists(
    st.lists(op_strategy, min_size=1, max_size=20),
    min_size=1,
    max_size=3,
)


def _script_ops(region, script):
    for kind, idx, value in script:
        addr = region.addr(idx)
        if kind == "load":
            yield Load(addr)
        elif kind == "store":
            yield Store(addr, float(value))
        elif kind == "compute":
            yield Compute(value, "work")
        elif kind == "flush":
            yield Flush(addr)
        elif kind == "flushwb":
            yield FlushWB(addr)
        else:
            yield Fence()


@given(scripts)
@settings(max_examples=40, deadline=None)
def test_derived_interval_totals_equal_machine_counters(script_set):
    """For arbitrary op soups, summing the derived interval series
    must reproduce the per-core counters in :class:`MachineStats`."""
    machine = Machine(
        MachineConfig(num_cores=len(script_set)), _replay=True
    )
    region = machine.alloc("a", NUM_ELEMS)
    stream, result = record_stream(
        machine, [_script_ops(region, s) for s in script_set]
    )
    totals = derive_sampler(stream, 100.0).totals()

    stats = result.stats
    assert totals.get("fences", 0) == sum(
        c.fences for c in stats.per_core
    )
    for cid, core in enumerate(stats.per_core):
        ops = (
            core.loads + core.stores + core.computes + core.fences
            + core.flushes
        )
        assert totals.get(f"ops.core{cid}", 0) == ops, f"core {cid}"
    assert sum(
        v for k, v in totals.items() if k.startswith("ops.core")
    ) == result.ops_executed
