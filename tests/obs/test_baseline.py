"""Tests for the regression sentinel (repro.obs.baseline).

The committed baselines under ``benchmarks/baselines/`` are data;
these tests pin the machinery — measurement, storage, comparison —
on a deliberately small case so the suite stays fast.
"""

import pytest

from repro.errors import ConfigError
from repro.obs.baseline import (
    BASELINE_SEEDS,
    DEFAULT_SUITE,
    GATED_METRICS,
    MIN_BAND,
    Baseline,
    BaselineCase,
    BaselineStore,
    RegressionReport,
    Verdict,
    baseline_config,
    compare_case,
    measure_case,
    mistimed,
)

SMALL_CASE = BaselineCase(
    case_id="tmm-lp-small",
    workload="tmm",
    params=(("n", 8), ("bsize", 4), ("kk_tiles", 1)),
    variant="lp",
)


@pytest.fixture(scope="module")
def small_baseline():
    return measure_case(SMALL_CASE)


class TestMeasurement:
    def test_gated_metrics_with_bands_and_per_seed_values(
        self, small_baseline
    ):
        assert set(small_baseline.metrics) == set(GATED_METRICS)
        for record in small_baseline.metrics.values():
            assert record["band"] >= MIN_BAND
            assert len(record["per_seed"]) == len(BASELINE_SEEDS)
            assert record["mean"] == pytest.approx(
                sum(record["per_seed"]) / len(record["per_seed"])
            )

    def test_measurement_is_deterministic(self, small_baseline):
        again = measure_case(SMALL_CASE)
        assert again.metrics == small_baseline.metrics
        assert again.spec == small_baseline.spec

    def test_default_suite_covers_every_workload_and_variant(self):
        from repro.workloads import available_workloads

        ids = {c.case_id for c in DEFAULT_SUITE}
        for name in available_workloads():
            for variant in ("base", "lp", "ep"):
                assert f"{name}-{variant}" in ids

    def test_baseline_config_varies_only_the_seed(self):
        one, two = baseline_config(1), baseline_config(2)
        assert one.schedule_seed == 1 and two.schedule_seed == 2
        assert one.schedule_jitter == two.schedule_jitter > 0
        assert one.core == two.core


class TestMistimed:
    def test_scales_core_issue_latencies(self):
        config = baseline_config(1)
        slow = mistimed(config, 1.5)
        assert slow.core.compute_cpi == config.core.compute_cpi * 1.5
        assert (
            slow.core.l1_hit_issue_cycles
            == config.core.l1_hit_issue_cycles * 1.5
        )
        assert (
            slow.core.store_drain_cycles
            == config.core.store_drain_cycles * 1.5
        )
        assert (
            slow.core.flush_issue_cycles
            == config.core.flush_issue_cycles * 1.5
        )

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ConfigError):
            mistimed(baseline_config(1), 0.0)
        with pytest.raises(ConfigError):
            mistimed(baseline_config(1), -1.0)


class TestStore:
    def test_round_trip(self, small_baseline, tmp_path):
        store = BaselineStore(str(tmp_path))
        path = store.save(small_baseline)
        assert path.endswith("tmm-lp-small.json")
        assert store.case_ids() == ["tmm-lp-small"]
        loaded = store.load("tmm-lp-small")
        assert loaded == small_baseline

    def test_empty_store_lists_nothing(self, tmp_path):
        assert BaselineStore(str(tmp_path / "missing")).case_ids() == []

    def test_from_dict_rejects_wrong_schema(self, small_baseline):
        doc = small_baseline.to_dict()
        doc["schema"] = 99
        with pytest.raises(ConfigError):
            Baseline.from_dict(doc)

    def test_from_dict_rejects_unknown_fields(self, small_baseline):
        doc = small_baseline.to_dict()
        doc["surprise"] = 1
        with pytest.raises(ConfigError):
            Baseline.from_dict(doc)

    def test_from_dict_rejects_missing_fields(self, small_baseline):
        doc = small_baseline.to_dict()
        del doc["metrics"]
        with pytest.raises(ConfigError):
            Baseline.from_dict(doc)

    def test_load_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ConfigError):
            BaselineStore(str(tmp_path)).load("bad")

    def test_case_ids_skips_non_baseline_artifacts(
        self, small_baseline, tmp_path
    ):
        # benchmarks/baselines/ also carries other committed gate
        # artifacts (the op-stream throughput floor); a JSON object
        # with no "schema" key is not a baseline and must not be
        # swept into `repro regress`.
        store = BaselineStore(str(tmp_path))
        store.save(small_baseline)
        (tmp_path / "throughput_floor.json").write_text(
            '{"floor_events_per_sec": 1}\n'
        )
        assert store.case_ids() == ["tmm-lp-small"]
        # Unreadable files are still listed so load() errors loudly.
        (tmp_path / "truncated.json").write_text("{")
        assert store.case_ids() == ["tmm-lp-small", "truncated"]
        with pytest.raises(ConfigError):
            store.load("truncated")


class TestComparison:
    def test_identical_rerun_passes(self, small_baseline):
        verdicts = compare_case(small_baseline)
        assert verdicts
        assert not any(v.regressed for v in verdicts)
        for v in verdicts:
            assert v.ratio == pytest.approx(1.0)

    def test_synthetic_exec_regression_trips(self, small_baseline):
        # Deflate the stored exec_cycles mean 10%: the identical fresh
        # measurement now lands ~10% above it, far outside the band.
        doc = small_baseline.to_dict()
        exec_metric = doc["metrics"]["exec_cycles"]
        exec_metric["mean"] = exec_metric["mean"] / 1.1
        deflated = Baseline.from_dict(doc)
        verdicts = {v.metric: v for v in compare_case(deflated)}
        assert verdicts["exec_cycles"].regressed
        assert verdicts["exec_cycles"].ratio == pytest.approx(1.1)
        assert not verdicts["total_writes"].regressed

    def test_mistime_injection_trips_exec_cycles(self, small_baseline):
        verdicts = {
            v.metric: v
            for v in compare_case(small_baseline, mistime=1.5)
        }
        assert verdicts["exec_cycles"].regressed
        assert verdicts["exec_cycles"].fresh_mean > (
            small_baseline.metrics["exec_cycles"]["mean"]
        )

    def test_report_aggregates_and_renders(self):
        ok = Verdict("c", "exec_cycles", 100.0, 0.02, 101.0, False)
        bad = Verdict("c", "total_writes", 50.0, 0.02, 60.0, True)
        report = RegressionReport(verdicts=[ok, bad])
        assert not report.ok
        assert report.regressions == [bad]
        text = report.render()
        assert "REGRESSED" in text and "ok" in text
        assert "1 of 2 gated metrics out of band" in text

    def test_all_clear_report_is_ok(self):
        report = RegressionReport(
            verdicts=[Verdict("c", "exec_cycles", 100.0, 0.02, 100.0, False)]
        )
        assert report.ok
        assert "within their noise bands" in report.render()


class TestCliRegress:
    """End-to-end: update, pass, then trip — via the real CLI."""

    ARGS = ["--cases", "tmm-lp", "--no-cache"]

    def test_update_then_pass_then_trip(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        store = str(tmp_path / "baselines")
        assert main(
            ["regress", "--baselines", store, "--update-baselines",
             *self.ARGS]
        ) == 0
        assert "baseline written" in capsys.readouterr().out

        assert main(["regress", "--baselines", store, *self.ARGS]) == 0
        assert "within their noise bands" in capsys.readouterr().out

        rc = main(
            ["regress", "--baselines", store, "--mistime", "1.5",
             *self.ARGS]
        )
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_store_is_an_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["regress", "--baselines", str(tmp_path / "none")])
