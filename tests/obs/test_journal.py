"""Tests for the streaming telemetry journal (repro.obs.journal).

The journal's contract is narrow but load-bearing: every emit is one
complete JSONL line, readers never consume a torn tail, a fold over
any prefix is a consistent coverage document, and the final fold
reconciles exactly with the campaign's own report.  The journal must
also stay *out* of the result path: a journaled crashcheck job shares
its cache key with a silent one.
"""

import json
import os

import pytest

from repro.analysis.runner import (
    CrashCheckJob,
    Job,
    RunTelemetry,
    run_jobs,
)
from repro.obs.journal import (
    JOURNAL_FORMAT_VERSION,
    TelemetryJournal,
    describe_event,
    journal_summary,
    read_journal,
    tail_journal,
    watch_once,
)
from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan
from repro.verify import EnumerationPlan, check_variant, plan_to_dict
from repro.verify.litmus import check_model, generate_programs
from repro.workloads import get_workload

PLAN = EnumerationPlan(max_exhaustive_events=12, samples=16, seed=0)


def small_tmm():
    return get_workload("tmm")(n=8, bsize=4, kk_tiles=1)


class TestEmitAndRead:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = TelemetryJournal(path=path)
        journal.emit("campaign_point", label="w/v", images_checked=4)
        journal.emit("counterexample", description="boom")
        events = read_journal(path)
        assert [e["kind"] for e in events] == [
            "campaign_point", "counterexample",
        ]
        assert [e["seq"] for e in events] == [0, 1]
        assert all(e["v"] == JOURNAL_FORMAT_VERSION for e in events)
        assert events == journal.events

    def test_each_event_is_one_line(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = TelemetryJournal(path=path)
        for i in range(5):
            journal.emit("batch", jobs=i)
        with open(path) as fh:
            lines = fh.readlines()
        assert len(lines) == 5
        assert all(line.endswith("\n") for line in lines)
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_memory_only_journal_writes_nothing(self, tmp_path):
        journal = TelemetryJournal(path=None)
        journal.emit("batch", jobs=1)
        assert journal.events[0]["jobs"] == 1
        assert list(tmp_path.iterdir()) == []

    def test_missing_file_reads_empty(self, tmp_path):
        events, offset = tail_journal(str(tmp_path / "absent.jsonl"))
        assert events == []
        assert offset == 0
        assert read_journal(str(tmp_path / "absent.jsonl")) == []

    def test_empty_file_reads_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_journal(str(path)) == []


class TestTornTolerance:
    def test_torn_final_line_is_left_for_next_poll(self, tmp_path):
        path = tmp_path / "j.jsonl"
        whole = json.dumps({"kind": "batch", "jobs": 1}) + "\n"
        torn = '{"kind": "batch", "jo'
        path.write_text(whole + torn)
        events, offset = tail_journal(str(path))
        assert [e["kind"] for e in events] == ["batch"]
        assert offset == len(whole.encode())
        # Writer finishes the line: the next poll picks it up.
        path.write_text(whole + '{"kind": "batch", "jobs": 2}\n')
        events, offset = tail_journal(str(path), offset)
        assert [e["jobs"] for e in events] == [2]
        assert offset == os.path.getsize(path)

    def test_garbage_complete_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"kind": "batch", "jobs": 1}\n'
            "not json at all\n"
            '["a", "list"]\n'
            '{"kind": "batch", "jobs": 2}\n'
        )
        events = read_journal(str(path))
        assert [e["jobs"] for e in events] == [1, 2]

    def test_offset_resumes_without_rereading(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = TelemetryJournal(path=path)
        journal.emit("batch", jobs=1)
        events, offset = tail_journal(path)
        assert len(events) == 1
        journal.emit("batch", jobs=2)
        events, offset = tail_journal(path, offset)
        assert [e["jobs"] for e in events] == [2]
        events, offset = tail_journal(path, offset)
        assert events == []


class TestDescribeEvent:
    def test_known_kinds_have_lines(self):
        assert "images" in describe_event(
            {"kind": "campaign_point", "label": "w/v", "images_checked": 3,
             "num_events": 2, "exhaustive": True, "wall_s": 0.1}
        )
        assert "DIVERGED" in describe_event(
            {"kind": "campaign_point", "label": "w/v", "images_checked": 3,
             "num_events": 2, "exhaustive": True, "images_diverged": 1}
        )
        assert "boom" in describe_event(
            {"kind": "counterexample", "description": "boom"}
        )
        assert "litmus" in describe_event(
            {"kind": "litmus_program", "model": "adr", "program": "p",
             "images": 2, "num_events": 1, "divergent": False}
        )
        assert describe_event({"kind": "job_span", "label": "a",
                               "status": "run", "wall_s": 1.0})
        assert describe_event({"kind": "batch", "jobs": 2, "hits": 1,
                               "wall_clock_s": 3.0})

    def test_unknown_kind_is_silent(self):
        assert describe_event({"kind": "mystery"}) is None

    def test_progress_ticks_go_to_stream(self, tmp_path):
        import io as _io

        sink = _io.StringIO()
        journal = TelemetryJournal(progress=True, stream=sink)
        journal.emit("counterexample", description="boom")
        journal.emit("mystery")
        assert "boom" in sink.getvalue()
        assert "mystery" not in sink.getvalue()


class TestJournalSummary:
    def test_empty_fold(self):
        summary = journal_summary([])
        assert summary == {
            "telemetry": None,
            "coverage": [],
            "counterexamples": [],
            "events": 0,
        }

    def test_fold_builds_telemetry_and_coverage(self):
        journal = TelemetryJournal()
        journal.emit("job_span", workers=2, label="a", status="run",
                     start_s=0.0, end_s=1.0, wall_s=1.0)
        journal.emit("job_span", workers=2, label="b", status="hit",
                     start_s=0.0, end_s=0.1, wall_s=0.1)
        journal.emit("batch", workers=2, jobs=2, hits=1, wall_clock_s=1.5,
                     cache={"hits": 1, "misses": 1})
        journal.emit("campaign_point", label="w/v", num_events=3,
                     images_checked=8, images_diverged=1, bound=10,
                     exhaustive=True, crashed=True, wall_s=0.5,
                     counterexamples=1, shrink_steps=2)
        journal.emit("counterexample", label="w/v", description="boom")
        summary = journal_summary(journal.events)
        assert summary["events"] == 5
        telemetry = summary["telemetry"]
        assert telemetry["workers"] == 2
        assert len(telemetry["spans"]) == 2
        assert telemetry["cache"] == {"hits": 1, "misses": 1}
        (cov,) = summary["coverage"]
        assert cov["label"] == "w/v"
        assert cov["images_checked"] == 8
        assert cov["images_diverged"] == 1
        assert cov["counterexamples"] == 1
        assert cov["shrink_steps"] == 2
        assert cov["epochs"] == [
            {"num_events": 3, "points": 1, "images_checked": 8,
             "images_diverged": 1, "bound": 10, "exhaustive": True}
        ]
        assert summary["counterexamples"] == ["boom"]

    def test_prefix_fold_is_consistent(self):
        journal = TelemetryJournal()
        for i in range(4):
            journal.emit("campaign_point", label="w/v", num_events=2,
                         images_checked=3, bound=4, exhaustive=True,
                         crashed=True)
        for n in range(1, 5):
            (cov,) = journal_summary(journal.events[:n])["coverage"]
            assert cov["points"] == n
            assert cov["images_checked"] == 3 * n
            assert cov["enumeration_bound"] == 4 * n


class TestCheckerJournaling:
    def test_crashcheck_journal_reconciles_with_report(self, tmp_path):
        path = str(tmp_path / "cc.jsonl")
        journal = TelemetryJournal(path=path)
        report = check_variant(
            small_tmm(), tiny_machine(), "lp",
            [CrashPlan(at_op=200), CrashPlan(at_op=400)],
            PLAN, journal=journal,
        )
        folded = journal_summary(read_journal(path))
        (from_journal,) = folded["coverage"]
        from_report = report.coverage().to_dict()
        # wall_s is rounded per event line; everything else is exact.
        for doc in (from_journal, from_report):
            doc.pop("wall_s")
            doc.pop("images_per_sec")
        assert from_journal == from_report

    def test_counterexample_events_are_journaled(self, tmp_path):
        path = str(tmp_path / "cc.jsonl")
        journal = TelemetryJournal(path=path)
        report = check_variant(
            small_tmm(), tiny_machine(), "ep_nofence",
            [CrashPlan(at_flush=10)], PLAN, journal=journal,
        )
        assert not report.ok
        events = read_journal(path)
        cexs = [e for e in events if e["kind"] == "counterexample"]
        assert len(cexs) == len(report.counterexamples)
        assert all("recovery failed" in e["description"] for e in cexs)
        folded = journal_summary(events)
        assert folded["counterexamples"]

    def test_litmus_journal_reconciles_with_verdict(self, tmp_path):
        path = str(tmp_path / "lit.jsonl")
        journal = TelemetryJournal(path=path)
        verdict = check_model(
            "epoch", generate_programs(limit=12), journal=journal
        )
        folded = journal_summary(read_journal(path))
        (from_journal,) = folded["coverage"]
        from_verdict = verdict.coverage().to_dict()
        # The verdict carries corpus wall clock; the journal does not.
        for doc in (from_journal, from_verdict):
            doc.pop("wall_s")
            doc.pop("images_per_sec")
        assert from_journal == from_verdict


class TestHarnessJournaling:
    def test_run_jobs_streams_spans_and_batch(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        telemetry = RunTelemetry(journal=TelemetryJournal(path=path))
        jobs = [
            Job(small_tmm(), tiny_machine(), variant, num_threads=2)
            for variant in ("lp", "ep")
        ]
        run_jobs(jobs, telemetry=telemetry)
        events = read_journal(path)
        spans = [e for e in events if e["kind"] == "job_span"]
        batches = [e for e in events if e["kind"] == "batch"]
        assert len(spans) == 2
        assert {s["label"] for s in spans} == {"tmm/lp", "tmm/ep"}
        assert len(batches) == 1
        assert batches[0]["jobs"] == 2
        folded = journal_summary(events)
        assert len(folded["telemetry"]["spans"]) == 2


class TestCacheKeyIsolation:
    def test_journal_fields_do_not_change_cache_key(self):
        plans = (plan_to_dict(CrashPlan(at_op=100)),)
        silent = CrashCheckJob(small_tmm(), tiny_machine(), "lp", plans)
        journaled = CrashCheckJob(
            small_tmm(), tiny_machine(), "lp", plans,
            journal_path="/tmp/anything.jsonl", progress=True,
        )
        assert silent.cache_key() == journaled.cache_key()

    def test_key_still_discriminates_real_fields(self):
        plans = (plan_to_dict(CrashPlan(at_op=100)),)
        a = CrashCheckJob(small_tmm(), tiny_machine(), "lp", plans)
        b = CrashCheckJob(small_tmm(), tiny_machine(), "ep", plans)
        assert a.cache_key() != b.cache_key()


class TestWatchOnce:
    def test_placeholder_before_any_renderable_event(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        out = str(tmp_path / "dash.html")
        assert watch_once(journal_path, out) == 0
        assert "waiting for journal events" in open(out).read()

    def test_renders_coverage_mid_stream(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        out = str(tmp_path / "dash.html")
        journal = TelemetryJournal(path=journal_path)
        journal.emit("campaign_point", label="tmm/lp", num_events=3,
                     images_checked=8, bound=10, exhaustive=True,
                     crashed=True)
        assert watch_once(journal_path, out) == 1
        page = open(out).read()
        assert "Verification coverage" in page
        assert "tmm/lp" in page
        assert not os.path.exists(out + ".tmp")

    def test_watcher_tracks_an_appending_writer(self, tmp_path):
        """A watcher polling an actively-appended journal renders a
        consistent snapshot at every step, torn tail included."""
        journal_path = str(tmp_path / "j.jsonl")
        out = str(tmp_path / "dash.html")
        journal = TelemetryJournal(path=journal_path)

        journal.emit("campaign_point", label="tmm/lp", num_events=2,
                     images_checked=4, bound=4, exhaustive=True,
                     crashed=True)
        assert watch_once(journal_path, out) == 1
        assert "4</td>" in open(out).read() or "4" in open(out).read()

        # Writer appends one complete event and one torn half-line.
        journal.emit("campaign_point", label="tmm/lp", num_events=2,
                     images_checked=6, bound=8, exhaustive=True,
                     crashed=True)
        with open(journal_path, "a") as fh:
            fh.write('{"kind": "campaign_point", "images_che')
        assert watch_once(journal_path, out) == 2
        page = open(out).read()
        assert "10 images" in page  # 4 + 6, torn line excluded

        # Writer finishes the torn line; the next render includes it.
        with open(journal_path, "a") as fh:
            fh.write(
                'cked": 5, "label": "tmm/lp", "num_events": 2, '
                '"bound": 8, "exhaustive": true, "crashed": true}\n'
            )
        assert watch_once(journal_path, out) == 3
        assert "15 images" in open(out).read()

    def test_renders_are_byte_deterministic(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        journal = TelemetryJournal(path=journal_path)
        journal.emit("campaign_point", label="w/v", num_events=1,
                     images_checked=2, bound=2, exhaustive=True,
                     crashed=True)
        out_a = str(tmp_path / "a.html")
        out_b = str(tmp_path / "b.html")
        watch_once(journal_path, out_a)
        watch_once(journal_path, out_b)
        assert open(out_a, "rb").read() == open(out_b, "rb").read()
