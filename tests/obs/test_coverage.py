"""Coverage accounting must reconcile exactly with the checker.

``CoverageStats`` is derived data: every number it reports is a fold
over the verification layer's own reports.  These tests pin the fold
— per-epoch sums equal campaign totals, the exhaustive/sampled split
equals the enumerator's frontier decision, bounds dominate image
counts — across three workloads and both sound and broken variants,
plus the single-image campaign and litmus builders and the JSON
round trip.
"""

import pytest

from repro.analysis.crashlab import CrashCampaignResult, CrashTrial
from repro.obs.coverage import (
    COVERAGE_FORMAT_VERSION,
    CoverageStats,
    EpochCoverage,
    coverage_of_campaign,
    coverage_of_crashcheck,
    coverage_of_litmus,
    load_coverage_docs,
)
from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan
from repro.verify import EnumerationPlan, check_variant
from repro.verify.litmus import check_model, generate_programs
from repro.workloads import get_workload

PLAN = EnumerationPlan(max_exhaustive_events=12, samples=16, seed=0)

#: Three workloads x sound schemes (params sized for test speed).
SOUND_CASES = [
    ("tmm", {"n": 8, "bsize": 4, "kk_tiles": 1}, "lp",
     [CrashPlan(at_op=o) for o in (200, 400)]),
    ("fft", {"n": 16}, "ep",
     [CrashPlan(at_op=120), CrashPlan(at_flush=2)]),
    ("gauss", {"n": 8, "row_block": 4}, "lp",
     [CrashPlan(at_op=60), CrashPlan(at_flush=1)]),
]


def run_check(workload, params, variant, plans, plan=PLAN):
    wl = get_workload(workload)(**params)
    return check_variant(wl, tiny_machine(), variant, plans, plan)


@pytest.fixture(scope="module")
def sound_reports():
    return [
        (run_check(w, p, v, plans), plans)
        for (w, p, v, plans) in SOUND_CASES
    ]


@pytest.fixture(scope="module")
def broken_report():
    wl = get_workload("tmm")(n=8, bsize=4, kk_tiles=1)
    return check_variant(
        wl, tiny_machine(), "ep_nofence",
        [CrashPlan(at_flush=n) for n in (10, 20)], PLAN,
    )


class TestCrashcheckReconciliation:
    def test_totals_match_report(self, sound_reports):
        for report, plans in sound_reports:
            cov = coverage_of_crashcheck(report)
            assert cov.kind == "crashcheck"
            assert cov.label == f"{report.workload}/{report.variant}"
            assert cov.points == len(report.points) == len(plans)
            assert cov.crashed_points == sum(
                1 for p in report.points if p.crashed
            )
            assert cov.images_checked == report.images_checked
            assert cov.images_checked == sum(
                p.images_checked for p in report.points
            )
            assert cov.images_diverged == 0
            assert cov.counterexamples == 0
            assert cov.ok

    def test_epoch_sums_equal_totals(self, sound_reports, broken_report):
        reports = [r for r, _ in sound_reports] + [broken_report]
        for report in reports:
            cov = coverage_of_crashcheck(report)
            crashed = [p for p in report.points if p.crashed]
            assert sum(e.points for e in cov.epochs) == len(crashed)
            assert sum(e.images_checked for e in cov.epochs) == sum(
                p.images_checked for p in crashed
            )
            assert sum(e.images_diverged for e in cov.epochs) == sum(
                p.images_diverged for p in crashed
            )
            assert sum(e.bound for e in cov.epochs) == sum(
                p.bound for p in crashed
            )
            assert cov.enumeration_bound == sum(e.bound for e in cov.epochs)
            # Epochs are keyed and sorted by event count.
            counts = [e.num_events for e in cov.epochs]
            assert counts == sorted(set(counts))

    def test_exhaustive_split_matches_frontier(self, sound_reports):
        for report, _ in sound_reports:
            cov = coverage_of_crashcheck(report)
            by_events = {e.num_events: e for e in cov.epochs}
            for point in report.points:
                if not point.crashed:
                    continue
                expected = point.num_events <= PLAN.max_exhaustive_events
                assert point.exhaustive == expected
                assert by_events[point.num_events].exhaustive == expected
            assert cov.exhaustive_points + cov.sampled_points == sum(
                1 for p in report.points if p.crashed
            )
            assert (
                cov.exhaustive_images + cov.sampled_images
                == sum(p.images_checked for p in report.points if p.crashed)
            )

    def test_bound_dominates_images_checked(self, sound_reports):
        for report, _ in sound_reports:
            for point in report.points:
                if point.crashed:
                    assert point.images_checked <= point.bound
                    assert point.bound >= 1

    def test_wall_clock_and_rate(self, sound_reports):
        report, _ = sound_reports[0]
        cov = coverage_of_crashcheck(report)
        assert cov.wall_s == pytest.approx(
            sum(p.wall_s for p in report.points)
        )
        assert cov.wall_s > 0.0
        assert cov.images_per_sec() == pytest.approx(
            cov.images_checked / cov.wall_s
        )

    def test_report_coverage_method_matches_builder(self, sound_reports):
        report, _ = sound_reports[0]
        assert report.coverage().to_dict() == (
            coverage_of_crashcheck(report).to_dict()
        )


class TestBrokenVariantCoverage:
    def test_divergence_and_shrinking_are_counted(self, broken_report):
        cov = coverage_of_crashcheck(broken_report)
        assert not broken_report.ok
        assert not cov.ok
        assert cov.counterexamples == sum(
            len(p.counterexamples) for p in broken_report.points
        )
        assert cov.counterexamples >= 1
        assert cov.images_diverged >= cov.counterexamples
        assert cov.images_recovered == (
            cov.images_checked - cov.images_diverged
        )
        assert cov.shrink_steps == sum(
            p.shrink_steps for p in broken_report.points
        )


class TestSampledEpochs:
    def test_sampled_points_use_sample_bound(self):
        # Force the frontier below real event counts: every crashed
        # point with events lands in a sampled epoch whose bound is
        # samples + 3 (floor/full/schedule are always included).
        plan = EnumerationPlan(max_exhaustive_events=2, samples=5, seed=0)
        report = run_check(
            "tmm", {"n": 8, "bsize": 4, "kk_tiles": 1}, "lp",
            [CrashPlan(at_op=400)], plan=plan,
        )
        cov = coverage_of_crashcheck(report)
        sampled = [e for e in cov.epochs if not e.exhaustive]
        assert sampled, "expected at least one sampled epoch"
        for epoch in sampled:
            assert epoch.num_events > plan.max_exhaustive_events
            assert epoch.bound == (plan.samples + 3) * epoch.points
            assert epoch.images_checked <= epoch.bound
        assert cov.exhaustive_fraction() < 1.0


class TestCampaignCoverage:
    def test_one_image_per_trial(self):
        result = CrashCampaignResult(
            workload="tmm",
            trials=[
                CrashTrial(100, True, True, 10, 5, 50.0),
                CrashTrial(200, True, False, 20, 5, 50.0),
                CrashTrial(900, False, True, 30, 0, 0.0),
            ],
        )
        cov = coverage_of_campaign(result)
        assert cov.kind == "campaign"
        assert cov.label == "tmm"
        assert cov.points == 3
        assert cov.crashed_points == 2
        assert cov.images_checked == 3
        assert cov.images_diverged == 1
        assert not cov.ok
        # Single-image trials all land in one sampled pseudo-epoch, and
        # its image count equals the trial count (every trial verifies
        # exactly one image, graceful completions included).
        assert len(cov.epochs) == 1
        assert cov.epochs[0].num_events == 0
        assert not cov.epochs[0].exhaustive
        assert cov.epochs[0].points == 3
        assert sum(e.images_checked for e in cov.epochs) == (
            len(result.trials)
        )
        assert result.coverage().to_dict() == cov.to_dict()


class TestLitmusCoverage:
    @pytest.fixture(scope="class")
    def verdict(self):
        return check_model("epoch", generate_programs(limit=12))

    def test_reconciles_with_verdict(self, verdict):
        cov = coverage_of_litmus(verdict)
        assert cov.kind == "litmus"
        assert cov.label == "epoch"
        assert cov.points == len(verdict.program_points)
        assert cov.images_checked == verdict.images_checked
        assert cov.images_checked == sum(
            images for _, images, _ in verdict.program_points
        )
        assert cov.wall_s == verdict.wall_s
        # Litmus enumeration is always exhaustive.
        assert all(e.exhaustive for e in cov.epochs)
        assert cov.exhaustive_fraction() == 1.0
        assert verdict.coverage().to_dict() == cov.to_dict()

    def test_divergent_model_counts_counterexamples(self):
        verdict = check_model("eadr_nofence", generate_programs(limit=12))
        cov = coverage_of_litmus(verdict)
        assert cov.counterexamples == sum(
            1 for _, _, divergent in verdict.program_points if divergent
        )
        assert cov.counterexamples >= 1
        assert cov.images_diverged >= cov.counterexamples
        assert not cov.ok


class TestSerialization:
    def doc(self):
        cov = CoverageStats(label="w/v")
        cov.add_point(3, 8, bound=10, exhaustive=True, wall_s=0.5)
        cov.add_point(3, 4, images_diverged=1, bound=8, exhaustive=True,
                      counterexamples=1, shrink_steps=2, wall_s=0.25)
        cov.add_point(20, 19, bound=19, exhaustive=False, wall_s=1.0)
        cov.add_point(0, 0, crashed=False)
        return cov

    def test_round_trip(self):
        cov = self.doc()
        data = cov.to_dict()
        assert data["format"] == COVERAGE_FORMAT_VERSION
        back = CoverageStats.from_dict(data)
        assert back.to_dict() == data
        assert back.images_recovered == cov.images_recovered
        assert back.enumeration_bound == cov.enumeration_bound
        assert back.exhaustive_fraction() == pytest.approx(
            cov.exhaustive_fraction()
        )

    def test_derived_fields_recompute(self):
        cov = self.doc()
        data = cov.to_dict()
        assert data["images_recovered"] == (
            data["images_checked"] - data["images_diverged"]
        )
        assert data["exhaustive_images"] + data["sampled_images"] == sum(
            e["images_checked"] for e in data["epochs"]
        )
        assert data["enumeration_bound"] == sum(
            e["bound"] for e in data["epochs"]
        )

    def test_epoch_round_trip(self):
        epoch = EpochCoverage(5, points=2, images_checked=7,
                              images_diverged=1, bound=9, exhaustive=True)
        assert EpochCoverage.from_dict(epoch.to_dict()) == epoch
        assert epoch.images_recovered == 6

    def test_summary_mentions_label_and_images(self):
        cov = self.doc()
        line = cov.summary()
        assert "w/v" in line
        assert "31 images" in line
        assert "img/s" in line

    def test_load_coverage_docs_shapes(self):
        doc = self.doc().to_dict()
        assert load_coverage_docs(doc) == [doc]
        assert load_coverage_docs([doc, doc]) == [doc, doc]
        assert load_coverage_docs({"a": doc}) == [doc]
        with pytest.raises(ValueError):
            load_coverage_docs("nope")
