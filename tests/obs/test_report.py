"""RunReport manifests: building, round-tripping, rendering."""

import json

import pytest

from repro.analysis.experiments import run_variant
from repro.analysis.runner import code_version
from repro.errors import ConfigError
from repro.obs import RunReport, render_reports
from repro.obs.report import REPORT_SCHEMA_VERSION, config_hash
from repro.sim.config import tiny_machine
from repro.workloads import get_workload

from tests.obs.conftest import TINY_PARAMS


@pytest.fixture(scope="module")
def lp_report():
    config = tiny_machine()
    result = run_variant(
        get_workload("tmm")(**TINY_PARAMS),
        config,
        "lp",
        num_threads=2,
    )
    return RunReport.from_result(
        result, config, wall_clock_s=1.25, workload_params=dict(TINY_PARAMS)
    )


class TestManifest:
    def test_identity_fields(self, lp_report):
        assert lp_report.workload == "tmm"
        assert lp_report.variant == "lp"
        assert lp_report.num_threads == 2
        assert lp_report.timing == "detailed"
        assert lp_report.seed == tiny_machine().schedule_seed
        assert lp_report.code_version == code_version()
        assert lp_report.config_hash == config_hash(tiny_machine())
        assert lp_report.wall_clock_s == 1.25
        assert lp_report.schema == REPORT_SCHEMA_VERSION

    def test_metrics_cover_summary_and_breakdowns(self, lp_report):
        assert "exec_cycles" in lp_report.metrics
        assert "verified" in lp_report.metrics
        assert "total_writes" in lp_report.metrics
        assert all(
            isinstance(v, float) for v in lp_report.metrics.values()
        )

    def test_config_hash_tracks_config(self):
        a = config_hash(tiny_machine())
        b = config_hash(tiny_machine().with_timing("functional"))
        assert a != b


class TestRoundTrip:
    def test_save_load(self, lp_report, tmp_path):
        path = tmp_path / "run.report.json"
        lp_report.save(str(path))
        assert RunReport.load(str(path)) == lp_report

    def test_save_is_sorted_json(self, lp_report, tmp_path):
        path = tmp_path / "run.report.json"
        lp_report.save(str(path))
        data = json.loads(path.read_text())
        assert list(data) == sorted(data)

    def test_load_rejects_wrong_schema(self, lp_report, tmp_path):
        path = tmp_path / "bad.json"
        data = lp_report.to_dict()
        data["schema"] = REPORT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigError):
            RunReport.load(str(path))

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json{")
        with pytest.raises(ConfigError):
            RunReport.load(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(ConfigError):
            RunReport.load(str(path))
        path.write_text(json.dumps({"schema": REPORT_SCHEMA_VERSION}))
        with pytest.raises(ConfigError):
            RunReport.load(str(path))


class TestRendering:
    def test_single_report_table(self, lp_report):
        text = render_reports([lp_report])
        assert "exec_cycles" in text
        assert "tmm/lp" in text
        assert lp_report.config_hash in text

    def test_comparison_normalizes_to_first(self, lp_report):
        other = RunReport.from_dict(lp_report.to_dict())
        other.variant = "ep"
        other.metrics = dict(other.metrics)
        other.metrics["exec_cycles"] = lp_report.metrics["exec_cycles"] * 2
        text = render_reports([lp_report, other])
        assert "(x1.000)" in text
        assert "(x2.000)" in text

    def test_markdown_format(self, lp_report):
        text = render_reports([lp_report], fmt="md")
        assert text.count("|") > 10
        assert "| --- |" in text.replace("| --- | --- |", "| --- |")

    def test_missing_metric_renders_dash(self, lp_report):
        other = RunReport.from_dict(lp_report.to_dict())
        other.metrics = {"exec_cycles": 1.0}
        text = render_reports([lp_report, other])
        assert "-" in text

    def test_rejects_empty_and_unknown_format(self, lp_report):
        with pytest.raises(ConfigError):
            render_reports([])
        with pytest.raises(ConfigError):
            render_reports([lp_report], fmt="html")


class TestObsDerivationRows:
    """``obs path`` / ``obs fallback`` manifest rows: absent on plain
    machine-tier comparisons, present (with ``-`` padding) as soon as
    any report carries a derivation path."""

    def test_plain_reports_have_no_obs_rows(self, lp_report):
        assert lp_report.obs_path is None
        text = render_reports([lp_report])
        assert "obs path" not in text
        assert "obs fallback" not in text

    def test_stream_report_shows_obs_path(self, lp_report):
        stream = RunReport.from_dict(lp_report.to_dict())
        stream.obs_path = "stream"
        text = render_reports([stream])
        assert "obs path" in text
        assert "stream" in text
        assert "obs fallback" not in text  # no fallback happened

    def test_fallback_reason_surfaces_across_comparison(self, lp_report):
        fell_back = RunReport.from_dict(lp_report.to_dict())
        fell_back.variant = "ep"
        fell_back.obs_path = "probe-bus"
        fell_back.obs_fallback_reason = "trace capture unsupported"
        text = render_reports([lp_report, fell_back])
        assert "obs path" in text
        assert "probe-bus" in text
        assert "obs fallback" in text
        assert "trace capture unsupported" in text

    def test_obs_fields_round_trip(self, lp_report, tmp_path):
        report = RunReport.from_dict(lp_report.to_dict())
        report.obs_path = "stream"
        report.obs_fallback_reason = None
        path = tmp_path / "r.json"
        report.save(str(path))
        loaded = RunReport.load(str(path))
        assert loaded.obs_path == "stream"
        assert loaded.obs_fallback_reason is None

    def test_old_reports_without_obs_fields_still_load(
        self, lp_report, tmp_path
    ):
        data = lp_report.to_dict()
        data.pop("obs_path")
        data.pop("obs_fallback_reason")
        loaded = RunReport.from_dict(data)
        assert loaded.obs_path is None
        assert loaded.obs_fallback_reason is None
