"""Exact reconciliation: probe events vs MachineStats counters.

For every registered workload x sound variant, under both timing
models, the recorded event stream and the interval-series totals must
sum *exactly* to the counters the simulator kept itself — no sampling
slop, no off-by-one.  This is the contract that makes the trace and
the time series trustworthy as debugging evidence.
"""

import pytest

from repro.obs import (
    IntervalSampler,
    StallFlame,
    TraceRecorder,
    WriteHeatmap,
    probed,
)
from repro.obs.profile import UNMAPPED
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import tiny_machine
from repro.sim.isa import Compute, Fence, Flush, FlushWB, Load, Store
from repro.sim.machine import Machine
from repro.workloads import available_workloads, get_workload

#: Crashcheck-sized problems: small enough that the full grid of
#: (workload, variant, timing) runs stays fast.
SMALL_PARAMS = {
    "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
    "fft": {"n": 16},
    "gauss": {"n": 8, "row_block": 4},
    "cholesky": {"n": 8, "col_block": 4},
    "conv2d": {"n": 8, "row_block": 2},
    "log": {"records": 4, "width": 2, "wb_batch": 2},
    "hashmap": {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2},
}

CASES = [
    (name, variant, timing)
    for name in available_workloads()
    for variant in get_workload(name).variants
    for timing in ("detailed", "functional")
]


@pytest.fixture(scope="module")
def recorded_runs():
    """Run every case once; tests then assert different invariants."""
    runs = {}
    for name, variant, timing in CASES:
        wl = get_workload(name)(**SMALL_PARAMS.get(name, {}))
        config = tiny_machine()
        if timing != config.timing:
            config = config.with_timing(timing)
        machine = Machine(config)
        machine.cleaner = PeriodicCleaner(500.0)
        bound = wl.bind(machine, num_threads=2, engine="modular")
        # Provenance tagging on: the profiling observers below get
        # Phase frames to attribute stalls to, and every other
        # reconciliation below doubles as proof that tagging perturbs
        # no counter.
        bound.provenance = True
        recorder = TraceRecorder()
        sampler = IntervalSampler(500.0)
        heatmap = WriteHeatmap()
        flame = StallFlame(root=f"{name}/{variant}")
        with probed(machine, [recorder, sampler, heatmap, flame]):
            result = machine.run(bound.threads(variant))
        runs[(name, variant, timing)] = (
            recorder, sampler, heatmap, flame, result.stats
        )
    return runs


@pytest.mark.parametrize("name,variant,timing", CASES)
class TestEventCounts:
    def test_writebacks_match_nvmm_writes(
        self, recorded_runs, name, variant, timing
    ):
        recorder, _, _, _, stats = recorded_runs[(name, variant, timing)]
        assert len(recorder.writebacks) == stats.nvmm_writes
        by_cause = {}
        for ev in recorder.writebacks:
            by_cause[ev.cause] = by_cause.get(ev.cause, 0) + 1
        assert by_cause == dict(stats.writes_by_cause)

    def test_reads_match_nvmm_reads(
        self, recorded_runs, name, variant, timing
    ):
        recorder, _, _, _, stats = recorded_runs[(name, variant, timing)]
        assert len(recorder.nvmm_reads) == stats.nvmm_reads

    def test_op_counts_match_core_stats(
        self, recorded_runs, name, variant, timing
    ):
        # Scheduler-level Barrier ops never reach Core.execute, so the
        # reconciled population is the per-type core counters, not raw
        # ``ops``.
        recorder, _, _, _, stats = recorded_runs[(name, variant, timing)]
        counts = recorder.op_counts()
        expected = {
            Load: sum(c.loads for c in stats.per_core),
            Store: sum(c.stores for c in stats.per_core),
            Compute: sum(c.computes for c in stats.per_core),
            Fence: sum(c.fences for c in stats.per_core),
        }
        for op_type, want in expected.items():
            assert counts.get(op_type, 0) == want, op_type
        flushes = counts.get(Flush, 0) + counts.get(FlushWB, 0)
        assert flushes == sum(c.flushes for c in stats.per_core)

    def test_fence_stall_cycles_match(
        self, recorded_runs, name, variant, timing
    ):
        recorder, _, _, _, stats = recorded_runs[(name, variant, timing)]
        recorded = sum(
            ev.cycles
            for ev in recorder.stalls
            if ev.cause == "fence_drain"
        )
        expected = sum(c.fence_stall_cycles for c in stats.per_core)
        assert recorded == pytest.approx(expected, abs=1e-9)

    def test_hazard_events_match_legacy_counters(
        self, recorded_runs, name, variant, timing
    ):
        recorder, _, _, _, stats = recorded_runs[(name, variant, timing)]
        totals = stats.hazard_totals()
        by_legacy = {}
        for ev in recorder.hazards:
            by_legacy[ev.legacy] = by_legacy.get(ev.legacy, 0) + 1
        assert by_legacy.get("mshr_full_events", 0) == totals["mshr"]
        assert by_legacy.get("fu_read_events", 0) == totals["fur"]
        assert by_legacy.get("fu_write_events", 0) == totals["fuw"]
        # FUI = hazard events on the legacy counter + the issue slots
        # the ledger folds in per stall (StallCharged.lost_slots).
        lost = sum(ev.lost_slots for ev in recorder.stalls)
        assert (
            by_legacy.get("fu_int_events", 0) + lost == totals["fui"]
        )

    def test_functional_model_never_stalls(
        self, recorded_runs, name, variant, timing
    ):
        if timing != "functional":
            pytest.skip("detailed-model case")
        recorder, _, _, _, _ = recorded_runs[(name, variant, timing)]
        assert recorder.stalls == []
        assert recorder.hazards == []


@pytest.mark.parametrize("name,variant,timing", CASES)
class TestIntervalTotals:
    def test_write_totals_match(self, recorded_runs, name, variant, timing):
        _, sampler, _, _, stats = recorded_runs[(name, variant, timing)]
        totals = sampler.totals()
        for cause, count in stats.writes_by_cause.items():
            assert totals.get(f"writes.{cause}", 0) == count
        written = sum(
            v for k, v in totals.items() if k.startswith("writes.")
        )
        assert written == stats.nvmm_writes

    def test_stall_cycle_totals_match_ledger(
        self, recorded_runs, name, variant, timing
    ):
        _, sampler, _, _, stats = recorded_runs[(name, variant, timing)]
        totals = sampler.totals()
        for cause, cycles in stats.ledger.stall_cycles.items():
            if cause == "mc_write_queue":
                # Charged via ledger.queue_delay, mirrored per-write in
                # the queue_delay_cycles column instead.
                column = totals.get("queue_delay_cycles", 0.0)
            else:
                column = totals.get(f"stalls.{cause}", 0.0)
            assert column == pytest.approx(cycles, abs=1e-9), cause

    def test_ops_and_fences_match(
        self, recorded_runs, name, variant, timing
    ):
        # ops.core<i> counts every op reaching Core.execute, which
        # includes counter-less RegionMark ops — so the exact anchor is
        # the recorder's per-core stream (whose per-type counts are
        # pinned to CoreStats by TestEventCounts), not the type sums.
        recorder, sampler, _, _, stats = recorded_runs[(name, variant, timing)]
        totals = sampler.totals()
        for core_id in recorder.core_ids():
            want = sum(recorder.op_counts(core_id).values())
            assert totals.get(f"ops.core{core_id}", 0) == want
        assert totals.get("fences", 0) == sum(
            c.fences for c in stats.per_core
        )

    def test_reads_and_misses_match(
        self, recorded_runs, name, variant, timing
    ):
        _, sampler, _, _, stats = recorded_runs[(name, variant, timing)]
        totals = sampler.totals()
        assert totals.get("nvmm_reads", 0) == stats.nvmm_reads
        assert totals.get("l1_misses", 0) == sum(
            c.l1_misses for c in stats.per_core
        )


@pytest.mark.parametrize("name,variant,timing", CASES)
class TestHeatmapTotals:
    """WriteHeatmap vs MachineStats: same MC accepts, same counts."""

    def test_line_totals_match_stats(
        self, recorded_runs, name, variant, timing
    ):
        _, _, heatmap, _, stats = recorded_runs[(name, variant, timing)]
        assert heatmap.line_totals() == dict(stats.writes_per_line)

    def test_cause_totals_match_stats(
        self, recorded_runs, name, variant, timing
    ):
        _, _, heatmap, _, stats = recorded_runs[(name, variant, timing)]
        assert heatmap.totals_by_cause() == dict(stats.writes_by_cause)
        assert heatmap.total_writes == stats.nvmm_writes

    def test_every_written_line_maps_to_a_region(
        self, recorded_runs, name, variant, timing
    ):
        # Workload traffic goes through the allocator, so no written
        # line may fall in the UNMAPPED bucket.
        _, _, heatmap, _, _ = recorded_runs[(name, variant, timing)]
        for line in heatmap.line_totals():
            assert heatmap.region_name(line) != UNMAPPED, hex(line)

    def test_region_summary_accounts_for_every_write(
        self, recorded_runs, name, variant, timing
    ):
        _, _, heatmap, _, stats = recorded_runs[(name, variant, timing)]
        summary = heatmap.region_summary()
        assert (
            sum(info["writes"] for info in summary.values())
            == stats.nvmm_writes
        )
        for info in summary.values():
            assert sum(info["writes_by_cause"].values()) == info["writes"]
            assert info["lines_touched"] <= max(info["region_lines"], 1)


@pytest.mark.parametrize("name,variant,timing", CASES)
class TestFlameTotals:
    """StallFlame vs the ledger: bit-exact per-cause stall cycles."""

    def test_cause_totals_match_ledger_exactly(
        self, recorded_runs, name, variant, timing
    ):
        # No approx here: the observer accumulates the same addends in
        # the same order as the ledger, so float sums are bit-identical.
        _, _, _, flame, stats = recorded_runs[(name, variant, timing)]
        assert flame.totals_by_cause() == dict(stats.ledger.stall_cycles)

    def test_stacks_account_for_every_cycle(
        self, recorded_runs, name, variant, timing
    ):
        _, _, _, flame, _ = recorded_runs[(name, variant, timing)]
        by_cause = {}
        for key, cycles in flame.stacks().items():
            by_cause[key[-1]] = by_cause.get(key[-1], 0.0) + cycles
        for cause, cycles in flame.totals_by_cause().items():
            assert by_cause.get(cause, 0.0) == pytest.approx(
                cycles, abs=1e-9
            ), cause

    def test_functional_model_yields_empty_flame(
        self, recorded_runs, name, variant, timing
    ):
        if timing != "functional":
            pytest.skip("detailed-model case")
        _, _, _, flame, _ = recorded_runs[(name, variant, timing)]
        assert flame.totals_by_cause() == {}
        assert flame.collapsed() == ""

    def test_collapsed_output_parses_and_roots_correctly(
        self, recorded_runs, name, variant, timing
    ):
        _, _, _, flame, _ = recorded_runs[(name, variant, timing)]
        text = flame.collapsed()
        for line in text.splitlines():
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert frames.split(";")[0] == f"{name}/{variant}"
