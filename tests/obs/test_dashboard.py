"""The HTML dashboard: reports, telemetry, coverage — one static page."""

import os

import pytest

from repro.analysis.experiments import run_variant
from repro.errors import ConfigError
from repro.obs import CoverageStats, RunReport, render_dashboard
from repro.sim.config import tiny_machine

from tests.analysis.test_stream_tier import _wl

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")

TELEMETRY = {
    "workers": 2,
    "wall_clock_s": 0.5,
    "spans": [
        {"label": "tmm/lp", "status": "run",
         "start_s": 0.0, "end_s": 0.4, "wall_s": 0.4},
        {"label": "tmm/ep", "status": "hit",
         "start_s": 0.4, "end_s": 0.41, "wall_s": 0.01},
    ],
    "cache": {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
              "hit_rate": 0.5},
    "summary": {"jobs": 2, "hits": 1, "runs": 1, "workers": 2,
                "wall_clock_s": 0.5, "busy_s": 0.41,
                "utilization": 0.41,
                "cache": {"hit_rate": 0.5}},
}


@pytest.fixture(scope="module")
def obs_report():
    """A stream-tier run with the full derived surface in the manifest."""
    config = tiny_machine()
    result = run_variant(
        _wl(), config, "lp", num_threads=2,
        obs_interval=500.0, tier="stream",
    )
    return RunReport.from_result(
        result, config, wall_clock_s=0.2, telemetry=TELEMETRY
    )


class TestRenderDashboard:
    def test_is_a_self_contained_document(self, obs_report):
        page = render_dashboard([obs_report])
        assert page.startswith("<!DOCTYPE html>")
        assert page.endswith("</html>")
        assert "<script" not in page  # static: renders anywhere
        assert "http" not in page.split("</style>")[1]  # no external assets

    def test_report_card_content(self, obs_report):
        page = render_dashboard([obs_report])
        assert "tmm/lp" in page
        assert "exec cycles" in page
        # Interval sparklines and heatmap bars made it in as inline SVG.
        assert "<polyline" in page
        assert "ops.core0" in page
        assert "write heatmap" in page
        assert "<rect" in page

    def test_telemetry_section(self, obs_report):
        page = render_dashboard([obs_report], telemetry=TELEMETRY)
        assert "Harness telemetry" in page
        assert "job timeline" in page
        assert "span-hit" in page and "span-run" in page
        assert "cache hit rate" in page

    def test_telemetry_falls_back_to_report_snapshot(self, obs_report):
        assert obs_report.telemetry is not None
        page = render_dashboard([obs_report])
        assert "Harness telemetry" in page

    def test_telemetry_only_page(self):
        page = render_dashboard([], telemetry=TELEMETRY)
        assert "Harness telemetry" in page
        assert "Runs" not in page

    def test_comparison_table_for_multiple_reports(self, obs_report):
        other = RunReport.from_dict(obs_report.to_dict())
        other.variant = "ep"
        page = render_dashboard([obs_report, other])
        assert "Metric comparison" in page
        assert "tmm/ep" in page

    def test_nothing_to_render_rejected(self):
        with pytest.raises(ConfigError):
            render_dashboard([])

    def test_labels_are_escaped(self, obs_report):
        hostile = RunReport.from_dict(obs_report.to_dict())
        hostile.variant = "<script>alert(1)</script>"
        page = render_dashboard([hostile])
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page


def coverage_docs():
    """Handcrafted coverage documents (no run-dependent fields), shared
    by the panel tests and the committed golden page."""
    lp = CoverageStats(label="tmm/lp")
    lp.add_point(3, 8, bound=10, exhaustive=True, wall_s=0.5)
    lp.add_point(14, 19, bound=19, exhaustive=False, wall_s=1.0)
    broken = CoverageStats(label="tmm/ep_nofence")
    broken.add_point(5, 32, images_diverged=15, bound=32, exhaustive=True,
                     counterexamples=1, shrink_steps=4, wall_s=0.25)
    litmus = CoverageStats(label="adr", kind="litmus")
    litmus.add_point(2, 3, bound=3, exhaustive=True)
    return [lp.to_dict(), broken.to_dict(), litmus.to_dict()]


class TestCoveragePanel:
    def test_coverage_only_page(self):
        page = render_dashboard([], coverage=coverage_docs())
        assert "Verification coverage" in page
        assert "Harness telemetry" not in page
        assert "Runs" not in page

    def test_epoch_strip_colors_by_frontier(self):
        page = render_dashboard([], coverage=coverage_docs())
        assert "epoch-ex" in page  # exhaustive epochs
        assert "epoch-sm" in page  # the sampled 14-event epoch
        assert "3ev" in page and "14ev" in page

    def test_grid_splits_labels_and_marks_divergence(self):
        page = render_dashboard([], coverage=coverage_docs())
        assert "<th>lp</th>" in page
        assert "<th>ep_nofence</th>" in page
        assert "<th>litmus</th>" in page  # slash-less label gets kind col
        assert "cov-bad" in page and "&#x2717;" in page

    def test_tiles_aggregate_across_docs(self):
        page = render_dashboard([], coverage=coverage_docs())
        assert "images checked" in page
        assert "62" in page  # 8 + 19 + 32 + 3
        assert "images/sec" in page

    def test_doc_without_epochs_gets_placeholder(self):
        empty = CoverageStats(label="w/v")
        empty.add_point(0, 0, crashed=False)
        page = render_dashboard([], coverage=[empty.to_dict()])
        assert "no crashed points yet" in page

    def test_coverage_composes_with_telemetry_and_reports(self, obs_report):
        page = render_dashboard(
            [obs_report], telemetry=TELEMETRY, coverage=coverage_docs()
        )
        assert "Harness telemetry" in page
        assert "Verification coverage" in page
        assert "Runs" in page

    def test_hostile_labels_are_escaped(self):
        doc = CoverageStats(label="<b>x</b>/<i>y</i>")
        doc.add_point(1, 1, bound=1)
        page = render_dashboard([], coverage=[doc.to_dict()])
        assert "<b>x</b>" not in page
        assert "&lt;b&gt;x&lt;/b&gt;" in page


class TestEdgeCases:
    def test_empty_telemetry_renders(self):
        page = render_dashboard(
            [], telemetry={"workers": 1, "wall_clock_s": 0.0,
                           "spans": [], "cache": None}
        )
        assert "Harness telemetry" in page
        assert "no spans recorded" in page

    def test_single_job_telemetry_renders(self):
        telemetry = {
            "workers": 1,
            "wall_clock_s": 0.4,
            "spans": [{"label": "tmm/lp", "status": "run",
                       "start_s": 0.0, "end_s": 0.4, "wall_s": 0.4}],
            "cache": None,
            "summary": {"jobs": 1, "hits": 0, "runs": 1, "workers": 1,
                        "wall_clock_s": 0.4, "busy_s": 0.4,
                        "utilization": 1.0},
        }
        page = render_dashboard([], telemetry=telemetry)
        assert "tmm/lp" in page
        assert "span-run" in page


class TestGoldenDashboard:
    """The dashboard must be byte-deterministic: identical inputs give
    identical bytes (CI artifacts diff cleanly across reruns).

    Regenerate the committed page after an intentional layout change::

        PYTHONPATH=src:. python -c "
        from repro.obs import render_dashboard
        from tests.obs.test_dashboard import TELEMETRY, coverage_docs
        open('tests/obs/golden/dashboard.golden.html', 'w').write(
            render_dashboard([], telemetry=TELEMETRY,
                             coverage=coverage_docs()))"
    """

    def test_render_is_deterministic(self):
        a = render_dashboard([], telemetry=TELEMETRY,
                             coverage=coverage_docs())
        b = render_dashboard([], telemetry=TELEMETRY,
                             coverage=coverage_docs())
        assert a == b

    def test_matches_committed_golden_bytes(self):
        page = render_dashboard([], telemetry=TELEMETRY,
                                coverage=coverage_docs())
        with open(os.path.join(GOLDEN, "dashboard.golden.html")) as fh:
            assert page == fh.read()


class TestReportObsFields:
    def test_round_trip_preserves_derived_surface(
        self, obs_report, tmp_path
    ):
        path = tmp_path / "obs.report.json"
        obs_report.save(str(path))
        loaded = RunReport.load(str(path))
        assert loaded == obs_report
        assert loaded.intervals == obs_report.intervals
        assert loaded.heatmap == obs_report.heatmap
        assert loaded.telemetry == TELEMETRY

    def test_plain_reports_omit_nothing_silently(self):
        config = tiny_machine()
        result = run_variant(_wl(), config, "lp", num_threads=2)
        report = RunReport.from_result(result, config, wall_clock_s=0.1)
        assert report.intervals is None
        assert report.heatmap is None
        assert report.telemetry is None
