"""The HTML dashboard: reports + harness telemetry, one static page."""

import pytest

from repro.analysis.experiments import run_variant
from repro.errors import ConfigError
from repro.obs import RunReport, render_dashboard
from repro.sim.config import tiny_machine

from tests.analysis.test_stream_tier import _wl

TELEMETRY = {
    "workers": 2,
    "wall_clock_s": 0.5,
    "spans": [
        {"label": "tmm/lp", "status": "run",
         "start_s": 0.0, "end_s": 0.4, "wall_s": 0.4},
        {"label": "tmm/ep", "status": "hit",
         "start_s": 0.4, "end_s": 0.41, "wall_s": 0.01},
    ],
    "cache": {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
              "hit_rate": 0.5},
    "summary": {"jobs": 2, "hits": 1, "runs": 1, "workers": 2,
                "wall_clock_s": 0.5, "busy_s": 0.41,
                "utilization": 0.41,
                "cache": {"hit_rate": 0.5}},
}


@pytest.fixture(scope="module")
def obs_report():
    """A stream-tier run with the full derived surface in the manifest."""
    config = tiny_machine()
    result = run_variant(
        _wl(), config, "lp", num_threads=2,
        obs_interval=500.0, tier="stream",
    )
    return RunReport.from_result(
        result, config, wall_clock_s=0.2, telemetry=TELEMETRY
    )


class TestRenderDashboard:
    def test_is_a_self_contained_document(self, obs_report):
        page = render_dashboard([obs_report])
        assert page.startswith("<!DOCTYPE html>")
        assert page.endswith("</html>")
        assert "<script" not in page  # static: renders anywhere
        assert "http" not in page.split("</style>")[1]  # no external assets

    def test_report_card_content(self, obs_report):
        page = render_dashboard([obs_report])
        assert "tmm/lp" in page
        assert "exec cycles" in page
        # Interval sparklines and heatmap bars made it in as inline SVG.
        assert "<polyline" in page
        assert "ops.core0" in page
        assert "write heatmap" in page
        assert "<rect" in page

    def test_telemetry_section(self, obs_report):
        page = render_dashboard([obs_report], telemetry=TELEMETRY)
        assert "Harness telemetry" in page
        assert "job timeline" in page
        assert "span-hit" in page and "span-run" in page
        assert "cache hit rate" in page

    def test_telemetry_falls_back_to_report_snapshot(self, obs_report):
        assert obs_report.telemetry is not None
        page = render_dashboard([obs_report])
        assert "Harness telemetry" in page

    def test_telemetry_only_page(self):
        page = render_dashboard([], telemetry=TELEMETRY)
        assert "Harness telemetry" in page
        assert "Runs" not in page

    def test_comparison_table_for_multiple_reports(self, obs_report):
        other = RunReport.from_dict(obs_report.to_dict())
        other.variant = "ep"
        page = render_dashboard([obs_report, other])
        assert "Metric comparison" in page
        assert "tmm/ep" in page

    def test_nothing_to_render_rejected(self):
        with pytest.raises(ConfigError):
            render_dashboard([])

    def test_labels_are_escaped(self, obs_report):
        hostile = RunReport.from_dict(obs_report.to_dict())
        hostile.variant = "<script>alert(1)</script>"
        page = render_dashboard([hostile])
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page


class TestReportObsFields:
    def test_round_trip_preserves_derived_surface(
        self, obs_report, tmp_path
    ):
        path = tmp_path / "obs.report.json"
        obs_report.save(str(path))
        loaded = RunReport.load(str(path))
        assert loaded == obs_report
        assert loaded.intervals == obs_report.intervals
        assert loaded.heatmap == obs_report.heatmap
        assert loaded.telemetry == TELEMETRY

    def test_plain_reports_omit_nothing_silently(self):
        config = tiny_machine()
        result = run_variant(_wl(), config, "lp", num_threads=2)
        report = RunReport.from_result(result, config, wall_clock_s=0.1)
        assert report.intervals is None
        assert report.heatmap is None
        assert report.telemetry is None
