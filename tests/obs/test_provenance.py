"""Provenance tagging: free when on, invisible when off.

The stall flamegraph needs workloads to emit :class:`Phase` frame ops,
but nobody paying for ordinary runs may notice: with ``provenance``
left False (the default) the op stream, the results, and the cache
keys must be *byte-identical* to a build that never heard of
provenance.  With it on, only Phase ops are added — every metric the
simulator reports stays exactly the same, because Phase is free on
every engine.
"""

import pytest

from repro.analysis.experiments import run_variant
from repro.sim.config import tiny_machine
from repro.sim.isa import Phase
from repro.sim.machine import Machine
from repro.workloads import available_workloads, get_workload

SMALL_PARAMS = {
    "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
    "fft": {"n": 16},
    "gauss": {"n": 8, "row_block": 4},
    "cholesky": {"n": 8, "col_block": 4},
    "conv2d": {"n": 8, "row_block": 2},
    "log": {"records": 4, "width": 2, "wb_batch": 2},
    "hashmap": {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2},
}


def recorded_streams(name, variant, provenance):
    """Per-core op streams of one functional run, via the probe bus."""
    from repro.obs import TraceRecorder, probed

    wl = get_workload(name)(**SMALL_PARAMS[name])
    config = tiny_machine()
    if config.timing != "functional":
        config = config.with_timing("functional")
    machine = Machine(config)
    bound = wl.bind(machine, num_threads=2, engine="modular")
    bound.provenance = provenance
    recorder = TraceRecorder()
    with probed(machine, [recorder]):
        machine.run(bound.threads(variant))
    per_core = {}
    for ev in recorder.ops:
        per_core.setdefault(ev.core_id, []).append(ev.op)
    return [per_core[core_id] for core_id in sorted(per_core)]


@pytest.mark.parametrize("name", available_workloads())
class TestTaggedStreams:
    def test_no_phase_ops_by_default(self, name):
        for variant in get_workload(name).variants:
            for ops in recorded_streams(name, variant, False):
                assert not any(type(op) is Phase for op in ops)

    def test_tagged_stream_differs_only_by_phase_ops(self, name):
        for variant in get_workload(name).variants:
            plain = recorded_streams(name, variant, False)
            tagged = recorded_streams(name, variant, True)
            stripped = [
                [op for op in ops if type(op) is not Phase]
                for ops in tagged
            ]
            assert stripped == plain

    def test_tagged_stream_contains_phase_frames(self, name):
        # Every workload carries tag() call-sites, so the lp variant
        # must actually produce frames when opted in.
        labels = [
            op.label
            for ops in recorded_streams(name, "lp", True)
            for op in ops
            if type(op) is Phase and op.label is not None
        ]
        assert labels, "no provenance frames emitted"

    def test_phase_pushes_and_pops_balance(self, name):
        for variant in get_workload(name).variants:
            for ops in recorded_streams(name, variant, True):
                depth = 0
                for op in ops:
                    if type(op) is not Phase:
                        continue
                    depth += 1 if op.label is not None else -1
                    assert depth >= 0
                assert depth == 0


@pytest.mark.parametrize("engine", ["modular", "parity"])
@pytest.mark.parametrize("timing", ["detailed", "functional"])
def test_tagging_changes_no_metric(engine, timing):
    wl = get_workload("tmm")(**SMALL_PARAMS["tmm"])
    config = tiny_machine()
    if timing != config.timing:
        config = config.with_timing(timing)
    plain = run_variant(wl, config, "lp", num_threads=2, engine=engine)
    tagged = run_variant(
        wl, config, "lp", num_threads=2, engine=engine, provenance=True
    )
    assert tagged.exec_cycles == plain.exec_cycles
    assert tagged.nvmm_writes == plain.nvmm_writes
    assert tagged.total_writes == plain.total_writes
    assert tagged.stalls == plain.stalls
    assert tagged.hazards == plain.hazards


def test_phase_is_free_on_the_replay_loop():
    # The crash-state checker's replay fast loop must treat Phase like
    # RegionMark: executed, but costing no cycle and keeping the turn.
    wl = get_workload("tmm")(**SMALL_PARAMS["tmm"])
    clocks, ops = [], []
    for provenance in (False, True):
        machine = Machine(tiny_machine())
        wl.bind(machine, num_threads=2)
        replay = machine.after_crash_with_image(
            dict(machine.mem.arch), replay=True
        )
        rebound = wl.bind(replay, num_threads=2, create=False)
        rebound.provenance = provenance
        result = replay.run(rebound.threads("base"))
        clocks.append(tuple(c.clock for c in replay.cores))
        ops.append(result.ops_executed)
    assert clocks[0] == clocks[1]
    assert ops[1] > ops[0]
