"""Attach/detach semantics of the probe taps."""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    ProbeBus,
    TraceRecorder,
    attach_probes,
    detach_probes,
    probed,
)
from repro.sim.config import tiny_machine
from repro.sim.machine import Machine
from repro.workloads import get_workload

from tests.obs.conftest import TINY_PARAMS


def _fresh_machine():
    return Machine(tiny_machine())


class TestAttachDetach:
    def test_attach_installs_only_wanted_taps(self):
        machine = _fresh_machine()
        recorder = TraceRecorder()  # no on_mem_event -> no timer tap
        attach_probes(machine, ProbeBus([recorder]))
        assert "execute" in vars(machine.cores[0])
        assert "on_event" not in vars(machine.cores[0].timer)
        assert "accept_write_timed" in vars(machine.mc)
        detach_probes(machine)

    def test_empty_bus_installs_nothing(self):
        machine = _fresh_machine()
        attach_probes(machine, ProbeBus([]))
        for core in machine.cores:
            assert "execute" not in vars(core)
            assert "on_event" not in vars(core.timer)
        assert "accept_write_timed" not in vars(machine.mc)
        assert "read" not in vars(machine.mc)
        assert "stall" not in vars(machine.stats.ledger)
        assert "event" not in vars(machine.stats.ledger)
        detach_probes(machine)

    def test_detach_removes_every_instance_override(self):
        machine = _fresh_machine()
        attach_probes(machine, ProbeBus([TraceRecorder()]))
        detach_probes(machine)
        # Zero instance-level shadows survive: the untapped machine
        # runs the unmodified class methods (the zero-overhead claim).
        for core in machine.cores:
            assert "execute" not in vars(core)
            assert "on_event" not in vars(core.timer)
        assert "accept_write_timed" not in vars(machine.mc)
        assert "read" not in vars(machine.mc)
        assert "stall" not in vars(machine.stats.ledger)
        assert "event" not in vars(machine.stats.ledger)

    def test_detach_is_idempotent(self):
        machine = _fresh_machine()
        attach_probes(machine, ProbeBus([TraceRecorder()]))
        detach_probes(machine)
        detach_probes(machine)  # second call is a no-op

    def test_double_attach_refused(self):
        machine = _fresh_machine()
        attach_probes(machine, ProbeBus([TraceRecorder()]))
        with pytest.raises(ConfigError):
            attach_probes(machine, ProbeBus([TraceRecorder()]))
        detach_probes(machine)

    def test_reattach_after_detach_allowed(self):
        machine = _fresh_machine()
        attach_probes(machine, ProbeBus([TraceRecorder()]))
        detach_probes(machine)
        attach_probes(machine, ProbeBus([TraceRecorder()]))
        detach_probes(machine)

    def test_replay_machine_attachable_and_probed_run_records(self):
        # Probed replay machines take the general scheduling loop (the
        # _run_replay fast path checks for an active probe session), so
        # the taps see every op — this run is the reconciliation
        # reference for the stream-derived observers.
        wl = get_workload("tmm")(**TINY_PARAMS)
        machine = Machine(tiny_machine(), _replay=True)
        bound = wl.bind(machine, num_threads=2, engine="modular")
        recorder = TraceRecorder()
        with probed(machine, [recorder]):
            result = machine.run(bound.threads("lp"))
        # Barrier ops never reach a core; everything else does.
        assert 0 < len(recorder.ops) <= result.ops_executed
        # Replay machines never stall or touch the MC.
        assert recorder.stalls == []
        assert recorder.writebacks == []
        assert recorder.nvmm_reads == []

    def test_probed_replay_run_matches_unprobed_fast_path(self):
        wl = get_workload("tmm")(**TINY_PARAMS)

        plain = Machine(tiny_machine(), _replay=True)
        bound = wl.bind(plain, num_threads=2, engine="modular")
        r_plain = plain.run(bound.threads("lp"))

        tapped = Machine(tiny_machine(), _replay=True)
        bound2 = wl.bind(tapped, num_threads=2, engine="modular")
        with probed(tapped, [TraceRecorder()]):
            r_tapped = tapped.run(bound2.threads("lp"))

        assert r_plain.stats.summary() == r_tapped.stats.summary()
        assert r_plain.ops_executed == r_tapped.ops_executed
        assert plain.mem.arch == tapped.mem.arch
        assert plain.mem.persistent == tapped.mem.persistent


class TestIsolation:
    def test_tapping_one_machine_leaves_others_untouched(self):
        tapped, other = _fresh_machine(), _fresh_machine()
        attach_probes(tapped, ProbeBus([TraceRecorder()]))
        for core in other.cores:
            assert "execute" not in vars(core)
        assert "accept_write_timed" not in vars(other.mc)
        detach_probes(tapped)

    def test_untapped_run_after_traced_run_records_nothing(self):
        wl = get_workload("tmm")(**TINY_PARAMS)
        machine = _fresh_machine()
        bound = wl.bind(machine, num_threads=2, engine="modular")
        recorder = TraceRecorder()
        with probed(machine, [recorder]):
            machine.run(bound.threads("lp"))
        traced_events = len(recorder)
        assert traced_events > 0

        machine2 = _fresh_machine()
        bound2 = wl.bind(machine2, num_threads=2, engine="modular")
        machine2.run(bound2.threads("lp"))
        assert len(recorder) == traced_events


class TestProbedContext:
    def test_detaches_on_exception(self):
        machine = _fresh_machine()
        with pytest.raises(RuntimeError):
            with probed(machine, [TraceRecorder()]):
                raise RuntimeError("boom")
        for core in machine.cores:
            assert "execute" not in vars(core)

    def test_accepts_prebuilt_bus(self):
        machine = _fresh_machine()
        bus = ProbeBus([TraceRecorder()])
        with probed(machine, bus) as got:
            assert got is bus

    def test_results_identical_with_and_without_probes(self):
        wl = get_workload("tmm")(**TINY_PARAMS)

        plain = _fresh_machine()
        bound = wl.bind(plain, num_threads=2, engine="modular")
        r_plain = plain.run(bound.threads("lp"))

        tapped = _fresh_machine()
        bound2 = wl.bind(tapped, num_threads=2, engine="modular")
        with probed(tapped, [TraceRecorder()]):
            r_tapped = tapped.run(bound2.threads("lp"))

        assert r_plain.exec_cycles == r_tapped.exec_cycles
        assert r_plain.stats.summary() == r_tapped.stats.summary()
