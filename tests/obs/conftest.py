"""Shared fixtures for observability tests: one tiny traced run."""

import pytest

from repro.obs import IntervalSampler, TraceRecorder, probed
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import tiny_machine
from repro.sim.machine import Machine
from repro.workloads import get_workload

TINY_PARAMS = {"n": 8, "bsize": 4, "kk_tiles": 1}
INTERVAL = 500.0


def run_probed(
    variant="lp",
    *,
    timing="detailed",
    cleaner_period=None,
    num_threads=2,
    workload="tmm",
    params=None,
):
    """One tiny run with a recorder + sampler attached.

    Returns ``(recorder, sampler, run_result, machine)``.
    """
    wl = get_workload(workload)(**(params or TINY_PARAMS))
    config = tiny_machine()
    if timing != config.timing:
        config = config.with_timing(timing)
    machine = Machine(config)
    if cleaner_period is not None:
        machine.cleaner = PeriodicCleaner(cleaner_period)
    bound = wl.bind(machine, num_threads=num_threads, engine="modular")
    recorder = TraceRecorder()
    sampler = IntervalSampler(INTERVAL)
    with probed(machine, [recorder, sampler]):
        result = machine.run(bound.threads(variant))
    return recorder, sampler, result, machine


@pytest.fixture(scope="module")
def lp_run():
    """A recorded tmm/lp run with a periodic cleaner (module-cached)."""
    return run_probed("lp", cleaner_period=200.0)


@pytest.fixture(scope="module")
def ep_run():
    """A recorded tmm/ep run (flush traffic, fence stalls)."""
    return run_probed("ep", cleaner_period=200.0)
