"""Tests for the per-line wear (endurance) statistics."""

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Fence, Flush, Store
from repro.sim.machine import Machine


def machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
        )
    )


class TestWearStats:
    def test_empty(self):
        m = machine()
        assert m.stats.max_line_writes == 0
        assert m.stats.wear_percentile(99) == 0

    def test_counts_per_line(self):
        m = machine()
        r = m.alloc("a", 8)  # one line

        def kernel():
            for i in range(5):
                yield Store(r.addr(0), float(i))
                yield Flush(r.addr(0))
            yield Fence()

        m.run([kernel()])
        assert m.stats.max_line_writes == 5
        assert m.stats.writes_per_line == {r.base: 5}

    def test_coalesced_stores_wear_once(self):
        m = machine()
        r = m.alloc("a", 8)

        def kernel():
            for i in range(8):
                yield Store(r.addr(i), 1.0)

        m.run([kernel()])
        m.drain()
        assert m.stats.max_line_writes == 1

    def test_percentiles_ordered(self):
        m = machine()
        r = m.alloc("a", 32)

        def kernel():
            # line 0 written 4x, others once
            for rep in range(4):
                yield Store(r.addr(0), float(rep))
                yield Flush(r.addr(0))
                yield Fence()
            for i in range(8, 32):
                yield Store(r.addr(i), 2.0)

        m.run([kernel()])
        m.drain()
        assert m.stats.wear_percentile(50) <= m.stats.wear_percentile(99)
        assert m.stats.wear_percentile(99) <= m.stats.max_line_writes
        assert m.stats.max_line_writes == 4
