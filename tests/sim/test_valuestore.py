"""Unit tests for repro.sim.valuestore."""

import pytest

from repro.errors import AddressError
from repro.sim.valuestore import MemoryState


class TestArchState:
    def test_store_then_load(self):
        mem = MemoryState()
        mem.store(64, 3.5)
        assert mem.load(64) == 3.5

    def test_load_unwritten_raises(self):
        mem = MemoryState()
        with pytest.raises(AddressError):
            mem.load(64)

    def test_unaligned_rejected(self):
        mem = MemoryState()
        with pytest.raises(AddressError):
            mem.store(65, 1.0)
        with pytest.raises(AddressError):
            mem.load(66)

    def test_nonpositive_address_rejected(self):
        mem = MemoryState()
        with pytest.raises(AddressError):
            mem.store(0, 1.0)


class TestPersistence:
    def test_store_is_volatile_until_persisted(self):
        mem = MemoryState()
        mem.init(64, 0.0)
        mem.store(64, 9.0)
        assert mem.load(64) == 9.0
        assert mem.persisted(64) == 0.0
        assert mem.is_divergent(64)

    def test_persist_line_copies_whole_line(self):
        mem = MemoryState()
        for addr in range(64, 128, 8):
            mem.init(addr, 0.0)
        mem.store(64, 1.0)
        mem.store(120, 2.0)
        mem.persist_line(64)
        assert mem.persisted(64) == 1.0
        assert mem.persisted(120) == 2.0
        assert not mem.is_divergent(64)

    def test_persist_line_ignores_unwritten_slots(self):
        mem = MemoryState()
        mem.init(64, 5.0)  # only one element of the line exists
        mem.store(64, 6.0)
        mem.persist_line(64)
        assert mem.persisted(64) == 6.0

    def test_init_is_durable(self):
        mem = MemoryState()
        mem.init(64, 7.0)
        assert mem.persisted(64) == 7.0
        assert not mem.is_divergent(64)

    def test_persisted_default(self):
        mem = MemoryState()
        assert mem.persisted(64, default=0.0) == 0.0
        with pytest.raises(AddressError):
            mem.persisted(64)


class TestCrash:
    def test_crashed_copy_keeps_only_persistent(self):
        mem = MemoryState()
        mem.init(64, 0.0)
        mem.init(72, 0.0)
        mem.store(64, 1.0)
        mem.store(72, 2.0)
        mem.persist_line(64)  # persists both (same line)
        mem.store(72, 3.0)  # diverges again, never persisted

        post = mem.crashed_copy()
        assert post.load(64) == 1.0
        assert post.load(72) == 2.0  # the 3.0 died in the cache

    def test_crashed_copy_is_independent(self):
        mem = MemoryState()
        mem.init(64, 1.0)
        post = mem.crashed_copy()
        post.store(64, 9.0)
        assert mem.load(64) == 1.0

    def test_post_crash_arch_equals_persistent(self):
        mem = MemoryState()
        mem.init(64, 1.0)
        mem.store(64, 2.0)
        post = mem.crashed_copy()
        assert post.load(64) == post.persisted(64) == 1.0
