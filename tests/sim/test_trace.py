"""Unit tests for op tracing."""

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Compute, Load, Store
from repro.sim.machine import Machine
from repro.sim.trace import Trace, traced


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
        )
    )


def kernel(region):
    v = yield Load(region.addr(0))
    yield Compute(2)
    yield Store(region.addr(1), v + 1.0)


class TestTrace:
    def test_records_all_ops(self):
        m = tiny_machine()
        r = m.alloc_init("a", [10.0, 0.0])
        trace = Trace()
        m.run([traced(kernel(r), trace)])
        assert len(trace) == 3
        assert trace.count(Load) == 1
        assert trace.count(Store) == 1
        assert trace.count(Compute) == 1

    def test_records_load_results(self):
        m = tiny_machine()
        r = m.alloc_init("a", [10.0, 0.0])
        trace = Trace()
        m.run([traced(kernel(r), trace)])
        load_op, load_result = trace.events[0]
        assert isinstance(load_op, Load)
        assert load_result == 10.0

    def test_passthrough_preserves_behaviour(self):
        m = tiny_machine()
        r = m.alloc_init("a", [10.0, 0.0])
        m.run([traced(kernel(r), Trace())])
        assert m.arch_value(r.addr(1)) == 11.0

    def test_generator_path_has_no_attribution(self):
        m = tiny_machine()
        r = m.alloc_init("a", [10.0, 0.0])
        trace = Trace()
        m.run([traced(kernel(r), trace)])
        assert trace.cycles == [None] * len(trace)
        assert trace.cores == [None] * len(trace)


class TestTraceOnBus:
    """Trace as a probe-bus observer: one tracing path, now with
    cycle and core attribution."""

    def _run_traced(self):
        from repro.obs import probed

        m = tiny_machine()
        r = m.alloc_init("a", [10.0, 0.0])
        trace = Trace()
        with probed(m, [trace]):
            m.run([kernel(r)])
        return trace

    def test_records_same_ops_as_generator_path(self):
        trace = self._run_traced()
        assert len(trace) == 3
        assert trace.count(Load) == 1
        assert trace.count(Store) == 1
        assert trace.count(Compute) == 1
        load_op, load_result = trace.events[0]
        assert isinstance(load_op, Load)
        assert load_result == 10.0

    def test_bus_path_attributes_cycles_and_cores(self):
        trace = self._run_traced()
        assert len(trace.cycles) == len(trace) == len(trace.cores)
        assert all(c is not None and c > 0 for c in trace.cycles)
        assert trace.cycles == sorted(trace.cycles)  # one in-order core
        assert set(trace.cores) == {0}
