"""Tests for the persist-order tracker (repro.sim.persist)."""

import pytest

from repro.errors import ConfigError
from repro.sim.address import element_addrs_of_line
from repro.sim.config import LINE_BYTES, tiny_machine
from repro.sim.crash import CrashPlan, run_to_crash_space
from repro.sim.machine import Machine
from repro.sim.persist import KIND_DIRTY, KIND_FLUSH, PersistOrderTracker
from repro.sim.valuestore import MemoryState

LINE_A = 4 * LINE_BYTES
LINE_B = 8 * LINE_BYTES


def make_state(lines=(LINE_A, LINE_B)):
    mem = MemoryState()
    for line in lines:
        for addr in element_addrs_of_line(line):
            mem.init(addr, 0.0)
    return mem


def accept_flush(mem, tracker, line, core_id, time, value):
    """What the MC does for a clflushopt acceptance: notify the
    tracker (which snapshots prior persistent values), then commit."""
    for addr in element_addrs_of_line(line):
        mem.store(addr, value)
    tracker.on_accept(line, "flush", core_id, time)
    mem.persist_line(line)


class TestTrackerHooks:
    def test_flush_is_pending_until_fence(self):
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        assert tracker.pending_flush_count == 1
        tracker.on_fence(core_id=0, now=20.0)
        assert tracker.pending_flush_count == 0

    def test_fence_is_per_core(self):
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        accept_flush(mem, tracker, LINE_B, core_id=1, time=11.0, value=2.0)
        tracker.on_fence(core_id=0, now=20.0)
        assert tracker.pending_lines() == [LINE_B]

    def test_fence_only_covers_earlier_flushes(self):
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=30.0, value=1.0)
        tracker.on_fence(core_id=0, now=20.0)  # retired before the accept
        assert tracker.pending_flush_count == 1

    def test_writeback_absorbs_pending_flush(self):
        # An eviction/cleaner writeback of the same line supersedes the
        # flush uncertainty: the line is durable either way.
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        tracker.on_accept(LINE_A, "cleaner", None, 15.0)
        assert tracker.pending_flush_count == 0


class TestSnapshot:
    def test_floor_undoes_pending_flushes_newest_first(self):
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=12.0, value=2.0)
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=20.0)
        addr = LINE_A
        # Neither unfenced flush is guaranteed: floor keeps the init 0.0.
        assert space.floor[addr] == 0.0
        assert [ev.values[addr] for ev in space.events] == [1.0, 2.0]
        # Same-line versions chain oldest -> newest.
        assert space.edges == [(space.events[0].eid, space.events[1].eid)]

    def test_fenced_flush_is_floor_not_event(self):
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=3.0)
        tracker.on_fence(core_id=0, now=11.0)
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=20.0)
        assert space.num_events == 0
        assert space.floor[LINE_A] == 3.0

    def test_dirty_lines_become_events(self):
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        for addr in element_addrs_of_line(LINE_B):
            mem.store(addr, 9.0)
        space = tracker.snapshot(dirty_line_addrs=[LINE_B], crash_time=30.0)
        assert space.num_events == 1
        (event,) = space.events
        assert event.kind == KIND_DIRTY
        assert event.values[LINE_B] == 9.0
        assert space.floor[LINE_B] == 0.0

    def test_image_for_applies_newest_chosen_version(self):
        mem = make_state()
        tracker = PersistOrderTracker(mem, adr=True)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        accept_flush(mem, tracker, LINE_A, core_id=0, time=12.0, value=2.0)
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=20.0)
        first, second = (ev.eid for ev in space.events)
        assert space.image_for([])[LINE_A] == 0.0
        assert space.image_for([first])[LINE_A] == 1.0
        assert space.image_for([first, second])[LINE_A] == 2.0

    def test_non_adr_snapshot_refused(self):
        tracker = PersistOrderTracker(make_state(), adr=False)
        with pytest.raises(ConfigError):
            tracker.snapshot(dirty_line_addrs=[], crash_time=0.0)


class TestMachineIntegration:
    def test_schedule_image_matches_single_image_crash_path(self):
        """image_for(schedule_eids) must reproduce exactly the NVMM
        image the plain crash path committed: floor + every pending
        flush, no extra dirty-line writebacks."""
        from repro.workloads.tmm import TiledMatMul

        workload = TiledMatMul(n=8, bsize=4, kk_tiles=1)
        machine = Machine(tiny_machine())
        bound = workload.bind(machine, num_threads=2, engine="modular")
        result, space = run_to_crash_space(
            machine, bound.threads("lp"), CrashPlan(at_op=300)
        )
        assert result.crashed and space is not None
        image = space.image_for(space.schedule_eids())
        assert image == machine.mem.persistent

    def test_flush_boundary_crash_has_pending_events(self):
        from repro.workloads.tmm import TiledMatMul

        workload = TiledMatMul(n=8, bsize=4, kk_tiles=1)
        machine = Machine(tiny_machine())
        bound = workload.bind(machine, num_threads=2, engine="modular")
        result, space = run_to_crash_space(
            machine, bound.threads("ep"), CrashPlan(at_flush=3)
        )
        assert result.crashed
        assert result.flush_ops == 3
        assert any(ev.kind == KIND_FLUSH for ev in space.events)
