"""Unit tests for the statistics aggregation."""

from repro.sim.stats import MachineStats


class TestDerivedMetrics:
    def test_exec_cycles_is_max(self):
        s = MachineStats().for_cores(3)
        s.per_core[0].cycles = 10.0
        s.per_core[1].cycles = 99.0
        s.per_core[2].cycles = 50.0
        assert s.exec_cycles == 99.0

    def test_empty_exec_cycles(self):
        assert MachineStats().exec_cycles == 0.0

    def test_l2_miss_rate(self):
        s = MachineStats()
        s.l2_accesses = 200
        s.l2_misses = 30
        assert s.l2_miss_rate == 0.15

    def test_l2_miss_rate_no_accesses(self):
        assert MachineStats().l2_miss_rate == 0.0

    def test_hazard_totals_sum_cores(self):
        s = MachineStats().for_cores(2)
        s.per_core[0].mshr_full_events = 3
        s.per_core[1].mshr_full_events = 4
        s.per_core[0].fu_int_events = 10
        assert s.hazard_totals() == {"mshr": 7, "fui": 10, "fur": 0, "fuw": 0}

    def test_total_ops(self):
        s = MachineStats().for_cores(2)
        s.per_core[0].ops = 5
        s.per_core[1].ops = 6
        assert s.total_ops == 11


class TestWriteAccounting:
    def test_count_write_by_cause(self):
        s = MachineStats()
        s.count_write("flush", line_addr=64)
        s.count_write("flush", line_addr=64)
        s.count_write("eviction", line_addr=128)
        assert s.nvmm_writes == 3
        assert s.writes_by_cause == {"flush": 2, "eviction": 1}
        assert s.writes_per_line == {64: 2, 128: 1}
        assert s.max_line_writes == 2

    def test_count_write_without_line(self):
        s = MachineStats()
        s.count_write("drain")
        assert s.nvmm_writes == 1
        assert s.max_line_writes == 0


class TestVolatility:
    def test_record(self):
        s = MachineStats()
        s.record_volatility(100.0)
        s.record_volatility(300.0)
        assert s.max_volatility_cycles == 300.0
        assert s.mean_volatility_cycles == 200.0
        assert s.volatility_samples == 2

    def test_negative_clamped(self):
        s = MachineStats()
        s.record_volatility(-5.0)
        assert s.max_volatility_cycles == 0.0

    def test_empty_mean(self):
        assert MachineStats().mean_volatility_cycles == 0.0


class TestSummary:
    def test_summary_keys(self):
        s = MachineStats().for_cores(1)
        summary = s.summary()
        for key in (
            "exec_cycles",
            "nvmm_writes",
            "l2_miss_rate",
            "max_volatility_cycles",
            "mshr_full",
            "fui",
            "fur",
            "fuw",
        ):
            assert key in summary

    def test_summary_carries_writes_by_cause(self):
        s = MachineStats().for_cores(1)
        s.count_write("flush")
        s.count_write("flush")
        s.count_write("cleaner")
        summary = s.summary()
        assert summary["writes_by_cause/flush"] == 2.0
        assert summary["writes_by_cause/cleaner"] == 1.0
        assert summary["nvmm_writes"] == 3.0  # headline key unchanged

    def test_summary_carries_ledger_breakdown(self):
        s = MachineStats().for_cores(1)
        s.ledger.stall(s.per_core[0], "fence_drain", 40.0, 4)
        s.ledger.event(s.per_core[0], "mshr_full")
        s.ledger.queue_delay("mc_write_queue", 12.5)
        summary = s.summary()
        assert summary["stall_cycles/fence_drain"] == 40.0
        assert summary["stall_cycles/mc_write_queue"] == 12.5
        assert summary["stall_events/mshr_full"] == 1.0

    def test_summary_empty_run_has_no_breakdown_keys(self):
        summary = MachineStats().for_cores(1).summary()
        assert not any("/" in key for key in summary)
