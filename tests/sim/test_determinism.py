"""Determinism guarantees of the simulator.

Reproducibility is a design requirement (DESIGN.md): identical
configurations must give bit-identical metrics, and the architectural
outcome of a data-race-free workload must not depend on thread count.
"""

import pytest

from repro.analysis.experiments import run_variant
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads.tmm import TiledMatMul
from repro.workloads.fft import FFT


def config(cores=3):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(1024, 2, hit_cycles=2.0),
        l2=CacheConfig(4096, 4, hit_cycles=11.0),
    )


class TestBitIdenticalReruns:
    @pytest.mark.parametrize("variant", ["base", "lp", "ep", "wal"])
    def test_tmm_metrics_identical(self, variant):
        def run():
            r = run_variant(
                TiledMatMul(n=16, bsize=8), config(), variant, num_threads=2
            )
            return (
                r.exec_cycles,
                r.nvmm_writes,
                r.l2_miss_rate,
                tuple(sorted(r.hazards.items())),
                tuple(sorted(r.writes_by_cause.items())),
            )

        assert run() == run()

    def test_fft_metrics_identical(self):
        def run():
            r = run_variant(FFT(n=64), config(), "lp", num_threads=2)
            return r.exec_cycles, r.nvmm_writes

        assert run() == run()


class TestThreadCountIndependence:
    """The *values* computed must not depend on the thread count (the
    timing of course does)."""

    @pytest.mark.parametrize("threads", [1, 2, 3])
    def test_tmm_output_invariant(self, threads):
        from repro.sim.machine import Machine

        wl = TiledMatMul(n=16, bsize=8)
        m = Machine(config(cores=max(threads, 2)))
        bound = wl.bind(m, num_threads=threads)
        m.run(bound.threads("lp"))
        assert bound.verify()

    def test_fft_output_invariant_across_threads(self):
        import numpy as np
        from repro.sim.machine import Machine

        outputs = []
        for threads in (1, 2):
            wl = FFT(n=64)
            m = Machine(config())
            bound = wl.bind(m, num_threads=threads)
            m.run(bound.threads("lp"))
            outputs.append(bound.output())
        assert np.array_equal(outputs[0], outputs[1])
