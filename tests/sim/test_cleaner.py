"""Unit tests for the periodic hardware cache cleaner (Fig 11 support)."""

import pytest

from repro.errors import ConfigError
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Compute, Store
from repro.sim.machine import Machine


def machine_with_cleaner(period):
    m = Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
        )
    )
    m.cleaner = PeriodicCleaner(period)
    return m


def slow_writer(region, n, pause=100):
    for i in range(n):
        yield Store(region.addr(i), 1.0)
        yield Compute(pause * 4)  # ~pause cycles at cpi=0.25


class TestPeriodicCleaner:
    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            PeriodicCleaner(0.0)

    def test_cleans_periodically(self):
        m = machine_with_cleaner(period=200.0)
        r = m.alloc("a", 8)
        m.run([slow_writer(r, 8)])
        assert m.cleaner.cleanups >= 2
        assert m.stats.writes_by_cause.get("cleaner", 0) >= 1

    def test_bounds_dirty_data(self):
        m = machine_with_cleaner(period=150.0)
        r = m.alloc("a", 8)
        m.run([slow_writer(r, 8)])
        # every store except possibly the last period's worth is durable
        persisted = m.read_region(r, persistent=True)
        assert sum(persisted) >= 6.0

    def test_larger_period_fewer_writes(self):
        counts = []
        for period in (100.0, 10000.0):
            m = machine_with_cleaner(period)
            r = m.alloc("a", 16)
            m.run([slow_writer(r, 16)])
            counts.append(m.stats.writes_by_cause.get("cleaner", 0))
        assert counts[0] > counts[1]

    def test_missed_periods_collapse(self):
        cleaner = PeriodicCleaner(10.0)
        m = machine_with_cleaner(10.0)
        r = m.alloc("a", 1)
        m.cleaner = cleaner
        m.run([slow_writer(r, 1, pause=1000)])
        # next_due advanced past `now` in one pass
        assert cleaner._next_due > 1000.0 or cleaner.cleanups <= 2

    def test_recovery_bound(self):
        assert PeriodicCleaner(100.0).recovery_bound_cycles == 200.0

    def test_no_performance_charge(self):
        # cleaner runs in background: same exec cycles with and without
        def run(period):
            m = machine_with_cleaner(period) if period else Machine(
                MachineConfig(
                    num_cores=1,
                    l1=CacheConfig(512, 2, hit_cycles=2.0),
                    l2=CacheConfig(2048, 2, hit_cycles=11.0),
                )
            )
            r = m.alloc("a", 8)
            res = m.run([slow_writer(r, 8)])
            return res.exec_cycles

        assert run(200.0) == run(None)
