"""Unit tests for the bounded completion-time queues."""

from repro.sim.queues import BoundedQueue


class TestBoundedQueue:
    def test_empty_is_not_full(self):
        q = BoundedQueue(2, "q")
        assert not q.full(0.0)
        assert q.earliest_free(0.0) == 0.0
        assert q.drain_time(0.0) == 0.0

    def test_fills_and_frees(self):
        q = BoundedQueue(2, "q")
        q.push(10.0)
        q.push(20.0)
        assert q.full(5.0)
        assert q.earliest_free(5.0) == 10.0
        # at t=10 the first entry has completed
        assert not q.full(10.0)

    def test_prune_drops_completed(self):
        q = BoundedQueue(4, "q")
        q.push(1.0)
        q.push(2.0)
        q.push(3.0)
        assert q.occupancy(2.0) == 1

    def test_drain_time_is_latest_completion(self):
        q = BoundedQueue(4, "q")
        q.push(5.0)
        q.push(15.0)
        assert q.drain_time(0.0) == 15.0
        assert q.drain_time(15.0) == 15.0  # entries at t complete at t

    def test_clear(self):
        q = BoundedQueue(2, "q")
        q.push(100.0)
        q.clear()
        assert q.occupancy(0.0) == 0
