"""Unit tests for crash injection."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.isa import Flush, Fence, Store
from repro.sim.machine import Machine


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
        )
    )


class TestCrashPlan:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ConfigError):
            CrashPlan()
        with pytest.raises(ConfigError):
            CrashPlan(at_op=1, at_cycle=5.0)
        CrashPlan(at_op=1)
        CrashPlan(at_cycle=5.0)
        CrashPlan(at_mark=2)


class TestRunWithCrash:
    def test_flushed_data_survives(self):
        m = tiny_machine()
        r = m.alloc("a", 16)

        def writer():
            for i in range(16):
                yield Store(r.addr(i), 5.0)
                if i < 8:
                    yield Flush(r.addr(i))
            yield Fence()

        # crash after all stores+flushes of the first 8 elements
        result, post = run_with_crash(m, [writer()], CrashPlan(at_op=24))
        assert result.crashed
        values = post.read_region(r)
        assert values[:8] == [5.0] * 8
        assert values[8:] == [0.0] * 8

    def test_no_crash_if_workload_finishes_first(self):
        m = tiny_machine()
        r = m.alloc("a", 2)

        def writer():
            yield Store(r.addr(0), 1.0)

        result, post = run_with_crash(m, [writer()], CrashPlan(at_op=1000))
        assert not result.crashed
        assert post is not None

    def test_post_crash_caches_are_cold(self):
        m = tiny_machine()
        r = m.alloc("a", 8)

        def writer():
            for i in range(8):
                yield Store(r.addr(i), 1.0)

        _, post = run_with_crash(m, [writer()], CrashPlan(at_op=4))
        assert post.hierarchy.l2.occupancy == 0
        assert all(l1.occupancy == 0 for l1 in post.hierarchy.l1s)
        assert post.stats.nvmm_writes == 0  # fresh stats
