"""Unit tests for repro.sim.config."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    NVMMConfig,
    ELEMS_PER_LINE,
    LINE_BYTES,
    paper_machine,
    real_system_machine,
    scaled_machine,
)


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig(64 * 1024, 8, hit_cycles=2.0)
        assert cfg.num_sets == 128
        assert cfg.num_lines == 1024

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(0, 8, hit_cycles=2.0)

    def test_rejects_nonpositive_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(1024, 0, hit_cycles=2.0)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 8, hit_cycles=2.0)

    def test_line_constants(self):
        assert LINE_BYTES == 64
        assert ELEMS_PER_LINE == 8


class TestNVMMConfig:
    def test_defaults_match_table2(self):
        cfg = NVMMConfig()
        # 150ns read / 300ns write at 2GHz.
        assert cfg.read_cycles == 300.0
        assert cfg.write_cycles == 600.0
        assert cfg.write_queue_depth == 64
        assert cfg.read_queue_depth == 32
        assert cfg.adr

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            NVMMConfig(read_cycles=-1.0)

    def test_rejects_zero_queue(self):
        with pytest.raises(ConfigError):
            NVMMConfig(write_queue_depth=0)


class TestCoreConfig:
    def test_rejects_zero_issue_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=0)

    def test_rejects_zero_mshrs(self):
        with pytest.raises(ConfigError):
            CoreConfig(mshr_entries=0)


class TestMachineConfig:
    def test_paper_machine_matches_table2(self):
        cfg = paper_machine()
        assert cfg.num_cores == 9
        assert cfg.l1.size_bytes == 64 * 1024
        assert cfg.l2.size_bytes == 512 * 1024
        assert cfg.l1.ways == 8 and cfg.l2.ways == 8
        assert cfg.l1.hit_cycles == 2.0
        assert cfg.l2.hit_cycles == 11.0

    def test_scaled_machine_shrinks_caches(self):
        cfg = scaled_machine()
        assert cfg.l1.size_bytes < paper_machine().l1.size_bytes
        assert cfg.l2.size_bytes < paper_machine().l2.size_bytes

    def test_real_system_is_symmetric_latency(self):
        cfg = real_system_machine()
        assert cfg.nvmm.read_cycles == cfg.nvmm.write_cycles

    def test_with_l2_size(self):
        cfg = paper_machine().with_l2_size(256 * 1024)
        assert cfg.l2.size_bytes == 256 * 1024
        # original untouched (frozen dataclass semantics)
        assert paper_machine().l2.size_bytes == 512 * 1024

    def test_with_nvmm_latency(self):
        cfg = paper_machine().with_nvmm_latency(120.0, 300.0)
        assert cfg.nvmm.read_cycles == 120.0
        assert cfg.nvmm.write_cycles == 300.0

    def test_with_cores(self):
        assert paper_machine().with_cores(17).num_cores == 17

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cores=0)
