"""Property test: the cache's LRU replacement matches a reference model.

Drives a single set of a 4-way cache with a random access sequence and
checks every eviction decision against a straightforward ordered-list
LRU simulation.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache, State
from repro.sim.config import CacheConfig

WAYS = 4
NUM_SETS = 2  # 512B, 4-way
LINE = 64


def same_set_addr(i: int) -> int:
    """The i-th distinct line address mapping to set 0."""
    return i * NUM_SETS * LINE


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_lru_matches_reference(accesses):
    cache = Cache(CacheConfig(NUM_SETS * WAYS * LINE, WAYS, hit_cycles=1.0))
    reference = []  # most-recent last

    for i in accesses:
        addr = same_set_addr(i)
        line = cache.access(addr)
        if line is None:
            victim = cache.victim_for(addr)
            if victim is not None:
                # reference model predicts the same victim
                assert victim.addr == reference[0]
                cache.remove(victim.addr)
                reference.pop(0)
            cache.install(addr, State.EXCLUSIVE)
            reference.append(addr)
        else:
            reference.remove(addr)
            reference.append(addr)

    resident = sorted(ln.addr for ln in cache.lines())
    assert resident == sorted(reference)
