"""Unit tests for the memory controller / NVMM device model."""

from repro.sim.config import NVMMConfig
from repro.sim.nvmm import MemoryController
from repro.sim.stats import MachineStats
from repro.sim.valuestore import MemoryState


def make_mc(**kwargs):
    mem = MemoryState()
    for addr in range(64, 64 * 32, 8):
        mem.init(addr, 0.0)
    stats = MachineStats().for_cores(1)
    mc = MemoryController(NVMMConfig(**kwargs), mem, stats)
    return mc, mem, stats


class TestReads:
    def test_read_latency(self):
        mc, _, stats = make_mc(read_cycles=300.0)
        assert mc.read(64, now=0.0) == 300.0
        assert stats.nvmm_reads == 1

    def test_reads_queue_behind_each_other(self):
        mc, _, _ = make_mc(read_cycles=300.0, read_service_cycles=30.0)
        t1 = mc.read(64, now=0.0)
        t2 = mc.read(128, now=0.0)
        assert t2 == t1 + 30.0

    def test_read_queue_depth_backpressure(self):
        mc, _, _ = make_mc(
            read_cycles=300.0, read_service_cycles=1.0, read_queue_depth=2
        )
        t1 = mc.read(64, now=0.0)
        mc.read(128, now=0.0)
        # queue full until the first read returns data
        t3 = mc.read(192, now=0.0)
        assert t3 >= t1 + 300.0


class TestWrites:
    def test_write_persists_at_acceptance(self):
        mc, mem, stats = make_mc()
        mem.store(64, 5.0)
        t = mc.accept_write(64, now=10.0, cause="flush")
        assert t == 10.0  # queue empty: accepted immediately (ADR)
        assert mem.persisted(64) == 5.0
        assert stats.nvmm_writes == 1
        assert stats.writes_by_cause == {"flush": 1}

    def test_write_queue_backpressure(self):
        mc, _, _ = make_mc(
            write_cycles=100.0, write_service_cycles=100.0, write_queue_depth=2
        )
        t1 = mc.accept_write(64, now=0.0, cause="flush")
        t2 = mc.accept_write(128, now=0.0, cause="flush")
        assert t1 == 0.0 and t2 == 0.0
        # queue full: third write waits for the first to finish (t=100)
        t3 = mc.accept_write(192, now=0.0, cause="flush")
        assert t3 == 100.0

    def test_volatility_recorded(self):
        mc, _, stats = make_mc()
        mc.accept_write(64, now=500.0, cause="eviction", dirty_since=100.0)
        assert stats.volatility_samples == 1
        assert stats.max_volatility_cycles == 400.0

    def test_write_service_rate_spaces_completions(self):
        mc, _, _ = make_mc(write_service_cycles=60.0, write_queue_depth=64)
        for i in range(3):
            mc.accept_write(64 * (i + 1), now=0.0, cause="flush")
        # all accepted instantly; device pipe spaced at 60 cycles
        assert mc.write_queue_occupancy == 3
