"""Property-based tests of the simulator's persistency semantics.

These pin the invariants Lazy Persistency relies on:

1. architectural correctness — loads always see the latest store,
   whatever the interleaving and cache pressure;
2. crash soundness — the post-crash state of every address is *some*
   prefix value: either the last persisted value or the initial one,
   never a value that was never stored;
3. coherence invariants — inclusion and single-writer hold after any
   op sequence;
4. drain completeness — after drain(), persistent == architectural.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Fence, Flush, FlushWB, Load, Store
from repro.sim.machine import Machine

NUM_ELEMS = 48  # spans 6 lines; tiny caches force constant eviction


def tiny_machine(num_cores=2):
    return Machine(
        MachineConfig(
            num_cores=num_cores,
            l1=CacheConfig(256, 2, hit_cycles=2.0),  # 4 lines
            l2=CacheConfig(512, 2, hit_cycles=11.0),  # 8 lines
        )
    )


# One symbolic action: (kind, index, value)
actions = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "flush", "flushwb", "fence"]),
        st.integers(min_value=0, max_value=NUM_ELEMS - 1),
        st.integers(min_value=1, max_value=1000),
    ),
    min_size=1,
    max_size=60,
)


def interpret(region, script, shadow=None):
    """Generator executing a script of symbolic actions."""
    for kind, idx, value in script:
        addr = region.addr(idx)
        if kind == "load":
            yield Load(addr)
        elif kind == "store":
            if shadow is not None:
                shadow[idx] = float(value)
            yield Store(addr, float(value))
        elif kind == "flush":
            yield Flush(addr)
        elif kind == "flushwb":
            yield FlushWB(addr)
        else:
            yield Fence()


@given(actions)
@settings(max_examples=60, deadline=None)
def test_arch_state_matches_shadow(script):
    """Loads/stores through the hierarchy behave like a flat memory."""
    m = tiny_machine(num_cores=1)
    r = m.alloc("a", NUM_ELEMS)
    shadow = [0.0] * NUM_ELEMS
    m.run([interpret(r, script, shadow)])
    assert m.read_region(r) == shadow


@given(actions, actions)
@settings(max_examples=40, deadline=None)
def test_arch_state_matches_shadow_two_cores_disjoint(s1, s2):
    """Two cores on disjoint halves still behave like flat memory."""
    half = NUM_ELEMS // 2
    s1 = [(k, i % half, v) for k, i, v in s1]
    s2 = [(k, half + i % half, v) for k, i, v in s2]
    m = tiny_machine(num_cores=2)
    r = m.alloc("a", NUM_ELEMS)
    shadow = [0.0] * NUM_ELEMS
    m.run([interpret(r, s1, shadow), interpret(r, s2, shadow)])
    assert m.read_region(r) == shadow


@given(actions, st.integers(min_value=1, max_value=80))
@settings(max_examples=60, deadline=None)
def test_crash_never_invents_values(script, crash_op):
    """Post-crash values were all architecturally written (or initial)."""
    m = tiny_machine(num_cores=1)
    r = m.alloc("a", NUM_ELEMS)
    legal = {i: {0.0} for i in range(NUM_ELEMS)}
    for kind, idx, value in script:
        if kind == "store":
            legal[idx].add(float(value))
    m.run([interpret(r, script)], crash_at_op=crash_op)
    post = m.after_crash()
    for i in range(NUM_ELEMS):
        assert post.arch_value(r.addr(i)) in legal[i]


@given(actions)
@settings(max_examples=60, deadline=None)
def test_fence_after_flush_guarantees_durability(script):
    """flush(x); fence() makes x's latest store durable at that point."""
    m = tiny_machine(num_cores=1)
    r = m.alloc("a", NUM_ELEMS)
    # append an explicit flush+fence of element 0 after a store
    script = list(script) + [("store", 0, 777), ("flush", 0, 0), ("fence", 0, 0)]
    m.run([interpret(r, script)])
    # even with no drain, element 0's value must be persistent
    assert m.persistent_value(r.addr(0)) == 777.0


@given(actions)
@settings(max_examples=60, deadline=None)
def test_drain_makes_persistent_equal_arch(script):
    m = tiny_machine(num_cores=1)
    r = m.alloc("a", NUM_ELEMS)
    m.run([interpret(r, script)])
    m.drain()
    assert m.read_region(r) == m.read_region(r, persistent=True)
    assert m.hierarchy.dirty_line_addrs() == set()


@given(actions, actions)
@settings(max_examples=40, deadline=None)
def test_coherence_invariants_hold(s1, s2):
    """Inclusion + single-writer after arbitrary two-core op mixes."""
    m = tiny_machine(num_cores=2)
    r = m.alloc("a", NUM_ELEMS)
    m.run([interpret(r, s1), interpret(r, s2)])
    m.hierarchy.check_inclusion()
    m.hierarchy.check_single_writer()


@given(actions)
@settings(max_examples=40, deadline=None)
def test_write_counts_are_conservative(script):
    """Every persisted divergence is backed by a counted NVMM write."""
    m = tiny_machine(num_cores=1)
    r = m.alloc("a", NUM_ELEMS)
    m.run([interpret(r, script)])
    persisted_changes = sum(
        1 for i in range(NUM_ELEMS)
        if m.persistent_value(r.addr(i)) != 0.0
    )
    if persisted_changes > 0:
        assert m.stats.nvmm_writes > 0
