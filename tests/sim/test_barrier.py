"""Tests for the thread Barrier primitive."""

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Barrier, Compute, Load, Store
from repro.sim.machine import Machine


def machine(cores=3):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
        )
    )


class TestBarrier:
    def test_clocks_synchronise(self):
        m = machine()

        def t(work):
            yield Compute(work)
            yield Barrier()
            yield Compute(4)

        m.run([t(400), t(4), t(40)])
        finals = [c.clock for c in m.cores[:3]]
        assert finals[0] == finals[1] == finals[2]

    def test_ordering_across_barrier(self):
        """Writes before the barrier are visible to reads after it."""
        m = machine(cores=2)
        r = m.alloc("a", 2)
        seen = []

        def producer():
            yield Compute(400)  # slow
            yield Store(r.addr(0), 42.0)
            yield Barrier()

        def consumer():
            yield Barrier()
            v = yield Load(r.addr(0))
            seen.append(v)

        m.run([producer(), consumer()])
        assert seen == [42.0]

    def test_multiple_barriers(self):
        m = machine()
        log = []

        def t(tid):
            for phase in range(3):
                yield Compute((tid + 1) * 8)
                log.append((phase, tid))
                yield Barrier()

        m.run([t(0), t(1), t(2)])
        # all phase-k entries precede all phase-(k+1) entries
        phases = [p for p, _ in log]
        assert phases == sorted(phases)

    def test_finished_thread_releases_barrier(self):
        """A thread that ends never reaches the barrier; the rest must
        not deadlock (live threads only are counted)."""
        m = machine(cores=2)

        def short():
            yield Compute(1)

        def long_gen():
            yield Compute(800)
            yield Barrier()
            yield Compute(1)

        res = m.run([short(), long_gen()])
        assert res.finished_threads == 2

    def test_barrier_counts_as_op(self):
        m = machine(cores=2)

        def t():
            yield Barrier()

        res = m.run([t(), t()])
        assert res.ops_executed == 2
