"""Unit tests for the coherence protocol and the persistence paths."""

from repro.sim.cache import State
from repro.sim.coherence import Hierarchy
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.nvmm import MemoryController
from repro.sim.stats import MachineStats
from repro.sim.valuestore import MemoryState

LINE = 64


def make_hierarchy(num_cores=2, l1_size=512, l2_size=1024):
    """Tiny hierarchy: L1 = 8 lines (2-way), L2 = 16 lines (2-way)."""
    cfg = MachineConfig(
        num_cores=num_cores,
        l1=CacheConfig(l1_size, 2, hit_cycles=2.0),
        l2=CacheConfig(l2_size, 2, hit_cycles=11.0),
    )
    mem = MemoryState()
    stats = MachineStats().for_cores(num_cores)
    mc = MemoryController(cfg.nvmm, mem, stats)
    h = Hierarchy(cfg, mem, stats, mc)
    # a pool of durable addresses to play with
    for addr in range(LINE, LINE * 64, 8):
        mem.init(addr, 0.0)
    return h, mem, stats


class TestLoadPath:
    def test_cold_load_misses_through_to_nvmm(self):
        h, mem, stats = make_hierarchy()
        acc = h.load(0, LINE, now=0.0)
        assert not acc.l1_hit
        assert stats.l2_accesses == 1
        assert stats.l2_misses == 1
        assert stats.nvmm_reads == 1
        assert acc.extra_latency >= h.config.nvmm.read_cycles

    def test_second_load_hits_l1(self):
        h, _, stats = make_hierarchy()
        h.load(0, LINE, now=0.0)
        acc = h.load(0, LINE, now=10.0)
        assert acc.l1_hit
        assert stats.l2_accesses == 1  # unchanged

    def test_load_installs_exclusive_when_alone(self):
        h, _, _ = make_hierarchy()
        h.load(0, LINE, now=0.0)
        assert h.l1s[0].get(LINE).state is State.EXCLUSIVE

    def test_second_core_load_shares(self):
        h, _, _ = make_hierarchy()
        h.load(0, LINE, now=0.0)
        h.load(1, LINE, now=1.0)
        assert h.l1s[1].get(LINE).state is State.SHARED

    def test_load_downgrades_remote_modified(self):
        h, _, _ = make_hierarchy()
        h.store(0, LINE, 5.0, now=0.0)
        acc = h.load(1, LINE, now=1.0)
        assert h.l1s[0].get(LINE).state is State.SHARED
        assert h.l1s[1].get(LINE).state is State.SHARED
        # dirty data merged into the inclusive L2
        assert h.l2.get(LINE).dirty
        assert acc.extra_latency >= h.config.coherence_cycles


class TestStorePath:
    def test_store_makes_line_modified(self):
        h, mem, _ = make_hierarchy()
        h.store(0, LINE, 9.0, now=0.0)
        assert h.l1s[0].get(LINE).state is State.MODIFIED
        assert mem.load(LINE) == 9.0
        assert mem.persisted(LINE) == 0.0  # not durable yet

    def test_store_upgrade_invalidates_sharers(self):
        h, _, _ = make_hierarchy()
        h.load(0, LINE, now=0.0)
        h.load(1, LINE, now=1.0)
        h.store(0, LINE, 1.0, now=2.0)
        assert h.l1s[0].get(LINE).state is State.MODIFIED
        assert not h.l1s[1].contains(LINE)

    def test_store_steals_remote_modified(self):
        h, _, _ = make_hierarchy()
        h.store(0, LINE, 1.0, now=0.0)
        h.store(1, LINE, 2.0, now=5.0)
        assert not h.l1s[0].contains(LINE)
        owner_line = h.l1s[1].get(LINE)
        assert owner_line.state is State.MODIFIED
        # dirty obligation transferred: dirty_since inherited from core 0
        assert owner_line.dirty_since == 0.0

    def test_store_hit_on_exclusive_promotes(self):
        h, _, _ = make_hierarchy()
        h.load(0, LINE, now=0.0)
        acc = h.store(0, LINE, 3.0, now=4.0)
        assert acc.l1_hit
        assert h.l1s[0].get(LINE).state is State.MODIFIED
        assert h.l1s[0].get(LINE).dirty_since == 4.0


class TestEvictionPersistence:
    def test_l2_eviction_persists_dirty_data(self):
        h, mem, stats = make_hierarchy()
        # Fill one L2 set (2 ways) with dirty lines, then force a third.
        l2_stride = h.l2.config.num_sets * LINE
        addrs = [LINE + i * l2_stride for i in range(3)]
        h.store(0, addrs[0], 1.0, now=0.0)
        h.store(0, addrs[1], 2.0, now=1.0)
        assert stats.nvmm_writes == 0
        h.store(0, addrs[2], 3.0, now=2.0)  # evicts the LRU dirty line
        assert stats.nvmm_writes == 1
        assert mem.persisted(addrs[0]) == 1.0
        assert stats.writes_by_cause.get("eviction") == 1

    def test_clean_eviction_writes_nothing(self):
        h, _, stats = make_hierarchy()
        l2_stride = h.l2.config.num_sets * LINE
        for i in range(3):
            h.load(0, LINE + i * l2_stride, now=float(i))
        assert stats.nvmm_writes == 0

    def test_l2_eviction_back_invalidates_l1(self):
        h, _, _ = make_hierarchy()
        l2_stride = h.l2.config.num_sets * LINE
        addrs = [LINE + i * l2_stride for i in range(3)]
        for i, a in enumerate(addrs):
            h.load(0, a, now=float(i))
        # first line was evicted from L2; inclusion says L1 lost it too
        assert not h.l1s[0].contains(addrs[0])
        h.check_inclusion()

    def test_l1_eviction_merges_dirty_into_l2(self):
        h, _, stats = make_hierarchy()
        l1_stride = h.l1s[0].config.num_sets * LINE
        addrs = [LINE + i * l1_stride for i in range(3)]
        h.store(0, addrs[0], 1.0, now=0.0)
        h.load(0, addrs[1], now=1.0)
        h.load(0, addrs[2], now=2.0)  # evicts the dirty line from L1
        assert not h.l1s[0].contains(addrs[0])
        l2_line = h.l2.get(addrs[0])
        assert l2_line is not None and l2_line.dirty
        assert stats.nvmm_writes == 0  # still volatile, just lower level


class TestFlush:
    def test_clflushopt_persists_and_invalidates(self):
        h, mem, stats = make_hierarchy()
        h.store(0, LINE, 7.0, now=0.0)
        wrote, t = h.flush_line(LINE, now=5.0, invalidate=True)
        assert wrote
        assert t >= 5.0
        assert mem.persisted(LINE) == 7.0
        assert not h.l1s[0].contains(LINE)
        assert not h.l2.contains(LINE)
        assert stats.writes_by_cause.get("flush") == 1

    def test_clflushopt_clean_line_writes_nothing(self):
        h, _, stats = make_hierarchy()
        h.load(0, LINE, now=0.0)
        wrote, _ = h.flush_line(LINE, now=1.0, invalidate=True)
        assert not wrote
        assert stats.nvmm_writes == 0
        assert not h.l1s[0].contains(LINE)  # still invalidated

    def test_clwb_persists_but_keeps_line(self):
        h, mem, _ = make_hierarchy()
        h.store(0, LINE, 7.0, now=0.0)
        wrote, _ = h.flush_line(LINE, now=5.0, invalidate=False)
        assert wrote
        assert mem.persisted(LINE) == 7.0
        line = h.l1s[0].get(LINE)
        assert line is not None and line.state is State.EXCLUSIVE

    def test_flush_absent_line_is_noop(self):
        h, _, stats = make_hierarchy()
        wrote, t = h.flush_line(LINE, now=3.0, invalidate=True)
        assert not wrote and t == 3.0
        assert stats.nvmm_writes == 0

    def test_flush_l2_dirty_line_after_l1_eviction(self):
        h, mem, _ = make_hierarchy()
        l1_stride = h.l1s[0].config.num_sets * LINE
        addrs = [LINE + i * l1_stride for i in range(3)]
        h.store(0, addrs[0], 4.0, now=0.0)
        h.load(0, addrs[1], now=1.0)
        h.load(0, addrs[2], now=2.0)  # dirty line now only in L2
        wrote, _ = h.flush_line(addrs[0], now=3.0, invalidate=True)
        assert wrote
        assert mem.persisted(addrs[0]) == 4.0


class TestCleanAll:
    def test_clean_all_persists_everything_dirty(self):
        h, mem, stats = make_hierarchy()
        h.store(0, LINE, 1.0, now=0.0)
        h.store(1, LINE * 2, 2.0, now=0.0)
        written = h.clean_all(now=10.0)
        assert written == 2
        assert mem.persisted(LINE) == 1.0
        assert mem.persisted(LINE * 2) == 2.0
        assert h.dirty_line_addrs() == set()
        # lines stay resident (clwb semantics)
        assert h.l1s[0].contains(LINE)
        assert stats.writes_by_cause.get("cleaner") == 2

    def test_clean_all_idempotent(self):
        h, _, stats = make_hierarchy()
        h.store(0, LINE, 1.0, now=0.0)
        h.clean_all(now=10.0)
        assert h.clean_all(now=20.0) == 0
        assert stats.nvmm_writes == 1


class TestInvariants:
    def test_single_writer_check(self):
        h, _, _ = make_hierarchy()
        h.store(0, LINE, 1.0, now=0.0)
        h.store(1, LINE, 2.0, now=1.0)
        h.check_single_writer()
        h.check_inclusion()

    def test_volatility_duration_recorded(self):
        h, _, stats = make_hierarchy()
        h.store(0, LINE, 1.0, now=100.0)
        h.flush_line(LINE, now=350.0, invalidate=True)
        assert stats.volatility_samples == 1
        # 350 - 100 plus the flush transit to the MC
        expected = 250.0 + h.config.flush_transit_cycles
        assert stats.max_volatility_cycles == expected
