"""Golden pins for the eADR persistency model (satellite of the model
matrix PR).

Under eADR the caches sit inside the persistence domain, so:

* every variant — base (no persistency code), LP, EP — leaves the
  *same* NVMM end-state: the verified architectural output, durable
  without a single flush;
* flush instructions are timing and traffic no-ops, so EP's per-flush
  cost disappears: fewer NVMM writes, no flush-cause writes at all,
  and a shorter execution than the same code under ADR.
"""

import numpy as np
import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.registry import get_workload

SPEC = dict(n=16, bsize=8)
NUM_THREADS = 2


def run_variant(variant, model):
    config = MachineConfig(num_cores=NUM_THREADS + 1).with_model(model)
    machine = Machine(config)
    bound = get_workload("tmm")(**SPEC).bind(machine, num_threads=NUM_THREADS)
    result = machine.run(bound.threads(variant))
    return machine, bound, result


class TestEadrEndState:
    @pytest.mark.parametrize("variant", ("base", "lp", "ep"))
    def test_output_is_durable_without_flushes(self, variant):
        machine, bound, result = run_variant(variant, "eadr")
        assert not result.crashed
        assert bound.verify()
        # the persistent image already holds the verified output —
        # no drain, no flush discipline required
        assert bound.verify(persistent=True)

    def test_all_variants_persist_the_same_image(self):
        outputs = {}
        for variant in ("base", "lp", "ep"):
            _, bound, _ = run_variant(variant, "eadr")
            outputs[variant] = bound.output(persistent=True)
        assert np.array_equal(outputs["base"], outputs["lp"])
        assert np.array_equal(outputs["base"], outputs["ep"])

    def test_base_is_not_durable_under_adr(self):
        """The contrast pin: the same base run under ADR leaves the
        output volatile (modulo incidental evictions)."""
        machine, bound, _ = run_variant("base", "adr")
        assert bound.verify()
        assert not np.array_equal(
            bound.output(persistent=True), bound.output()
        )


class TestEadrFlushCost:
    def test_flush_cause_writes_vanish(self):
        m_adr, _, _ = run_variant("ep", "adr")
        m_eadr, _, _ = run_variant("ep", "eadr")
        assert m_adr.stats.writes_by_cause.get("flush", 0) > 0
        assert m_eadr.stats.writes_by_cause.get("flush", 0) == 0

    def test_nvmm_writes_and_cycles_drop(self):
        _, _, r_adr = run_variant("ep", "adr")
        _, _, r_eadr = run_variant("ep", "eadr")
        assert r_eadr.nvmm_writes < r_adr.nvmm_writes
        assert r_eadr.exec_cycles < r_adr.exec_cycles

    def test_lp_checksum_overhead_remains(self):
        """eADR removes persistency traffic, not LP's checksum compute:
        LP still executes more ops than base."""
        _, _, r_base = run_variant("base", "eadr")
        _, _, r_lp = run_variant("lp", "eadr")
        assert r_lp.ops_executed > r_base.ops_executed
