"""Corner cases of the flush paths (clflushopt / clwb semantics)."""

from repro.sim.cache import State
from repro.sim.coherence import Hierarchy
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.nvmm import MemoryController
from repro.sim.stats import MachineStats
from repro.sim.valuestore import MemoryState

LINE = 64


def make_hierarchy(num_cores=3):
    cfg = MachineConfig(
        num_cores=num_cores,
        l1=CacheConfig(512, 2, hit_cycles=2.0),
        l2=CacheConfig(2048, 2, hit_cycles=11.0),
    )
    mem = MemoryState()
    stats = MachineStats().for_cores(num_cores)
    mc = MemoryController(cfg.nvmm, mem, stats)
    h = Hierarchy(cfg, mem, stats, mc)
    for addr in range(LINE, LINE * 32, 8):
        mem.init(addr, 0.0)
    return h, mem, stats


class TestFlushRemoteOwnership:
    def test_flush_line_owned_by_other_core(self):
        """clflushopt reaches dirty data wherever it lives."""
        h, mem, _ = make_hierarchy()
        h.store(2, LINE, 7.0, now=0.0)
        wrote, _ = h.flush_line(LINE, now=5.0, invalidate=True)
        assert wrote
        assert mem.persisted(LINE) == 7.0
        assert not h.l1s[2].contains(LINE)

    def test_clwb_remote_owner_stays_resident_clean(self):
        h, mem, _ = make_hierarchy()
        h.store(1, LINE, 3.0, now=0.0)
        wrote, _ = h.flush_line(LINE, now=5.0, invalidate=False)
        assert wrote
        line = h.l1s[1].get(LINE)
        assert line is not None and line.state is State.EXCLUSIVE
        assert line.dirty_since is None
        # a later store must re-dirty with a fresh timestamp
        h.store(1, LINE, 4.0, now=100.0)
        assert h.l1s[1].get(LINE).dirty_since == 100.0

    def test_flush_shared_clean_line_invalidates_everyone(self):
        h, _, stats = make_hierarchy()
        for cid in range(3):
            h.load(cid, LINE, now=float(cid))
        wrote, _ = h.flush_line(LINE, now=5.0, invalidate=True)
        assert not wrote  # clean: no NVMM write
        for cid in range(3):
            assert not h.l1s[cid].contains(LINE)
        assert not h.l2.contains(LINE)

    def test_double_flush_writes_once(self):
        h, _, stats = make_hierarchy()
        h.store(0, LINE, 1.0, now=0.0)
        h.flush_line(LINE, now=1.0, invalidate=False)
        wrote, _ = h.flush_line(LINE, now=2.0, invalidate=False)
        assert not wrote  # already clean
        assert stats.nvmm_writes == 1


class TestDirtyL2Flush:
    def test_flush_after_downgrade_merges_once(self):
        """Store on core 0, read on core 1 (merge to L2), then flush:
        exactly one NVMM write with the original dirty timestamp."""
        h, mem, stats = make_hierarchy()
        h.store(0, LINE, 9.0, now=10.0)
        h.load(1, LINE, now=20.0)
        wrote, _ = h.flush_line(LINE, now=30.0, invalidate=True)
        assert wrote
        assert stats.nvmm_writes == 1
        assert mem.persisted(LINE) == 9.0
        # volatility measured from the store at t=10
        assert stats.max_volatility_cycles >= 20.0


class TestCleanAllMixedStates:
    def test_clean_all_covers_l1_and_l2_dirty(self):
        h, mem, _ = make_hierarchy()
        # dirty in L1 (M) on core 0
        h.store(0, LINE, 1.0, now=0.0)
        # dirty only in L2: store then downgrade via remote read
        h.store(1, LINE * 2, 2.0, now=1.0)
        h.load(2, LINE * 2, now=2.0)
        written = h.clean_all(now=50.0)
        assert written == 2
        assert mem.persisted(LINE) == 1.0
        assert mem.persisted(LINE * 2) == 2.0
        assert h.dirty_line_addrs() == set()
