"""Op-stream format pins: encode/decode round-trips and the cache.

The pre-decoded stream format (:mod:`repro.sim.opstream`) is only safe
if encoding is lossless: ``decode(encode(ops))`` must reproduce the
recorded ``(core_id, op)`` sequence exactly, for every registry
workload x variant x seed (hypothesis-driven below).  The on-disk
``.npz`` form and the content-addressed stream cache get the same
treatment: corrupt or version-mismatched blobs must read as misses,
never as wrong streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runner import ResultCache, cached_op_stream
from repro.errors import ConfigError
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.opstream import (
    STREAM_FORMAT_VERSION,
    encode_ops,
    load_stream,
    record_stream,
    save_stream,
)
from repro.workloads.registry import get_workload

#: Tiny but structurally complete sizes: every variant still runs its
#: full code path (regions, checksums, recovery metadata, barriers).
TINY_SPECS = {
    "tmm": dict(n=16, bsize=8),
    "cholesky": dict(n=16, col_block=8),
    "conv2d": dict(n=10, ksize=3, row_block=4),
    "gauss": dict(n=16, row_block=8, pivots=2),
    "fft": dict(n=64),
}

#: Every registry (workload, performance-variant) pair.
POINTS = [
    (name, variant)
    for name in TINY_SPECS
    for variant in get_workload(name)(**TINY_SPECS[name]).variants
]


def make_workload(name, seed):
    return get_workload(name)(**TINY_SPECS[name], seed=seed)


def replay_machine(num_threads):
    return Machine(MachineConfig(num_cores=num_threads + 1), _replay=True)


def record_raw(workload, variant, num_threads):
    """The raw ``(core_id, op)`` execution order, recorded with a local
    proxy (independent of record_stream's internals)."""
    machine = replay_machine(num_threads)
    bound = workload.bind(machine, num_threads=num_threads)
    sink = []

    def proxy(cid, gen):
        result = None
        while True:
            try:
                op = gen.send(result)
            except StopIteration:
                return
            sink.append((cid, op))
            result = yield op

    machine.run(
        [proxy(cid, g) for cid, g in enumerate(bound.threads(variant))]
    )
    return sink


@settings(max_examples=20, deadline=None)
@given(
    point=st.sampled_from(POINTS),
    seed=st.integers(min_value=0, max_value=7),
    num_threads=st.sampled_from([1, 2, 4]),
)
def test_decode_encode_round_trip(point, seed, num_threads):
    """decode(encode(ops)) is the identity on every recorded run."""
    name, variant = point
    workload = make_workload(name, seed)
    machine = replay_machine(num_threads)
    bound = workload.bind(machine, num_threads=num_threads)
    stream, _ = record_stream(machine, bound.threads(variant))

    ops = stream.decode()
    assert ops == record_raw(make_workload(name, seed), variant, num_threads)

    restream = encode_ops(ops, stream.num_threads)
    for field in ("code", "cid", "addr", "value", "aux"):
        assert np.array_equal(
            getattr(stream, field), getattr(restream, field)
        ), field
    assert stream.labels == restream.labels
    assert restream.decode() == ops


def test_save_load_round_trip(tmp_path):
    workload = make_workload("tmm", 3)
    machine = replay_machine(2)
    bound = workload.bind(machine, num_threads=2)
    stream, _ = record_stream(machine, bound.threads("lp"))

    path = str(tmp_path / "stream.npz")
    save_stream(stream, path)
    loaded = load_stream(path)
    assert loaded.num_threads == stream.num_threads
    assert loaded.labels == stream.labels
    for field in ("code", "cid", "addr", "value", "aux"):
        assert np.array_equal(getattr(stream, field), getattr(loaded, field))
    assert loaded.decode() == stream.decode()


def test_load_rejects_version_mismatch(tmp_path):
    workload = make_workload("tmm", 0)
    machine = replay_machine(1)
    bound = workload.bind(machine, num_threads=1)
    stream, _ = record_stream(machine, bound.threads("base"))
    path = str(tmp_path / "stream.npz")
    save_stream(stream, path)
    with np.load(path, allow_pickle=False) as data:
        arrays = dict(data)
    arrays["format"] = np.int64(STREAM_FORMAT_VERSION + 1)
    np.savez_compressed(path, **arrays)
    with pytest.raises(ValueError):
        load_stream(path)


def test_record_refuses_full_machine():
    workload = make_workload("tmm", 0)
    machine = Machine(MachineConfig(num_cores=2))  # not a replay machine
    bound = workload.bind(machine, num_threads=1)
    with pytest.raises(ConfigError):
        record_stream(machine, bound.threads("base"))


def test_execute_refuses_used_machine():
    workload = make_workload("tmm", 0)
    machine = replay_machine(1)
    bound = workload.bind(machine, num_threads=1)
    stream, _ = record_stream(machine, bound.threads("base"))
    # the recording machine already ran — streams need a fresh one
    with pytest.raises(ConfigError):
        machine.run_stream(stream)


def test_execute_refuses_too_few_cores():
    workload = make_workload("tmm", 0)
    machine = replay_machine(2)
    bound = workload.bind(machine, num_threads=2)
    stream, _ = record_stream(machine, bound.threads("base"))
    small = Machine(MachineConfig(num_cores=1), _replay=True)
    with pytest.raises(ConfigError):
        small.run_stream(stream)


def test_cached_op_stream_hits_and_survives_corruption(tmp_path):
    workload = make_workload("tmm", 1)
    config = MachineConfig(num_cores=3)
    cache = ResultCache(str(tmp_path))

    first = cached_op_stream(workload, config, "lp", num_threads=2,
                             cache=cache)
    assert cache.stats.misses == 1 and cache.stats.stores == 1
    again = cached_op_stream(workload, config, "lp", num_threads=2,
                             cache=cache)
    assert cache.stats.hits == 1
    assert np.array_equal(first.code, again.code)
    assert first.decode() == again.decode()

    # Corrupt the blob in place: next lookup is a miss + re-record.
    from repro.analysis.runner import stream_cache_key

    key = stream_cache_key(workload, config, "lp", 2, "modular")
    with open(cache._blob_path(key), "wb") as fh:
        fh.write(b"not an npz")
    refreshed = cached_op_stream(workload, config, "lp", num_threads=2,
                                 cache=cache)
    assert cache.stats.corrupt == 1
    assert np.array_equal(first.code, refreshed.code)


def test_cached_op_stream_refuses_stream_unsafe_workloads(tmp_path):
    workload = make_workload("tmm", 0)
    workload.stream_safe = False
    with pytest.raises(ConfigError):
        cached_op_stream(
            workload, MachineConfig(num_cores=2), "base", num_threads=1,
            cache=ResultCache(str(tmp_path)),
        )


@pytest.mark.parametrize(
    "name,params",
    [
        ("log", {"records": 4, "width": 2, "wb_batch": 2}),
        ("hashmap", {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2}),
    ],
)
def test_region_workloads_bypass_the_stream_cache(tmp_path, name, params):
    # The storage family's region bodies are value-dependent (hashmap
    # probe loops), so the class itself opts out of pre-decoded replay:
    # the stream cache refuses it, and the ordinary generator path
    # stays the (correct) fallback.
    from repro.analysis.experiments import run_variant
    from repro.sim.config import tiny_machine
    from repro.workloads import get_workload

    workload = get_workload(name)(**params)
    assert workload.stream_safe is False
    cache = ResultCache(str(tmp_path))
    with pytest.raises(ConfigError):
        cached_op_stream(
            workload, tiny_machine(), "lp", num_threads=2, cache=cache
        )
    # Refusal must happen before anything is recorded or stored.
    assert cache.stats.stores == 0

    result = run_variant(workload, tiny_machine(), "lp", num_threads=2)
    assert result.verified
