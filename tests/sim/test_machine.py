"""Unit tests for the Machine scheduler and run lifecycle."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Compute, Load, RegionMark, Store
from repro.sim.machine import Machine


def tiny_machine(num_cores=2):
    return Machine(
        MachineConfig(
            num_cores=num_cores,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
        )
    )


def incrementer(region, lo, hi, delta=1.0):
    for i in range(lo, hi):
        v = yield Load(region.addr(i))
        yield Compute(1)
        yield Store(region.addr(i), v + delta)


class TestAllocation:
    def test_alloc_initialises_durably(self):
        m = tiny_machine()
        r = m.alloc("a", 4)
        assert m.read_region(r) == [0.0] * 4
        assert m.read_region(r, persistent=True) == [0.0] * 4

    def test_alloc_init_values(self):
        m = tiny_machine()
        r = m.alloc_init("a", [1.0, 2.0, 3.0])
        assert m.read_region(r) == [1.0, 2.0, 3.0]

    def test_scalar(self):
        m = tiny_machine()
        s = m.scalar("counter", -1.0)
        assert m.arch_value(s.base) == -1.0

    def test_region_lookup(self):
        m = tiny_machine()
        r = m.alloc("a", 4)
        assert m.region("a") == r


class TestRun:
    def test_single_thread_completes(self):
        m = tiny_machine()
        r = m.alloc("a", 8)
        result = m.run([incrementer(r, 0, 8)])
        assert not result.crashed
        assert result.finished_threads == 1
        assert m.read_region(r) == [1.0] * 8
        assert result.exec_cycles > 0

    def test_two_threads_interleave(self):
        m = tiny_machine()
        r = m.alloc("a", 16)
        result = m.run([incrementer(r, 0, 8), incrementer(r, 8, 16)])
        assert result.finished_threads == 2
        assert m.read_region(r) == [1.0] * 16

    def test_exec_cycles_is_max_over_cores(self):
        m = tiny_machine()
        r = m.alloc("a", 16)
        result = m.run([incrementer(r, 0, 8), incrementer(r, 8, 16)])
        per_core = [c.cycles for c in result.stats.per_core[:2]]
        assert result.exec_cycles == max(per_core)

    def test_determinism(self):
        def run_once():
            m = tiny_machine()
            r = m.alloc("a", 16)
            res = m.run([incrementer(r, 0, 8), incrementer(r, 8, 16)])
            return res.exec_cycles, res.stats.nvmm_writes, res.ops_executed

        assert run_once() == run_once()

    def test_too_many_threads_rejected(self):
        m = tiny_machine(num_cores=1)
        r = m.alloc("a", 4)
        with pytest.raises(ConfigError):
            m.run([incrementer(r, 0, 2), incrementer(r, 2, 4)])

    def test_no_threads_rejected(self):
        m = tiny_machine()
        with pytest.raises(ConfigError):
            m.run([])

    def test_op_limit_stops_early(self):
        m = tiny_machine()
        r = m.alloc("a", 64)
        result = m.run([incrementer(r, 0, 64)], op_limit=10)
        assert result.ops_executed == 10
        assert not result.crashed


class TestCrashTriggers:
    def test_crash_at_op(self):
        m = tiny_machine()
        r = m.alloc("a", 64)
        result = m.run([incrementer(r, 0, 64)], crash_at_op=15)
        assert result.crashed
        assert result.ops_executed == 15

    def test_crash_at_mark(self):
        def marked(region):
            for i in range(8):
                yield Store(region.addr(i), 1.0)
                yield RegionMark(f"r{i}")

        m = tiny_machine()
        r = m.alloc("a", 8)
        result = m.run([marked(r)], crash_at_mark=3)
        assert result.crashed
        assert result.region_marks == 3

    def test_crash_at_cycle(self):
        m = tiny_machine()
        r = m.alloc("a", 64)
        result = m.run([incrementer(r, 0, 64)], crash_at_cycle=500.0)
        assert result.crashed

    def test_on_mark_callback(self):
        seen = []

        def marked():
            yield RegionMark("hello")

        m = tiny_machine()
        m.on_mark = lambda mark, cid, clock: seen.append((mark.label, cid))
        m.run([marked()])
        assert seen == [("hello", 0)]


class TestCrashSemantics:
    def test_after_crash_loses_cached_stores(self):
        m = tiny_machine()
        r = m.alloc("a", 8)  # one line: stays cached, never evicted
        result = m.run([incrementer(r, 0, 8)], crash_at_op=23)
        assert result.crashed
        post = m.after_crash()
        assert post.read_region(r) == [0.0] * 8

    def test_after_crash_keeps_drained_data(self):
        m = tiny_machine()
        r = m.alloc("a", 8)
        m.run([incrementer(r, 0, 8)])
        m.drain()
        post = m.after_crash()
        assert post.read_region(r) == [1.0] * 8

    def test_after_crash_shares_allocator(self):
        m = tiny_machine()
        r = m.alloc("a", 8)
        post = m.after_crash()
        assert post.region("a") == r

    def test_post_crash_machine_runs(self):
        m = tiny_machine()
        r = m.alloc("a", 8)
        m.run([incrementer(r, 0, 8)], crash_at_op=10)
        post = m.after_crash()
        res = post.run([incrementer(r, 0, 8, delta=2.0)])
        assert res.finished_threads == 1


class TestDrain:
    def test_drain_persists_everything(self):
        m = tiny_machine()
        r = m.alloc("a", 8)
        m.run([incrementer(r, 0, 8)])
        assert m.read_region(r, persistent=True) == [0.0] * 8
        m.drain()
        assert m.read_region(r, persistent=True) == [1.0] * 8

    def test_drain_counts_writes(self):
        m = tiny_machine()
        r = m.alloc("a", 8)
        m.run([incrementer(r, 0, 8)])
        m.drain()
        assert m.stats.writes_by_cause.get("drain", 0) >= 1
