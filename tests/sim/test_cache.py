"""Unit tests for repro.sim.cache."""

import pytest

from repro.errors import SimulationError
from repro.sim.cache import Cache, State
from repro.sim.config import CacheConfig


def tiny_cache(size=1024, ways=2):
    """1KB 2-way cache: 8 sets of 64B lines."""
    return Cache(CacheConfig(size, ways, hit_cycles=1.0), name="tiny")


class TestLookup:
    def test_miss_then_hit(self):
        c = tiny_cache()
        assert c.get(64) is None
        c.install(64, State.EXCLUSIVE)
        assert c.get(64) is not None
        assert c.contains(64)

    def test_set_indexing_wraps(self):
        c = tiny_cache()  # 8 sets
        assert c.set_index(0) == c.set_index(8 * 64)
        assert c.set_index(64) != c.set_index(128)

    def test_double_install_rejected(self):
        c = tiny_cache()
        c.install(64, State.SHARED)
        with pytest.raises(SimulationError):
            c.install(64, State.SHARED)


class TestEviction:
    def test_no_victim_when_room(self):
        c = tiny_cache()
        c.install(64, State.EXCLUSIVE)
        assert c.victim_for(64 + 8 * 64) is None

    def test_lru_victim(self):
        c = tiny_cache(ways=2)
        stride = 8 * 64  # same set
        c.install(0 * stride + 64, State.EXCLUSIVE)
        c.install(1 * stride + 64, State.EXCLUSIVE)
        # touch the first so the second becomes LRU
        c.access(0 * stride + 64)
        victim = c.victim_for(2 * stride + 64)
        assert victim is not None
        assert victim.addr == 1 * stride + 64

    def test_install_into_full_set_rejected(self):
        c = tiny_cache(ways=2)
        stride = 8 * 64
        c.install(64, State.EXCLUSIVE)
        c.install(stride + 64, State.EXCLUSIVE)
        with pytest.raises(SimulationError):
            c.install(2 * stride + 64, State.EXCLUSIVE)

    def test_remove(self):
        c = tiny_cache()
        c.install(64, State.MODIFIED)
        line = c.remove(64)
        assert line.addr == 64
        assert not c.contains(64)
        with pytest.raises(SimulationError):
            c.remove(64)


class TestDirty:
    def test_modified_is_dirty(self):
        c = tiny_cache()
        line = c.install(64, State.MODIFIED)
        assert line.dirty
        assert [ln.addr for ln in c.dirty_lines()] == [64]

    def test_clean_states_not_dirty(self):
        c = tiny_cache()
        assert not c.install(64, State.EXCLUSIVE).dirty
        assert not c.install(128, State.SHARED).dirty
        assert list(c.dirty_lines()) == []

    def test_occupancy_and_drop_all(self):
        c = tiny_cache()
        c.install(64, State.SHARED)
        c.install(128, State.SHARED)
        assert c.occupancy == 2
        c.drop_all()
        assert c.occupancy == 0
