"""Unit tests for the core execution engine and hazard model."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import CacheConfig, CoreConfig, MachineConfig
from repro.sim.coherence import Hierarchy
from repro.sim.core import Core
from repro.sim.isa import Compute, Fence, Flush, FlushWB, Load, RegionMark, Store
from repro.sim.nvmm import MemoryController
from repro.sim.stats import MachineStats
from repro.sim.valuestore import MemoryState

LINE = 64


def make_core(core_cfg=None, **machine_kwargs):
    cfg = MachineConfig(
        num_cores=1,
        core=core_cfg or CoreConfig(),
        l1=CacheConfig(512, 2, hit_cycles=2.0),
        l2=CacheConfig(2048, 2, hit_cycles=11.0),
        **machine_kwargs,
    )
    mem = MemoryState()
    stats = MachineStats().for_cores(1)
    mc = MemoryController(cfg.nvmm, mem, stats)
    h = Hierarchy(cfg, mem, stats, mc)
    for addr in range(LINE, LINE * 128, 8):
        mem.init(addr, float(addr))
    return Core(0, cfg.core, h, mem, stats.per_core[0]), stats


class TestLoads:
    def test_load_returns_value(self):
        core, _ = make_core()
        assert core.execute(Load(LINE)) == float(LINE)

    def test_hit_is_cheap_miss_is_expensive(self):
        core, _ = make_core()
        core.execute(Load(LINE))
        t_after_miss = core.clock
        core.execute(Load(LINE + 8))  # same line: L1 hit
        assert core.clock - t_after_miss == core.config.l1_hit_issue_cycles
        assert t_after_miss >= 300.0  # went to NVMM

    def test_load_counts(self):
        core, _ = make_core()
        core.execute(Load(LINE))
        core.execute(Load(LINE))
        assert core.stats.loads == 2
        assert core.stats.l1_misses == 1
        assert core.stats.l1_hits == 1


class TestStores:
    def test_store_is_asynchronous(self):
        core, _ = make_core()
        core.execute(Load(LINE))  # warm the line
        t0 = core.clock
        core.execute(Store(LINE, 1.0))
        # only issue cost charged inline; drain happens in background
        assert core.clock - t0 == core.config.l1_hit_issue_cycles

    def test_store_buffer_full_counts_fuw(self):
        cfg = CoreConfig(store_buffer_entries=2)
        core, _ = make_core(core_cfg=cfg)
        # cold stores miss -> slow drains; the third store finds both
        # slots occupied by in-flight RFOs
        stride = 512  # distinct L1 sets and lines
        for i in range(4):
            core.execute(Store(LINE + i * stride, 1.0))
        assert core.stats.fu_write_events >= 1

    def test_store_value_visible_to_load(self):
        core, _ = make_core()
        core.execute(Store(LINE, 42.0))
        assert core.execute(Load(LINE)) == 42.0


class TestFlushFence:
    def test_flush_then_fence_persists(self):
        core, stats = make_core()
        core.execute(Store(LINE, 9.0))
        core.execute(Flush(LINE))
        core.execute(Fence())
        assert stats.nvmm_writes == 1
        assert core.hierarchy.mem.persisted(LINE) == 9.0

    def test_fence_waits_for_flush_acceptance(self):
        core, _ = make_core()
        core.execute(Store(LINE, 9.0))
        core.execute(Flush(LINE))
        core.execute(Fence())
        assert core.stats.fences == 1
        # nothing in flight afterwards
        assert core.outstanding_drain_time() == core.clock

    def test_fence_with_nothing_outstanding_is_free(self):
        core, _ = make_core()
        core.execute(Compute(4))
        t0 = core.clock
        core.execute(Fence())
        assert core.clock == t0
        assert core.stats.fence_stall_cycles == 0.0

    def test_flushwb_keeps_line_warm(self):
        core, stats = make_core()
        core.execute(Store(LINE, 9.0))
        core.execute(FlushWB(LINE))
        core.execute(Fence())
        assert stats.nvmm_writes == 1
        t0 = core.clock
        core.execute(Load(LINE))  # should still hit
        assert core.clock - t0 == core.config.l1_hit_issue_cycles

    def test_flush_queue_full_counts_mshr_pressure(self):
        cfg = CoreConfig(flush_queue_entries=1)
        core, _ = make_core(core_cfg=cfg)
        core.execute(Store(LINE, 1.0))
        core.execute(Store(LINE + 512, 2.0))
        core.execute(Flush(LINE))
        core.execute(Flush(LINE + 512))
        assert core.stats.mshr_full_events >= 1


class TestCompute:
    def test_compute_cost_scales_with_flops(self):
        core, _ = make_core()
        core.execute(Compute(8))
        assert core.clock == 8 * core.config.compute_cpi

    def test_fui_pressure_counted_under_inflight_backlog(self):
        cfg = CoreConfig(fu_pressure_threshold=1)
        core, _ = make_core(core_cfg=cfg)
        core.execute(Store(LINE, 1.0))  # cold store: long drain in flight
        core.execute(Compute(1))
        assert core.stats.fu_int_events == 1

    def test_no_fui_when_quiet(self):
        core, _ = make_core()
        core.execute(Compute(1))
        assert core.stats.fu_int_events == 0


class TestMisc:
    def test_region_mark_is_free(self):
        core, _ = make_core()
        core.execute(RegionMark("r0"))
        assert core.clock == 0.0
        assert core.stats.ops == 1

    def test_unknown_op_rejected(self):
        core, _ = make_core()
        with pytest.raises(SimulationError):
            core.execute("not an op")  # type: ignore[arg-type]
