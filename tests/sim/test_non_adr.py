"""Tests for the pre-ADR (pcommit-era) persistence model (adr=False).

Under ADR a write is durable at MC acceptance; without it, durability
waits for the NVMM device to finish the write, fences take the full
write latency, and a crash loses writes still in flight.
"""



from repro.sim.config import CacheConfig, MachineConfig, NVMMConfig
from repro.sim.isa import Fence, Flush, Store
from repro.sim.machine import Machine


def machine(adr=True, write_cycles=600.0):
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
            nvmm=NVMMConfig(adr=adr, write_cycles=write_cycles),
        )
    )


def flushing_writer(region, n):
    for i in range(n):
        yield Store(region.addr(i), 5.0)
        yield Flush(region.addr(i))
    yield Fence()


class TestFenceCost:
    def test_fence_waits_longer_without_adr(self):
        costs = {}
        for adr in (True, False):
            m = machine(adr=adr)
            r = m.alloc("a", 8)
            res = m.run([flushing_writer(r, 1)])
            costs[adr] = res.exec_cycles
        # non-ADR fence waits out the device write latency
        assert costs[False] > costs[True] + 100.0

    def test_flushed_and_fenced_is_durable_either_way(self):
        for adr in (True, False):
            m = machine(adr=adr)
            r = m.alloc("a", 8)
            m.run([flushing_writer(r, 8)])
            assert m.read_region(r, persistent=True) == [5.0] * 8


class TestCrashSemantics:
    def test_in_flight_write_lost_without_adr(self):
        """Crash immediately after a flush issues: ADR keeps the data,
        non-ADR rolls it back."""

        from repro.sim.isa import Compute

        def kernel(region):
            yield Store(region.addr(0), 9.0)
            yield Flush(region.addr(0))
            # crash lands here, long before the 600-cycle write ends
            yield Compute(1)
            yield Compute(1)

        for adr, expected in ((True, 9.0), (False, 0.0)):
            m = machine(adr=adr)
            r = m.alloc("a", 8)
            m.run([kernel(r)], crash_at_op=2)
            post = m.after_crash()
            assert post.arch_value(r.addr(0)) == expected, f"adr={adr}"

    def test_completed_write_survives_without_adr(self):
        """If enough time passes after the flush, the write is durable
        even without ADR."""
        from repro.sim.isa import Compute

        def kernel(region):
            yield Store(region.addr(0), 9.0)
            yield Flush(region.addr(0))
            yield Compute(40_000)  # ~10k cycles >> write latency
            yield Compute(1)

        m = machine(adr=False)
        r = m.alloc("a", 8)
        m.run([kernel(r)], crash_at_op=4)
        post = m.after_crash()
        assert post.arch_value(r.addr(0)) == 9.0

    def test_rollback_restores_prior_persistent_value(self):
        from repro.sim.isa import Compute

        def kernel(region):
            yield Store(region.addr(0), 1.0)
            yield Flush(region.addr(0))
            yield Fence()  # 1.0 durable
            yield Store(region.addr(0), 2.0)
            yield Flush(region.addr(0))
            # crash before the second write completes
            yield Compute(1)
            yield Compute(1)

        m = machine(adr=False)
        r = m.alloc("a", 8)
        m.run([kernel(r)], crash_at_op=5)
        post = m.after_crash()
        assert post.arch_value(r.addr(0)) == 1.0

    def test_adr_discard_is_noop(self):
        m = machine(adr=True)
        r = m.alloc("a", 8)
        m.run([flushing_writer(r, 4)], crash_at_op=6)
        assert m.mc.discard_in_flight(0.0) == 0


class TestUndoBookkeeping:
    def test_prune_drops_completed_records(self):
        m = machine(adr=False)
        r = m.alloc("a", 8)
        m.run([flushing_writer(r, 4)])
        m.mc.prune_undo(1e12)
        assert m.mc.discard_in_flight(0.0) == 0  # nothing left to undo
