"""Multi-core coherence scenarios beyond the two-core basics."""

from repro.sim.cache import State
from repro.sim.coherence import Hierarchy
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.nvmm import MemoryController
from repro.sim.stats import MachineStats
from repro.sim.valuestore import MemoryState

LINE = 64


def make_hierarchy(num_cores=4):
    cfg = MachineConfig(
        num_cores=num_cores,
        l1=CacheConfig(512, 2, hit_cycles=2.0),
        l2=CacheConfig(2048, 2, hit_cycles=11.0),
    )
    mem = MemoryState()
    stats = MachineStats().for_cores(num_cores)
    mc = MemoryController(cfg.nvmm, mem, stats)
    h = Hierarchy(cfg, mem, stats, mc)
    for addr in range(LINE, LINE * 64, 8):
        mem.init(addr, 0.0)
    return h, mem, stats


class TestOwnershipChains:
    def test_migratory_sharing(self):
        """M ownership migrates 0 -> 1 -> 2 -> 3; one M copy at a time."""
        h, mem, _ = make_hierarchy()
        for cid in range(4):
            h.store(cid, LINE, float(cid), now=float(cid))
            h.check_single_writer()
            h.check_inclusion()
        # only the last writer holds the line
        assert h.l1s[3].get(LINE).state is State.MODIFIED
        for cid in range(3):
            assert not h.l1s[cid].contains(LINE)
        assert mem.load(LINE) == 3.0

    def test_dirty_since_survives_migration(self):
        """The un-persisted-data obligation keeps its original age."""
        h, _, stats = make_hierarchy()
        h.store(0, LINE, 1.0, now=10.0)
        h.store(1, LINE, 2.0, now=500.0)
        h.store(2, LINE, 3.0, now=900.0)
        h.flush_line(LINE, now=1000.0, invalidate=True)
        # volatility measured from the FIRST dirtying store at t=10
        assert stats.max_volatility_cycles >= 990.0

    def test_wide_read_sharing_then_write(self):
        """All cores share; one writes; everyone else is invalidated."""
        h, _, _ = make_hierarchy()
        for cid in range(4):
            h.load(cid, LINE, now=float(cid))
        for cid in range(4):
            assert h.l1s[cid].get(LINE).state is State.SHARED
        h.store(2, LINE, 7.0, now=10.0)
        assert h.l1s[2].get(LINE).state is State.MODIFIED
        for cid in (0, 1, 3):
            assert not h.l1s[cid].contains(LINE)
        h.check_single_writer()

    def test_read_after_remote_write_chain(self):
        h, mem, _ = make_hierarchy()
        h.store(0, LINE, 5.0, now=0.0)
        acc = h.load(3, LINE, now=1.0)
        assert not acc.l1_hit
        assert mem.load(LINE) == 5.0
        # both ended shared, L2 holds the dirty merge
        assert h.l1s[0].get(LINE).state is State.SHARED
        assert h.l1s[3].get(LINE).state is State.SHARED
        assert h.l2.get(LINE).dirty


class TestEvictionUnderSharing:
    def test_l2_eviction_invalidates_all_sharers(self):
        h, _, _ = make_hierarchy()
        l2_stride = h.l2.config.num_sets * LINE
        target = LINE
        for cid in range(4):
            h.load(cid, target, now=float(cid))
        # force target's set to overflow in L2
        h.load(0, target + l2_stride, now=10.0)
        h.load(0, target + 2 * l2_stride, now=11.0)
        assert not h.l2.contains(target)
        for cid in range(4):
            assert not h.l1s[cid].contains(target)
        h.check_inclusion()

    def test_shared_dirty_l2_eviction_persists_once(self):
        h, mem, stats = make_hierarchy()
        l2_stride = h.l2.config.num_sets * LINE
        h.store(0, LINE, 9.0, now=0.0)
        h.load(1, LINE, now=1.0)  # downgrade; dirty merges into L2
        h.load(2, LINE + l2_stride, now=2.0)
        h.load(2, LINE + 2 * l2_stride, now=3.0)  # evicts the dirty line
        assert mem.persisted(LINE) == 9.0
        assert stats.writes_by_cause.get("eviction") == 1
