"""Machine lifecycle edge cases: sequential runs, error propagation."""

import pytest

from repro.errors import AddressError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Compute, Load, Store
from repro.sim.machine import Machine


def machine(cores=2):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(2048, 2, hit_cycles=11.0),
        )
    )


class TestSequentialRuns:
    def test_two_phases_accumulate(self):
        """Running a second batch of threads continues clocks and stats
        (this is how recovery reuses the post-crash machine)."""
        m = machine()
        r = m.alloc("a", 8)

        def phase(value):
            for i in range(8):
                yield Store(r.addr(i), value)
            yield Compute(4)

        res1 = m.run([phase(1.0)])
        ops1 = res1.ops_executed
        res2 = m.run([phase(2.0)])
        assert res2.ops_executed == ops1  # per-run count
        assert m.read_region(r) == [2.0] * 8
        # clocks continued, not reset
        assert m.cores[0].clock > 0
        assert m.stats.per_core[0].ops == 2 * ops1

    def test_warm_cache_carries_over(self):
        m = machine()
        r = m.alloc("a", 8)

        def reader():
            for i in range(8):
                yield Load(r.addr(i))

        m.run([reader()])
        misses_first = m.stats.per_core[0].l1_misses
        m.run([reader()])
        assert m.stats.per_core[0].l1_misses == misses_first  # all hits now


class TestErrorPropagation:
    def test_load_from_unallocated_raises(self):
        m = machine()

        def bad():
            yield Load(1 << 20)

        with pytest.raises(AddressError):
            m.run([bad()])

    def test_unaligned_store_raises(self):
        m = machine()

        def bad():
            yield Store(65, 1.0)

        with pytest.raises(AddressError):
            m.run([bad()])


class TestThreadAssignment:
    def test_threads_map_to_cores_in_order(self):
        m = machine(cores=3)
        r = m.alloc("a", 4)
        seen = []

        def t(tag):
            yield Store(r.addr(tag), float(tag))
            seen.append(tag)

        m.run([t(0), t(1), t(2)])
        # each thread ran on its own core: all three have ops
        assert all(m.stats.per_core[i].ops > 0 for i in range(3))
