"""Unit tests for repro.sim.address."""

import pytest

from repro.errors import AddressError
from repro.sim.address import (
    Allocator,
    Region,
    element_addrs_of_line,
    is_element_aligned,
    line_of,
)
from repro.sim.config import ELEMENT_BYTES, LINE_BYTES


class TestLineMath:
    def test_line_of_aligned(self):
        assert line_of(128) == 128

    def test_line_of_unaligned(self):
        assert line_of(130) == 128
        assert line_of(191) == 128
        assert line_of(192) == 192

    def test_element_addrs_of_line(self):
        addrs = list(element_addrs_of_line(64))
        assert addrs == [64, 72, 80, 88, 96, 104, 112, 120]

    def test_alignment(self):
        assert is_element_aligned(64)
        assert is_element_aligned(72)
        assert not is_element_aligned(65)


class TestRegion:
    def test_addr_indexing(self):
        r = Region("x", base=64, num_elements=10)
        assert r.addr(0) == 64
        assert r.addr(9) == 64 + 9 * ELEMENT_BYTES

    def test_addr_bounds(self):
        r = Region("x", base=64, num_elements=10)
        with pytest.raises(AddressError):
            r.addr(10)
        with pytest.raises(AddressError):
            r.addr(-1)

    def test_lines_cover_region(self):
        r = Region("x", base=64, num_elements=9)  # 72B -> spans 2 lines
        assert list(r.lines()) == [64, 128]

    def test_element_addrs(self):
        r = Region("x", base=64, num_elements=3)
        assert list(r.element_addrs()) == [64, 72, 80]


class TestAllocator:
    def test_line_aligned_allocations(self):
        alloc = Allocator(1 << 20)
        a = alloc.alloc("a", 3)  # under one line, padded to a line
        b = alloc.alloc("b", 1)
        assert a.base % LINE_BYTES == 0
        assert b.base % LINE_BYTES == 0
        assert b.base >= a.base + LINE_BYTES  # no line sharing

    def test_no_zero_address(self):
        alloc = Allocator(1 << 20)
        a = alloc.alloc("a", 1)
        assert a.base > 0

    def test_duplicate_name_rejected(self):
        alloc = Allocator(1 << 20)
        alloc.alloc("a", 1)
        with pytest.raises(AddressError):
            alloc.alloc("a", 1)

    def test_lookup(self):
        alloc = Allocator(1 << 20)
        a = alloc.alloc("a", 4)
        assert alloc.region("a") == a
        with pytest.raises(AddressError):
            alloc.region("missing")

    def test_out_of_memory(self):
        alloc = Allocator(256)
        with pytest.raises(AddressError):
            alloc.alloc("big", 1000)

    def test_rejects_empty_alloc(self):
        alloc = Allocator(1 << 20)
        with pytest.raises(AddressError):
            alloc.alloc("zero", 0)

    def test_bytes_allocated(self):
        alloc = Allocator(1 << 20)
        alloc.alloc("a", 8)  # exactly one line
        assert alloc.bytes_allocated == LINE_BYTES
