"""Crash-trigger boundary semantics, golden-pinned before the timing
refactor.

The exact instant a crash trigger fires is part of the crash-state
checker's contract: campaigns sweep ``at_op`` grids and per-flush
boundaries, and a refactor that silently shifts a trigger by one op
would re-aim every campaign.  These tests nail the boundaries down:

* ``crash_at_op=N`` fires *before* the fetched op executes — exactly N
  ops have executed when the machine stops;
* ``crash_at_op=0`` crashes before any op executes;
* ``crash_at_cycle`` fires before the fetched op executes, at the first
  schedule point whose core clock has reached the threshold;
* ``crash_at_flush=N`` / ``crash_at_mark=N`` fire right *after* the Nth
  flush / mark executes (the persist-boundary semantics the checker's
  flush-boundary grid depends on), including on the final op;
* a trigger the run never reaches yields a graceful, uncrashed end.
"""

import pytest

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Compute, Fence, Flush, RegionMark, Store
from repro.sim.machine import Machine


def tiny_config(timing: str = "detailed") -> MachineConfig:
    kwargs = {}
    if timing != "detailed":
        kwargs["timing"] = timing
    return MachineConfig(
        num_cores=2,
        l1=CacheConfig(512, 2, hit_cycles=2.0),
        l2=CacheConfig(2048, 4, hit_cycles=11.0),
        **kwargs,
    )


TIMINGS = ["detailed", "functional"]


def make_machine(timing: str) -> Machine:
    return Machine(tiny_config(timing))


def simple_thread(machine, executed, n_stores=4):
    """Store / flush / fence / mark loop that records executed ops."""
    region = machine.region("data")
    for i in range(n_stores):
        yield Store(region.base + 8 * (i % region.num_elements), float(i))
        executed.append(("store", i))
        yield Flush(region.base)
        executed.append(("flush", i))
        yield Fence()
        executed.append(("fence", i))
        yield RegionMark(f"r{i}")
        executed.append(("mark", i))


def run_simple(timing, executed, **crash_kwargs):
    machine = make_machine(timing)
    machine.alloc("data", 8)
    result = machine.run(
        [simple_thread(machine, executed)], **crash_kwargs
    )
    return machine, result


@pytest.mark.parametrize("timing", TIMINGS)
class TestAtOpBoundary:
    def test_exactly_n_ops_execute(self, timing):
        for n in (1, 2, 3, 7):
            executed = []
            _, result = run_simple(timing, executed, crash_at_op=n)
            assert result.crashed
            assert result.ops_executed == n
            assert len(executed) == n

    def test_fires_before_the_fetched_op(self, timing):
        # Crash at op 1: the store executed, the first flush did not,
        # so nothing can have reached the persistence domain.
        executed = []
        machine, result = run_simple(timing, executed, crash_at_op=1)
        assert executed == [("store", 0)]
        assert result.stats.nvmm_writes == 0
        base = machine.region("data").base
        assert machine.mem.persisted(base) == 0.0  # init value survives

    def test_at_op_zero_crashes_immediately(self, timing):
        executed = []
        _, result = run_simple(timing, executed, crash_at_op=0)
        assert result.crashed
        assert result.ops_executed == 0
        assert executed == []

    def test_at_op_equal_to_total_is_a_graceful_end(self, timing):
        # Profile the full run, then set the trigger exactly at its op
        # count: every op has executed when the threads finish, so the
        # trigger never fires before a fetch again -> no crash.
        executed = []
        _, profile = run_simple(timing, executed)
        total = profile.ops_executed
        executed = []
        _, result = run_simple(timing, executed, crash_at_op=total)
        assert not result.crashed
        assert result.ops_executed == total

    def test_at_op_one_past_total_is_a_graceful_end(self, timing):
        executed = []
        _, profile = run_simple(timing, executed)
        executed = []
        _, result = run_simple(
            timing, executed, crash_at_op=profile.ops_executed + 1
        )
        assert not result.crashed


@pytest.mark.parametrize("timing", TIMINGS)
class TestAtCycleBoundary:
    def test_fires_before_the_fetched_op(self, timing):
        # A crash threshold of 0.0 cycles fires at the very first
        # schedule point: nothing executes.
        executed = []
        _, result = run_simple(timing, executed, crash_at_cycle=0.0)
        assert result.crashed
        assert result.ops_executed == 0
        assert executed == []

    def test_unreachable_cycle_never_fires(self, timing):
        executed = []
        _, result = run_simple(timing, executed, crash_at_cycle=1e12)
        assert not result.crashed

    def test_clock_has_reached_threshold(self, timing):
        executed = []
        machine, result = run_simple(timing, executed, crash_at_cycle=5.0)
        assert result.crashed
        assert max(c.clock for c in machine.cores) >= 5.0


@pytest.mark.parametrize("timing", TIMINGS)
class TestAtFlushBoundary:
    def test_fires_right_after_nth_flush(self, timing):
        executed = []
        _, result = run_simple(timing, executed, crash_at_flush=1)
        assert result.crashed
        assert result.flush_ops == 1
        # The flush executed; the fence behind it did not: exactly the
        # store and the flush ran (ops 1 and 2 of the thread).
        assert result.ops_executed == 2

    def test_flush_data_is_accepted_but_unfenced(self, timing):
        executed = []
        machine, result = run_simple(timing, executed, crash_at_flush=1)
        # Persist-boundary semantics: the flushed line reached the MC...
        assert result.stats.nvmm_writes == 1
        tracker = machine.persist_tracker
        assert tracker is not None
        # ...but no fence ordered it: it is still a pending event the
        # crash-state space treats as reorderable.
        assert tracker.pending_flush_count == 1

    def test_fires_on_the_final_flush(self, timing):
        executed = []
        _, profile = run_simple(timing, executed)
        n_flushes = profile.flush_ops
        executed = []
        _, result = run_simple(timing, executed, crash_at_flush=n_flushes)
        # Even when the Nth flush is deep in the run's tail the
        # post-execution check still fires.
        assert result.crashed
        assert result.flush_ops == n_flushes

    def test_beyond_final_flush_is_graceful(self, timing):
        executed = []
        _, profile = run_simple(timing, executed)
        executed = []
        _, result = run_simple(
            timing, executed, crash_at_flush=profile.flush_ops + 1
        )
        assert not result.crashed


@pytest.mark.parametrize("timing", TIMINGS)
class TestAtMarkBoundary:
    def test_fires_right_after_nth_mark(self, timing):
        executed = []
        _, result = run_simple(timing, executed, crash_at_mark=2)
        assert result.crashed
        assert result.region_marks == 2
        # Each loop iteration is store/flush/fence/mark: the run stops
        # exactly at the 2nd mark, the 8th op.
        assert result.ops_executed == 8

    def test_fires_on_the_final_op_of_the_run(self, timing):
        # The last op the thread yields is a RegionMark; the trigger on
        # it must still report a crash, not a graceful end.
        executed = []
        _, profile = run_simple(timing, executed)
        n_marks = profile.region_marks
        assert executed[-1][0] == "mark"
        executed = []
        _, result = run_simple(timing, executed, crash_at_mark=n_marks)
        assert result.crashed
        assert result.region_marks == n_marks
        assert result.ops_executed == profile.ops_executed


@pytest.mark.parametrize("timing", TIMINGS)
def test_op_limit_stops_without_crashing(timing):
    executed = []
    _, result = run_simple(timing, executed, op_limit=3)
    assert not result.crashed
    assert result.ops_executed == 3


@pytest.mark.parametrize("timing", TIMINGS)
def test_compute_only_thread_never_flush_crashes(timing):
    machine = make_machine(timing)
    machine.alloc("data", 8)

    def compute_thread():
        for _ in range(5):
            yield Compute(4)

    result = machine.run([compute_thread()], crash_at_flush=1)
    assert not result.crashed
    assert result.flush_ops == 0
