"""Tests for the pluggable persistency-model matrix (repro.sim.model).

Covers the registry itself, the config plumbing (validation,
``with_model``, ``resolved_model``, cache-key back-compat), and the
observable per-model machine semantics: who owns the persistence
domain, what flush/fence mean, and which models admit crash-state
enumeration.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.sim.address import element_addrs_of_line
from repro.sim.config import (
    LINE_BYTES,
    CacheConfig,
    MachineConfig,
    NVMMConfig,
)
from repro.sim.isa import Fence, Flush, Store
from repro.sim.machine import Machine
from repro.sim.model import (
    DEFAULT_MODEL,
    PERSISTENCY_MODELS,
    PersistencyModel,
    enumerable_model_names,
    get_model,
    litmus_model_names,
    model_names,
)
from repro.sim.persist import PersistOrderTracker
from repro.sim.valuestore import MemoryState

LINE_A = 4 * LINE_BYTES
LINE_B = 8 * LINE_BYTES


def machine(model="adr"):
    """A one-core machine big enough that nothing ever evicts."""
    cfg = MachineConfig(
        num_cores=1,
        l1=CacheConfig(4096, 8, hit_cycles=2.0),
        l2=CacheConfig(16384, 8, hit_cycles=11.0),
    )
    return Machine(cfg.with_model(model))


def flushing_writer(region, n, value=5.0):
    for i in range(n):
        yield Store(region.addr(i), value)
        yield Flush(region.addr(i))
    yield Fence()


def plain_writer(region, n, value=7.0):
    for i in range(n):
        yield Store(region.addr(i), value)


class TestRegistry:
    def test_known_models(self):
        assert model_names() == [
            "adr",
            "eadr",
            "strict",
            "epoch",
            "pre_adr",
            "eadr_nofence",
        ]
        for name in model_names():
            m = get_model(name)
            assert isinstance(m, PersistencyModel)
            assert m.name == name

    def test_unknown_model_lists_available(self):
        with pytest.raises(ConfigError, match="adr.*eadr.*strict"):
            get_model("bogus")

    def test_enumerable_excludes_pre_adr(self):
        assert "pre_adr" not in enumerable_model_names()
        assert set(enumerable_model_names()) == {
            "adr",
            "eadr",
            "strict",
            "epoch",
            "eadr_nofence",
        }

    def test_litmus_models_include_the_broken_variant(self):
        assert "eadr_nofence" in litmus_model_names()
        assert PERSISTENCY_MODELS["eadr_nofence"].broken
        # and the broken model claims a sound model's spec
        assert PERSISTENCY_MODELS["eadr_nofence"].spec == "eadr"

    def test_sound_models_are_not_broken(self):
        for name in ("adr", "eadr", "strict", "epoch", "pre_adr"):
            assert not PERSISTENCY_MODELS[name].broken

    def test_default_is_the_paper_platform(self):
        assert DEFAULT_MODEL == "adr"
        m = get_model("adr")
        assert not m.persist_on_store and m.flush_writes and m.fence_commits


class TestConfigPlumbing:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(model="bogus")

    def test_pre_adr_requires_legacy_flag(self):
        with pytest.raises(ConfigError, match="pre_adr"):
            MachineConfig(model="pre_adr")  # nvmm.adr defaults to True

    def test_legacy_flag_contradicts_other_models(self):
        with pytest.raises(ConfigError, match="contradicts"):
            MachineConfig(model="eadr", nvmm=NVMMConfig(adr=False))

    def test_with_model_keeps_legacy_flag_consistent(self):
        cfg = MachineConfig()
        assert cfg.with_model("pre_adr").nvmm.adr is False
        assert cfg.with_model("eadr").nvmm.adr is True
        # round-tripping back to adr restores the flag
        assert cfg.with_model("pre_adr").with_model("adr").nvmm.adr is True

    def test_resolved_model_folds_legacy_spelling(self):
        assert MachineConfig().resolved_model == "adr"
        legacy = MachineConfig(nvmm=NVMMConfig(adr=False))
        assert legacy.model == "adr"  # field untouched
        assert legacy.resolved_model == "pre_adr"
        assert MachineConfig().with_model("epoch").resolved_model == "epoch"


class TestCacheKeyIsolation:
    """Satellite: model switches miss the cache; defaults keep their keys."""

    def test_default_key_omits_the_model_field(self):
        payload = json.loads(MachineConfig().cache_key())
        assert "model" not in payload

    def test_explicit_default_matches_implicit_default(self):
        assert (
            MachineConfig().with_model("adr").cache_key()
            == MachineConfig().cache_key()
        )

    def test_model_switch_changes_the_key(self):
        base = MachineConfig()
        keys = {base.cache_key()}
        for name in ("eadr", "strict", "epoch", "pre_adr", "eadr_nofence"):
            key = base.with_model(name).cache_key()
            assert json.loads(key)["model"] == name
            keys.add(key)
        assert len(keys) == 6  # all distinct: no aliasing across models

    def test_job_key_tracks_the_config_key(self):
        from repro.analysis.runner import Job
        from repro.workloads.tmm import TiledMatMul

        wl = TiledMatMul(n=8, bsize=4)
        default = Job(wl, MachineConfig(), "lp")
        explicit = Job(wl, MachineConfig().with_model("adr"), "lp")
        switched = Job(wl, MachineConfig().with_model("eadr"), "lp")
        assert default.cache_key() == explicit.cache_key()
        assert switched.cache_key() != default.cache_key()


class TestPerModelMachineSemantics:
    def test_adr_needs_flush_for_durability(self):
        m = machine("adr")
        r = m.alloc("a", 8)
        m.run([plain_writer(r, 8)])
        assert m.read_region(r, persistent=True) == [0.0] * 8
        m2 = machine("adr")
        r2 = m2.alloc("a", 8)
        m2.run([flushing_writer(r2, 8)])
        assert m2.read_region(r2, persistent=True) == [5.0] * 8
        assert m2.stats.writes_by_cause.get("flush", 0) > 0

    def test_eadr_stores_are_durable_at_once(self):
        m = machine("eadr")
        r = m.alloc("a", 8)
        m.run([plain_writer(r, 8)])
        assert m.read_region(r, persistent=True) == [7.0] * 8

    def test_eadr_flushes_produce_no_mc_traffic(self):
        m = machine("eadr")
        r = m.alloc("a", 8)
        m.run([flushing_writer(r, 8)])
        assert m.stats.writes_by_cause.get("flush", 0) == 0
        assert m.read_region(r, persistent=True) == [5.0] * 8

    def test_strict_stores_write_through(self):
        m = machine("strict")
        r = m.alloc("a", 8)
        m.run([plain_writer(r, 8)])
        assert m.read_region(r, persistent=True) == [7.0] * 8
        # one MC write per store, attributed to its own cause
        assert m.stats.writes_by_cause.get("store", 0) == 8

    def test_epoch_fences_do_not_commit(self):
        m = machine("epoch")
        r = m.alloc("a", 8)
        m.run([flushing_writer(r, 2)])
        tracker = m.persist_tracker
        assert tracker is not None
        # flushes reached the MC (durable *values* are there)...
        assert m.read_region(r, persistent=True)[:2] == [5.0, 5.0]
        # ...but the fence never committed them: both stay enumerable
        assert tracker.pending_flush_count == 2

    def test_eadr_nofence_caches_stay_volatile(self):
        m = machine("eadr_nofence")
        r = m.alloc("a", 8)
        m.run([flushing_writer(r, 8)])
        # flushes and fences are inert: nothing persisted, no traffic
        assert m.read_region(r, persistent=True) == [0.0] * 8
        assert m.stats.nvmm_writes == 0

    def test_pre_adr_machine_has_no_tracker(self):
        m = machine("pre_adr")
        assert m.persist_tracker is None
        with pytest.raises(ConfigError, match="adr, eadr, strict, epoch"):
            m.crash_state_space()


class TestTrackerModelAxis:
    def make_state(self, lines=(LINE_A, LINE_B)):
        mem = MemoryState()
        for line in lines:
            for addr in element_addrs_of_line(line):
                mem.init(addr, 0.0)
        return mem

    def accept_flush(self, mem, tracker, line, core_id, time, value):
        for addr in element_addrs_of_line(line):
            mem.store(addr, value)
        tracker.on_accept(line, "flush", core_id, time)
        mem.persist_line(line)

    def test_legacy_adr_kwarg_maps_to_models(self):
        mem = self.make_state()
        assert PersistOrderTracker(mem, adr=True).model.name == "adr"
        legacy = PersistOrderTracker(mem, adr=False)
        assert legacy.model.name == "pre_adr"
        assert legacy.adr is False
        with pytest.raises(ConfigError, match="pre_adr"):
            legacy.snapshot(dirty_line_addrs=[], crash_time=0.0)

    def test_fence_absorbs_superseded_cross_core_flush(self):
        """Core B's fenced flush of a line supersedes core A's *older*
        still-pending flush of the same line: the committed value must
        land in the floor, and A's stale version must stop being an
        undoable event (else enumeration could roll the line back past
        a durably committed value)."""
        mem = self.make_state()
        tracker = PersistOrderTracker(mem, "adr")
        self.accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        self.accept_flush(mem, tracker, LINE_A, core_id=1, time=12.0, value=2.0)
        tracker.on_fence(core_id=1, now=20.0)  # commits the newer version
        assert tracker.pending_flush_count == 0
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=30.0)
        assert space.num_events == 0
        assert space.floor[LINE_A] == 2.0

    def test_fence_keeps_newer_pending_version_on_same_line(self):
        mem = self.make_state()
        tracker = PersistOrderTracker(mem, "adr")
        self.accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        tracker.on_fence(core_id=0, now=11.0)  # 1.0 durable
        self.accept_flush(mem, tracker, LINE_A, core_id=1, time=12.0, value=2.0)
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=30.0)
        assert space.floor[LINE_A] == 1.0
        assert [ev.values[LINE_A] for ev in space.events] == [2.0]

    def test_eadr_tracker_space_is_a_single_image(self):
        mem = self.make_state()
        tracker = PersistOrderTracker(mem, "eadr")
        self.accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=3.0)
        assert tracker.pending_flush_count == 0
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=20.0)
        assert space.num_events == 0
        assert space.floor[LINE_A] == 3.0

    def test_epoch_edges_order_adjacent_epochs(self):
        mem = self.make_state()
        tracker = PersistOrderTracker(mem, "epoch")
        self.accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        tracker.on_fence(core_id=0, now=11.0)  # epoch boundary, no commit
        self.accept_flush(mem, tracker, LINE_B, core_id=0, time=12.0, value=2.0)
        assert tracker.pending_flush_count == 2
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=30.0)
        ev_a = next(ev for ev in space.events if LINE_A in ev.values)
        ev_b = next(ev for ev in space.events if LINE_B in ev.values)
        assert (ev_a.eid, ev_b.eid) in space.edges

    def test_epoch_cores_do_not_order_each_other(self):
        mem = self.make_state()
        tracker = PersistOrderTracker(mem, "epoch")
        self.accept_flush(mem, tracker, LINE_A, core_id=0, time=10.0, value=1.0)
        tracker.on_fence(core_id=0, now=11.0)
        self.accept_flush(mem, tracker, LINE_B, core_id=1, time=12.0, value=2.0)
        space = tracker.snapshot(dirty_line_addrs=[], crash_time=30.0)
        assert space.edges == []  # different cores: no epoch ordering
