"""Golden-run regression: detailed timing must reproduce the
pre-refactor numbers bit-for-bit.

The numbers below were captured from the simulator *before* the
semantics/timing split (``MachineStats.summary()`` of tiny-preset runs,
2 threads, LP and EP variants of tmm/fft/gauss).  The ``DetailedTiming``
model is required to reproduce every one of them exactly — execution
cycles, Table VI hazard counters, NVMM write/read counts, L2 miss rate
and volatility duration — which is what makes the refactor provably
behavior-preserving on the metrics the paper reports.

Do not regenerate these numbers to make a failing run pass: a diff here
means the detailed timing model changed, which is exactly what this
test exists to catch.
"""

import pytest

from repro.analysis.experiments import run_variant
from repro.sim.config import tiny_machine
from repro.workloads import get_workload

PARAMS = {
    "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
    "fft": {"n": 16},
    "gauss": {"n": 8, "row_block": 4},
}

#: Captured pre-refactor: {workload/variant: exact expected metrics}.
GOLDEN = {
    "tmm/lp": {
        "exec_cycles": 3881.75,
        "nvmm_writes": 0,
        "nvmm_reads": 21,
        "l2_miss_rate": 0.2,
        "max_volatility_cycles": 0.0,
        "hazards": {"mshr": 0, "fui": 0, "fur": 31, "fuw": 0},
        "ops_executed": 774,
    },
    "tmm/ep": {
        "exec_cycles": 5837.0,
        "nvmm_writes": 20,
        "nvmm_reads": 32,
        "l2_miss_rate": 0.2782608695652174,
        "max_volatility_cycles": 128.5,
        "hazards": {"mshr": 0, "fui": 5608, "fur": 36, "fuw": 0},
        "ops_executed": 738,
    },
    "fft/lp": {
        "exec_cycles": 1604.0,
        "nvmm_writes": 0,
        "nvmm_reads": 9,
        "l2_miss_rate": 0.42857142857142855,
        "max_volatility_cycles": 0.0,
        "hazards": {"mshr": 0, "fui": 5269, "fur": 12, "fuw": 9},
        "ops_executed": 448,
    },
    "fft/ep": {
        "exec_cycles": 2818.5,
        "nvmm_writes": 24,
        "nvmm_reads": 16,
        "l2_miss_rate": 0.7272727272727273,
        "max_volatility_cycles": 73.5,
        "hazards": {"mshr": 0, "fui": 16096, "fur": 2, "fuw": 0},
        "ops_executed": 352,
    },
    "gauss/lp": {
        "exec_cycles": 1592.25,
        "nvmm_writes": 0,
        "nvmm_reads": 10,
        "l2_miss_rate": 0.5263157894736842,
        "max_volatility_cycles": 0.0,
        "hazards": {"mshr": 0, "fui": 38, "fur": 3, "fuw": 0},
        "ops_executed": 754,
    },
    "gauss/ep": {
        "exec_cycles": 10840.0,
        "nvmm_writes": 38,
        "nvmm_reads": 45,
        "l2_miss_rate": 0.9375,
        "max_volatility_cycles": 55.5,
        "hazards": {"mshr": 0, "fui": 14020, "fur": 18, "fuw": 0},
        "ops_executed": 634,
    },
}


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_detailed_timing_matches_pre_refactor_golden(key):
    wl_name, variant = key.split("/")
    workload = get_workload(wl_name)(**PARAMS[wl_name])
    result = run_variant(workload, tiny_machine(), variant, num_threads=2)
    want = GOLDEN[key]
    assert result.exec_cycles == want["exec_cycles"]
    assert result.nvmm_writes == want["nvmm_writes"]
    assert result.nvmm_reads == want["nvmm_reads"]
    assert result.l2_miss_rate == want["l2_miss_rate"]
    assert result.max_volatility_cycles == want["max_volatility_cycles"]
    assert result.hazards == want["hazards"]
    assert result.ops_executed == want["ops_executed"]
    assert result.verified
