"""Tests for the Cholesky factorisation workload."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.cholesky import Cholesky


def machine(cores=3):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 4, hit_cycles=11.0),
        )
    )


class TestSpec:
    def test_divisibility(self):
        with pytest.raises(WorkloadError):
            Cholesky(n=18, col_block=4)


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["base", "lp", "ep"])
    @pytest.mark.parametrize("threads", [1, 2])
    def test_exact(self, variant, threads):
        wl = Cholesky(n=16, col_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=threads)
        m.run(bound.threads(variant))
        assert bound.verify()

    def test_factorisation_property(self):
        """L @ L.T reconstructs the SPD input."""
        wl = Cholesky(n=16, col_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        low = np.tril(bound.output())
        p = bound.pristine.to_numpy()
        assert np.allclose(low @ low.T, p)

    def test_matches_numpy_cholesky(self):
        wl = Cholesky(n=16, col_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=1)
        m.run(bound.threads("base"))
        want = np.linalg.cholesky(bound.pristine.to_numpy())
        assert np.allclose(np.tril(bound.output()), want)


class TestCrashRecovery:
    @pytest.mark.parametrize("at_op", [10, 400, 1200, 1700])
    def test_recovery_exact(self, at_op):
        wl = Cholesky(n=16, col_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        res, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
        if not res.crashed:
            pytest.skip("finished before crash point")
        rb = wl.bind(post, num_threads=2, create=False)
        post.run(rb.recovery_threads())
        assert rb.verify()

    def test_recovery_after_drain_repairs_nothing(self):
        wl = Cholesky(n=16, col_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        m.drain()
        post = m.after_crash()
        rb = wl.bind(post, num_threads=2, create=False)
        marks = []
        post.on_mark = lambda mark, cid, clock: marks.append(mark.label)
        post.run(rb.recovery_threads())
        assert not any("repair" in mark for mark in marks)
        assert rb.verify()
