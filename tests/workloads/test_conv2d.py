"""Tests for the 2-D convolution workload."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.conv2d import Conv2D


def machine(cores=3):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 4, hit_cycles=11.0),
        )
    )


class TestSpec:
    def test_even_kernel_rejected(self):
        with pytest.raises(WorkloadError):
            Conv2D(n=20, ksize=4)

    def test_kernel_too_big(self):
        with pytest.raises(WorkloadError):
            Conv2D(n=3, ksize=5)

    def test_row_block_divisibility(self):
        with pytest.raises(WorkloadError):
            Conv2D(n=20, ksize=3, row_block=7)

    def test_output_shape(self):
        spec = Conv2D(n=20, ksize=3, row_block=3)
        assert spec.out_n == 18
        assert spec.num_blocks == 6


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["base", "lp", "ep"])
    def test_exact(self, variant):
        wl = Conv2D(n=20, ksize=3, row_block=3)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads(variant))
        assert bound.verify()

    def test_reference_matches_scipy_style_conv(self):
        wl = Conv2D(n=12, ksize=3, row_block=2)
        bound = wl.bind(machine(), num_threads=1)
        img, ker = bound.image.to_numpy(), bound.kernel.to_numpy()
        ref = bound.reference()
        # cross-correlation of valid region
        manual = np.zeros_like(ref)
        for i in range(ref.shape[0]):
            for j in range(ref.shape[1]):
                manual[i, j] = np.sum(img[i : i + 3, j : j + 3] * ker)
        assert np.allclose(ref, manual)

    def test_single_thread(self):
        wl = Conv2D(n=20, ksize=3, row_block=3)
        m = machine()
        bound = wl.bind(m, num_threads=1)
        m.run(bound.threads("lp"))
        assert bound.verify()


class TestCrashRecovery:
    @pytest.mark.parametrize("at_op", [10, 500, 2000, 4000, 6000])
    def test_recovery_exact(self, at_op):
        wl = Conv2D(n=20, ksize=3, row_block=3)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        res, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
        if not res.crashed:
            pytest.skip("workload finished before crash point")
        rb = wl.bind(post, num_threads=2, create=False)
        post.run(rb.recovery_threads())
        assert rb.verify()

    def test_idempotent_recovery_skips_consistent_blocks(self):
        """After drain, every region matches: recovery repairs nothing."""
        wl = Conv2D(n=20, ksize=3, row_block=3)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        m.drain()
        post = m.after_crash()
        rb = wl.bind(post, num_threads=2, create=False)
        marks = []
        post.on_mark = lambda mark, cid, clock: marks.append(mark.label)
        post.run(rb.recovery_threads())
        assert not any("repair" in mark for mark in marks)
        assert rb.verify()
