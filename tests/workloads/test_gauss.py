"""Tests for the Gaussian elimination workload."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.gauss import GaussElimination


def machine(cores=3):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 4, hit_cycles=11.0),
        )
    )


class TestSpec:
    def test_divisibility(self):
        with pytest.raises(WorkloadError):
            GaussElimination(n=18, row_block=4)

    def test_pivot_window(self):
        with pytest.raises(WorkloadError):
            GaussElimination(n=16, row_block=4, pivots=16)
        assert GaussElimination(n=16, row_block=4, pivots=4).pivots == 4
        assert GaussElimination(n=16, row_block=4).pivots == 15


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["base", "lp", "ep"])
    @pytest.mark.parametrize("threads", [1, 2])
    def test_exact(self, variant, threads):
        wl = GaussElimination(n=16, row_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=threads)
        m.run(bound.threads(variant))
        assert bound.verify()

    def test_elimination_produces_upper_triangular_u(self):
        wl = GaussElimination(n=16, row_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("base"))
        a = bound.output()
        p = bound.pristine.to_numpy()
        # reconstruct: L (unit lower from factors) @ U == P
        n = 16
        low = np.tril(a, -1) + np.eye(n)
        u = np.triu(a)
        assert np.allclose(low @ u, p)

    def test_pivot_window_partial(self):
        wl = GaussElimination(n=16, row_block=4, pivots=3)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        assert bound.verify()

    def test_pristine_never_written(self):
        wl = GaussElimination(n=16, row_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        before = bound.pristine.to_numpy().copy()
        m.run(bound.threads("lp"))
        assert np.array_equal(bound.pristine.to_numpy(), before)


class TestCrashRecovery:
    @pytest.mark.parametrize("at_op", [5, 300, 1500, 3000, 4500])
    def test_recovery_exact(self, at_op):
        wl = GaussElimination(n=16, row_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        res, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
        if not res.crashed:
            pytest.skip("finished before crash point")
        rb = wl.bind(post, num_threads=2, create=False)
        post.run(rb.recovery_threads())
        assert rb.verify()

    def test_double_crash(self):
        wl = GaussElimination(n=16, row_block=4)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        _, post1 = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=2500))
        rb1 = wl.bind(post1, num_threads=2, create=False)
        res2 = post1.run(rb1.recovery_threads(), crash_at_op=2000)
        assert res2.crashed
        post2 = post1.after_crash()
        rb2 = wl.bind(post2, num_threads=2, create=False)
        post2.run(rb2.recovery_threads())
        assert rb2.verify()
