"""Op-level assertions about what each variant actually issues.

These pin the *mechanism* behind the paper's cost comparisons (Table I):
LP adds computes and plain stores only; EP adds clflushopt + sfence;
WAL adds logging stores on top.
"""

import pytest

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.isa import Fence, Flush, FlushWB, Store
from repro.sim.machine import Machine
from repro.sim.trace import Trace, traced
from repro.workloads import get_workload

SPECS = {
    "tmm": dict(n=16, bsize=8),
    "cholesky": dict(n=8, col_block=4),
    "conv2d": dict(n=12, ksize=3, row_block=2),
    "gauss": dict(n=8, row_block=4),
    "fft": dict(n=32),
}


def run_traced(name, variant, threads=1):
    wl = get_workload(name)(**SPECS[name])
    m = Machine(
        MachineConfig(
            num_cores=max(threads, 2),
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(8192, 4, hit_cycles=11.0),
        )
    )
    bound = wl.bind(m, num_threads=threads)
    traces = [Trace() for _ in range(threads)]
    m.run([traced(g, t) for g, t in zip(bound.threads(variant), traces)])
    assert bound.verify()
    merged = Trace()
    for t in traces:
        merged.events.extend(t.events)
    return merged


class TestTableOne:
    """Table I: cache-line flushes and durable barriers are 'Needed'
    for Eager and '-' for Lazy."""

    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_lp_issues_no_flushes_or_fences(self, name):
        trace = run_traced(name, "lp")
        assert trace.count(Flush) == 0
        assert trace.count(FlushWB) == 0
        assert trace.count(Fence) == 0

    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_ep_issues_flushes_and_fences(self, name):
        trace = run_traced(name, "ep")
        assert trace.count(Flush) + trace.count(FlushWB) > 0
        assert trace.count(Fence) > 0


class TestTmmAccounting:
    def test_ep_flush_count_formula(self):
        """One clflushopt per c row-stride line plus one per tile
        marker: bsize-elem strides at 8 elems/line = 1 line each."""
        n, b = SPECS["tmm"]["n"], SPECS["tmm"]["bsize"]
        tiles = n // b
        trace = run_traced("tmm", "ep")
        strides = tiles * tiles * tiles * b  # per (kk,ii,jj): b rows
        markers = tiles * tiles * tiles  # one per tile transaction
        assert trace.count(Flush) == strides + markers

    def test_ep_fence_count_formula(self):
        n, b = SPECS["tmm"]["n"], SPECS["tmm"]["bsize"]
        tiles = n // b
        trace = run_traced("tmm", "ep")
        # two fences per tile transaction (data fence + marker fence)
        assert trace.count(Fence) == 2 * tiles * tiles * tiles

    def test_wal_store_amplification(self):
        """WAL stores ~3x the data stores: log addr + log value + data
        (plus status/count bookkeeping)."""
        base_stores = run_traced("tmm", "base").count(Store)
        wal_stores = run_traced("tmm", "wal").count(Store)
        assert wal_stores > 2.8 * base_stores

    def test_lp_store_overhead_is_one_checksum_per_region(self):
        n, b = SPECS["tmm"]["n"], SPECS["tmm"]["bsize"]
        tiles = n // b
        base_stores = run_traced("tmm", "base").count(Store)
        lp_stores = run_traced("tmm", "lp").count(Store)
        assert lp_stores == base_stores + tiles * tiles  # one per region
