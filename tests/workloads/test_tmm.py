"""Tests for tiled matrix multiplication: all variants, crash recovery."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.tmm import TiledMatMul

N, B = 24, 8  # 3x3 tiles: small enough for fast tests


def machine(num_cores=3, l1=1024, l2=4096):
    """Deliberately tiny caches so evictions (and hence persistence)
    actually happen at test scale."""
    return Machine(
        MachineConfig(
            num_cores=num_cores,
            l1=CacheConfig(l1, 2, hit_cycles=2.0),
            l2=CacheConfig(l2, 4, hit_cycles=11.0),
        )
    )


class TestSpec:
    def test_rejects_indivisible_tile(self):
        with pytest.raises(WorkloadError):
            TiledMatMul(n=20, bsize=8)

    def test_rejects_bad_kk_window(self):
        with pytest.raises(WorkloadError):
            TiledMatMul(n=24, bsize=8, kk_tiles=9)

    def test_unknown_variant(self):
        wl = TiledMatMul(n=N, bsize=B)
        bound = wl.bind(machine(), num_threads=1)
        with pytest.raises(WorkloadError):
            bound.threads("turbo")


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["base", "lp", "ep", "wal"])
    def test_single_thread_exact(self, variant):
        wl = TiledMatMul(n=N, bsize=B)
        m = machine()
        bound = wl.bind(m, num_threads=1)
        m.run(bound.threads(variant))
        assert bound.verify(), f"{variant} output mismatch"

    @pytest.mark.parametrize("variant", ["base", "lp", "ep"])
    @pytest.mark.parametrize("threads", [2, 3])
    def test_multithreaded_exact(self, variant, threads):
        wl = TiledMatMul(n=N, bsize=B)
        m = machine(num_cores=threads)
        bound = wl.bind(m, num_threads=threads)
        m.run(bound.threads(variant))
        assert bound.verify()

    def test_kk_window_partial_product(self):
        wl = TiledMatMul(n=N, bsize=B, kk_tiles=1)
        m = machine()
        bound = wl.bind(m, num_threads=1)
        m.run(bound.threads("base"))
        a, b = bound.a.to_numpy(), bound.b.to_numpy()
        assert np.array_equal(bound.output(), a[:, :B] @ b[:B, :])
        assert bound.verify()

    def test_reference_is_full_matmul(self):
        wl = TiledMatMul(n=N, bsize=B)
        bound = wl.bind(machine(), num_threads=1)
        a, b = bound.a.to_numpy(), bound.b.to_numpy()
        assert np.array_equal(bound.reference(), a @ b)

    def test_inputs_are_durable(self):
        wl = TiledMatMul(n=N, bsize=B)
        bound = wl.bind(machine(), num_threads=1)
        assert np.array_equal(bound.a.to_numpy(persistent=True), bound.a.to_numpy())


class TestVariantCostShape:
    """The qualitative Figure 10 ordering must hold even at test scale."""

    def run_variant(self, variant, threads=2):
        wl = TiledMatMul(n=N, bsize=B)
        m = machine(num_cores=threads)
        bound = wl.bind(m, num_threads=threads)
        res = m.run(bound.threads(variant))
        return res

    def test_lp_exec_close_to_base(self):
        base = self.run_variant("base").exec_cycles
        lp = self.run_variant("lp").exec_cycles
        assert lp / base < 1.10

    def test_ep_flushes_lp_does_not(self):
        ep = self.run_variant("ep")
        lp = self.run_variant("lp")
        assert ep.stats.writes_by_cause.get("flush", 0) > 0
        assert lp.stats.writes_by_cause.get("flush", 0) == 0

    def test_wal_is_most_expensive(self):
        base = self.run_variant("base")
        wal = self.run_variant("wal")
        assert wal.exec_cycles > 2 * base.exec_cycles
        assert wal.nvmm_writes > 2 * base.nvmm_writes

    def test_lp_adds_no_fences(self):
        lp = self.run_variant("lp")
        assert all(c.fences == 0 for c in lp.stats.per_core)


class TestCrashRecovery:
    def crash_recover(self, at_op, threads=2, at_mark=None):
        wl = TiledMatMul(n=N, bsize=B)
        m = machine(num_cores=threads)
        bound = wl.bind(m, num_threads=threads)
        plan = CrashPlan(at_op=at_op) if at_mark is None else CrashPlan(at_mark=at_mark)
        result, post = run_with_crash(m, bound.threads("lp"), plan)
        rebound = wl.bind(post, num_threads=threads, create=False)
        rres = post.run(rebound.recovery_threads())
        return result, rres, rebound

    @pytest.mark.parametrize(
        "at_op", [1, 137, 1000, 5000, 12000, 20000, 30000]
    )
    def test_exact_output_after_any_crash_point(self, at_op):
        result, rres, rebound = self.crash_recover(at_op)
        assert result.crashed
        assert rebound.verify(), f"recovery failed for crash at op {at_op}"

    def test_crash_at_region_boundary(self):
        result, rres, rebound = self.crash_recover(None, at_mark=4)
        assert result.crashed
        assert rebound.verify()

    def test_recovery_output_is_durable(self):
        _, _, rebound = self.crash_recover(5000)
        # recovery resumes with LP; drain the post-crash machine and
        # check the persistent image as well
        rebound.machine.drain()
        assert rebound.verify(persistent=True)

    def test_recovery_cost_shrinks_with_progress_when_persisted(self):
        """With a cleaner keeping data durable, crashing later must
        leave less work to redo."""
        from repro.sim.cleaner import PeriodicCleaner

        costs = []
        for at_op in (2000, 30000):
            wl = TiledMatMul(n=N, bsize=B)
            m = machine(num_cores=2)
            m.cleaner = PeriodicCleaner(2000.0)
            bound = wl.bind(m, num_threads=2)
            result, post = run_with_crash(
                m, bound.threads("lp"), CrashPlan(at_op=at_op)
            )
            assert result.crashed
            rebound = wl.bind(post, num_threads=2, create=False)
            rres = post.run(rebound.recovery_threads())
            assert rebound.verify()
            costs.append(rres.ops_executed)
        assert costs[1] < costs[0]

    def test_double_crash_recovery(self):
        """Crash during recovery; recover again; still exact."""
        wl = TiledMatMul(n=N, bsize=B)
        m = machine(num_cores=2)
        bound = wl.bind(m, num_threads=2)
        _, post1 = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=9000))

        rebound1 = wl.bind(post1, num_threads=2, create=False)
        res2 = post1.run(rebound1.recovery_threads(), crash_at_op=7000)
        assert res2.crashed
        post2 = post1.after_crash()

        rebound2 = wl.bind(post2, num_threads=2, create=False)
        post2.run(rebound2.recovery_threads())
        assert rebound2.verify()

    def test_no_crash_recovery_is_safe(self):
        """Running recovery on a cleanly finished machine must keep the
        output correct (regions all match, nothing recomputed wrongly)."""
        wl = TiledMatMul(n=N, bsize=B)
        m = machine(num_cores=2)
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        m.drain()
        post = m.after_crash()  # graceful: NVMM == final state
        rebound = wl.bind(post, num_threads=2, create=False)
        post.run(rebound.recovery_threads())
        assert rebound.verify()
