"""Unit tests for the workload protocol module."""

import numpy as np
import pytest
import random

from repro.errors import WorkloadError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine
from repro.workloads.base import integer_matrix
from repro.workloads.tmm import TiledMatMul


def machine():
    return Machine(
        MachineConfig(
            num_cores=2,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 4, hit_cycles=11.0),
        )
    )


class TestIntegerMatrix:
    def test_shape_and_range(self):
        m = integer_matrix(random.Random(1), 5, 7, span=3)
        assert m.shape == (5, 7)
        assert np.all(np.abs(m) <= 3)
        assert np.all(m == np.round(m))

    def test_deterministic_given_seed(self):
        a = integer_matrix(random.Random(42), 4, 4)
        b = integer_matrix(random.Random(42), 4, 4)
        assert np.array_equal(a, b)


class TestBoundWorkload:
    def test_zero_threads_rejected(self):
        wl = TiledMatMul(n=16, bsize=8)
        with pytest.raises(WorkloadError):
            wl.bind(machine(), num_threads=0)

    def test_verify_exact_by_default(self):
        wl = TiledMatMul(n=16, bsize=8)
        bound = wl.bind(machine(), num_threads=1)
        # before running, c is all zeros: should not verify
        assert not bound.verify()

    def test_verification_error_metric(self):
        wl = TiledMatMul(n=16, bsize=8)
        bound = wl.bind(machine(), num_threads=1)
        assert bound.verification_error() > 0.0
        bound.machine.run(bound.threads("base"))
        assert bound.verification_error() == 0.0

    def test_verify_with_tolerance(self):
        wl = TiledMatMul(n=16, bsize=8)
        bound = wl.bind(machine(), num_threads=1)
        bound.machine.run(bound.threads("base"))
        assert bound.verify(atol=1e-9)

    def test_check_variant(self):
        wl = TiledMatMul(n=16, bsize=8)
        wl.check_variant("lp")
        with pytest.raises(WorkloadError):
            wl.check_variant("bogus")
