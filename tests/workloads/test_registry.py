"""Tests for the workload registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import available_workloads, get_workload
from repro.workloads.base import Workload


class TestRegistry:
    def test_all_table5_benchmarks_present(self):
        assert available_workloads() == [
            "cholesky",
            "conv2d",
            "fft",
            "gauss",
            "hashmap",
            "log",
            "tmm",
        ]

    def test_lookup_returns_workload_class(self):
        cls = get_workload("tmm")
        assert issubclass(cls, Workload)
        assert cls.name == "tmm"

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_workload("linpack")

    def test_every_workload_has_lp_and_base(self):
        for name in available_workloads():
            cls = get_workload(name)
            assert "base" in cls.variants
            assert "lp" in cls.variants
            assert "ep" in cls.variants

    def test_wal_support(self):
        # tmm implements WAL natively; the region-declared storage
        # workloads inherit it (and every other scheme) from the
        # scheme layer.
        for name in available_workloads():
            cls = get_workload(name)
            expected = name in ("tmm", "log", "hashmap")
            assert ("wal" in cls.variants) == expected
