"""Unit tests for persistent array/matrix views."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine
from repro.workloads.arrays import PArray, PMatrix


def tiny_machine():
    return Machine(
        MachineConfig(
            num_cores=1,
            l1=CacheConfig(512, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 2, hit_cycles=11.0),
        )
    )


class TestPArray:
    def test_read_write_roundtrip(self):
        m = tiny_machine()
        arr = PArray(m, "x", 8)

        def kernel():
            yield from arr.write(3, 7.5)
            v = yield from arr.read(3)
            yield from arr.write(4, v * 2)

        m.run([kernel()])
        assert arr.values()[3] == 7.5
        assert arr.values()[4] == 15.0

    def test_fill_is_durable(self):
        m = tiny_machine()
        arr = PArray(m, "x", 4)
        arr.fill([1.0, 2.0, 3.0, 4.0])
        assert arr.values(persistent=True) == [1.0, 2.0, 3.0, 4.0]

    def test_fill_length_checked(self):
        m = tiny_machine()
        arr = PArray(m, "x", 4)
        with pytest.raises(WorkloadError):
            arr.fill([1.0])

    def test_rebind(self):
        m = tiny_machine()
        PArray(m, "x", 4)
        again = PArray(m, "x", 4, create=False)
        assert again.region == m.region("x")

    def test_rebind_size_mismatch(self):
        m = tiny_machine()
        PArray(m, "x", 4)
        with pytest.raises(WorkloadError):
            PArray(m, "x", 5, create=False)

    def test_to_numpy(self):
        m = tiny_machine()
        arr = PArray(m, "x", 3)
        arr.fill([1.0, 2.0, 3.0])
        assert np.array_equal(arr.to_numpy(), np.array([1.0, 2.0, 3.0]))


class TestPMatrix:
    def test_row_major_layout(self):
        m = tiny_machine()
        mat = PMatrix(m, "m", 3, 4)
        assert mat.index(0, 0) == 0
        assert mat.index(1, 0) == 4
        assert mat.index(2, 3) == 11

    def test_bounds_checked(self):
        m = tiny_machine()
        mat = PMatrix(m, "m", 3, 4)
        with pytest.raises(WorkloadError):
            mat.index(3, 0)
        with pytest.raises(WorkloadError):
            mat.index(0, 4)
        with pytest.raises(WorkloadError):
            mat.index(-1, 0)

    def test_fill_and_to_numpy(self):
        m = tiny_machine()
        mat = PMatrix(m, "m", 2, 2)
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        mat.fill(data)
        assert np.array_equal(mat.to_numpy(), data)
        assert np.array_equal(mat.to_numpy(persistent=True), data)

    def test_fill_shape_checked(self):
        m = tiny_machine()
        mat = PMatrix(m, "m", 2, 2)
        with pytest.raises(WorkloadError):
            mat.fill(np.zeros((3, 2)))

    def test_timed_read_write(self):
        m = tiny_machine()
        mat = PMatrix(m, "m", 2, 2)

        def kernel():
            yield from mat.write(1, 1, 9.0)
            v = yield from mat.read(1, 1)
            yield from mat.write(0, 0, v + 1)

        m.run([kernel()])
        assert mat.to_numpy()[0, 0] == 10.0

    def test_row_addrs_contiguous(self):
        m = tiny_machine()
        mat = PMatrix(m, "m", 4, 8)
        addrs = mat.row_addrs(1, 2, 6)
        assert len(addrs) == 4
        assert all(b - a == 8 for a, b in zip(addrs, addrs[1:]))
