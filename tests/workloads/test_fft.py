"""Tests for the FFT workload."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.fft import FFT


def machine(cores=3):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 4, hit_cycles=11.0),
        )
    )


class TestSpec:
    def test_power_of_two_required(self):
        with pytest.raises(WorkloadError):
            FFT(n=96)
        with pytest.raises(WorkloadError):
            FFT(n=1)

    def test_stage_count(self):
        assert FFT(n=64).stages == 6

    def test_stage_params(self):
        wl = FFT(n=16)
        # groups double, m halves, groups*m == n/2 at every stage
        spec = wl
        b = wl.bind(machine(), num_threads=1)
        for s in range(spec.stages):
            groups, m = b.stage_params(s)
            assert groups * m == spec.n // 2


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["base", "lp", "ep"])
    @pytest.mark.parametrize("threads", [1, 2])
    def test_exact_vs_replay(self, variant, threads):
        wl = FFT(n=64)
        m = machine()
        bound = wl.bind(m, num_threads=threads)
        m.run(bound.threads(variant))
        assert bound.verify()

    def test_matches_numpy_fft(self):
        wl = FFT(n=128)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("base"))
        flat = bound.pristine.to_numpy()
        x = flat[0::2] + 1j * flat[1::2]
        assert np.allclose(bound.output_complex(), np.fft.fft(x))

    def test_butterfly_partition_covers_all(self):
        wl = FFT(n=64)
        b = wl.bind(machine(), num_threads=3)
        covered = []
        for tid in range(3):
            covered.extend(b.my_butterflies(tid, 0))
        assert sorted(covered) == list(range(32))


class TestCrashRecovery:
    @pytest.mark.parametrize("at_op", [5, 300, 900, 1500, 2200])
    def test_recovery_exact(self, at_op):
        wl = FFT(n=64)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        res, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
        if not res.crashed:
            pytest.skip("finished before crash point")
        rb = wl.bind(post, num_threads=2, create=False)
        post.run(rb.recovery_threads())
        assert rb.verify()

    def test_recovery_resumes_from_survivor_stage(self):
        """With everything drained mid-run... approximate by draining
        after completion: recovery should resume past the last stage
        (i.e. recompute nothing)."""
        wl = FFT(n=64)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        m.drain()
        post = m.after_crash()
        rb = wl.bind(post, num_threads=2, create=False)
        rres = post.run(rb.recovery_threads())
        assert rb.verify()
        # scan only: far fewer ops than a full re-run
        full = 64 // 2 * wl.stages * 8
        assert rres.ops_executed < full * 3
