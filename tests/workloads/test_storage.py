"""The persistent-storage workload family: append-only log and
open-addressed hashmap, region-declared so every scheme (and its
recovery) comes from the scheme layer.

Crash coverage mirrors ``tests/verify/test_checker.py``: sound schemes
must recover exact output on every reachable image, and the broken
``wb_nojournal`` scheme must be flagged with a counterexample.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.schemes import get_scheme
from repro.sim.config import tiny_machine
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.verify import EnumerationPlan, check_variant
from repro.workloads import get_workload
from repro.workloads.storage import AppendLog, PersistentHashmap

PLAN = EnumerationPlan(max_exhaustive_events=12, samples=16, seed=0)

#: Crash points spanning early, mid and late execution, plus persist
#: boundaries (the reorderable-event clusters flush points expose).
CRASH_PLANS = [CrashPlan(at_op=o) for o in (10, 40, 90, 160)] + [
    CrashPlan(at_flush=n) for n in range(1, 9)
]

SMALL = {
    "log": {"records": 6, "width": 2, "wb_batch": 2},
    "hashmap": {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2},
}


def small(name):
    return get_workload(name)(**SMALL[name])


class TestSpecValidation:
    def test_log_rejects_bad_sizes(self):
        with pytest.raises(WorkloadError):
            AppendLog(records=0)
        with pytest.raises(WorkloadError):
            AppendLog(width=0)
        with pytest.raises(WorkloadError):
            AppendLog(wb_batch=0)

    def test_hashmap_rejects_bad_sizes(self):
        with pytest.raises(WorkloadError):
            PersistentHashmap(capacity=1)
        with pytest.raises(WorkloadError):
            PersistentHashmap(keys=0)
        with pytest.raises(WorkloadError):
            PersistentHashmap(capacity=8, keys=8)
        with pytest.raises(WorkloadError):
            PersistentHashmap(ops=0)
        with pytest.raises(WorkloadError):
            PersistentHashmap(wb_batch=0)

    def test_storage_workloads_are_stream_unsafe(self):
        # Value-dependent bodies (the hashmap probe loop) make
        # pre-decoded replay unsound; the family opts out as a class.
        assert AppendLog.stream_safe is False
        assert PersistentHashmap.stream_safe is False

    def test_deterministic_per_spec(self):
        a = PersistentHashmap(capacity=8, ops=6, keys=3).puts(0)
        b = PersistentHashmap(capacity=8, ops=6, keys=3).puts(0)
        assert a == b
        assert AppendLog(seed=7).record_values(1) == AppendLog(
            seed=7
        ).record_values(1)

    def test_threads_draw_distinct_streams(self):
        wl = small("log")
        assert wl.record_values(0) != wl.record_values(1)


class TestModelAgreement:
    def test_hashmap_probe_slots_match_model(self):
        # The plan's declared slots come from the python model; the
        # simulated probe loop must land in the same slots (the body
        # raises otherwise), and the final table must verify.
        wl = small("hashmap")
        machine = Machine(tiny_machine())
        bound = wl.bind(machine, num_threads=2)
        machine.run(bound.threads("base"))
        assert bound.verify()

    def test_log_head_counts_records(self):
        wl = small("log")
        machine = Machine(tiny_machine())
        bound = wl.bind(machine, num_threads=2)
        machine.run(bound.threads("base"))
        out = bound.output()
        per_thread = wl.records * wl.width + 1
        for tid in range(2):
            assert out[(tid + 1) * per_thread - 1] == wl.records

    def test_reference_matches_output_shape(self):
        for name in sorted(SMALL):
            wl = small(name)
            machine = Machine(tiny_machine())
            bound = wl.bind(machine, num_threads=2)
            machine.run(bound.threads("lp"))
            assert bound.reference().shape == bound.output().shape


class TestCrashRecovery:
    @pytest.mark.parametrize("name", sorted(SMALL))
    @pytest.mark.parametrize("variant", ["lp", "ep", "wal", "write_behind"])
    def test_single_crash_recovers_via_own_procedure(self, name, variant):
        wl = small(name)
        machine = Machine(tiny_machine())
        bound = wl.bind(machine, num_threads=2)
        result, post = run_with_crash(
            machine, bound.threads(variant), CrashPlan(at_op=60)
        )
        assert result.crashed
        rebound = wl.bind(post, num_threads=2, create=False)
        post.run(rebound.recovery_threads_for(variant))
        assert rebound.verify()
        # Recovery is eager (paper III-E): the exact output must be in
        # the *persistent* image, not just architectural state.
        post.drain()
        assert np.array_equal(rebound.output(persistent=True), rebound.reference())

    @pytest.mark.parametrize("name", sorted(SMALL))
    @pytest.mark.parametrize("variant", ["lp", "ep", "wal", "write_behind"])
    def test_sound_schemes_pass_on_every_reachable_image(self, name, variant):
        report = check_variant(
            small(name), tiny_machine(), variant, CRASH_PLANS, PLAN
        )
        assert report.ok, report.counterexamples
        assert any(p.crashed for p in report.points)

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_wb_nojournal_is_flagged(self, name):
        report = check_variant(
            small(name), tiny_machine(), "wb_nojournal", CRASH_PLANS, PLAN
        )
        assert not report.ok
        cex = report.counterexamples[0]
        assert cex.minimized_eids

    def test_broken_scheme_metadata_matches_workload_declaration(self):
        for name in sorted(SMALL):
            cls = get_workload(name)
            for variant in cls.variants:
                assert not get_scheme(variant).broken
            for variant in cls.broken_variants:
                assert get_scheme(variant).broken
