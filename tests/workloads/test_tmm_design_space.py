"""Tests for TMM's secondary design space: region granularity
(section III-C/IV), the incremental Repair optimization (section IV),
and the embedded checksum organization (Figure 7a)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.tmm import TiledMatMul

N, B = 24, 8


def machine(cores=3):
    return Machine(
        MachineConfig(
            num_cores=cores,
            l1=CacheConfig(1024, 2, hit_cycles=2.0),
            l2=CacheConfig(4096, 4, hit_cycles=11.0),
        )
    )


class TestSpecValidation:
    def test_unknown_granularity(self):
        with pytest.raises(WorkloadError):
            TiledMatMul(n=N, bsize=B, granularity="kkii")

    def test_unknown_repair(self):
        with pytest.raises(WorkloadError):
            TiledMatMul(n=N, bsize=B, repair="magic")

    def test_unknown_org(self):
        with pytest.raises(WorkloadError):
            TiledMatMul(n=N, bsize=B, checksum_org="blockchain")

    def test_embedded_requires_ii(self):
        with pytest.raises(WorkloadError):
            TiledMatMul(n=N, bsize=B, granularity="kk", checksum_org="embedded")


class TestGranularities:
    @pytest.mark.parametrize("gran", ["jj", "ii", "kk"])
    def test_lp_exact(self, gran):
        wl = TiledMatMul(n=N, bsize=B, granularity=gran)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        assert bound.verify()

    @pytest.mark.parametrize("gran", ["jj", "ii", "kk"])
    @pytest.mark.parametrize("at_op", [700, 8000, 22000])
    def test_recovery_exact(self, gran, at_op):
        wl = TiledMatMul(n=N, bsize=B, granularity=gran)
        m = machine()
        bound = wl.bind(m, num_threads=2)
        res, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
        if not res.crashed:
            pytest.skip("finished first")
        rb = wl.bind(post, num_threads=2, create=False)
        post.run(rb.recovery_threads())
        assert rb.verify()

    def test_jj_commits_more_checksums_than_ii(self):
        counts = {}
        for gran in ("jj", "ii", "kk"):
            wl = TiledMatMul(n=N, bsize=B, granularity=gran)
            m = machine()
            bound = wl.bind(m, num_threads=1)
            m.run(bound.threads("lp"))
            m.drain()
            counts[gran] = len(bound.lp.table.committed_keys())
        assert counts["jj"] > counts["ii"] > counts["kk"]

    def test_table_dims_match_granularity(self):
        t = N // B
        for gran, slots in (("jj", t * t * t), ("ii", t * t * 2), ("kk", t * 2)):
            wl = TiledMatMul(n=N, bsize=B, granularity=gran)
            bound = wl.bind(machine(), num_threads=2)
            assert bound.lp.table.num_slots == slots


class TestIncrementalRepair:
    def run_crash(self, repair, at_op=20000, cleaner=400.0):
        """Cleaner keeps early regions durable so incremental repair has
        a matching earlier kk to build on."""
        wl = TiledMatMul(n=N, bsize=B, repair=repair)
        m = machine()
        m.cleaner = PeriodicCleaner(cleaner)
        bound = wl.bind(m, num_threads=2)
        res, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
        assert res.crashed
        rb = wl.bind(post, num_threads=2, create=False)
        rres = post.run(rb.recovery_threads())
        return rb, rres

    def test_incremental_recovers_exactly(self):
        rb, _ = self.run_crash("incremental")
        assert rb.verify()

    def test_incremental_not_more_work_than_scratch(self):
        _, scratch = self.run_crash("scratch")
        _, incr = self.run_crash("incremental")
        # scanning costs loads too, so require "not substantially more"
        assert incr.ops_executed <= scratch.ops_executed * 1.1

    def test_incremental_survives_double_crash(self):
        wl = TiledMatMul(n=N, bsize=B, repair="incremental")
        m = machine()
        m.cleaner = PeriodicCleaner(400.0)
        bound = wl.bind(m, num_threads=2)
        _, post1 = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=20000))
        rb1 = wl.bind(post1, num_threads=2, create=False)
        r2 = post1.run(rb1.recovery_threads(), crash_at_op=5000)
        assert r2.crashed
        post2 = post1.after_crash()
        rb2 = wl.bind(post2, num_threads=2, create=False)
        post2.run(rb2.recovery_threads())
        assert rb2.verify()


class TestEmbeddedOrganization:
    def test_embedded_exact(self):
        wl = TiledMatMul(n=N, bsize=B, checksum_org="embedded")
        m = machine()
        bound = wl.bind(m, num_threads=2)
        m.run(bound.threads("lp"))
        assert bound.verify()

    def test_embedded_recovery(self):
        wl = TiledMatMul(n=N, bsize=B, checksum_org="embedded")
        m = machine()
        bound = wl.bind(m, num_threads=2)
        res, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=9000))
        assert res.crashed
        rb = wl.bind(post, num_threads=2, create=False)
        post.run(rb.recovery_threads())
        assert rb.verify()

    def test_output_excludes_checksum_columns(self):
        wl = TiledMatMul(n=N, bsize=B, checksum_org="embedded")
        bound = wl.bind(machine(), num_threads=1)
        assert bound.output().shape == (N, N)
        assert bound.c.cols == N + N // B

    def test_space_overhead_comparison(self):
        """Figure 7's trade-off: the paper's complaint about embedding
        is space scaling with N (rows), not region count."""
        emb = TiledMatMul(n=N, bsize=B, checksum_org="embedded")
        tab = TiledMatMul(n=N, bsize=B, checksum_org="table")
        b_emb = emb.bind(machine(), num_threads=2)
        b_tab = tab.bind(machine(), num_threads=2)
        assert b_emb.checksum_space_bytes == N * (N // B) * 8
        assert b_tab.checksum_space_bytes == (N // B) ** 2 * 2 * 8

    def test_checksum_columns_start_invalid(self):
        from repro.core.hashtable import INVALID_CHECKSUM

        wl = TiledMatMul(n=N, bsize=B, checksum_org="embedded")
        bound = wl.bind(machine(), num_threads=1)
        full = bound.c.to_numpy(persistent=True)
        assert np.all(full[:, N:] == INVALID_CHECKSUM)
