"""Interleaving stress: correctness must hold under *any* schedule.

``schedule_jitter`` perturbs the min-clock scheduler's choices with a
seeded RNG, exploring interleavings beyond the deterministic default.
Coherence invariants, output exactness and crash recovery must survive
every one of them.
"""


from hypothesis import given, settings, strategies as st

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.tmm import TiledMatMul
from repro.workloads.gauss import GaussElimination


def config(seed, jitter=25.0, cores=3):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(512, 2, hit_cycles=2.0),
        l2=CacheConfig(2048, 4, hit_cycles=11.0),
        schedule_jitter=jitter,
        schedule_seed=seed,
    )


class TestJitterBasics:
    def test_zero_jitter_unchanged(self):
        """Default config reproduces the strict min-clock schedule."""

        def run(seed):
            wl = TiledMatMul(n=16, bsize=8)
            m = Machine(config(seed, jitter=0.0))
            bound = wl.bind(m, num_threads=2)
            res = m.run(bound.threads("lp"))
            return res.exec_cycles, res.nvmm_writes

        assert run(1) == run(2)

    def test_jitter_changes_interleaving(self):
        def run(seed):
            wl = TiledMatMul(n=16, bsize=8)
            m = Machine(config(seed))
            bound = wl.bind(m, num_threads=2)
            res = m.run(bound.threads("lp"))
            assert bound.verify()
            return res.stats.nvmm_writes, res.exec_cycles

        outcomes = {run(seed) for seed in range(6)}
        assert len(outcomes) > 1, "jitter should produce distinct schedules"

    def test_jitter_deterministic_per_seed(self):
        def run():
            wl = TiledMatMul(n=16, bsize=8)
            m = Machine(config(seed=7))
            bound = wl.bind(m, num_threads=2)
            res = m.run(bound.threads("lp"))
            return res.exec_cycles, res.nvmm_writes

        assert run() == run()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_tmm_exact_under_any_schedule(seed):
    wl = TiledMatMul(n=16, bsize=8)
    m = Machine(config(seed))
    bound = wl.bind(m, num_threads=2)
    m.run(bound.threads("lp"))
    m.hierarchy.check_inclusion()
    m.hierarchy.check_single_writer()
    assert bound.verify()


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=12_000),
)
@settings(max_examples=20, deadline=None)
def test_tmm_recovery_exact_under_any_schedule(seed, at_op):
    wl = TiledMatMul(n=16, bsize=8)
    m = Machine(config(seed))
    bound = wl.bind(m, num_threads=2)
    result, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
    if not result.crashed:
        assert bound.verify()
        return
    rb = wl.bind(post, num_threads=2, create=False)
    post.run(rb.recovery_threads())
    assert rb.verify()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_gauss_barriers_hold_under_any_schedule(seed):
    wl = GaussElimination(n=12, row_block=4)
    m = Machine(config(seed))
    bound = wl.bind(m, num_threads=2)
    m.run(bound.threads("lp"))
    assert bound.verify()
