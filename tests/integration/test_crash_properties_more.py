"""Property-based crash/recovery tests for the remaining kernels and
the TMM design space (granularity, repair mode, embedded checksums)."""

from hypothesis import given, settings, strategies as st

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.cholesky import Cholesky
from repro.workloads.fft import FFT
from repro.workloads.gauss import GaussElimination
from repro.workloads.tmm import TiledMatMul


def config(cores=3):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(512, 2, hit_cycles=2.0),
        l2=CacheConfig(2048, 4, hit_cycles=11.0),
    )


def crash_and_recover(workload, at_op, threads=2):
    m = Machine(config())
    bound = workload.bind(m, num_threads=threads)
    result, post = run_with_crash(
        m, bound.threads("lp"), CrashPlan(at_op=at_op)
    )
    if not result.crashed:
        return bound.verify()
    rb = workload.bind(post, num_threads=threads, create=False)
    post.run(rb.recovery_threads())
    return rb.verify()


@given(st.integers(min_value=1, max_value=6_000))
@settings(max_examples=15, deadline=None)
def test_gauss_recovery_exact(at_op):
    assert crash_and_recover(GaussElimination(n=16, row_block=4), at_op)


@given(st.integers(min_value=1, max_value=2_500))
@settings(max_examples=15, deadline=None)
def test_cholesky_recovery_exact(at_op):
    assert crash_and_recover(Cholesky(n=16, col_block=4), at_op)


@given(st.integers(min_value=1, max_value=3_000))
@settings(max_examples=15, deadline=None)
def test_fft_recovery_exact(at_op):
    assert crash_and_recover(FFT(n=64), at_op)


@given(
    st.integers(min_value=1, max_value=16_000),
    st.sampled_from(["jj", "ii", "kk"]),
)
@settings(max_examples=20, deadline=None)
def test_tmm_granularity_recovery_exact(at_op, gran):
    assert crash_and_recover(
        TiledMatMul(n=16, bsize=8, granularity=gran), at_op
    )


@given(st.integers(min_value=1, max_value=16_000))
@settings(max_examples=15, deadline=None)
def test_tmm_embedded_recovery_exact(at_op):
    assert crash_and_recover(
        TiledMatMul(n=16, bsize=8, checksum_org="embedded"), at_op
    )


@given(st.integers(min_value=1, max_value=16_000))
@settings(max_examples=15, deadline=None)
def test_tmm_incremental_repair_recovery_exact(at_op):
    assert crash_and_recover(
        TiledMatMul(n=16, bsize=8, repair="incremental"), at_op
    )
