"""Property-based crash/recovery tests.

The reproduction's central correctness claim, stated as properties:

* for ANY crash point, LP recovery reconstructs the exact failure-free
  output (TMM and conv2d, the frontier and idempotent recovery styles);
* for ANY crash point, a WAL transaction is atomic;
* the periodic cleaner never breaks recovery.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.core.wal import WriteAheadLog
from repro.workloads.conv2d import Conv2D
from repro.workloads.tmm import TiledMatMul


def config(cores=3, timing="detailed"):
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(512, 2, hit_cycles=2.0),
        l2=CacheConfig(2048, 4, hit_cycles=11.0),
        timing=timing,
    )


#: Crash/recovery properties must hold on both timing pipelines: the
#: models expose different interleavings (and therefore different
#: reachable crash images), not different guarantees.
timings = st.sampled_from(["detailed", "functional"])


@given(st.integers(min_value=1, max_value=16_000), timings)
@settings(max_examples=25, deadline=None)
def test_tmm_recovery_exact_at_any_crash_point(at_op, timing):
    wl = TiledMatMul(n=16, bsize=8)
    m = Machine(config(timing=timing))
    bound = wl.bind(m, num_threads=2)
    result, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
    if not result.crashed:
        assert bound.verify()
        return
    rb = wl.bind(post, num_threads=2, create=False)
    post.run(rb.recovery_threads())
    assert rb.verify()


@given(
    st.integers(min_value=1, max_value=8_000),
    st.integers(min_value=100, max_value=2_000),
    timings,
)
@settings(max_examples=15, deadline=None)
def test_tmm_recovery_exact_with_cleaner(at_op, period, timing):
    wl = TiledMatMul(n=16, bsize=8)
    m = Machine(config(timing=timing))
    m.cleaner = PeriodicCleaner(float(period))
    bound = wl.bind(m, num_threads=2)
    result, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
    if not result.crashed:
        assert bound.verify()
        return
    rb = wl.bind(post, num_threads=2, create=False)
    post.run(rb.recovery_threads())
    assert rb.verify()


@given(st.integers(min_value=1, max_value=4_000), timings)
@settings(max_examples=20, deadline=None)
def test_conv2d_recovery_exact_at_any_crash_point(at_op, timing):
    wl = Conv2D(n=12, ksize=3, row_block=2)
    m = Machine(config(timing=timing))
    bound = wl.bind(m, num_threads=2)
    result, post = run_with_crash(m, bound.threads("lp"), CrashPlan(at_op=at_op))
    if not result.crashed:
        assert bound.verify()
        return
    rb = wl.bind(post, num_threads=2, create=False)
    post.run(rb.recovery_threads())
    assert rb.verify()


@given(st.integers(min_value=1, max_value=250), timings)
@settings(max_examples=30, deadline=None)
def test_wal_transaction_atomic_at_any_crash_point(at_op, timing):
    m = Machine(config(cores=1, timing=timing))
    old = [10.0, 20.0, 30.0, 40.0]
    data = m.alloc_init("data", old)
    m.drain()
    log = WriteAheadLog(m, "log", capacity=8)
    writes = [(data.addr(i), 100.0 + i) for i in range(4)]
    result, post = run_with_crash(m, [log.transaction(writes)], CrashPlan(at_op=at_op))

    post_log = WriteAheadLog.attach(post, "log", capacity=8)
    if post_log.needs_recovery():
        post.run([post_log.recovery_ops()])
    values = [post.persistent_value(data.addr(i)) for i in range(4)]
    assert values in (old, [100.0, 101.0, 102.0, 103.0]), (
        f"non-atomic state {values} (crash at {at_op}, "
        f"crashed={result.crashed})"
    )
