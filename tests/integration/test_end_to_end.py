"""End-to-end integration: the full experiment pipeline on every
Table V workload at test scale.

These tests exercise the same paths the benchmark harness uses —
workload registry -> bind -> run -> verify -> (crash -> recover) —
across all five kernels, which is the reproduction's core claim:
Lazy Persistency is near-free in the failure-free case and exactly
recoverable in the failure case.
"""

import pytest

from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.experiments import compare_variants, run_variant
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads import available_workloads, get_workload

TEST_SPECS = {
    "tmm": dict(n=24, bsize=8),
    "cholesky": dict(n=16, col_block=4),
    "conv2d": dict(n=20, ksize=3, row_block=3),
    "gauss": dict(n=16, row_block=4),
    "fft": dict(n=64),
    "log": dict(records=24, width=4, wb_batch=4),
    "hashmap": dict(capacity=32, ops=48, keys=8, wb_batch=4),
}


def config(cores=3):
    # L2 of 8KB: big enough that the tiny test problems are not in a
    # pure-thrash regime (where clflushopt's invalidations act as a
    # cache-bypass hint and distort the LP-vs-EP comparison)
    return MachineConfig(
        num_cores=cores,
        l1=CacheConfig(1024, 2, hit_cycles=2.0),
        l2=CacheConfig(8192, 4, hit_cycles=11.0),
    )


def make(name):
    return get_workload(name)(**TEST_SPECS[name])


class TestAllWorkloadsAllVariants:
    @pytest.mark.parametrize("name", sorted(TEST_SPECS))
    def test_base_lp_ep_verified(self, name):
        results = compare_variants(
            make(name), config(), ["base", "lp", "ep"], num_threads=2
        )
        assert all(r.verified for r in results.values())

    @pytest.mark.parametrize("name", sorted(TEST_SPECS))
    def test_lp_cheaper_than_ep(self, name):
        results = compare_variants(
            make(name), config(), ["base", "lp", "ep"], num_threads=2
        )
        lp = results["lp"].exec_cycles / results["base"].exec_cycles
        ep = results["ep"].exec_cycles / results["base"].exec_cycles
        assert lp < ep, f"{name}: LP ({lp:.3f}) must beat EP ({ep:.3f})"

    @pytest.mark.parametrize("name", sorted(TEST_SPECS))
    def test_lp_adds_no_flushes(self, name):
        res = run_variant(make(name), config(), "lp", num_threads=2)
        assert res.writes_by_cause.get("flush", 0) == 0

    @pytest.mark.parametrize("name", sorted(TEST_SPECS))
    def test_ep_flushes(self, name):
        res = run_variant(make(name), config(), "ep", num_threads=2)
        flushed = res.writes_by_cause.get("flush", 0)
        flushed += res.writes_by_cause.get("flushwb", 0)
        assert flushed > 0 or "flush" in res.writes_by_cause


class TestCrashCampaignsAllWorkloads:
    @pytest.mark.parametrize("name", sorted(TEST_SPECS))
    def test_recovery_exact_everywhere(self, name):
        campaign = run_crash_campaign(
            make(name),
            config(),
            crash_points=[7, 250, 900, 2200],
            num_threads=2,
        )
        assert campaign.all_recovered, (
            f"{name}: recovery failed at some crash point"
        )

    @pytest.mark.parametrize("name", sorted(TEST_SPECS))
    def test_recovery_with_cleaner(self, name):
        campaign = run_crash_campaign(
            make(name),
            config(),
            crash_points=[600],
            num_threads=2,
            cleaner_period=300.0,
        )
        assert campaign.all_recovered


class TestRegistryCoverage:
    def test_specs_cover_registry(self):
        assert sorted(TEST_SPECS) == available_workloads()
