"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "tmm"])
        assert args.variant == "lp"
        assert args.machine == "scaled"
        assert args.threads == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "linpack"])

    def test_crash_requires_at_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crash", "tmm"])

    def test_sweep_engine_flag_defaults(self):
        args = build_parser().parse_args(["sweep", "checksum", "tmm"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_sweep_engine_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "latency", "tmm", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/c"

    def test_obs_interval_defaults_off(self):
        for argv in (
            ["run", "tmm"],
            ["compare", "tmm"],
            ["sweep", "checksum", "tmm"],
            ["reproduce"],
        ):
            assert build_parser().parse_args(argv).obs_interval is None

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "tmm"])
        assert args.command == "trace"
        assert args.variant == "lp"
        assert args.out is None

    def test_report_requires_a_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])
        args = build_parser().parse_args(["report", "a.json", "b.json"])
        assert args.reports == ["a.json", "b.json"]
        assert args.md is False


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tmm" in out and "modular" in out and "scaled" in out

    def test_run(self, capsys):
        rc = main(["run", "tmm", "--threads", "2", "-p", "n=16", "-p", "bsize=8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exec_cycles" in out
        assert "verified" in out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "tmm", "--variants", "base,lp", "--threads", "2",
             "-p", "n=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "base" in out and "lp" in out

    def test_crash_recovers(self, capsys):
        rc = main(
            ["crash", "tmm", "--at-op", "2000", "--threads", "2", "-p", "n=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "output exact" in out

    def test_sweep_checksum(self, capsys):
        rc = main(["sweep", "checksum", "tmm", "--threads", "2", "-p", "n=16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adler32" in out

    def test_idempotence_command(self, capsys):
        rc = main(["idempotence", "conv2d", "--threads", "1",
                   "-p", "n=12", "-p", "row_block=2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "idempotent" in out

    def test_sweep_cleaner(self, capsys):
        rc = main(["sweep", "cleaner", "tmm", "--threads", "2", "-p", "n=16"])
        assert rc == 0
        assert "period" in capsys.readouterr().out

    def test_sweep_cached_rerun_hits(self, capsys, tmp_path):
        argv = ["sweep", "checksum", "tmm", "--threads", "2", "-p", "n=16",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[cache: 0/" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        # every point served from the on-disk cache, identical table
        hits = second[second.index("[cache: "):]
        lookups = hits.split("/")[1].split(" ")[0]
        assert f"[cache: {lookups}/{lookups} hits" in second
        assert first.split("[cache")[0] == second.split("[cache")[0]

    def test_sweep_no_cache_skips_cache(self, capsys, tmp_path):
        rc = main(["sweep", "checksum", "tmm", "--threads", "2", "-p", "n=16",
                   "--no-cache", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "[cache:" not in capsys.readouterr().out
        assert not list(tmp_path.iterdir())

    def test_bad_param_format(self):
        with pytest.raises(SystemExit):
            main(["run", "tmm", "-p", "nonsense"])

    def test_param_types(self):
        from repro.cli import _parse_params

        params = _parse_params(["n=48", "granularity=ii", "eager_checksum=true"])
        assert params == {
            "n": 48,
            "granularity": "ii",
            "eager_checksum": True,
        }


class TestObservability:
    TINY = ["--machine", "tiny", "--threads", "2",
            "-p", "n=8", "-p", "bsize=4", "-p", "kk_tiles=1"]

    def test_run_obs_out_writes_series(self, capsys, tmp_path):
        out = tmp_path / "series.json"
        rc = main(["run", "tmm", *self.TINY,
                   "--obs-interval", "500", "--obs-out", str(out)])
        assert rc == 0
        import json

        series = json.loads(out.read_text())
        assert series["interval"] == 500.0
        assert series["num_buckets"] > 0
        assert series["columns"]

    def test_run_obs_out_csv(self, tmp_path):
        out = tmp_path / "series.csv"
        rc = main(["run", "tmm", *self.TINY,
                   "--obs-interval", "500", "--obs-out", str(out)])
        assert rc == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("bucket,start_cycle,")

    def test_obs_out_without_interval_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "tmm", *self.TINY,
                  "--obs-out", str(tmp_path / "x.json")])

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "lp.trace.json"
        rc = main(["trace", "tmm", *self.TINY, "--out", str(out)])
        assert rc == 0
        assert "ui.perfetto.dev" in capsys.readouterr().out
        import json

        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert len(events) > 0
        for ev in events:
            assert {"ph", "pid", "tid"} <= set(ev)
            if ev["ph"] != "M":
                assert "ts" in ev

    def test_report_compares_saved_runs(self, capsys, tmp_path):
        paths = []
        for variant in ("lp", "ep"):
            path = tmp_path / f"{variant}.report.json"
            assert main(["run", "tmm", *self.TINY, "--variant", variant,
                         "--report-out", str(path)]) == 0
            paths.append(str(path))
        capsys.readouterr()
        assert main(["report", *paths]) == 0
        out = capsys.readouterr().out
        assert "tmm/lp" in out and "tmm/ep" in out
        assert "exec_cycles" in out
        assert "(x1.000)" in out

    def test_report_markdown(self, capsys, tmp_path):
        path = tmp_path / "lp.report.json"
        assert main(["run", "tmm", *self.TINY,
                     "--report-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path), "--md"]) == 0
        assert "| --- |" in capsys.readouterr().out


class TestProfiling:
    TINY = TestObservability.TINY

    def test_heatmap_parser_defaults(self):
        args = build_parser().parse_args(["heatmap", "tmm"])
        assert args.variant == "lp"
        assert args.base_variant == "base"
        assert args.top == 10
        assert args.out is None

    def test_flame_parser_defaults(self):
        args = build_parser().parse_args(["flame", "tmm"])
        assert args.variant == "lp"
        assert args.top == 15
        assert args.out is None

    def test_regress_parser_defaults(self):
        args = build_parser().parse_args(["regress"])
        assert args.baselines == "benchmarks/baselines"
        assert args.update_baselines is False
        assert args.mistime is None
        assert args.cases is None

    def test_heatmap_renders_amplification_and_writes_json(
        self, capsys, tmp_path
    ):
        out = tmp_path / "heat.json"
        rc = main(["heatmap", "tmm", *self.TINY,
                   "--cleaner-period", "500", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "write heatmap" in text
        assert "amp vs base" in text
        import json

        doc = json.loads(out.read_text())
        assert doc["total_writes"] == sum(
            sum(by_cause.values()) for by_cause in doc["lines"].values()
        )
        assert doc["regions"]

    def test_heatmap_csv_export(self, capsys, tmp_path):
        out = tmp_path / "heat.csv"
        rc = main(["heatmap", "tmm", *self.TINY, "--variant", "ep",
                   "--base-variant", "none", "--out", str(out)])
        assert rc == 0
        header = out.read_text().splitlines()[0]
        assert header == "line,region,writes,stores,flushes"
        assert "amp vs base" not in capsys.readouterr().out

    def test_flame_writes_collapsed_stacks(self, capsys, tmp_path):
        out = tmp_path / "lp.collapsed"
        rc = main(["flame", "tmm", *self.TINY, "--out", str(out)])
        assert rc == 0
        assert "Stall attribution" in capsys.readouterr().out
        for line in out.read_text().splitlines():
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert frames.startswith("tmm/lp;")


class TestSmokeMode:
    """REPRO_SMOKE=1 must make the obs commands runnable bare."""

    def run_smoke(self, monkeypatch, argv):
        monkeypatch.setenv("REPRO_SMOKE", "1")
        return main(argv)

    def test_trace_smoke(self, monkeypatch, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        rc = self.run_smoke(
            monkeypatch, ["trace", "tmm", "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()

    def test_heatmap_smoke(self, monkeypatch, capsys):
        rc = self.run_smoke(monkeypatch, ["heatmap", "tmm"])
        assert rc == 0
        assert "write heatmap" in capsys.readouterr().out

    def test_flame_smoke(self, monkeypatch, tmp_path, capsys):
        out = tmp_path / "f.collapsed"
        rc = self.run_smoke(
            monkeypatch, ["flame", "tmm", "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()

    def test_smoke_params_yield_to_explicit_ones(self, monkeypatch):
        from repro.cli import _smoke_adjust

        monkeypatch.setenv("REPRO_SMOKE", "1")
        args = build_parser().parse_args(["heatmap", "tmm", "-p", "n=12"])
        _smoke_adjust(args)
        assert args.machine == "tiny"
        # Last -p wins in _parse_params, so the user's n=12 overrides
        # the smoke preset's n=8.
        from repro.cli import _parse_params

        assert _parse_params(args.param)["n"] == 12


class TestCrashcheck:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["crashcheck"])
        assert args.workload == "tmm"
        assert args.machine == "tiny"
        assert args.exhaustive is False
        assert args.nightly is False
        assert args.jobs == 1

    def test_parser_accepts_acceptance_invocation(self):
        args = build_parser().parse_args(
            ["crashcheck", "--workload", "tmm", "--exhaustive"]
        )
        assert args.workload == "tmm"
        assert args.exhaustive is True

    def test_tiny_preset_listed(self, capsys):
        assert main(["list"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_sound_variant_passes(self, capsys):
        rc = main(
            ["crashcheck", "--workload", "tmm", "--variants", "ep",
             "--points", "2", "--max-flush-points", "4", "--max-events", "8",
             "--samples", "4", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "crash-state check" in out
        assert "pass" in out

    def test_broken_variant_reported_but_expected(self, capsys):
        rc = main(
            ["crashcheck", "--workload", "tmm",
             "--variants", "ep,ep_nofence", "--points", "0",
             "--max-flush-points", "12", "--max-events", "8",
             "--samples", "4", "--no-cache"]
        )
        # ep passes and ep_nofence is flagged: both expected -> exit 0.
        assert rc == 0
        out = capsys.readouterr().out
        assert "counterexample" in out
        assert "recovery failed on image" in out

    def test_missed_bug_fails_exit_code(self, capsys):
        # An empty crash grid can't produce a counterexample: the
        # checker must treat an unflagged broken variant as a failure.
        rc = main(
            ["crashcheck", "--workload", "tmm", "--variants", "ep_nofence",
             "--points", "0", "--max-flush-points", "0", "--max-events", "6",
             "--samples", "4", "--no-cache"]
        )
        assert rc == 1
        assert "MISSED BUG" in capsys.readouterr().out


class TestModelFlag:
    def test_defaults_to_adr_everywhere(self):
        for argv in (
            ["run", "tmm"],
            ["compare", "tmm"],
            ["sweep", "checksum", "tmm"],
            ["crashcheck"],
        ):
            assert build_parser().parse_args(argv).model == "adr"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tmm", "--model", "bogus"])

    def test_run_under_eadr(self, capsys):
        rc = main(["run", "tmm", "--threads", "2", "-p", "n=16",
                   "--model", "eadr"])
        assert rc == 0
        assert "verified" in capsys.readouterr().out

    def test_crashcheck_refuses_non_enumerable_model(self, capsys):
        """Satellite: the bare non-ADR error is now a clear message
        listing the enumeration-capable models, not a traceback."""
        rc = main(
            ["crashcheck", "--workload", "tmm", "--model", "pre_adr",
             "--no-cache"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "'pre_adr'" in err
        assert "Models that support `repro crashcheck`" in err
        for name in ("adr", "eadr", "strict", "epoch"):
            assert name in err

    def test_crashcheck_excludes_fence_bug_variants_under_eadr(self, capsys):
        """Broken variants encode flush/fence-discipline bugs; under a
        store-durable model they are genuinely sound, so the default
        campaign must not expect them to be flagged."""
        rc = main(
            ["crashcheck", "--workload", "tmm", "--model", "eadr",
             "--points", "1", "--max-flush-points", "2", "--max-events", "8",
             "--samples", "4", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ep_nofence" not in out
        assert "MISSED BUG" not in out

    def test_crashcheck_runs_under_eadr(self, capsys):
        rc = main(
            ["crashcheck", "--workload", "tmm", "--variants", "lp",
             "--model", "eadr", "--points", "2", "--max-flush-points", "2",
             "--max-events", "8", "--samples", "4", "--no-cache"]
        )
        assert rc == 0
        assert "pass" in capsys.readouterr().out


class TestLitmus:
    SMALL = ["--limit", "8", "--max-ops", "2", "--threads", "1"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["litmus"])
        assert args.models is None
        assert args.threads == 2
        assert args.max_ops == 4
        assert args.vars == 2
        assert args.limit == 48
        assert args.as_sound is False
        assert args.out is None
        assert args.replay is None

    def test_sound_and_broken_expectations(self, capsys):
        rc = main(["litmus", "--models", "adr,eadr_nofence", *self.SMALL])
        assert rc == 0
        out = capsys.readouterr().out
        assert "litmus corpus" in out
        assert "divergence" in out  # the broken model's expected verdict

    def test_unknown_model_fails_fast(self, capsys):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="bogus"):
            main(["litmus", "--models", "bogus", *self.SMALL])

    def test_as_sound_flags_the_broken_model(self, capsys, tmp_path):
        rc = main(["litmus", "--models", "eadr_nofence", "--as-sound",
                   "--out", str(tmp_path), *self.SMALL])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        reports = sorted(tmp_path.glob("litmus-eadr_nofence-div*.json"))
        assert reports

    def test_replay_round_trips(self, capsys, tmp_path):
        assert main(["litmus", "--models", "eadr_nofence", "--as-sound",
                     "--out", str(tmp_path), *self.SMALL]) == 1
        report = sorted(tmp_path.glob("*.json"))[0]
        capsys.readouterr()
        rc = main(["litmus", "--replay", str(report)])
        assert rc == 0  # still diverges: the report is faithful
        assert "still diverges" in capsys.readouterr().out


class TestStreamTierCLI:
    TINY = TestObservability.TINY

    def test_tier_flag_defaults_to_machine(self):
        assert build_parser().parse_args(["run", "tmm"]).tier == "machine"

    def test_unknown_tier_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tmm", "--tier", "gpu"])

    def test_stream_tier_run_reports_path(self, capsys, tmp_path):
        out = tmp_path / "lp-stream.report.json"
        rc = main(["run", "tmm", *self.TINY, "--tier", "stream",
                   "--obs-interval", "500", "--report-out", str(out)])
        assert rc == 0
        assert "[observability: stream path]" in capsys.readouterr().out
        import json

        doc = json.loads(out.read_text())
        assert doc["intervals"]["interval"] == 500.0
        assert doc["heatmap"]["regions"]

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_stream_tier_fallback_is_reported(self, capsys):
        rc = main(["run", "tmm", *self.TINY, "--tier", "stream",
                   "--obs-interval", "500", "--cleaner-period", "200"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[stream tier fell back:" in out
        assert "[observability: probe-bus path]" in out


class TestDashboardCLI:
    TINY = TestObservability.TINY

    def test_parser_defaults(self):
        args = build_parser().parse_args(["dashboard", "a.json"])
        assert args.reports == ["a.json"]
        assert args.out == "dashboard.html"
        assert args.telemetry is None

    def _report(self, tmp_path, variant="lp"):
        path = tmp_path / f"{variant}.report.json"
        assert main(["run", "tmm", *self.TINY, "--variant", variant,
                     "--obs-interval", "500",
                     "--report-out", str(path)]) == 0
        return str(path)

    def test_renders_reports_to_html(self, capsys, tmp_path):
        paths = [self._report(tmp_path, v) for v in ("lp", "ep")]
        out = tmp_path / "dash.html"
        capsys.readouterr()
        assert main(["dashboard", *paths, "-o", str(out)]) == 0
        page = out.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "tmm/lp" in page and "tmm/ep" in page
        assert "Metric comparison" in page
        assert str(out) in capsys.readouterr().out

    def test_accepts_sweep_telemetry(self, capsys, tmp_path):
        report = self._report(tmp_path)
        telemetry = tmp_path / "telemetry.json"
        assert main(["sweep", "checksum", "tmm", "--threads", "2",
                     "-p", "n=16", "--no-cache",
                     "--telemetry-out", str(telemetry)]) == 0
        out = tmp_path / "dash.html"
        capsys.readouterr()
        assert main(["dashboard", report, "--telemetry", str(telemetry),
                     "-o", str(out)]) == 0
        page = out.read_text()
        assert "Harness telemetry" in page
        assert "job timeline" in page

    def test_nothing_to_render_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dashboard", "-o", str(tmp_path / "d.html")])

    def test_malformed_telemetry_fails(self, tmp_path):
        report = self._report(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(SystemExit):
            main(["dashboard", report, "--telemetry", str(bad)])

    def test_sweep_prints_harness_summary(self, capsys, tmp_path):
        assert main(["sweep", "checksum", "tmm", "--threads", "2",
                     "-p", "n=16", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[harness:" in out
        assert "worker(s)" in out


class TestCoverageAndWatchCLI:
    CC = ["crashcheck", "--workload", "tmm", "--variants", "ep",
          "--points", "2", "--max-flush-points", "4", "--max-events", "8",
          "--samples", "4", "--no-cache"]

    def test_parser_defaults(self):
        cc = build_parser().parse_args(["crashcheck"])
        assert cc.coverage_out is None
        assert cc.journal is None
        assert cc.progress is False
        lit = build_parser().parse_args(["litmus"])
        assert lit.coverage_out is None
        assert lit.journal is None
        sweep = build_parser().parse_args(["sweep", "checksum", "tmm"])
        assert sweep.journal is None
        watch = build_parser().parse_args(["watch", "j.jsonl"])
        assert watch.journal == "j.jsonl"
        assert watch.out == "dashboard.html"
        assert watch.once is False
        assert watch.interval == 0.5

    def test_crashcheck_coverage_out_and_summary(self, capsys, tmp_path):
        import json

        cov_path = tmp_path / "cov.json"
        assert main([*self.CC, "--coverage-out", str(cov_path)]) == 0
        out = capsys.readouterr().out
        assert "[coverage]" in out
        assert "images over" in out
        docs = json.loads(cov_path.read_text())
        assert "tmm/ep" in docs
        doc = docs["tmm/ep"]
        assert doc["images_checked"] > 0
        assert doc["epochs"]
        # The printed summary and the saved doc agree.
        assert f"{doc['images_checked']} images" in out

    def test_progress_ticks_go_to_stderr(self, capsys):
        assert main([*self.CC, "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[coverage]" in captured.err
        assert "images (events=" in captured.err

    def test_journal_reconciles_with_coverage_out(self, capsys, tmp_path):
        import json

        from repro.obs import journal_summary, read_journal

        cov_path = tmp_path / "cov.json"
        journal_path = tmp_path / "cc.jsonl"
        assert main([*self.CC, "--coverage-out", str(cov_path),
                     "--journal", str(journal_path)]) == 0
        folded = journal_summary(read_journal(str(journal_path)))
        (from_journal,) = [
            d for d in folded["coverage"] if d["label"] == "tmm/ep"
        ]
        saved = json.loads(cov_path.read_text())["tmm/ep"]
        for doc in (from_journal, saved):
            doc.pop("wall_s")
            doc.pop("images_per_sec")
        assert from_journal == saved

    def test_journal_does_not_change_results(self, capsys, tmp_path):
        assert main(list(self.CC)) == 0
        plain = capsys.readouterr().out
        assert main([*self.CC, "--journal",
                     str(tmp_path / "j.jsonl")]) == 0
        journaled = capsys.readouterr().out
        # Identical verdict table; only wall-clock-derived rate lines
        # below it may differ between runs.
        assert plain.split("[coverage]")[0] == (
            journaled.split("[coverage]")[0]
        )

    def test_litmus_coverage_out(self, capsys, tmp_path):
        import json

        cov_path = tmp_path / "lit.json"
        assert main(["litmus", "--models", "adr", "--limit", "8",
                     "--max-ops", "2", "--threads", "1",
                     "--coverage-out", str(cov_path)]) == 0
        docs = json.loads(cov_path.read_text())
        assert docs["adr"]["kind"] == "litmus"
        assert docs["adr"]["images_checked"] > 0

    def test_dashboard_renders_coverage_files(self, capsys, tmp_path):
        cov_path = tmp_path / "cov.json"
        assert main([*self.CC, "--coverage-out", str(cov_path)]) == 0
        out = tmp_path / "dash.html"
        capsys.readouterr()
        assert main(["dashboard", "--coverage", str(cov_path),
                     "-o", str(out)]) == 0
        page = out.read_text()
        assert "Verification coverage" in page
        assert "tmm" in page

    def test_watch_once_renders_journal(self, capsys, tmp_path):
        journal_path = tmp_path / "cc.jsonl"
        assert main([*self.CC, "--journal", str(journal_path)]) == 0
        out = tmp_path / "dash.html"
        capsys.readouterr()
        assert main(["watch", str(journal_path), "--once",
                     "-o", str(out)]) == 0
        assert "[watch:" in capsys.readouterr().out
        page = out.read_text()
        assert "Verification coverage" in page

    def test_watch_polls_and_rerenders_on_growth(self, capsys, tmp_path):
        import threading
        import time as _time

        from repro.obs import TelemetryJournal

        journal_path = tmp_path / "live.jsonl"
        out = tmp_path / "dash.html"
        journal = TelemetryJournal(path=str(journal_path))
        journal.emit("campaign_point", label="tmm/lp", num_events=2,
                     images_checked=4, bound=4, exhaustive=True,
                     crashed=True)

        def append_later():
            _time.sleep(0.15)
            journal.emit("campaign_point", label="tmm/lp", num_events=2,
                         images_checked=6, bound=8, exhaustive=True,
                         crashed=True)

        writer = threading.Thread(target=append_later)
        writer.start()
        try:
            assert main(["watch", str(journal_path), "-o", str(out),
                         "--interval", "0.05", "--max-seconds", "0.6"]) == 0
        finally:
            writer.join()
        outputs = capsys.readouterr().out
        assert "[watch: 1 event(s)" in outputs  # initial snapshot
        assert "[watch: 2 event(s)" in outputs  # re-render on growth
        assert "10 images" in out.read_text()

    def test_watch_empty_journal_renders_placeholder(self, capsys, tmp_path):
        out = tmp_path / "dash.html"
        assert main(["watch", str(tmp_path / "none.jsonl"), "--once",
                     "-o", str(out)]) == 0
        assert "waiting for journal events" in out.read_text()

    def test_malformed_coverage_file_fails(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('"just a string"')
        with pytest.raises(SystemExit):
            main(["dashboard", "--coverage", str(bad),
                  "-o", str(tmp_path / "d.html")])
