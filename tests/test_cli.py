"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "tmm"])
        assert args.variant == "lp"
        assert args.machine == "scaled"
        assert args.threads == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "linpack"])

    def test_crash_requires_at_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crash", "tmm"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tmm" in out and "modular" in out and "scaled" in out

    def test_run(self, capsys):
        rc = main(["run", "tmm", "--threads", "2", "-p", "n=16", "-p", "bsize=8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exec_cycles" in out
        assert "verified" in out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "tmm", "--variants", "base,lp", "--threads", "2",
             "-p", "n=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "base" in out and "lp" in out

    def test_crash_recovers(self, capsys):
        rc = main(
            ["crash", "tmm", "--at-op", "2000", "--threads", "2", "-p", "n=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "output exact" in out

    def test_sweep_checksum(self, capsys):
        rc = main(["sweep", "checksum", "tmm", "--threads", "2", "-p", "n=16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adler32" in out

    def test_idempotence_command(self, capsys):
        rc = main(["idempotence", "conv2d", "--threads", "1",
                   "-p", "n=12", "-p", "row_block=2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "idempotent" in out

    def test_sweep_cleaner(self, capsys):
        rc = main(["sweep", "cleaner", "tmm", "--threads", "2", "-p", "n=16"])
        assert rc == 0
        assert "period" in capsys.readouterr().out

    def test_bad_param_format(self):
        with pytest.raises(SystemExit):
            main(["run", "tmm", "-p", "nonsense"])

    def test_param_types(self):
        from repro.cli import _parse_params

        params = _parse_params(["n=48", "granularity=ii", "eager_checksum=true"])
        assert params == {
            "n": 48,
            "granularity": "ii",
            "eager_checksum": True,
        }
