"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "tmm"])
        assert args.variant == "lp"
        assert args.machine == "scaled"
        assert args.threads == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "linpack"])

    def test_crash_requires_at_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crash", "tmm"])

    def test_sweep_engine_flag_defaults(self):
        args = build_parser().parse_args(["sweep", "checksum", "tmm"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_sweep_engine_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "latency", "tmm", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/c"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tmm" in out and "modular" in out and "scaled" in out

    def test_run(self, capsys):
        rc = main(["run", "tmm", "--threads", "2", "-p", "n=16", "-p", "bsize=8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exec_cycles" in out
        assert "verified" in out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "tmm", "--variants", "base,lp", "--threads", "2",
             "-p", "n=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "base" in out and "lp" in out

    def test_crash_recovers(self, capsys):
        rc = main(
            ["crash", "tmm", "--at-op", "2000", "--threads", "2", "-p", "n=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "output exact" in out

    def test_sweep_checksum(self, capsys):
        rc = main(["sweep", "checksum", "tmm", "--threads", "2", "-p", "n=16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adler32" in out

    def test_idempotence_command(self, capsys):
        rc = main(["idempotence", "conv2d", "--threads", "1",
                   "-p", "n=12", "-p", "row_block=2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "idempotent" in out

    def test_sweep_cleaner(self, capsys):
        rc = main(["sweep", "cleaner", "tmm", "--threads", "2", "-p", "n=16"])
        assert rc == 0
        assert "period" in capsys.readouterr().out

    def test_sweep_cached_rerun_hits(self, capsys, tmp_path):
        argv = ["sweep", "checksum", "tmm", "--threads", "2", "-p", "n=16",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[cache: 0/" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        # every point served from the on-disk cache, identical table
        hits = second[second.index("[cache: "):]
        lookups = hits.split("/")[1].split(" ")[0]
        assert f"[cache: {lookups}/{lookups} hits" in second
        assert first.split("[cache")[0] == second.split("[cache")[0]

    def test_sweep_no_cache_skips_cache(self, capsys, tmp_path):
        rc = main(["sweep", "checksum", "tmm", "--threads", "2", "-p", "n=16",
                   "--no-cache", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "[cache:" not in capsys.readouterr().out
        assert not list(tmp_path.iterdir())

    def test_bad_param_format(self):
        with pytest.raises(SystemExit):
            main(["run", "tmm", "-p", "nonsense"])

    def test_param_types(self):
        from repro.cli import _parse_params

        params = _parse_params(["n=48", "granularity=ii", "eager_checksum=true"])
        assert params == {
            "n": 48,
            "granularity": "ii",
            "eager_checksum": True,
        }
