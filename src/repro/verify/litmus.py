"""Litmus tests: cross-check the crash-state enumerator against a
declarative per-model persistency spec.

"Lost in Interpretation" (PAPERS.md) shows that persistency-model
semantics are exactly where simulators and real machines silently
diverge, and that small litmus programs are the right probe.  This
module turns our exhaustive crash checker into a self-validating
oracle:

1. :func:`generate_programs` deterministically enumerates small
   multi-core store/flush/fence programs over a handful of
   line-disjoint variables (plus a curated set of classic shapes:
   publish, unfenced flush, same-line version chains, cross-core
   flushes of a migrating line, multi-epoch sequences);
2. :func:`run_program` executes one program on a full tiny machine
   under a chosen :mod:`persistency model <repro.sim.model>`, records
   the global op trace the scheduler actually produced, snapshots the
   crash-state space at completion, and enumerates every reachable
   NVMM image exhaustively;
3. a **declarative spec** per model (:func:`spec_images`) recomputes
   the allowed image set symbolically from that same trace — a few
   dozen lines of direct semantics that share *no* code with the
   tracker, MC, or cache hierarchy;
4. :func:`check_program` asserts the two sets are identical, and
   :func:`shrink_program` greedily removes ops from a diverging
   program until the divergence is minimal, producing a JSON-
   replayable :class:`DivergenceReport` (:func:`replay_divergence`).

Programs are run to *graceful completion* and the space snapshotted
directly: every enumerable model has accept-time durability, so there
is no in-flight MC state a mid-run crash trigger would add, and the
trace-level spec stays exact.

Deliberately broken models (``broken=True`` in the registry, e.g.
``eadr_nofence``) advertise a spec they do not implement; the harness
must *find* a divergence for them — the same trust-the-checker pattern
as the ``ep_nofence`` broken workload variant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigError, SimulationError
from repro.sim.config import ELEMS_PER_LINE, MachineConfig, tiny_machine
from repro.sim.isa import Fence, Flush, Op, Store
from repro.sim.machine import Machine
from repro.sim.model import get_model
from repro.verify.enumerate import EnumerationPlan, enumerate_images

#: Op kinds a litmus program may contain.  No loads: values only flow
#: through stores, so the reachable-image question is closed over these.
KIND_STORE = "store"
KIND_FLUSH = "flush"
KIND_FENCE = "fence"

#: Exhaustive-enumeration ceiling: a program whose space exceeds this
#: many events is rejected rather than silently sampled (the cross-
#: check is only meaningful when both sides are exact).
MAX_EVENTS = 16

#: Image keys are per-variable value tuples.
ImageKey = Tuple[float, ...]

#: One executed op in global order: ``(core_id, kind, var, value)``.
TraceEntry = Tuple[int, str, int, float]


@dataclass(frozen=True)
class LitmusOp:
    """One instruction of a litmus thread."""

    kind: str
    var: int = 0
    value: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "var": self.var, "value": self.value}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LitmusOp":
        return cls(
            kind=str(d["kind"]),
            var=int(d["var"]),
            value=float(d["value"]),
        )


@dataclass(frozen=True)
class LitmusProgram:
    """A small multi-threaded store/flush/fence program.

    Variables are numbered ``0..num_vars-1`` and materialised one per
    cache line, so flushes of distinct variables never interact and
    same-variable ops exercise same-line persist ordering.
    """

    name: str
    threads: Tuple[Tuple[LitmusOp, ...], ...]
    num_vars: int

    def __post_init__(self) -> None:
        if not self.threads:
            raise ConfigError("litmus program needs at least one thread")
        if self.num_vars <= 0:
            raise ConfigError("litmus program needs at least one variable")
        for ops in self.threads:
            for op in ops:
                if op.kind not in (KIND_STORE, KIND_FLUSH, KIND_FENCE):
                    raise ConfigError(f"unknown litmus op kind {op.kind!r}")
                if op.kind != KIND_FENCE and not 0 <= op.var < self.num_vars:
                    raise ConfigError(
                        f"litmus op names variable {op.var} but the "
                        f"program has {self.num_vars}"
                    )

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def num_ops(self) -> int:
        return sum(len(ops) for ops in self.threads)

    def pretty(self) -> str:
        """One-line ``t0: st x0; fl x0 || t1: ...`` rendering."""
        cols = []
        for ops in self.threads:
            words = []
            for op in ops:
                if op.kind == KIND_FENCE:
                    words.append("fence")
                else:
                    short = "st" if op.kind == KIND_STORE else "fl"
                    words.append(f"{short} x{op.var}")
            cols.append("; ".join(words) if words else "(empty)")
        return " || ".join(cols)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "num_vars": self.num_vars,
            "threads": [
                [op.to_dict() for op in ops] for ops in self.threads
            ],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LitmusProgram":
        return cls(
            name=str(d["name"]),
            num_vars=int(d["num_vars"]),
            threads=tuple(
                tuple(LitmusOp.from_dict(op) for op in ops)
                for ops in d["threads"]
            ),
        )


# ----------------------------------------------------------------------
# program generation
# ----------------------------------------------------------------------


def _materialize(
    name: str, kinds: Sequence[Sequence[Tuple[str, int]]], num_vars: int
) -> LitmusProgram:
    """Build a program from per-thread ``(kind, var)`` lists, assigning
    each store a value unique across the program (``100*(t+1)+i+1`` for
    the i-th store of thread t) so every image is distinguishable."""
    threads = []
    for t, ops in enumerate(kinds):
        built = []
        stores = 0
        for kind, var in ops:
            if kind == KIND_STORE:
                stores += 1
                built.append(
                    LitmusOp(kind, var, float(100 * (t + 1) + stores))
                )
            else:
                built.append(LitmusOp(kind, var))
        threads.append(tuple(built))
    return LitmusProgram(name=name, threads=tuple(threads), num_vars=num_vars)


def _classics() -> List[LitmusProgram]:
    """Hand-picked shapes that probe each model's distinguishing rule."""
    st, fl, fence = (
        lambda v: (KIND_STORE, v),
        lambda v: (KIND_FLUSH, v),
        (KIND_FENCE, 0),
    )
    return [
        # The recoverable-publish idiom: data then flag, each fenced.
        _materialize(
            "classic_publish",
            [[st(0), fl(0), fence, st(1), fl(1), fence]],
            num_vars=2,
        ),
        # A flush whose fence never retires stays reorderable.
        _materialize("classic_unfenced", [[st(0), fl(0)]], num_vars=1),
        # Same-line version chain: two unfenced flushes of one line.
        _materialize(
            "classic_chain", [[st(0), fl(0), st(0), fl(0)]], num_vars=1
        ),
        # Ownership migrates between flushes; the second core's fence
        # commits the newer version and must absorb the older one.
        _materialize(
            "classic_cross_core",
            [[st(0), fl(0)], [st(0), fl(0), fence]],
            num_vars=1,
        ),
        # Two epochs on one core, nothing committed at the end: ADR
        # commits epoch 1, epoch persistency only orders it.
        _materialize(
            "classic_epochs",
            [[st(0), fl(0), fence, st(1), fl(1)]],
            num_vars=2,
        ),
        # No flushes at all: the dirty-line writeback uncertainty.
        _materialize("classic_dirty", [[st(0)], [st(1)]], num_vars=2),
    ]


def generate_programs(
    threads: int = 2,
    max_ops: int = 4,
    num_vars: int = 2,
    limit: int = 48,
) -> List[LitmusProgram]:
    """The litmus corpus: curated classics plus a deterministic,
    evenly-strided slice of the systematic program space.

    The systematic space is every assignment of the ``2*num_vars + 1``
    op alphabet (store/flush per variable, fence) to ``threads *
    max_ops`` slots; indices are decoded base-alphabet, so a given
    ``(threads, max_ops, num_vars, limit)`` always yields the same
    corpus — no RNG anywhere.
    """
    if threads <= 0 or max_ops <= 0:
        raise ConfigError("threads and max_ops must be positive")
    if num_vars > 4:
        raise ConfigError(
            "litmus programs use at most 4 variables (one line each, "
            "sized to never evict from the tiny machine's L1)"
        )
    programs = [p for p in _classics() if p.num_threads <= max(threads, 2)]
    alphabet: List[Tuple[str, int]] = (
        [(KIND_STORE, v) for v in range(num_vars)]
        + [(KIND_FLUSH, v) for v in range(num_vars)]
        + [(KIND_FENCE, 0)]
    )
    base = len(alphabet)
    slots = threads * max_ops
    total = base**slots
    remaining = max(0, limit - len(programs))
    if not remaining:
        return programs[:limit]
    picks = sorted({(k * total) // remaining for k in range(remaining)})
    for idx in picks:
        digits = []
        x = idx
        for _ in range(slots):
            digits.append(x % base)
            x //= base
        kinds = [
            [alphabet[d] for d in digits[t * max_ops : (t + 1) * max_ops]]
            for t in range(threads)
        ]
        programs.append(
            _materialize(
                f"gen_t{threads}_o{max_ops}_v{num_vars}_{idx}",
                kinds,
                num_vars,
            )
        )
    return programs


# ----------------------------------------------------------------------
# simulator side: run one program, enumerate its reachable images
# ----------------------------------------------------------------------


def _litmus_config(model: str, num_threads: int) -> MachineConfig:
    return (
        tiny_machine(num_cores=max(2, num_threads))
        .with_timing("functional")
        .with_model(model)
    )


def _thread_gen(
    cid: int,
    ops: Sequence[LitmusOp],
    addrs: Sequence[int],
    trace: List[TraceEntry],
) -> Iterator[Op]:
    for op in ops:
        trace.append((cid, op.kind, op.var, op.value))
        if op.kind == KIND_STORE:
            yield Store(addrs[op.var], op.value)
        elif op.kind == KIND_FLUSH:
            yield Flush(addrs[op.var])
        else:
            yield Fence()


@dataclass
class LitmusRun:
    """One program executed under one model."""

    program: LitmusProgram
    model: str
    #: Global op order the scheduler produced (input to the spec).
    trace: List[TraceEntry]
    #: Reachable image set from the enumerator, projected to the
    #: program's variables.
    sim_images: FrozenSet[ImageKey]
    num_events: int


def run_program(program: LitmusProgram, model: str) -> LitmusRun:
    """Execute ``program`` under ``model`` on a full tiny machine and
    exhaustively enumerate the crash-state space at completion."""
    config = _litmus_config(model, program.num_threads)
    machine = Machine(config)
    regions = [
        machine.alloc(f"x{v}", ELEMS_PER_LINE) for v in range(program.num_vars)
    ]
    addrs = [r.base for r in regions]
    trace: List[TraceEntry] = []
    gens = [
        _thread_gen(cid, ops, addrs, trace)
        for cid, ops in enumerate(program.threads)
    ]
    machine.run(gens)

    # The spec assumes nothing but program flushes moved data to the
    # MC; the tiny machine's L1 holds all (<= 4) variable lines, so any
    # eviction/cleaner traffic means the harness assumptions broke.
    by_cause = machine.stats.writes_by_cause
    hw = sum(by_cause.get(c, 0) for c in ("eviction", "cleaner", "drain"))
    if hw:
        raise SimulationError(
            f"litmus program {program.name!r} triggered {hw} hardware "
            f"writebacks; the trace-level spec would be unsound"
        )

    space = machine.crash_state_space()
    if space.num_events > MAX_EVENTS:
        raise ConfigError(
            f"litmus program {program.name!r} produced "
            f"{space.num_events} persist events (> {MAX_EVENTS}); "
            f"shrink the program — the cross-check must be exhaustive"
        )
    images = enumerate_images(
        space,
        EnumerationPlan(
            max_exhaustive_events=MAX_EVENTS, max_images=1 << MAX_EVENTS
        ),
    )
    keys = frozenset(
        tuple(img.image.get(addr, 0.0) for addr in addrs) for img in images
    )
    return LitmusRun(
        program=program,
        model=model,
        trace=trace,
        sim_images=keys,
        num_events=space.num_events,
    )


# ----------------------------------------------------------------------
# declarative specs: allowed image sets, straight from the trace
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SpecEvent:
    """A potentially-lost persist in the spec's vocabulary."""

    eid: int
    var: int
    value: float
    #: Issuing core for flush events, None for crash-time dirty lines.
    core: Optional[int]
    #: Issuing core's epoch at the flush (epoch spec only).
    epoch: int = 0


def _downward_closed_images(
    floor: List[float],
    events: List[_SpecEvent],
    requires: "Any",
) -> FrozenSet[ImageKey]:
    """All images from downward-closed event subsets.

    ``requires(a, b)`` is the persist-order constraint: if ``b`` is in
    an image's event set, ``a`` must be too.  Event count is bounded by
    MAX_EVENTS, so plain bitmask enumeration is exact and cheap.
    """
    if len(events) > MAX_EVENTS:
        raise ConfigError(
            f"spec-side event count {len(events)} exceeds {MAX_EVENTS}"
        )
    n = len(events)
    keys = set()
    for mask in range(1 << n):
        ok = True
        for j in range(n):
            if not mask >> j & 1:
                continue
            for i in range(n):
                if i != j and requires(events[i], events[j]) and not (
                    mask >> i & 1
                ):
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        image = list(floor)
        for j in range(n):  # eid order == list order: newest wins
            if mask >> j & 1:
                image[events[j].var] = events[j].value
        keys.add(tuple(image))
    return frozenset(keys)


def _spec_adr(program: LitmusProgram, trace: List[TraceEntry]) -> FrozenSet[ImageKey]:
    """ADR: flush creates a reorderable persist; the issuing core's
    fence makes its accepted flushes durable (committing a newer
    version of a line also retires older pending versions of it);
    dirty lines may persist at any moment; same-line versions chain."""
    nvars = program.num_vars
    arch = [0.0] * nvars
    dirty = [False] * nvars
    floor = [0.0] * nvars
    pending: List[_SpecEvent] = []
    eid = 0
    for cid, kind, var, value in trace:
        if kind == KIND_STORE:
            arch[var] = value
            dirty[var] = True
        elif kind == KIND_FLUSH:
            if dirty[var]:
                pending.append(_SpecEvent(eid, var, arch[var], cid))
                eid += 1
                dirty[var] = False
        else:  # fence
            committed = [ev for ev in pending if ev.core == cid]
            if not committed:
                continue
            newest: Dict[int, int] = {}
            for ev in committed:
                floor[ev.var] = ev.value  # eid order: newest wins
                newest[ev.var] = ev.eid
            committed_ids = {ev.eid for ev in committed}
            pending = [
                ev
                for ev in pending
                if ev.eid not in committed_ids
                and ev.eid > newest.get(ev.var, -1)
            ]
    events = list(pending)
    for var in range(nvars):
        if dirty[var]:
            events.append(_SpecEvent(eid, var, arch[var], None))
            eid += 1

    def requires(a: _SpecEvent, b: _SpecEvent) -> bool:
        return a.var == b.var and a.eid < b.eid

    return _downward_closed_images(floor, events, requires)


def _spec_eadr(program: LitmusProgram, trace: List[TraceEntry]) -> FrozenSet[ImageKey]:
    """eADR / strict: every store is durable the instant it executes,
    so the one reachable image is the final architectural state."""
    arch = [0.0] * program.num_vars
    for _cid, kind, var, value in trace:
        if kind == KIND_STORE:
            arch[var] = value
    return frozenset({tuple(arch)})


def _spec_epoch(program: LitmusProgram, trace: List[TraceEntry]) -> FrozenSet[ImageKey]:
    """Epoch persistency: fences delimit per-core epochs and *order*
    flush persists (epoch N+1 only after all of epoch N) but commit
    nothing; dirty lines stay hardware-reorderable."""
    nvars = program.num_vars
    arch = [0.0] * nvars
    dirty = [False] * nvars
    pending: List[_SpecEvent] = []
    core_epoch: Dict[int, int] = {}
    eid = 0
    for cid, kind, var, value in trace:
        if kind == KIND_STORE:
            arch[var] = value
            dirty[var] = True
        elif kind == KIND_FLUSH:
            if dirty[var]:
                pending.append(
                    _SpecEvent(
                        eid, var, arch[var], cid, core_epoch.get(cid, 0)
                    )
                )
                eid += 1
                dirty[var] = False
        else:  # fence: close the epoch, commit nothing
            core_epoch[cid] = core_epoch.get(cid, 0) + 1
    events = list(pending)
    for var in range(nvars):
        if dirty[var]:
            events.append(_SpecEvent(eid, var, arch[var], None))
            eid += 1

    def requires(a: _SpecEvent, b: _SpecEvent) -> bool:
        if a.var == b.var and a.eid < b.eid:
            return True
        return (
            a.core is not None
            and a.core == b.core
            and a.epoch < b.epoch
        )

    return _downward_closed_images([0.0] * nvars, events, requires)


#: Declarative spec registry, keyed by the ``spec`` field of
#: :class:`~repro.sim.model.PersistencyModel`.  ``strict`` shares
#: eADR's crash semantics (stores are never lost); they differ only in
#: traffic/timing, which litmus does not judge.
_SPECS = {
    "adr": _spec_adr,
    "eadr": _spec_eadr,
    "strict": _spec_eadr,
    "epoch": _spec_epoch,
}


def spec_images(
    program: LitmusProgram, spec: str, trace: List[TraceEntry]
) -> FrozenSet[ImageKey]:
    """The crash images ``spec`` allows for ``program`` under the
    recorded execution order ``trace``."""
    try:
        fn = _SPECS[spec]
    except KeyError:
        raise ConfigError(
            f"no litmus spec named {spec!r}; "
            f"available: {', '.join(sorted(_SPECS))}"
        ) from None
    return fn(program, trace)


# ----------------------------------------------------------------------
# cross-check, shrinking, reports
# ----------------------------------------------------------------------


@dataclass
class LitmusResult:
    """Spec-vs-enumerator comparison for one program under one model."""

    run: LitmusRun
    spec: str
    spec_set: FrozenSet[ImageKey]

    @property
    def program(self) -> LitmusProgram:
        return self.run.program

    @property
    def model(self) -> str:
        return self.run.model

    @property
    def ok(self) -> bool:
        return self.run.sim_images == self.spec_set

    @property
    def missing(self) -> List[ImageKey]:
        """Spec-allowed images the enumerator failed to produce."""
        return sorted(self.spec_set - self.run.sim_images)

    @property
    def extra(self) -> List[ImageKey]:
        """Enumerator images the spec forbids."""
        return sorted(self.run.sim_images - self.spec_set)


def check_program(program: LitmusProgram, model: str) -> LitmusResult:
    """Run one program under ``model`` and compare the enumerator's
    reachable-image set with the model's declarative spec."""
    spec = get_model(model).spec
    run = run_program(program, model)
    return LitmusResult(
        run=run, spec=spec, spec_set=spec_images(program, spec, run.trace)
    )


def shrink_program(program: LitmusProgram, model: str) -> LitmusProgram:
    """Greedily remove ops while the spec/enumerator divergence
    persists; returns the smallest diverging program reached."""
    current = program
    shrunk = True
    while shrunk:
        shrunk = False
        for t in range(current.num_threads):
            for i in range(len(current.threads[t])):
                threads = [list(ops) for ops in current.threads]
                del threads[t][i]
                candidate = LitmusProgram(
                    name=current.name,
                    threads=tuple(tuple(ops) for ops in threads),
                    num_vars=current.num_vars,
                )
                try:
                    if not check_program(candidate, model).ok:
                        current = candidate
                        shrunk = True
                        break
                except (ConfigError, SimulationError):
                    continue
            if shrunk:
                break
    return current


@dataclass(frozen=True)
class DivergenceReport:
    """A spec/enumerator divergence, shrunk and JSON-replayable."""

    model: str
    spec: str
    program: Dict[str, Any]
    shrunk: Dict[str, Any]
    #: Images the spec allows but the enumerator missed (shrunk program).
    missing: List[List[float]]
    #: Images the enumerator produced but the spec forbids.
    extra: List[List[float]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "spec": self.spec,
            "program": self.program,
            "shrunk": self.shrunk,
            "missing": self.missing,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DivergenceReport":
        return cls(
            model=str(d["model"]),
            spec=str(d["spec"]),
            program=dict(d["program"]),
            shrunk=dict(d["shrunk"]),
            missing=[list(map(float, k)) for k in d["missing"]],
            extra=[list(map(float, k)) for k in d["extra"]],
        )


def divergence_report(result: LitmusResult) -> DivergenceReport:
    """Shrink a diverging result and package it for replay."""
    small = shrink_program(result.program, result.model)
    small_result = check_program(small, result.model)
    return DivergenceReport(
        model=result.model,
        spec=result.spec,
        program=result.program.to_dict(),
        shrunk=small.to_dict(),
        missing=[list(k) for k in small_result.missing],
        extra=[list(k) for k in small_result.extra],
    )


def replay_divergence(report: DivergenceReport) -> LitmusResult:
    """Re-run a report's shrunk program under its model; a faithful
    report replays to a still-diverging result."""
    return check_program(
        LitmusProgram.from_dict(report.shrunk), report.model
    )


@dataclass
class ModelVerdict:
    """Corpus-level outcome for one model."""

    model: str
    #: The model is a deliberately-broken variant: divergence expected.
    broken: bool
    programs_checked: int
    divergent: int
    reports: List[DivergenceReport] = field(default_factory=list)
    #: Reachable images enumerated across the corpus (deduplicated per
    #: program by the enumerator).
    images_checked: int = 0
    #: Per-program coverage points: (num_events, images, divergent).
    program_points: List[Tuple[int, int, bool]] = field(default_factory=list)
    #: Corpus wall clock (run + enumerate + spec + shrink).
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Sound models must never diverge; broken ones must."""
        return self.divergent > 0 if self.broken else self.divergent == 0

    def coverage(self) -> Any:
        """This corpus's :class:`~repro.obs.coverage.CoverageStats`.

        Imported lazily so the verification layer never hard-depends
        on the observability package.
        """
        from repro.obs.coverage import coverage_of_litmus

        return coverage_of_litmus(self)


def check_model(
    model: str,
    programs: Sequence[LitmusProgram],
    max_reports: int = 8,
    journal: Optional[Any] = None,
) -> ModelVerdict:
    """Cross-check every program under ``model``; shrink and collect up
    to ``max_reports`` divergences.

    ``journal`` is any sink with ``emit(kind, **fields)`` (a
    :class:`repro.obs.journal.TelemetryJournal`); when given, one
    ``litmus_program`` event streams out per cross-checked program.
    """
    m = get_model(model)
    if not m.enumerable:
        raise ConfigError(
            f"model {m.name!r} does not support crash-state "
            f"enumeration; litmus cannot cross-check it"
        )
    started = time.perf_counter()
    verdict = ModelVerdict(
        model=m.name, broken=m.broken, programs_checked=0, divergent=0
    )
    for program in programs:
        result = check_program(program, m.name)
        verdict.programs_checked += 1
        images = len(result.run.sim_images)
        verdict.images_checked += images
        verdict.program_points.append(
            (result.run.num_events, images, not result.ok)
        )
        if journal is not None:
            journal.emit(
                "litmus_program",
                model=m.name,
                program=program.name,
                num_events=result.run.num_events,
                images=images,
                divergent=not result.ok,
            )
        if not result.ok:
            verdict.divergent += 1
            if len(verdict.reports) < max_reports:
                verdict.reports.append(divergence_report(result))
    verdict.wall_s = time.perf_counter() - started
    return verdict
