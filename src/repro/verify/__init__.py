"""Crash-state enumeration and checking (``repro.verify``).

The simulator's plain crash path exposes the single NVMM image its
schedule produced.  This package checks recovery against *every*
reachable image instead: :mod:`repro.sim.persist` records the
persist-order constraint graph during the run, :mod:`repro.verify.graph`
enumerates its order ideals (each one a reachable image),
:mod:`repro.verify.enumerate` materializes and deduplicates the images,
and :mod:`repro.verify.checker` runs recovery on each and shrinks any
failure to a minimal replayable counterexample.

:mod:`repro.verify.litmus` closes the loop on the enumerator itself:
generated store/flush/fence litmus programs are run under every
pluggable persistency model (:mod:`repro.sim.model`) and the
enumerator's reachable-image set is cross-checked against a
declarative per-model spec, with shrunk JSON-replayable divergence
reports.
"""

from repro.verify.checker import (
    Counterexample,
    CrashCheckReport,
    CrashPointReport,
    check_crash_point,
    check_variant,
    describe_plan,
    minimize_failure,
    plan_from_dict,
    plan_to_dict,
    replay_counterexample,
)
from repro.verify.enumerate import (
    EnumeratedImage,
    EnumerationPlan,
    enumerate_images,
    enumeration_bound,
)
from repro.verify.graph import (
    count_ideals,
    is_ideal,
    iter_ideals,
    sample_ideals,
    topo_order,
)
from repro.verify.litmus import (
    DivergenceReport,
    LitmusOp,
    LitmusProgram,
    LitmusResult,
    ModelVerdict,
    check_model,
    check_program,
    generate_programs,
    replay_divergence,
    shrink_program,
    spec_images,
)

__all__ = [
    "Counterexample",
    "CrashCheckReport",
    "CrashPointReport",
    "check_crash_point",
    "check_variant",
    "describe_plan",
    "minimize_failure",
    "plan_from_dict",
    "plan_to_dict",
    "replay_counterexample",
    "EnumeratedImage",
    "EnumerationPlan",
    "enumerate_images",
    "enumeration_bound",
    "count_ideals",
    "is_ideal",
    "iter_ideals",
    "sample_ideals",
    "topo_order",
    "DivergenceReport",
    "LitmusOp",
    "LitmusProgram",
    "LitmusResult",
    "ModelVerdict",
    "check_model",
    "check_program",
    "generate_programs",
    "replay_divergence",
    "shrink_program",
    "spec_images",
]
