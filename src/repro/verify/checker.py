"""The crash-state checker: recovery must succeed on *every* image.

For one (workload, variant, crash point) the checker

1. runs the variant to the crash point and snapshots the reachable
   image space (:func:`repro.sim.crash.run_to_crash_space`);
2. enumerates candidate images (:mod:`repro.verify.enumerate`) —
   exhaustively below the frontier, seeded-sampled above it;
3. for each image builds the post-crash machine, rebinds the workload,
   runs the variant's recovery threads, and verifies the final output
   exactly;
4. on failure, shrinks the failing event set to a minimal order ideal
   (greedy removal of maximal events while the failure persists) and
   reports a replayable :class:`Counterexample`.

The old single-image path (:mod:`repro.analysis.crashlab`) checks one
schedule; this checker covers the whole reorderable space, which is
what catches missing-fence bugs the simulator's synchronous flush
acceptance otherwise hides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import MachineConfig
from repro.sim.crash import CrashPlan, run_to_crash_space
from repro.sim.machine import Machine
from repro.sim.persist import CrashStateSpace
from repro.verify.enumerate import (
    EnumerationPlan,
    enumerate_images,
    enumeration_bound,
)
from repro.verify.graph import is_ideal
from repro.workloads.base import Workload


def plan_to_dict(plan: CrashPlan) -> Dict[str, float]:
    """The one set trigger of a CrashPlan, as a serializable dict."""
    out: Dict[str, float] = {}
    for key in ("at_op", "at_cycle", "at_mark", "at_flush"):
        value = getattr(plan, key)
        if value is not None:
            out[key] = value
    return out


def plan_from_dict(d: Dict[str, float]) -> CrashPlan:
    """Inverse of :func:`plan_to_dict`."""
    kwargs: Dict[str, float] = dict(d)
    if "at_cycle" in kwargs:
        kwargs["at_cycle"] = float(kwargs["at_cycle"])
    return CrashPlan(
        **{k: (v if k == "at_cycle" else int(v)) for k, v in kwargs.items()}
    )


def describe_plan(plan: CrashPlan) -> str:
    return ",".join(f"{k[3:]}={v}" for k, v in plan_to_dict(plan).items())


@dataclass(frozen=True)
class Counterexample:
    """A reachable NVMM image on which recovery produced wrong output.

    Replayable from the fields alone: rebuild the same (workload,
    config, variant, crash point) run, snapshot the space, and apply
    ``minimized_eids`` — see :func:`replay_counterexample`.
    """

    workload: str
    variant: str
    #: The crash trigger, as ``plan_to_dict`` of the CrashPlan.
    crash: Dict[str, float]
    #: Enumeration seed (meaningful in sampled mode; recorded always).
    seed: int
    #: The failing order ideal as first found.
    eids: Sequence[int]
    #: Smallest failing ideal the shrinker reached.
    minimized_eids: Sequence[int]
    #: The minimized image itself, for offline inspection.
    image: Dict[int, float]

    def crash_plan(self) -> CrashPlan:
        return plan_from_dict(self.crash)

    def describe(self) -> str:
        return (
            f"{self.workload}/{self.variant} "
            f"crash@{describe_plan(self.crash_plan())}: "
            f"recovery failed on image with events "
            f"{sorted(self.minimized_eids)} "
            f"(shrunk from {len(self.eids)}; replay seed {self.seed})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "variant": self.variant,
            "crash": dict(self.crash),
            "seed": self.seed,
            "eids": list(self.eids),
            "minimized_eids": list(self.minimized_eids),
            "image": {str(a): v for a, v in self.image.items()},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Counterexample":
        return cls(
            workload=d["workload"],
            variant=d["variant"],
            crash=dict(d["crash"]),
            seed=int(d["seed"]),
            eids=tuple(int(e) for e in d["eids"]),
            minimized_eids=tuple(int(e) for e in d["minimized_eids"]),
            image={int(a): float(v) for a, v in d["image"].items()},
        )


@dataclass
class CrashPointReport:
    """Checker outcome at one crash point."""

    crash: Dict[str, float]
    crashed: bool
    num_events: int = 0
    num_edges: int = 0
    images_checked: int = 0
    exhaustive: bool = True
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: Candidate ideals the enumeration plan generated (before image
    #: dedup); ``images_checked <= bound``.
    bound: int = 0
    #: Images on which recovery produced wrong output (every failing
    #: image counts, including ones containing an already-shrunk
    #: failure that is not reported again).
    images_diverged: int = 0
    #: Events dropped by counterexample shrinking at this point, summed.
    shrink_steps: int = 0
    #: Wall clock of the whole point check (run + enumerate + recover).
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    @property
    def images_recovered(self) -> int:
        return self.images_checked - self.images_diverged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "crash": dict(self.crash),
            "crashed": self.crashed,
            "num_events": self.num_events,
            "num_edges": self.num_edges,
            "images_checked": self.images_checked,
            "exhaustive": self.exhaustive,
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "bound": self.bound,
            "images_diverged": self.images_diverged,
            "shrink_steps": self.shrink_steps,
            "wall_s": round(self.wall_s, 6),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CrashPointReport":
        # Coverage fields default for records written before they
        # existed (pre-coverage cache entries are invalidated by
        # code_version anyway; saved counterexample files are not).
        return cls(
            crash=dict(d["crash"]),
            crashed=bool(d["crashed"]),
            num_events=int(d["num_events"]),
            num_edges=int(d["num_edges"]),
            images_checked=int(d["images_checked"]),
            exhaustive=bool(d["exhaustive"]),
            counterexamples=[
                Counterexample.from_dict(c) for c in d["counterexamples"]
            ],
            bound=int(d.get("bound", 0)),
            images_diverged=int(d.get("images_diverged", 0)),
            shrink_steps=int(d.get("shrink_steps", 0)),
            wall_s=float(d.get("wall_s", 0.0)),
        )


@dataclass
class CrashCheckReport:
    """Checker outcome for one (workload, variant) across crash points."""

    workload: str
    variant: str
    points: List[CrashPointReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points)

    @property
    def images_checked(self) -> int:
        return sum(p.images_checked for p in self.points)

    @property
    def max_events(self) -> int:
        return max((p.num_events for p in self.points), default=0)

    @property
    def images_diverged(self) -> int:
        return sum(p.images_diverged for p in self.points)

    @property
    def wall_s(self) -> float:
        return sum(p.wall_s for p in self.points)

    @property
    def counterexamples(self) -> List[Counterexample]:
        return [c for p in self.points for c in p.counterexamples]

    def coverage(self) -> Any:
        """This campaign's :class:`~repro.obs.coverage.CoverageStats`.

        Imported lazily: the verification layer stays importable (and
        cache-key stable) without the observability package loaded.
        """
        from repro.obs.coverage import coverage_of_crashcheck

        return coverage_of_crashcheck(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "variant": self.variant,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CrashCheckReport":
        return cls(
            workload=d["workload"],
            variant=d["variant"],
            points=[CrashPointReport.from_dict(p) for p in d["points"]],
        )


# ----------------------------------------------------------------------
# core checking machinery
# ----------------------------------------------------------------------


def _recovery_fails(
    crashed_machine: Machine,
    workload: Workload,
    variant: str,
    image: Dict[int, float],
    num_threads: int,
    engine: str,
    replay: bool = True,
) -> bool:
    """True when recovery on ``image`` yields wrong final output.

    By default recovery runs on a **replay machine** (cache-free
    architectural semantics, functional timing): the verdict depends
    only on the values recovery computes, and caches are
    architecturally transparent, so replay is exact for this question
    while skipping the coherence walk that otherwise dominates campaign
    wall-clock.  ``replay=False`` restores the full-machine recovery
    run (equivalence tests and benchmarks use it).
    """
    post = crashed_machine.after_crash_with_image(image, replay=replay)
    rebound = workload.bind(
        post, num_threads=num_threads, engine=engine, create=False
    )
    post.run(rebound.recovery_threads_for(variant))
    return not rebound.verify()


def minimize_failure(
    space: CrashStateSpace,
    failing: FrozenSet[int],
    fails: Callable[[FrozenSet[int]], bool],
) -> FrozenSet[int]:
    """Shrink a failing event set to a minimal failing order ideal.

    Greedy: repeatedly try dropping one maximal event (one with no
    chosen successor, so the remainder stays downward-closed); keep any
    drop that still fails.  The result is 1-minimal — removing any
    single further event either breaks the ideal property or makes
    recovery succeed.
    """
    nodes = [ev.eid for ev in space.events]
    current = set(failing)
    shrinking = True
    while shrinking:
        shrinking = False
        # Highest ids first: same-line chains shed newest versions first.
        for eid in sorted(current, reverse=True):
            candidate = current - {eid}
            if not is_ideal(candidate, nodes, space.edges):
                continue
            if fails(frozenset(candidate)):
                current = candidate
                shrinking = True
                break
    return frozenset(current)


def check_crash_point(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    crash: CrashPlan,
    plan: EnumerationPlan,
    num_threads: int = 2,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
    timing: Optional[str] = None,
    replay: bool = True,
) -> CrashPointReport:
    """Run ``variant`` to the ``crash`` trigger, enumerate every
    reachable image, and check recovery against each.

    ``timing`` overrides the config's timing model for the crash-point
    run (the run that defines the reachable-image space); ``replay``
    selects the fast cache-free machine for per-image recovery runs
    (see :func:`_recovery_fails`).
    """
    started = time.perf_counter()
    if timing is not None:
        config = config.with_timing(timing)
    crash_key = plan_to_dict(crash)
    machine = Machine(config)
    if cleaner_period is not None:
        machine.cleaner = PeriodicCleaner(cleaner_period)
    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    result, space = run_to_crash_space(machine, bound.threads(variant), crash)
    if space is None:
        # Finished before the trigger: a graceful end must still verify.
        report = CrashPointReport(crash=crash_key, crashed=False)
        if not bound.verify():
            report.counterexamples.append(
                Counterexample(
                    workload=workload.name,
                    variant=variant,
                    crash=crash_key,
                    seed=plan.seed,
                    eids=(),
                    minimized_eids=(),
                    image={},
                )
            )
        report.wall_s = time.perf_counter() - started
        return report

    report = CrashPointReport(
        crash=crash_key,
        crashed=True,
        num_events=space.num_events,
        num_edges=len(space.edges),
        exhaustive=plan.is_exhaustive_for(space),
        bound=enumeration_bound(space, plan),
    )

    def fails(eids: FrozenSet[int]) -> bool:
        return _recovery_fails(
            machine,
            workload,
            variant,
            space.image_for(eids),
            num_threads,
            engine,
            replay=replay,
        )

    known: List[FrozenSet[int]] = []
    for candidate in enumerate_images(space, plan):
        report.images_checked += 1
        if not fails(candidate.eids):
            continue
        report.images_diverged += 1
        if any(k <= candidate.eids for k in known):
            # An already-reported minimal failure is contained in this
            # image: same root cause, don't shrink or report it again.
            continue
        minimized = minimize_failure(space, candidate.eids, fails)
        known.append(frozenset(minimized))
        report.shrink_steps += len(candidate.eids) - len(minimized)
        report.counterexamples.append(
            Counterexample(
                workload=workload.name,
                variant=variant,
                crash=crash_key,
                seed=plan.seed,
                eids=tuple(sorted(candidate.eids)),
                minimized_eids=tuple(sorted(minimized)),
                image=space.image_for(minimized),
            )
        )
    report.wall_s = time.perf_counter() - started
    return report


def check_variant(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    crash_plans: Sequence[CrashPlan],
    plan: EnumerationPlan,
    num_threads: int = 2,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
    stop_on_failure: bool = False,
    timing: Optional[str] = None,
    replay: bool = True,
    journal: Optional[Any] = None,
) -> CrashCheckReport:
    """Check one variant at each crash point; see
    :func:`check_crash_point`.

    ``journal`` is any sink with ``emit(kind, **fields)`` (a
    :class:`repro.obs.journal.TelemetryJournal`); when given, the
    checker emits one ``campaign_point`` event per finished crash point
    and one ``counterexample`` event per shrunk failure — the streaming
    feed behind ``repro crashcheck --progress`` and ``repro watch``.
    """
    report = CrashCheckReport(workload=workload.name, variant=variant)
    label = f"{workload.name}/{variant}"
    for crash in crash_plans:
        point = check_crash_point(
            workload,
            config,
            variant,
            crash,
            plan,
            num_threads=num_threads,
            engine=engine,
            cleaner_period=cleaner_period,
            timing=timing,
            replay=replay,
        )
        report.points.append(point)
        if journal is not None:
            journal.emit(
                "campaign_point",
                label=label,
                crash=describe_plan(plan_from_dict(point.crash)),
                crashed=point.crashed,
                num_events=point.num_events,
                images_checked=point.images_checked,
                images_diverged=point.images_diverged,
                bound=point.bound,
                exhaustive=point.exhaustive,
                counterexamples=len(point.counterexamples),
                shrink_steps=point.shrink_steps,
                wall_s=round(point.wall_s, 6),
            )
            for cex in point.counterexamples:
                journal.emit(
                    "counterexample",
                    label=label,
                    description=cex.describe(),
                    crash=dict(cex.crash),
                )
        if stop_on_failure and not point.ok:
            break
    return report


def replay_counterexample(
    workload: Workload,
    config: MachineConfig,
    counterexample: Counterexample,
    num_threads: int = 2,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
    timing: Optional[str] = None,
) -> bool:
    """Re-run a counterexample from its replay fields.

    Returns True when the failure reproduces (recovery on the minimized
    image is still wrong).  Deterministic: the run, the snapshot, and
    the event ids all reproduce from (workload, config, crash point) —
    ``timing`` must therefore match the timing model the counterexample
    was found under (it changes multicore interleaving and hence the
    space's event ids).
    """
    if timing is not None:
        config = config.with_timing(timing)
    machine = Machine(config)
    if cleaner_period is not None:
        machine.cleaner = PeriodicCleaner(cleaner_period)
    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    _, space = run_to_crash_space(
        machine,
        bound.threads(counterexample.variant),
        counterexample.crash_plan(),
    )
    if space is None:
        return False
    image = space.image_for(counterexample.minimized_eids)
    return _recovery_fails(
        machine,
        workload,
        counterexample.variant,
        image,
        num_threads,
        engine,
    )
