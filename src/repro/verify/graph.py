"""Order-ideal enumeration over persist-order constraint graphs.

A crash's reachable NVMM images are the *downward-closed* subsets
(order ideals) of the persist-order DAG recorded by
:mod:`repro.sim.persist`: an event (a potentially-durable write) can
only be in an image if every event it depends on is too.  The number
of order ideals of a poset equals its number of antichains, which is
what the property tests cross-check by brute force.

Two traversal modes:

* :func:`iter_ideals` — exhaustive, deterministic (lexicographic in
  event order).  Exponential in the worst case; callers bound it by
  event count or a yield cap.
* :func:`sample_ideals` — seeded-random ideals with deterministic
  replay: the same ``(nodes, edges, seed)`` always produces the same
  sequence, so any sampled failure is replayable from its seed.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import ConfigError

Edge = Tuple[int, int]


def _direct_preds(
    nodes: Sequence[int], edges: Iterable[Edge]
) -> Dict[int, Set[int]]:
    """pred map: node -> nodes that must be present for it to be."""
    node_set = set(nodes)
    if len(node_set) != len(list(nodes)):
        raise ConfigError("duplicate node ids in persist graph")
    preds: Dict[int, Set[int]] = {n: set() for n in nodes}
    for before, after in edges:
        if before not in node_set or after not in node_set:
            raise ConfigError(
                f"edge ({before}, {after}) references unknown node"
            )
        preds[after].add(before)
    return preds


def topo_order(nodes: Sequence[int], edges: Iterable[Edge]) -> List[int]:
    """Deterministic topological order (stable: falls back to id order).

    Raises ConfigError on a cycle — persist order must be a DAG.
    """
    preds = _direct_preds(nodes, edges)
    remaining: Dict[int, Set[int]] = {n: set(p) for n, p in preds.items()}
    succs: Dict[int, List[int]] = {n: [] for n in nodes}
    for before, after in edges:
        succs[before].append(after)
    ready = sorted(n for n, p in remaining.items() if not p)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        newly = []
        for nxt in succs[node]:
            remaining[nxt].discard(node)
            if not remaining[nxt]:
                newly.append(nxt)
        if newly:
            ready = sorted(ready + newly)
    if len(order) != len(list(nodes)):
        raise ConfigError("persist-order graph has a cycle")
    return order


def is_ideal(
    subset: Iterable[int], nodes: Sequence[int], edges: Iterable[Edge]
) -> bool:
    """True if ``subset`` is downward-closed under ``edges``."""
    chosen = set(subset)
    return all(before in chosen for before, after in edges if after in chosen)


def iter_ideals(
    nodes: Sequence[int], edges: Iterable[Edge]
) -> Iterator[FrozenSet[int]]:
    """Yield every order ideal, deterministically.

    The empty ideal comes first and the full set last; between them the
    order is the binary-counter order over the topological sequence
    (exclude branches before include branches).
    """
    order = topo_order(nodes, edges)
    preds = _direct_preds(nodes, edges)
    chosen: Set[int] = set()

    def rec(i: int) -> Iterator[FrozenSet[int]]:
        if i == len(order):
            yield frozenset(chosen)
            return
        node = order[i]
        yield from rec(i + 1)
        if preds[node] <= chosen:
            chosen.add(node)
            yield from rec(i + 1)
            chosen.remove(node)

    yield from rec(0)


def count_ideals(nodes: Sequence[int], edges: Iterable[Edge]) -> int:
    """Number of order ideals (== number of antichains) of the DAG.

    Computed by the same traversal as :func:`iter_ideals` without
    materializing the sets.
    """
    order = topo_order(nodes, edges)
    preds = _direct_preds(nodes, edges)
    chosen: Set[int] = set()

    def rec(i: int) -> int:
        if i == len(order):
            return 1
        node = order[i]
        total = rec(i + 1)
        if preds[node] <= chosen:
            chosen.add(node)
            total += rec(i + 1)
            chosen.remove(node)
        return total

    return rec(0)


def sample_ideals(
    nodes: Sequence[int],
    edges: Iterable[Edge],
    seed: int,
    count: int,
    include_prob: float = 0.5,
) -> List[FrozenSet[int]]:
    """``count`` seeded-random order ideals, deduplicated, replayable.

    Sweeps the topological order including each eligible node with
    probability ``include_prob``; a node whose predecessors were
    excluded is skipped (closure by construction).  Identical
    ``(nodes, edges, seed, count)`` inputs return identical output —
    counterexamples reference only the seed to replay.
    """
    if count < 0:
        raise ConfigError(f"sample count must be >= 0, got {count}")
    order = topo_order(nodes, edges)
    preds = _direct_preds(nodes, edges)
    rng = random.Random(seed)
    out: List[FrozenSet[int]] = []
    seen: Set[FrozenSet[int]] = set()
    # 4x oversampling bounds the draw loop when dedup discards many.
    for _ in range(4 * count):
        if len(out) >= count:
            break
        chosen: Set[int] = set()
        for node in order:
            if preds[node] <= chosen and rng.random() < include_prob:
                chosen.add(node)
        ideal = frozenset(chosen)
        if ideal not in seen:
            seen.add(ideal)
            out.append(ideal)
    return out
