"""Reachable NVMM image enumeration for a :class:`CrashStateSpace`.

Wraps the generic order-ideal machinery of :mod:`repro.verify.graph`
with the policy the checker needs:

* **exhaustive** below a configurable frontier (``num_events <=
  max_exhaustive_events``): every order ideal, hence every reachable
  image;
* **sampled** above it: seeded-random ideals with deterministic
  replay, always augmented with the three distinguished ideals —
  the floor (nothing extra persisted), the full set (everything
  persisted), and the simulator's own schedule — so the sampled mode
  never misses the cases the old single-image path covered.

Images are deduplicated by content: distinct ideals can collide on the
same address->value map (e.g. a dirty line whose value never changed),
and checking a duplicate image buys nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.errors import ConfigError
from repro.sim.persist import CrashStateSpace
from repro.verify.graph import count_ideals, iter_ideals, sample_ideals


@dataclass(frozen=True)
class EnumeratedImage:
    """One candidate post-crash NVMM image and the event set behind it."""

    eids: FrozenSet[int]
    image: Dict[int, float]

    def key(self) -> Tuple[Tuple[int, float], ...]:
        return tuple(sorted(self.image.items()))


@dataclass(frozen=True)
class EnumerationPlan:
    """Bounds for image enumeration.

    ``max_exhaustive_events`` is the frontier: at or below it every
    order ideal is generated; above it ``samples`` seeded ideals are
    drawn with ``seed`` (plus the floor/full/schedule ideals, always).
    ``max_images`` hard-caps the exhaustive yield as a safety valve
    for pathological graphs.
    """

    max_exhaustive_events: int = 12
    samples: int = 64
    seed: int = 0
    max_images: int = 65536

    def __post_init__(self) -> None:
        if self.max_exhaustive_events < 0:
            raise ConfigError("max_exhaustive_events must be >= 0")
        if self.samples < 1:
            raise ConfigError("samples must be >= 1")
        if self.max_images < 1:
            raise ConfigError("max_images must be >= 1")

    def is_exhaustive_for(self, space: CrashStateSpace) -> bool:
        return space.num_events <= self.max_exhaustive_events


def _ideal_stream(
    space: CrashStateSpace, plan: EnumerationPlan
) -> Iterator[FrozenSet[int]]:
    nodes = [ev.eid for ev in space.events]
    if plan.is_exhaustive_for(space):
        count = 0
        for ideal in iter_ideals(nodes, space.edges):
            yield ideal
            count += 1
            if count >= plan.max_images:
                break
        return
    # Sampled mode: distinguished ideals first so they always survive
    # the sample budget, then the seeded draws.
    yield frozenset()
    yield frozenset(nodes)
    yield frozenset(space.schedule_eids())
    for ideal in sample_ideals(nodes, space.edges, plan.seed, plan.samples):
        yield ideal


def enumeration_bound(space: CrashStateSpace, plan: EnumerationPlan) -> int:
    """How many candidate ideals :func:`enumerate_images` will consider.

    Exhaustive mode: the exact order-ideal count of the constraint
    graph, capped by ``max_images`` — the space's true reachable-image
    bound (before content dedup).  Sampled mode: the sample budget plus
    the three distinguished ideals.  Coverage accounting compares
    ``images_checked`` (deduplicated) against this bound.
    """
    if plan.is_exhaustive_for(space):
        nodes = [ev.eid for ev in space.events]
        return min(count_ideals(nodes, space.edges), plan.max_images)
    return plan.samples + 3


def enumerate_images(
    space: CrashStateSpace, plan: EnumerationPlan
) -> List[EnumeratedImage]:
    """All candidate images for ``space`` under ``plan``, deduplicated
    by image content (first event set producing each image wins)."""
    out: List[EnumeratedImage] = []
    seen: Set[Tuple[Tuple[int, float], ...]] = set()
    for ideal in _ideal_stream(space, plan):
        candidate = EnumeratedImage(eids=ideal, image=space.image_for(ideal))
        key = candidate.key()
        if key not in seen:
            seen.add(key)
            out.append(candidate)
    return out
