"""Observability for the simulator: probe bus, metrics, traces, reports.

The paper's claims are all timing/write-count claims, and diagnosing
*why* one persistency scheme beats another needs visibility into the
persist pipeline over time — when fence stalls cluster, how the MC
write queue fills, what the cleaner is doing.  This package adds that
visibility without touching the simulator's hot path:

* :mod:`repro.obs.events` / :mod:`repro.obs.bus` — the **probe bus**:
  typed probe events and a fan-out bus observers subscribe to.
* :mod:`repro.obs.taps` — ``attach_probes``/``detach_probes``/
  ``probed``: install per-instance taps on a built
  :class:`~repro.sim.machine.Machine`.  Nothing in ``repro.sim``
  branches on observability; an untapped machine runs byte-identical
  code (zero overhead when disabled).
* :mod:`repro.obs.intervals` — :class:`IntervalSampler`: rolls probe
  events into a per-N-cycles time series (stall cycles by cause, NVMM
  writes by cause, per-core IPC, MC queue depth, ...), dumpable as
  JSON/CSV and surfaced on
  :class:`~repro.analysis.experiments.ExperimentResult`.
* :mod:`repro.obs.recorder` / :mod:`repro.obs.perfetto` —
  :class:`TraceRecorder` and a Chrome-trace/Perfetto exporter whose
  output loads directly in ``ui.perfetto.dev``.
* :mod:`repro.obs.report` — :class:`RunReport`: a run manifest
  (config hash, code version, seed, timing model, wall clock) plus
  headline metrics, consumed by ``repro report``.
* :mod:`repro.obs.profile` — attribution profiling:
  :class:`WriteHeatmap` (per-line/per-region NVMM write counts, wear
  and coalescing, ``repro heatmap``) and :class:`StallFlame`
  (provenance x cause stall rollups in collapsed-stack format,
  ``repro flame``).
* :mod:`repro.obs.baseline` — the regression sentinel: committed
  baselines with noise bands under ``benchmarks/baselines/``, gated
  by ``repro regress`` in CI.
* :mod:`repro.obs.streamobs` — the same observer surface **derived in
  batch** from a pre-decoded op stream (``derive_sampler`` /
  ``derive_heatmap`` / ``derive_flame`` / ``derive_recorder``),
  bit-reconciled against a probed replay run — observability for the
  100x fast path without per-event callbacks.
* :mod:`repro.obs.dashboard` — ``render_dashboard``: run reports,
  harness telemetry, and verification coverage as one self-contained
  HTML page (``repro dashboard``).
* :mod:`repro.obs.coverage` — :class:`CoverageStats`: how much of the
  crash-state space a crashcheck/litmus campaign actually checked
  (per-epoch exhaustive/sampled split, recovered vs diverged images,
  shrink effort, images/sec), built from the verify layer's reports.
* :mod:`repro.obs.journal` — :class:`TelemetryJournal`: an append-only
  JSONL event stream ``run_jobs``, crashcheck, and litmus write
  incrementally, with torn-line-tolerant tailing (``repro watch``).

See ``docs/observability.md`` for the probe-bus contract, the trace
schema, and the coverage/journal vocabularies.
"""

from repro.obs.baseline import (
    Baseline,
    BaselineStore,
    RegressionReport,
    compare_case,
    measure_case,
)
from repro.obs.bus import ProbeBus, ProbeObserver
from repro.obs.coverage import (
    CoverageStats,
    EpochCoverage,
    coverage_of_campaign,
    coverage_of_crashcheck,
    coverage_of_litmus,
    load_coverage_docs,
)
from repro.obs.events import (
    CleanerPass,
    HazardHit,
    MemEvent,
    NvmmRead,
    OpExecuted,
    ProbeEvent,
    StallCharged,
    WritebackAccepted,
)
from repro.obs.dashboard import render_dashboard
from repro.obs.intervals import IntervalSampler
from repro.obs.journal import (
    TelemetryJournal,
    journal_summary,
    read_journal,
    tail_journal,
    watch_once,
)
from repro.obs.perfetto import to_chrome_trace, write_chrome_trace
from repro.obs.profile import (
    StallFlame,
    WriteHeatmap,
    render_flame,
    render_heatmap,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.report import RunReport, render_reports
from repro.obs.streamobs import (
    derive_flame,
    derive_heatmap,
    derive_recorder,
    derive_sampler,
)
from repro.obs.taps import attach_probes, detach_probes, probed

__all__ = [
    "ProbeBus",
    "ProbeObserver",
    "ProbeEvent",
    "OpExecuted",
    "MemEvent",
    "StallCharged",
    "HazardHit",
    "WritebackAccepted",
    "NvmmRead",
    "CleanerPass",
    "IntervalSampler",
    "TraceRecorder",
    "to_chrome_trace",
    "write_chrome_trace",
    "RunReport",
    "render_reports",
    "WriteHeatmap",
    "StallFlame",
    "render_heatmap",
    "render_flame",
    "Baseline",
    "BaselineStore",
    "RegressionReport",
    "measure_case",
    "compare_case",
    "attach_probes",
    "detach_probes",
    "probed",
    "derive_sampler",
    "derive_heatmap",
    "derive_flame",
    "derive_recorder",
    "render_dashboard",
    "CoverageStats",
    "EpochCoverage",
    "coverage_of_campaign",
    "coverage_of_crashcheck",
    "coverage_of_litmus",
    "load_coverage_docs",
    "TelemetryJournal",
    "journal_summary",
    "read_journal",
    "tail_journal",
    "watch_once",
]
