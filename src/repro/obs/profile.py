"""Attribution profiling: write heatmaps and stall flamegraphs.

The aggregate counters answer *how much* a variant wrote and stalled;
this module answers *where* and *why*.  Two probe-bus observers:

* :class:`WriteHeatmap` folds every ``WritebackAccepted`` event into
  per-cache-line write counts, maps lines back onto the workload's
  named data structures through the machine's allocator (captured at
  attach time), and derives coalescing efficiency (stores per NVMM
  write), wear distribution (max/mean line writes, top-k hot lines)
  and per-region totals.  Heatmap totals reconcile *exactly* with
  ``MachineStats.writes_per_line`` / ``writes_by_cause`` — both sides
  count the same ``MC.accept_write_timed`` calls.

* :class:`StallFlame` rolls the ledger's stall charges up by
  ``provenance x cause``.  Workloads opted into provenance tagging
  (``bound.provenance = True``) emit free :class:`~repro.sim.isa.Phase`
  frame ops; the observer maintains one frame stack per core and
  charges each ``StallCharged`` (and each positive MC write-queue
  delay) to the innermost open frame.  ``collapsed()`` emits the
  folded-stack text format that speedscope and inferno's
  ``flamegraph.pl`` load directly.  Per-cause totals are accumulated
  chronologically alongside the stacks, in the same order and from the
  same values as the :class:`~repro.sim.ledger.LatencyLedger`, so they
  reconcile bit-exactly with ``stall_cycles/<cause>``.

Both observers are passive (they never mutate the run) and cost
nothing unless attached; renderers live at the bottom of the module.
"""

from __future__ import annotations

import bisect
import io
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.bus import ProbeObserver
from repro.obs.events import OpExecuted, StallCharged, WritebackAccepted
from repro.sim.address import LINE_BYTES, Region, line_of
from repro.sim.isa import Flush, FlushWB, Phase, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine

#: Region label for writebacks outside any allocator region (should
#: not happen for workload traffic; kept as an explicit bucket so a
#: mapping bug shows up as a named anomaly, not a KeyError).
UNMAPPED = "(unmapped)"

#: Flame frame for MC queue delays not attributable to any core.
MEM_FRAME = "(mem)"


class WriteHeatmap(ProbeObserver):
    """Per-line and per-region NVMM write attribution.

    Subscribe via ``probed(machine, [heatmap])`` (or the ``observers``
    argument of ``run_variant``); the observer captures the machine's
    address-region map in ``on_attach`` and then counts every
    writeback plus every Store/Flush op it can see, giving each data
    structure a wear and coalescing profile.
    """

    def __init__(self) -> None:
        #: line -> cause -> writes accepted at the MC.
        self._line_writes: Dict[int, Dict[str, int]] = {}
        #: line -> stores issued (coalescing numerator).
        self._line_stores: Dict[int, int] = {}
        #: line -> flush/flushwb ops issued.
        self._line_flushes: Dict[int, int] = {}
        self._region_bases: List[int] = []
        self._regions: List[Region] = []

    # -- probe channels ----------------------------------------------------

    def on_attach(self, machine: "Machine") -> None:
        """Capture the allocator's region map (called by attach_probes)."""
        regions = sorted(
            machine.allocator.regions.values(), key=lambda r: r.base
        )
        self._region_bases = [r.base for r in regions]
        self._regions = regions

    def on_op(self, ev: OpExecuted) -> None:
        op = ev.op
        op_type = type(op)
        if op_type is Store:
            line = line_of(op.addr)
            self._line_stores[line] = self._line_stores.get(line, 0) + 1
        elif op_type is Flush or op_type is FlushWB:
            line = line_of(op.addr)
            self._line_flushes[line] = self._line_flushes.get(line, 0) + 1

    def on_writeback(self, ev: WritebackAccepted) -> None:
        per_cause = self._line_writes.setdefault(ev.line_addr, {})
        per_cause[ev.cause] = per_cause.get(ev.cause, 0) + 1

    # -- aggregation -------------------------------------------------------

    def line_totals(self) -> Dict[int, int]:
        """Total writes per line — reconciles with ``writes_per_line``."""
        return {
            line: sum(by_cause.values())
            for line, by_cause in self._line_writes.items()
        }

    def totals_by_cause(self) -> Dict[str, int]:
        """Writes per cause — reconciles with ``writes_by_cause``."""
        out: Dict[str, int] = {}
        for by_cause in self._line_writes.values():
            for cause, count in by_cause.items():
                out[cause] = out.get(cause, 0) + count
        return out

    @property
    def total_writes(self) -> int:
        """All writes seen — reconciles with ``nvmm_writes``."""
        return sum(
            count
            for by_cause in self._line_writes.values()
            for count in by_cause.values()
        )

    def region_name(self, addr: int) -> str:
        """Name of the allocator region containing ``addr``."""
        index = bisect.bisect_right(self._region_bases, addr) - 1
        if index >= 0 and addr < self._regions[index].end:
            return self._regions[index].name
        return UNMAPPED

    def hot_lines(self, k: int = 10) -> List[Tuple[int, int, str]]:
        """Top-``k`` most-written lines as ``(line, writes, region)``."""
        totals = self.line_totals()
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            (line, writes, self.region_name(line))
            for line, writes in ranked[:k]
        ]

    def region_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-region rollup: wear and coalescing in one dict.

        ``stores_per_write`` is the coalescing efficiency — how many
        8-byte stores each accepted line write absorbed (higher is
        better; eager flushing pushes it toward 1 store/write on
        freshly flushed lines).
        """
        out: Dict[str, Dict[str, object]] = {}
        touched: Dict[str, List[int]] = {}
        for line, total in self.line_totals().items():
            touched.setdefault(self.region_name(line), []).append(total)
        causes: Dict[str, Dict[str, int]] = {}
        for line, by_cause in self._line_writes.items():
            bucket = causes.setdefault(self.region_name(line), {})
            for cause, count in by_cause.items():
                bucket[cause] = bucket.get(cause, 0) + count
        stores: Dict[str, int] = {}
        for line, count in self._line_stores.items():
            name = self.region_name(line)
            stores[name] = stores.get(name, 0) + count
        flushes: Dict[str, int] = {}
        for line, count in self._line_flushes.items():
            name = self.region_name(line)
            flushes[name] = flushes.get(name, 0) + count

        names = set(touched) | set(stores) | set(flushes)
        for name in sorted(names):
            counts = touched.get(name, [])
            writes = sum(counts)
            region = next(
                (r for r in self._regions if r.name == name), None
            )
            region_lines = (
                len(range(line_of(region.base), region.end, LINE_BYTES))
                if region is not None
                else 0
            )
            out[name] = {
                "writes": writes,
                "writes_by_cause": dict(sorted(causes.get(name, {}).items())),
                "lines_touched": len(counts),
                "region_lines": region_lines,
                "max_line_writes": max(counts) if counts else 0,
                "mean_line_writes": (
                    writes / len(counts) if counts else 0.0
                ),
                "stores": stores.get(name, 0),
                "flushes": flushes.get(name, 0),
                "stores_per_write": (
                    stores.get(name, 0) / writes if writes else 0.0
                ),
            }
        return out

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe document: totals, regions, and the full line map."""
        return {
            "total_writes": self.total_writes,
            "writes_by_cause": dict(sorted(self.totals_by_cause().items())),
            "regions": self.region_summary(),
            "hot_lines": [
                {"line": line, "writes": writes, "region": region}
                for line, writes, region in self.hot_lines(k=20)
            ],
            "lines": {
                str(line): dict(sorted(by_cause.items()))
                for line, by_cause in sorted(self._line_writes.items())
            },
        }

    def csv(self) -> str:
        """Per-line CSV: ``line,region,writes,stores,flushes``."""
        buf = io.StringIO()
        buf.write("line,region,writes,stores,flushes\n")
        lines = (
            set(self.line_totals())
            | set(self._line_stores)
            | set(self._line_flushes)
        )
        totals = self.line_totals()
        for line in sorted(lines):
            buf.write(
                f"{line},{self.region_name(line)},{totals.get(line, 0)},"
                f"{self._line_stores.get(line, 0)},"
                f"{self._line_flushes.get(line, 0)}\n"
            )
        return buf.getvalue()


class StallFlame(ProbeObserver):
    """Stall cycles attributed ``provenance x cause``, flamegraph-ready.

    ``root`` (typically ``"<workload>/<variant>"``) becomes the common
    bottom frame.  Each core contributes a ``core<i>`` frame, then the
    workload's open :class:`~repro.sim.isa.Phase` frames, then the
    ledger cause as the leaf.  Runs without provenance tagging still
    produce a valid (two-level) flamegraph — per-core per-cause.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root
        #: stack tuple -> (stall cycles, events).
        self._cycles: Dict[Tuple[str, ...], float] = {}
        self._events: Dict[Tuple[str, ...], int] = {}
        #: Per-cause totals accumulated chronologically — bit-exact
        #: against the ledger (same order, same addends).
        self._by_cause: Dict[str, float] = {}
        self._stacks: Dict[int, List[str]] = {}

    # -- probe channels ----------------------------------------------------

    def on_op(self, ev: OpExecuted) -> None:
        op = ev.op
        if type(op) is not Phase:
            return
        stack = self._stacks.setdefault(ev.core_id, [])
        if op.label is not None:
            stack.append(op.label)
        elif stack:
            stack.pop()

    def on_stall(self, ev: StallCharged) -> None:
        self._charge(
            self._frames(ev.core_id, ev.cause), ev.cause, ev.cycles
        )

    def on_writeback(self, ev: WritebackAccepted) -> None:
        # Mirrors LatencyLedger.queue_delay: one charge per accepted
        # write, skipped when non-positive (the ledger's guard).
        if ev.queue_delay <= 0:
            return
        self._charge(
            self._frames(ev.core_id, "mc_write_queue"),
            "mc_write_queue",
            ev.queue_delay,
        )

    # -- accumulation ------------------------------------------------------

    def _frames(
        self, core_id: Optional[int], cause: str
    ) -> Tuple[str, ...]:
        frames: List[str] = [] if self.root is None else [self.root]
        if core_id is None:
            frames.append(MEM_FRAME)
        else:
            frames.append(f"core{core_id}")
            frames.extend(self._stacks.get(core_id, ()))
        frames.append(cause)
        return tuple(frames)

    def _charge(
        self, key: Tuple[str, ...], cause: str, cycles: float
    ) -> None:
        self._cycles[key] = self._cycles.get(key, 0.0) + cycles
        self._events[key] = self._events.get(key, 0) + 1
        self._by_cause[cause] = self._by_cause.get(cause, 0.0) + cycles

    # -- aggregation -------------------------------------------------------

    def totals_by_cause(self) -> Dict[str, float]:
        """Stall cycles per cause — bit-exact vs ``stall_cycles/*``."""
        return dict(self._by_cause)

    @property
    def total_stall_cycles(self) -> float:
        return sum(self._by_cause.values())

    def stacks(self) -> Dict[Tuple[str, ...], float]:
        """The raw ``stack tuple -> cycles`` map (leaf frame = cause)."""
        return dict(self._cycles)

    # -- export ------------------------------------------------------------

    def collapsed(self) -> str:
        """Folded-stack text: ``frame;frame;cause <cycles>`` per line.

        The format speedscope auto-detects and ``flamegraph.pl`` /
        inferno consume.  Weights must be integers, so cycles are
        rounded; stacks rounding to zero are dropped.
        """
        lines = []
        for key in sorted(self._cycles):
            weight = int(round(self._cycles[key]))
            if weight <= 0:
                continue
            lines.append(";".join(key) + f" {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe document: per-stack and per-cause totals."""
        return {
            "root": self.root,
            "total_stall_cycles": self.total_stall_cycles,
            "by_cause": dict(sorted(self._by_cause.items())),
            "stacks": [
                {
                    "frames": list(key),
                    "cycles": self._cycles[key],
                    "events": self._events[key],
                }
                for key in sorted(self._cycles)
            ],
        }


# ----------------------------------------------------------------------
# text renderers (CLI: repro heatmap / repro flame)
# ----------------------------------------------------------------------


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1, int(round(width * value / peak)))


def render_heatmap(
    heatmap: WriteHeatmap,
    base: Optional[WriteHeatmap] = None,
    top: int = 10,
    title: str = "Write heatmap",
) -> str:
    """Region table + hot-line bars; ``base`` adds amplification.

    ``base`` is the same workload's non-persistent run: the per-region
    ``amp`` column is then this run's writes over the base's — Fig. 13's
    write amplification, explainable region by region.
    """
    from repro.analysis.reporting import format_table

    base_regions = base.region_summary() if base is not None else {}
    headers = [
        "region", "writes", "lines", "max/line", "stores/write",
    ]
    if base is not None:
        headers.append("amp vs base")
    rows: List[List[object]] = []
    for name, info in heatmap.region_summary().items():
        row: List[object] = [
            name,
            info["writes"],
            f"{info['lines_touched']}/{info['region_lines']}",
            info["max_line_writes"],
            f"{info['stores_per_write']:.2f}",
        ]
        if base is not None:
            base_writes = base_regions.get(name, {}).get("writes", 0)
            writes = info["writes"]
            if not isinstance(base_writes, int) or base_writes == 0:
                row.append("-" if not writes else "inf")
            else:
                assert isinstance(writes, int)
                row.append(f"x{writes / base_writes:.2f}")
        rows.append(row)
    out = [format_table(headers, rows, title=title)]

    hot = heatmap.hot_lines(k=top)
    if hot:
        peak = hot[0][1]
        out.append("\nhot lines (writes):")
        for line, writes, region in hot:
            out.append(
                f"  {line:#010x}  {writes:>6}  {_bar(writes, peak)}  {region}"
            )
    out.append(f"\ntotal NVMM writes: {heatmap.total_writes}")
    if base is not None:
        base_total = base.total_writes
        if base_total:
            out.append(
                f"write amplification vs base: "
                f"x{heatmap.total_writes / base_total:.3f}"
            )
    return "\n".join(out)


def render_flame(flame: StallFlame, top: int = 15) -> str:
    """Top stall stacks as a text table (full data via collapsed())."""
    from repro.analysis.reporting import format_table

    total = flame.total_stall_cycles
    stacks = sorted(
        flame.stacks().items(), key=lambda kv: (-kv[1], kv[0])
    )
    rows: List[List[object]] = []
    for key, cycles in stacks[:top]:
        share = f"{100.0 * cycles / total:.1f}%" if total else "-"
        rows.append([";".join(key), f"{cycles:.1f}", share])
    table = format_table(
        ["stack (innermost = cause)", "stall cycles", "share"],
        rows,
        title="Stall attribution",
    )
    return (
        table
        + f"\ntotal attributed stall cycles: {total:.1f}"
        + (
            f"  ({len(stacks)} stacks, top {top} shown)"
            if len(stacks) > top
            else ""
        )
    )
