"""Streaming telemetry journal (``repro.obs.journal``).

``repro sweep --telemetry-out`` writes one document at exit; a farm (or
a human watching a nightly campaign) needs the same facts *while the
run is still going*.  The journal is that substrate: an append-only
JSONL file that ``run_jobs``, crashcheck campaigns, and the litmus
harness write incrementally — one self-contained JSON object per line,
flushed per event — and that ``repro watch`` tails to re-render the
live dashboard.

Design constraints, in order:

* **Crash-tolerant writes.**  Every emit opens the file in append
  mode, writes exactly one ``\\n``-terminated line, and closes it.  On
  POSIX an ``O_APPEND`` write of one short line is atomic enough that
  concurrent pool workers never interleave mid-line; at worst a dying
  writer leaves one torn final line.
* **Torn-tolerant reads.**  :func:`tail_journal` consumes only
  complete (newline-terminated) lines and silently skips lines that do
  not parse, so a reader racing a writer sees a consistent prefix and
  picks the remainder up on the next poll.
* **No clocks of its own.**  Events carry whatever timing their
  emitters measured (span offsets, per-point wall seconds); the
  journal adds only a per-writer sequence number.  Rendering a journal
  twice therefore yields byte-identical dashboards.

Event vocabulary (the ``kind`` field):

``job_span``
    One :func:`~repro.analysis.runner.run_jobs` job finished (cache
    hits included) — the span dict plus the batch's worker count.
``batch``
    One ``run_jobs`` batch finished: summary counters and a cache
    snapshot.
``campaign_point``
    The checker finished one crash point: event/image counts, the
    frontier decision, divergence and wall clock.
``counterexample``
    The checker shrank and recorded a counterexample.
``litmus_program``
    The litmus harness cross-checked one program under one model.

:func:`journal_summary` folds any event list into the documents the
dashboard renders (a telemetry doc plus per-campaign coverage docs),
mid-stream or complete.
"""

from __future__ import annotations

import io
import json
import os
import sys
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.obs.coverage import CoverageStats

#: Bumped when the journal line layout changes.
JOURNAL_FORMAT_VERSION = 1


class TelemetryJournal:
    """Append-only JSONL event sink, with optional stderr progress ticks.

    ``path=None`` keeps the journal purely in memory (``events``), which
    is how ``--progress`` works without a journal file.  An instance is
    cheap; writers across processes may each hold one for the same path
    (sequence numbers are per-writer, ordering is the file's).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        progress: bool = False,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.path = path
        self.progress = progress
        self.stream = stream
        self.events: List[Dict[str, Any]] = []
        self._seq = 0

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the event dict."""
        event: Dict[str, Any] = {
            "v": JOURNAL_FORMAT_VERSION,
            "seq": self._seq,
            "kind": kind,
        }
        event.update(fields)
        self._seq += 1
        self.events.append(event)
        if self.path is not None:
            line = json.dumps(event, sort_keys=True, separators=(",", ":"))
            with open(self.path, "a") as fh:
                fh.write(line + "\n")
        if self.progress:
            tick = describe_event(event)
            if tick:
                print(tick, file=self.stream or sys.stderr, flush=True)
        return event


def describe_event(event: Dict[str, Any]) -> Optional[str]:
    """One human progress line for an event, or None for silent kinds."""
    kind = event.get("kind")
    if kind == "campaign_point":
        mode = "exhaustive" if event.get("exhaustive") else "sampled"
        diverged = int(event.get("images_diverged", 0) or 0)
        bad = f", {diverged} DIVERGED" if diverged else ""
        return (
            f"[coverage] {event.get('label')} crash@{event.get('crash')}: "
            f"{event.get('images_checked')} images "
            f"(events={event.get('num_events')}, {mode}"
            f"{bad}) in {float(event.get('wall_s', 0.0)):.2f}s"
        )
    if kind == "counterexample":
        return f"[counterexample] {event.get('description')}"
    if kind == "litmus_program":
        state = "DIVERGED" if event.get("divergent") else "ok"
        return (
            f"[litmus] {event.get('model')} {event.get('program')}: "
            f"{event.get('images')} images "
            f"(events={event.get('num_events')}) {state}"
        )
    if kind == "job_span":
        return (
            f"[job] {event.get('label')} {event.get('status')} "
            f"{float(event.get('wall_s', 0.0)):.2f}s"
        )
    if kind == "batch":
        return (
            f"[batch] {event.get('jobs')} jobs, "
            f"{event.get('hits')} cache hits, "
            f"{float(event.get('wall_clock_s', 0.0)):.2f}s"
        )
    return None


# ----------------------------------------------------------------------
# torn-tolerant readers
# ----------------------------------------------------------------------


def tail_journal(
    path: str, offset: int = 0
) -> Tuple[List[Dict[str, Any]], int]:
    """Events appended since byte ``offset``, plus the new offset.

    Consumes only complete lines: a final line without its trailing
    newline (a writer mid-append, or a crash mid-write) is left for the
    next call — the returned offset never advances past it.  Complete
    lines that fail to parse (a torn write that *did* get its newline,
    or garbage) are skipped, not fatal.  A missing file reads as empty.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            buf = fh.read()
    except FileNotFoundError:
        return [], offset
    events: List[Dict[str, Any]] = []
    consumed = 0
    for raw in io.BytesIO(buf):
        if not raw.endswith(b"\n"):
            break  # torn tail: leave it for the next poll
        consumed += len(raw)
        try:
            event = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(event, dict):
            events.append(event)
    return events, offset + consumed


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Every parseable event in the journal (torn tail skipped)."""
    events, _ = tail_journal(path, 0)
    return events


# ----------------------------------------------------------------------
# folding a journal into dashboard documents
# ----------------------------------------------------------------------


def journal_summary(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold journal events into the documents the dashboard renders.

    Returns ``{"telemetry": doc | None, "coverage": [docs],
    "counterexamples": [str], "events": n}``.  Works on any prefix of a
    journal, so a mid-campaign ``repro watch`` render shows exactly the
    coverage accumulated so far; the accumulator is
    :meth:`CoverageStats.add_point`, the same one the report-side
    builders use, so the final fold reconciles with the campaign's own
    coverage document.
    """
    from repro.analysis.runner import RunTelemetry

    spans: List[Dict[str, Any]] = []
    workers = 1
    wall_clock_s = 0.0
    cache: Optional[Dict[str, Any]] = None
    campaigns: Dict[str, CoverageStats] = {}
    counterexamples: List[str] = []

    for event in events:
        kind = event.get("kind")
        if kind == "job_span":
            spans.append(
                {
                    key: event[key]
                    for key in ("label", "status", "start_s", "end_s", "wall_s")
                    if key in event
                }
            )
            workers = max(workers, int(event.get("workers", 1) or 1))
        elif kind == "batch":
            workers = max(workers, int(event.get("workers", 1) or 1))
            wall_clock_s += float(event.get("wall_clock_s", 0.0) or 0.0)
            if event.get("cache") is not None:
                cache = dict(event["cache"])
        elif kind == "campaign_point":
            label = str(event.get("label", "?"))
            stats = campaigns.setdefault(
                label,
                CoverageStats(
                    label=label, kind=str(event.get("campaign", "crashcheck"))
                ),
            )
            stats.add_point(
                num_events=int(event.get("num_events", 0) or 0),
                images_checked=int(event.get("images_checked", 0) or 0),
                images_diverged=int(event.get("images_diverged", 0) or 0),
                bound=int(event.get("bound", 0) or 0),
                exhaustive=bool(event.get("exhaustive", True)),
                crashed=bool(event.get("crashed", True)),
                wall_s=float(event.get("wall_s", 0.0) or 0.0),
                counterexamples=int(event.get("counterexamples", 0) or 0),
                shrink_steps=int(event.get("shrink_steps", 0) or 0),
            )
        elif kind == "litmus_program":
            label = str(event.get("model", "?"))
            stats = campaigns.setdefault(
                label, CoverageStats(label=label, kind="litmus")
            )
            divergent = bool(event.get("divergent", False))
            images = int(event.get("images", 0) or 0)
            stats.add_point(
                num_events=int(event.get("num_events", 0) or 0),
                images_checked=images,
                images_diverged=images if divergent else 0,
                bound=images,
                exhaustive=True,
                crashed=True,
                counterexamples=1 if divergent else 0,
            )
        elif kind == "counterexample":
            counterexamples.append(str(event.get("description", "")))

    telemetry: Optional[Dict[str, Any]] = None
    if spans or wall_clock_s or cache is not None:
        collected = RunTelemetry(
            workers=workers,
            wall_clock_s=wall_clock_s,
            spans=spans,
            cache=cache,
        )
        telemetry = collected.to_dict()

    return {
        "telemetry": telemetry,
        "coverage": [
            campaigns[label].to_dict() for label in sorted(campaigns)
        ],
        "counterexamples": counterexamples,
        "events": len(events),
    }


def watch_once(journal_path: str, out_path: str) -> int:
    """One ``repro watch`` poll: re-read the journal, re-render, rewrite.

    Renders the full journal state (not just the delta) so the output
    HTML is always a consistent snapshot, and writes it atomically
    (temp file + rename) so a browser refreshing mid-write never sees a
    torn page.  Returns the number of events rendered.  A journal with
    no renderable events yet yields a placeholder page rather than an
    error — a watcher typically starts before the writer.
    """
    from repro.obs.dashboard import render_dashboard

    events = read_journal(journal_path)
    summary = journal_summary(events)
    if summary["telemetry"] is None and not summary["coverage"]:
        page = (
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            "<title>repro watch</title></head><body>"
            "<p>waiting for journal events "
            f"({len(events)} so far)&hellip;</p></body></html>"
        )
    else:
        page = render_dashboard(
            [],
            telemetry=summary["telemetry"],
            coverage=summary["coverage"],
        )
    tmp = out_path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(page)
    os.replace(tmp, out_path)
    return len(events)
