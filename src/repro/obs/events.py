"""Probe-event vocabulary published on the :class:`~repro.obs.bus.ProbeBus`.

Each event names one observable fact about a run, stamped with the
cycle it happened at.  Two layers feed the bus:

* the **semantics layer**: one :class:`OpExecuted` per ISA op a core
  retires (the machine-level successor of the old generator-wrapping
  :func:`repro.sim.trace.traced` path), and one :class:`MemEvent` per
  :mod:`repro.sim.events` ``MemoryEvent`` the op narrated to its
  timing view;
* the **timing/accounting layer**: :class:`StallCharged` and
  :class:`HazardHit` mirror exactly the
  :class:`~repro.sim.ledger.LatencyLedger` charges,
  :class:`WritebackAccepted` / :class:`NvmmRead` mirror the memory
  controller's persistence-point traffic, and :class:`CleanerPass`
  fires once per periodic-cleaner pass.

Mirroring is exact by construction — the taps publish from the same
call, with the same operands, as the counter they shadow — which is
what lets ``tests/obs/test_reconcile.py`` demand that event counts sum
*exactly* to the corresponding :class:`~repro.sim.stats.MachineStats`
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.sim.events import MemoryEvent
from repro.sim.isa import Op


@dataclass
class OpExecuted:
    """One ISA op retired on a core.

    ``start``/``end`` are the core's clock before and after the op, so
    ``end - start`` is the op's issue-visible duration (stalls
    included).  ``result`` is the value the machine sent back to the
    workload generator (the loaded value for ``Load``, else ``None``).
    Scheduler-level ``Barrier`` ops never reach a core and are not
    published.
    """

    core_id: int
    op: Op
    result: Optional[float]
    start: float
    end: float


@dataclass
class MemEvent:
    """One :mod:`repro.sim.events` memory event, as presented to the
    core's timing view at ``cycle``."""

    core_id: int
    cycle: float
    event: MemoryEvent


@dataclass
class StallCharged:
    """The timing model charged a front-end stall to ``cause``.

    ``start`` is the clock when the stall began (the core resumes at
    ``start + cycles``); ``lost_slots`` is the issue-slot loss the
    ledger folded into the legacy FUI counter.
    """

    core_id: int
    cause: str
    start: float
    cycles: float
    lost_slots: int


@dataclass
class HazardHit:
    """An op hit a structural hazard (no cycles charged at this point).

    ``cause`` is the ledger's cause name (``mshr_full``,
    ``store_buffer_full``, ``load_pressure``, ...); ``legacy`` is the
    Table VI counter it bumped (``mshr_full_events`` etc., see
    :data:`repro.sim.ledger.EVENT_CAUSES`).
    """

    core_id: int
    cause: str
    legacy: str
    cycle: float


@dataclass
class WritebackAccepted:
    """The MC accepted one dirty line into the persistence domain.

    One event per ``MachineStats.nvmm_writes`` increment, exactly.
    ``queue_delay`` is the backpressure the write felt before
    acceptance (the ledger's ``mc_write_queue`` attribution);
    ``queue_depth`` samples the write-queue occupancy just after
    acceptance; ``volatility`` is the dirty-to-durable window when the
    line's dirty time was known (else ``None``).
    """

    line_addr: int
    cause: str
    core_id: Optional[int]
    issued: float
    accept_time: float
    durable_time: float
    queue_delay: float
    queue_depth: int
    volatility: Optional[float]


@dataclass
class NvmmRead:
    """The MC issued one NVMM line read (an L2 miss fill)."""

    line_addr: int
    issued: float
    data_ready: float


@dataclass
class CleanerPass:
    """The periodic cleaner ran one cleanup pass."""

    cycle: float
    lines_written: int


ProbeEvent = Union[
    OpExecuted,
    MemEvent,
    StallCharged,
    HazardHit,
    WritebackAccepted,
    NvmmRead,
    CleanerPass,
]
