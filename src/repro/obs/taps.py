"""Event taps: plug a :class:`~repro.obs.bus.ProbeBus` into a machine.

``attach_probes`` installs *per-instance* wrappers on exactly the
places the simulator already narrates what it is doing:

========================  =============================================
tap point                 events published
========================  =============================================
``Core.execute``          :class:`~repro.obs.events.OpExecuted`
``CoreTiming.on_event``   :class:`~repro.obs.events.MemEvent`
``LatencyLedger.event``   :class:`~repro.obs.events.HazardHit`
``LatencyLedger.stall``   :class:`~repro.obs.events.StallCharged`
``MC.accept_write_timed`` :class:`~repro.obs.events.WritebackAccepted`
``MC.read``               :class:`~repro.obs.events.NvmmRead`
``Cleaner.maybe_clean``   :class:`~repro.obs.events.CleanerPass`
========================  =============================================

The wrappers are plain instance attributes shadowing the class
methods, so:

* **zero overhead when disabled** — an untapped machine executes the
  class methods directly; no op handler, timing view, ledger, or MC
  method gains a branch, a flag check, or an indirection
  (``benchmarks/bench_obs_overhead.py`` pins the bound, and
  ``tests/obs`` asserts no instance-level overrides survive a plain
  run);
* **per-machine scope** — tapping one machine never affects another;
* **exact mirroring** — each tap publishes from the same call, with
  the same operands, as the stats counter it shadows, which is what
  makes event counts reconcile exactly with
  :class:`~repro.sim.stats.MachineStats`.

Channels nobody subscribed to are not tapped at all (``ProbeBus.wants``).

Replay machines (``Machine(_replay=True)``) may be tapped too: a
probed replay machine takes the general scheduling loop instead of the
inlined ``_run_replay`` fast path (the two interleave identically), so
every op still crosses ``Core.execute``.  That probed replay run is
the reconciliation reference the stream-derived observers in
:mod:`repro.obs.streamobs` are pinned against.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.obs.bus import ProbeBus, ProbeObserver
from repro.obs.events import (
    CleanerPass,
    HazardHit,
    MemEvent,
    NvmmRead,
    OpExecuted,
    StallCharged,
    WritebackAccepted,
)
from repro.sim.ledger import EVENT_CAUSES
from repro.sim.machine import Machine

#: Attribute the active tap session is parked under on the machine.
_SESSION_ATTR = "_probe_session"


class _ProbeSession:
    """Bookkeeping for one attach: which instance attrs to remove."""

    def __init__(self, bus: ProbeBus) -> None:
        self.bus = bus
        self.installed: List[Tuple[object, str]] = []

    def install(self, obj: object, name: str, wrapper: object) -> None:
        setattr(obj, name, wrapper)
        self.installed.append((obj, name))

    def remove_all(self) -> None:
        for obj, name in reversed(self.installed):
            try:
                delattr(obj, name)
            except AttributeError:  # pragma: no cover - defensive
                pass
        self.installed.clear()


def attach_probes(machine: Machine, bus: ProbeBus) -> ProbeBus:
    """Tap ``machine`` so ``bus`` observers see its probe events.

    Attach after the machine is fully assembled (in particular after
    ``machine.cleaner`` is installed — a cleaner added later is not
    tapped).  Returns ``bus`` for chaining.
    """
    if getattr(machine, _SESSION_ATTR, None) is not None:
        raise ConfigError("machine already has probes attached")

    session = _ProbeSession(bus)

    # -- semantics layer: per-op and per-memory-event ----------------------
    for core in machine.cores:
        if bus.wants("op"):
            session.install(core, "execute", _op_tap(core, bus))
        if bus.wants("mem_event"):
            session.install(
                core.timer, "on_event", _mem_event_tap(core, bus)
            )

    # -- accounting layer: the ledger's stall/hazard charges ---------------
    ledger = machine.stats.ledger
    by_stats = {
        id(core.stats): (core.core_id, core.timer)
        for core in machine.cores
    }
    if bus.wants("hazard"):
        session.install(ledger, "event", _hazard_tap(ledger, by_stats, bus))
    if bus.wants("stall"):
        session.install(ledger, "stall", _stall_tap(ledger, by_stats, bus))

    # -- persistence point: MC traffic -------------------------------------
    if bus.wants("writeback"):
        session.install(
            machine.mc,
            "accept_write_timed",
            _writeback_tap(machine.mc, bus),
        )
    if bus.wants("nvmm_read"):
        session.install(machine.mc, "read", _nvmm_read_tap(machine.mc, bus))

    # -- background machinery ----------------------------------------------
    if machine.cleaner is not None and bus.wants("cleaner"):
        session.install(
            machine.cleaner,
            "maybe_clean",
            _cleaner_tap(machine.cleaner, bus),
        )

    # Observers that need machine context (e.g. the write heatmap's
    # address-region map) get a look at it before any event flows.
    for observer in bus.observers:
        hook = getattr(observer, "on_attach", None)
        if hook is not None:
            hook(machine)

    setattr(machine, _SESSION_ATTR, session)
    return bus


def detach_probes(machine: Machine) -> None:
    """Remove every tap ``attach_probes`` installed (idempotent)."""
    session = getattr(machine, _SESSION_ATTR, None)
    if session is None:
        return
    session.remove_all()
    setattr(machine, _SESSION_ATTR, None)


@contextlib.contextmanager
def probed(
    machine: Machine,
    observers: Union[ProbeBus, Sequence[ProbeObserver]],
) -> Iterator[ProbeBus]:
    """Context manager: attach observers for the block, then detach.

    ``observers`` is either a prebuilt :class:`ProbeBus` or a sequence
    of observers to build one from.
    """
    bus = (
        observers
        if isinstance(observers, ProbeBus)
        else ProbeBus(observers)
    )
    attach_probes(machine, bus)
    try:
        yield bus
    finally:
        detach_probes(machine)


# ----------------------------------------------------------------------
# tap factories (each closes over the inner bound method it shadows)
# ----------------------------------------------------------------------


def _op_tap(core, bus: ProbeBus):
    inner = core.execute
    timer = core.timer
    core_id = core.core_id
    publish = bus.op

    def execute(op):
        start = timer.clock
        result = inner(op)
        publish(OpExecuted(core_id, op, result, start, timer.clock))
        return result

    return execute


def _mem_event_tap(core, bus: ProbeBus):
    timer = core.timer
    inner = timer.on_event
    core_id = core.core_id
    publish = bus.mem_event

    def on_event(event):
        cycle = timer.clock
        inner(event)
        publish(MemEvent(core_id, cycle, event))

    return on_event


def _hazard_tap(ledger, by_stats, bus: ProbeBus):
    inner = ledger.event
    publish = bus.hazard

    def event(stats, cause):
        inner(stats, cause)
        core_id, timer = by_stats.get(id(stats), (-1, None))
        cycle = timer.clock if timer is not None else 0.0
        publish(HazardHit(core_id, cause, EVENT_CAUSES[cause], cycle))

    return event


def _stall_tap(ledger, by_stats, bus: ProbeBus):
    inner = ledger.stall
    publish = bus.stall

    def stall(stats, cause, cycles, issue_width):
        # The detailed model calls this *before* advancing the clock,
        # so the timer still reads the stall's start time here.
        core_id, timer = by_stats.get(id(stats), (-1, None))
        start = timer.clock if timer is not None else 0.0
        inner(stats, cause, cycles, issue_width)
        if cycles > 0:
            publish(
                StallCharged(
                    core_id, cause, start, cycles, int(cycles * issue_width)
                )
            )

    return stall


def _writeback_tap(mc, bus: ProbeBus):
    inner = mc.accept_write_timed
    publish = bus.writeback

    def accept_write_timed(
        line_addr: int,
        now: float,
        cause: str,
        dirty_since: Optional[float] = None,
        core_id: Optional[int] = None,
    ):
        accept_time, durable_time = inner(
            line_addr, now, cause, dirty_since, core_id
        )
        volatility = (
            max(0.0, durable_time - dirty_since)
            if dirty_since is not None
            else None
        )
        publish(
            WritebackAccepted(
                line_addr=line_addr,
                cause=cause,
                core_id=core_id,
                issued=now,
                accept_time=accept_time,
                durable_time=durable_time,
                queue_delay=accept_time - now,
                queue_depth=mc.write_queue_occupancy,
                volatility=volatility,
            )
        )
        return accept_time, durable_time

    return accept_write_timed


def _nvmm_read_tap(mc, bus: ProbeBus):
    inner = mc.read
    publish = bus.nvmm_read

    def read(line_addr: int, now: float) -> float:
        data_ready = inner(line_addr, now)
        publish(NvmmRead(line_addr, now, data_ready))
        return data_ready

    return read


def _cleaner_tap(cleaner, bus: ProbeBus):
    inner = cleaner.maybe_clean
    publish = bus.cleaner

    def maybe_clean(hierarchy, now: float) -> int:
        passes_before = cleaner.cleanups
        written = inner(hierarchy, now)
        if cleaner.cleanups != passes_before:
            publish(CleanerPass(now, written))
        return written

    return maybe_clean
