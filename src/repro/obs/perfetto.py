"""Chrome-trace / Perfetto export of a recorded run.

Renders a :class:`~repro.obs.recorder.TraceRecorder` into the Chrome
Trace Event Format (the JSON dialect ``ui.perfetto.dev`` and
``chrome://tracing`` load directly).  Timestamps are simulator cycles
mapped 1:1 onto trace microseconds — the viewer's "us" axis reads as
cycles.

Track layout:

* **pid 0 — "cores"**: two threads per core.  ``tid 2*c`` carries the
  op slices (``ph: "X"``, one per retired op, named by ISA op type);
  ``tid 2*c + 1`` carries the stall slices (named by ledger cause:
  ``fence_drain``, ``mshr_full``, ...) and instant hazard markers
  (``ph: "i"``).
* **pid 1 — "memory"**: ``tid 0`` writeback slices (issue ->
  durable, named ``wb:<cause>``), ``tid 1`` NVMM read slices, ``tid
  2`` cleaner passes; plus counter tracks (``ph: "C"``) for the MC
  write-queue depth and the closing volatility window.

Every event carries the four fields Perfetto requires (``ph``, ``ts``,
``pid``, ``tid``); op and stall slice counts per core reconcile
exactly with :class:`~repro.sim.stats.MachineStats` (see
``tests/obs/test_perfetto.py``).
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Union

from repro.obs.recorder import TraceRecorder
from repro.sim.isa import Flush, FlushWB, Load, Store

#: pid of the per-core tracks.
CORES_PID = 0
#: pid of the memory-system tracks.
MEMORY_PID = 1

_MEM_TIDS = {"writebacks": 0, "nvmm reads": 1, "cleaner": 2}


def _core_tid(core_id: int) -> int:
    """Op-track tid of a core (stall track is ``+ 1``)."""
    return 2 * max(core_id, 0)


def _meta(
    name: str, pid: int, value: str, tid: int = 0
) -> Dict[str, Any]:
    return {
        "ph": "M",
        "ts": 0,
        "name": name,
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }


def to_chrome_trace(
    recorder: TraceRecorder,
    *,
    label: str = "repro",
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Render ``recorder`` as a Chrome-trace JSON object.

    ``metadata`` (workload, variant, config hash, ...) lands in the
    top-level ``otherData`` block, where Perfetto's info panel shows it.
    """
    events: List[Dict[str, Any]] = [
        _meta("process_name", CORES_PID, f"{label} cores"),
        _meta("process_name", MEMORY_PID, f"{label} memory"),
    ]
    for tname, tid in _MEM_TIDS.items():
        events.append(_meta("thread_name", MEMORY_PID, tname, tid))
    for core_id in recorder.core_ids():
        tid = _core_tid(core_id)
        events.append(
            _meta("thread_name", CORES_PID, f"core{core_id} ops", tid)
        )
        events.append(
            _meta("thread_name", CORES_PID, f"core{core_id} stalls", tid + 1)
        )

    for op_ev in recorder.ops:
        args: Dict[str, Any] = {}
        if isinstance(op_ev.op, (Load, Store, Flush, FlushWB)):
            args["addr"] = op_ev.op.addr
        if op_ev.result is not None:
            args["result"] = op_ev.result
        events.append(
            {
                "ph": "X",
                "ts": op_ev.start,
                "dur": op_ev.end - op_ev.start,
                "name": type(op_ev.op).__name__,
                "cat": "op",
                "pid": CORES_PID,
                "tid": _core_tid(op_ev.core_id),
                "args": args,
            }
        )

    for stall in recorder.stalls:
        events.append(
            {
                "ph": "X",
                "ts": stall.start,
                "dur": stall.cycles,
                "name": stall.cause,
                "cat": "stall",
                "pid": CORES_PID,
                "tid": _core_tid(stall.core_id) + 1,
                "args": {"lost_slots": stall.lost_slots},
            }
        )

    for hazard in recorder.hazards:
        events.append(
            {
                "ph": "i",
                "ts": hazard.cycle,
                "s": "t",
                "name": hazard.cause,
                "cat": "hazard",
                "pid": CORES_PID,
                "tid": _core_tid(hazard.core_id) + 1,
                "args": {"legacy_counter": hazard.legacy},
            }
        )

    for wb in recorder.writebacks:
        events.append(
            {
                "ph": "X",
                "ts": wb.issued,
                "dur": wb.durable_time - wb.issued,
                "name": f"wb:{wb.cause}",
                "cat": "writeback",
                "pid": MEMORY_PID,
                "tid": _MEM_TIDS["writebacks"],
                "args": {
                    "line_addr": wb.line_addr,
                    "core": wb.core_id,
                    "queue_delay": wb.queue_delay,
                },
            }
        )
        events.append(
            {
                "ph": "C",
                "ts": wb.accept_time,
                "name": "mc_write_queue",
                "pid": MEMORY_PID,
                "tid": 0,
                "args": {"depth": wb.queue_depth},
            }
        )
        if wb.volatility is not None:
            events.append(
                {
                    "ph": "C",
                    "ts": wb.durable_time,
                    "name": "volatility",
                    "pid": MEMORY_PID,
                    "tid": 0,
                    "args": {"cycles": wb.volatility},
                }
            )

    for read in recorder.nvmm_reads:
        events.append(
            {
                "ph": "X",
                "ts": read.issued,
                "dur": read.data_ready - read.issued,
                "name": "read",
                "cat": "nvmm_read",
                "pid": MEMORY_PID,
                "tid": _MEM_TIDS["nvmm reads"],
                "args": {"line_addr": read.line_addr},
            }
        )

    for cp in recorder.cleaner_passes:
        events.append(
            {
                "ph": "i",
                "ts": cp.cycle,
                "s": "p",
                "name": "cleaner_pass",
                "cat": "cleaner",
                "pid": MEMORY_PID,
                "tid": _MEM_TIDS["cleaner"],
                "args": {"lines_written": cp.lines_written},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs",
            "time_unit": "1 trace us == 1 simulated cycle",
            **(metadata or {}),
        },
    }


def write_chrome_trace(
    recorder: TraceRecorder,
    out: Union[str, IO[str]],
    *,
    label: str = "repro",
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the Chrome-trace JSON to a path or file object.

    Returns the number of trace events written (metadata included).
    """
    doc = to_chrome_trace(recorder, label=label, metadata=metadata)
    if isinstance(out, str):
        with open(out, "w") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, out)
    return len(doc["traceEvents"])
