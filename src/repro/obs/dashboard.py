"""Static HTML dashboard over run manifests and harness telemetry.

``render_dashboard`` folds any set of :class:`~repro.obs.report.
RunReport` manifests — plus an optional :class:`~repro.analysis.runner.
RunTelemetry` document — into one self-contained HTML page: headline
tiles, a metric comparison table, per-run interval sparklines (SVG,
from each report's ``intervals`` series), per-region write/store bars
(from ``heatmap``), a per-job timeline of the harness's spans
(queue/run wall clock, cache hits vs full runs), and a verification-
coverage panel (per-epoch bar strips + a scheme×workload grid over
:class:`~repro.obs.coverage.CoverageStats` documents).  No external
assets, no scripts, no wall-clock timestamps — the page is a single
byte-deterministic file that renders anywhere, including as a CI
artifact.

``repro dashboard REPORT.json ... -o dash.html`` is the CLI face;
``repro watch JOURNAL`` re-renders it live from a telemetry journal.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.report import RunReport

#: Interval columns worth a sparkline, in display order; per-core op
#: columns are added dynamically.
_SPARK_COLUMNS = (
    "fences",
    "stalls.fence_mfence",
    "writes.eviction",
    "writes.flush",
    "nvmm_reads",
    "queue_delay_cycles",
)

#: Headline metrics for the tile row of each report.
_TILE_METRICS = (
    ("exec_cycles", "exec cycles"),
    ("nvmm_writes", "NVMM writes"),
    ("nvmm_reads", "NVMM reads"),
    ("ops_executed", "ops"),
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 1.5rem auto; max-width: 72rem; color: #1c2733;
       background: #f7f9fb; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: 0.95rem; margin: 0.8rem 0 0.3rem; }
.tiles { display: flex; flex-wrap: wrap; gap: 0.6rem; }
.tile { background: #fff; border: 1px solid #dde4ea; border-radius: 6px;
        padding: 0.5rem 0.9rem; min-width: 7rem; }
.tile .v { font-size: 1.15rem; font-weight: 600; }
.tile .k { font-size: 0.72rem; color: #5b6b7a; text-transform: uppercase; }
table { border-collapse: collapse; background: #fff; font-size: 0.85rem; }
th, td { border: 1px solid #dde4ea; padding: 0.25rem 0.6rem;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
.card { background: #fff; border: 1px solid #dde4ea; border-radius: 6px;
        padding: 0.8rem 1rem; margin: 0.8rem 0; }
.spark { display: inline-block; margin: 0 0.9rem 0.4rem 0; }
.spark .lbl { font-size: 0.7rem; color: #5b6b7a; display: block; }
.bar { fill: #4c88c8; } .bar.alt { fill: #74b06f; }
.span-run { fill: #4c88c8; } .span-hit { fill: #74b06f; }
.axis { font-size: 0.65rem; fill: #5b6b7a; }
.muted { color: #5b6b7a; font-size: 0.8rem; }
.epoch-ex { fill: #4c88c8; } .epoch-sm { fill: #d9923b; }
.cov-bad { color: #b03030; font-weight: 600; }
.legend { font-size: 0.75rem; color: #5b6b7a; }
.legend .sw { display: inline-block; width: 0.7rem; height: 0.7rem;
              border-radius: 2px; vertical-align: -0.05rem; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _fmt(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.2f}"


def _sparkline(
    label: str, values: Sequence[float], width: int = 180, height: int = 36
) -> str:
    """One inline SVG polyline over ``values`` (empty-safe)."""
    n = len(values)
    peak = max(values) if values else 0.0
    if n < 2 or peak <= 0:
        points = f"0,{height - 2} {width},{height - 2}"
    else:
        step = width / (n - 1)
        points = " ".join(
            f"{i * step:.1f},{(height - 2) * (1 - v / peak) + 1:.1f}"
            for i, v in enumerate(values)
        )
    return (
        f'<span class="spark"><span class="lbl">{_esc(label)}'
        f" (peak {_fmt(peak)})</span>"
        f'<svg width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" stroke="#4c88c8" '
        f'stroke-width="1.5"/></svg></span>'
    )


def _spark_columns(columns: Dict[str, List[float]]) -> List[str]:
    """Which interval columns to draw: per-core ops, then the fixed set."""
    names = sorted(n for n in columns if n.startswith("ops.core"))
    names += [n for n in _SPARK_COLUMNS if n in columns]
    return names


def _region_bars(regions: Dict[str, Dict[str, object]]) -> str:
    """Horizontal write/store bars, one row per allocator region."""
    rows = []
    peak = 1
    for info in regions.values():
        peak = max(
            peak, int(info.get("writes", 0)), int(info.get("stores", 0))
        )
    for name in sorted(regions):
        info = regions[name]
        writes = int(info.get("writes", 0))
        stores = int(info.get("stores", 0))
        w_px = int(260 * writes / peak)
        s_px = int(260 * stores / peak)
        rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f'<td><svg width="270" height="14">'
            f'<rect class="bar" width="{w_px}" height="6" y="0"/>'
            f'<rect class="bar alt" width="{s_px}" height="6" y="8"/>'
            f"</svg></td>"
            f"<td>{writes:,}</td><td>{stores:,}</td>"
            f"<td>{int(info.get('flushes', 0)):,}</td></tr>"
        )
    return (
        "<table><tr><th>region</th><th>writes / stores</th>"
        "<th>writes</th><th>stores</th><th>flushes</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _timeline(telemetry: Dict[str, object]) -> str:
    """Per-job gantt over the harness spans (SVG rows on one clock)."""
    spans = telemetry.get("spans")
    if not isinstance(spans, list) or not spans:
        return '<p class="muted">no spans recorded</p>'
    horizon = max(float(s.get("end_s", 0.0)) for s in spans) or 1.0
    row_h, width = 18, 640
    label_w = 160
    parts = [
        f'<svg width="{label_w + width + 70}" '
        f'height="{row_h * len(spans) + 20}">'
    ]
    for i, span in enumerate(spans):
        y = i * row_h
        x0 = label_w + width * float(span.get("start_s", 0.0)) / horizon
        x1 = label_w + width * float(span.get("end_s", 0.0)) / horizon
        status = str(span.get("status", "run"))
        parts.append(
            f'<text class="axis" x="0" y="{y + 12}">'
            f"{_esc(span.get('label', '?'))} [{_esc(status)}]</text>"
            f'<rect class="span-{_esc(status)}" x="{x0:.1f}" y="{y + 4}" '
            f'width="{max(x1 - x0, 1.5):.1f}" height="{row_h - 8}"/>'
            f'<text class="axis" x="{x1 + 4:.1f}" y="{y + 12}">'
            f"{float(span.get('wall_s', 0.0)):.3f}s</text>"
        )
    parts.append(
        f'<text class="axis" x="{label_w}" '
        f'y="{row_h * len(spans) + 14}">0s</text>'
        f'<text class="axis" x="{label_w + width - 30}" '
        f'y="{row_h * len(spans) + 14}">{horizon:.3f}s</text></svg>'
    )
    return "".join(parts)


def _telemetry_tiles(telemetry: Dict[str, object]) -> List[Tuple[str, str]]:
    summary = telemetry.get("summary")
    if not isinstance(summary, dict):
        return []
    tiles = [
        ("jobs", _esc(summary.get("jobs", 0))),
        ("cache hits", _esc(summary.get("hits", 0))),
        ("full runs", _esc(summary.get("runs", 0))),
        ("workers", _esc(summary.get("workers", 1))),
        ("wall clock", f"{float(summary.get('wall_clock_s', 0.0)):.3f}s"),
        (
            "utilization",
            f"{100.0 * float(summary.get('utilization', 0.0)):.0f}%",
        ),
    ]
    cache = summary.get("cache")
    if isinstance(cache, dict):
        tiles.append(
            ("cache hit rate",
             f"{100.0 * float(cache.get('hit_rate', 0.0)):.0f}%")
        )
    return tiles


def _epoch_strip(doc: Dict[str, object]) -> str:
    """Per-epoch bar strip: one bar per event-count bucket, height by
    images checked, colored by the enumerator's frontier decision
    (blue exhaustive, amber sampled), with the epoch's enumeration
    bound as the right-hand figure."""
    epochs = doc.get("epochs")
    if not isinstance(epochs, list) or not epochs:
        return '<p class="muted">no crashed points yet</p>'
    peak = max(int(e.get("images_checked", 0)) for e in epochs) or 1
    bar_w, gap, height = 26, 6, 64
    width = len(epochs) * (bar_w + gap) + gap
    parts = [f'<svg width="{width}" height="{height + 28}">']
    for i, epoch in enumerate(epochs):
        images = int(epoch.get("images_checked", 0))
        x = gap + i * (bar_w + gap)
        h = max(int(height * images / peak), 2)
        cls = "epoch-ex" if epoch.get("exhaustive") else "epoch-sm"
        parts.append(
            f'<rect class="{cls}" x="{x}" y="{height - h + 2}" '
            f'width="{bar_w}" height="{h}"/>'
            f'<text class="axis" x="{x}" y="{height + 13}">'
            f"{_esc(epoch.get('num_events', '?'))}ev</text>"
            f'<text class="axis" x="{x}" y="{height + 24}">'
            f"{images}</text>"
        )
    parts.append("</svg>")
    parts.append(
        '<p class="legend"><span class="sw epoch-ex"></span> exhaustive '
        '&nbsp; <span class="sw epoch-sm"></span> sampled — bars are '
        "images checked per event-count epoch</p>"
    )
    return "".join(parts)


def _coverage_grid(docs: Sequence[Dict[str, object]]) -> str:
    """Scheme×workload grid of images checked (✗ marks divergence).

    Crashcheck labels are ``workload/variant``; labels without a slash
    (single-image campaigns, litmus models) get a column named after
    their kind.
    """
    cells: Dict[Tuple[str, str], Dict[str, object]] = {}
    for doc in docs:
        label = str(doc.get("label", "?"))
        if "/" in label:
            row, col = label.split("/", 1)
        else:
            row, col = label, str(doc.get("kind", "campaign"))
        cells[(row, col)] = doc
    rows = sorted({r for r, _ in cells})
    cols = sorted({c for _, c in cells})
    head = "".join(f"<th>{_esc(c)}</th>" for c in cols)
    body = []
    for row in rows:
        tds = []
        for col in cols:
            doc = cells.get((row, col))
            if doc is None:
                tds.append("<td>-</td>")
                continue
            images = int(doc.get("images_checked", 0))
            bad = int(doc.get("counterexamples", 0)) or int(
                doc.get("images_diverged", 0)
            )
            mark = (
                f' <span class="cov-bad">&#x2717;{bad}</span>' if bad else ""
            )
            tds.append(f"<td>{images:,}{mark}</td>")
        body.append(f"<tr><td>{_esc(row)}</td>{''.join(tds)}</tr>")
    return (
        f"<table><tr><th>workload</th>{head}</tr>" + "".join(body) + "</table>"
    )


def _coverage_tiles(
    docs: Sequence[Dict[str, object]]
) -> List[Tuple[str, str]]:
    checked = sum(int(d.get("images_checked", 0)) for d in docs)
    recovered = sum(int(d.get("images_recovered", 0)) for d in docs)
    diverged = sum(int(d.get("images_diverged", 0)) for d in docs)
    cexs = sum(int(d.get("counterexamples", 0)) for d in docs)
    exhaustive = sum(int(d.get("exhaustive_images", 0)) for d in docs)
    wall = sum(float(d.get("wall_s", 0.0)) for d in docs)
    tiles = [
        ("campaigns", _esc(len(docs))),
        ("images checked", f"{checked:,}"),
        ("recovered", f"{recovered:,}"),
        ("diverged", f"{diverged:,}"),
        ("counterexamples", f"{cexs:,}"),
        (
            "exhaustive",
            f"{100.0 * exhaustive / checked:.1f}%" if checked else "-",
        ),
    ]
    if wall > 0:
        tiles.append(("images/sec", f"{checked / wall:,.0f}"))
    return tiles


def _coverage_section(docs: Sequence[Dict[str, object]]) -> str:
    parts = ["<h2>Verification coverage</h2>", '<div class="tiles">']
    for label, value in _coverage_tiles(docs):
        parts.append(
            f'<div class="tile"><div class="v">{value}</div>'
            f'<div class="k">{_esc(label)}</div></div>'
        )
    parts.append("</div>")
    parts.append("<h3>scheme &times; workload grid</h3>")
    parts.append(_coverage_grid(docs))
    for doc in docs:
        checked = int(doc.get("images_checked", 0))
        bound = int(doc.get("enumeration_bound", 0))
        parts.append(
            f"<div class='card'><h3>{_esc(doc.get('label', '?'))} "
            f"<span class='muted'>({_esc(doc.get('kind', '?'))}, "
            f"{checked:,} images / bound {bound:,})</span></h3>"
        )
        parts.append(_epoch_strip(doc))
        parts.append("</div>")
    return "".join(parts)


def _report_card(report: RunReport) -> str:
    parts = [f"<div class='card'><h3>{_esc(report.label())}</h3>"]
    parts.append('<div class="tiles">')
    for key, label in _TILE_METRICS:
        value = report.metrics.get(key)
        if value is not None:
            parts.append(
                f'<div class="tile"><div class="v">{_fmt(value)}</div>'
                f'<div class="k">{_esc(label)}</div></div>'
            )
    parts.append(
        f'<div class="tile"><div class="v">{_esc(report.timing)}</div>'
        f'<div class="k">timing</div></div></div>'
    )
    if report.intervals is not None:
        columns = report.intervals.get("columns")
        if isinstance(columns, dict):
            interval = report.intervals.get("interval")
            parts.append(
                f'<p class="muted">interval series '
                f"({_esc(interval)} cycles/bucket)</p>"
            )
            for name in _spark_columns(columns):
                parts.append(_sparkline(name, columns[name]))
    if report.heatmap is not None:
        regions = report.heatmap.get("regions")
        if isinstance(regions, dict) and regions:
            parts.append("<h3>write heatmap</h3>")
            parts.append(_region_bars(regions))
    parts.append("</div>")
    return "".join(parts)


def render_dashboard(
    reports: Sequence[RunReport],
    telemetry: Optional[Dict[str, object]] = None,
    coverage: Optional[Sequence[Dict[str, object]]] = None,
) -> str:
    """The dashboard page (a complete HTML document) as a string.

    ``telemetry`` is a :meth:`~repro.analysis.runner.RunTelemetry.
    to_dict` document; when omitted, the first report carrying an
    embedded ``telemetry`` snapshot supplies it.  ``coverage`` is a
    sequence of :meth:`~repro.obs.coverage.CoverageStats.to_dict`
    documents, rendered as a verification-coverage panel (per-epoch
    bar strips plus a scheme×workload grid).

    The output is byte-deterministic for identical inputs: the page
    embeds no wall-clock timestamps or environment state of its own,
    so re-rendering the same documents yields the same bytes (CI
    artifacts diff cleanly; pinned by a golden test).
    """
    if not reports and telemetry is None and not coverage:
        raise ConfigError(
            "nothing to render: no reports, no telemetry, no coverage"
        )
    if telemetry is None:
        for report in reports:
            if report.telemetry is not None:
                telemetry = report.telemetry
                break

    body: List[str] = ["<h1>repro run dashboard</h1>"]
    if reports:
        body.append(
            f'<p class="muted">{len(reports)} run report(s), '
            f"code {_esc(reports[0].code_version[:12])}</p>"
        )

    if telemetry is not None:
        body.append("<h2>Harness telemetry</h2>")
        tiles = _telemetry_tiles(telemetry)
        if tiles:
            body.append('<div class="tiles">')
            for label, value in tiles:
                body.append(
                    f'<div class="tile"><div class="v">{value}</div>'
                    f'<div class="k">{label}</div></div>'
                )
            body.append("</div>")
        body.append("<h3>job timeline</h3>")
        body.append(_timeline(telemetry))

    if coverage:
        body.append(_coverage_section(coverage))

    if reports:
        body.append("<h2>Runs</h2>")
        for report in reports:
            body.append(_report_card(report))
        if len(reports) > 1:
            body.append("<h2>Metric comparison</h2>")
            body.append(_comparison_table(reports))

    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>repro dashboard</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(body)
        + "</body></html>"
    )


def _comparison_table(reports: Sequence[RunReport]) -> str:
    names: List[str] = []
    for report in reports:
        for name in report.metrics:
            if name not in names:
                names.append(name)
    head = "".join(f"<th>{_esc(r.label())}</th>" for r in reports)
    rows = []
    for name in sorted(names):
        cells = []
        for report in reports:
            value = report.metrics.get(name)
            cells.append(
                f"<td>{_fmt(value) if value is not None else '-'}</td>"
            )
        rows.append(f"<tr><td>{_esc(name)}</td>{''.join(cells)}</tr>")
    return (
        f"<table><tr><th>metric</th>{head}</tr>" + "".join(rows) + "</table>"
    )
