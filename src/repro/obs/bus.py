"""The probe bus: typed fan-out from taps to observers.

A :class:`ProbeBus` is built from a list of observers and precomputes,
per event channel, the list of observer callbacks that actually
override the :class:`ProbeObserver` no-op — publishing to a channel
nobody subscribed to is a loop over an empty list.  The bus itself is
passive: it only carries events; :mod:`repro.obs.taps` is what plugs
it into a machine.

Observers implement any subset of the ``on_*`` methods::

    class WriteCounter(ProbeObserver):
        def __init__(self):
            self.writes = 0
        def on_writeback(self, ev):
            self.writes += 1

    bus = ProbeBus([WriteCounter()])

Subclassing :class:`ProbeObserver` is conventional, not required: any
object whose *class* defines a channel method is subscribed to that
channel (this is how :class:`repro.sim.trace.Trace` rides the bus
without ``repro.sim`` importing ``repro.obs``).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

from repro.obs.events import (
    CleanerPass,
    HazardHit,
    MemEvent,
    NvmmRead,
    OpExecuted,
    StallCharged,
    WritebackAccepted,
)


class ProbeObserver:
    """Base observer: every channel defaults to a no-op.

    Subclasses override only the channels they care about; the bus
    skips the rest entirely (an un-overridden channel costs nothing
    even on a tapped machine).
    """

    def on_op(self, ev: OpExecuted) -> None:  # pragma: no cover - no-op
        pass

    def on_mem_event(self, ev: MemEvent) -> None:  # pragma: no cover
        pass

    def on_stall(self, ev: StallCharged) -> None:  # pragma: no cover
        pass

    def on_hazard(self, ev: HazardHit) -> None:  # pragma: no cover
        pass

    def on_writeback(self, ev: WritebackAccepted) -> None:  # pragma: no cover
        pass

    def on_nvmm_read(self, ev: NvmmRead) -> None:  # pragma: no cover
        pass

    def on_cleaner(self, ev: CleanerPass) -> None:  # pragma: no cover
        pass


#: Channel name -> observer method name (one bus channel per probe
#: event type; taps publish through the matching ``ProbeBus.<channel>``).
CHANNELS = {
    "op": "on_op",
    "mem_event": "on_mem_event",
    "stall": "on_stall",
    "hazard": "on_hazard",
    "writeback": "on_writeback",
    "nvmm_read": "on_nvmm_read",
    "cleaner": "on_cleaner",
}


def _subscribed(
    observers: Sequence[ProbeObserver], method: str
) -> List[Callable]:
    """Bound callbacks of observers whose class defines ``method``
    (and, for ProbeObserver subclasses, actually overrides the no-op)."""
    default = getattr(ProbeObserver, method)
    out: List[Callable] = []
    for obs in observers:
        impl = getattr(type(obs), method, None)
        if impl is not None and impl is not default:
            out.append(getattr(obs, method))
    return out


class ProbeBus:
    """Fan probe events out to the subscribed observer callbacks."""

    def __init__(self, observers: Iterable[ProbeObserver]) -> None:
        self.observers: List[ProbeObserver] = list(observers)
        self._op = _subscribed(self.observers, "on_op")
        self._mem_event = _subscribed(self.observers, "on_mem_event")
        self._stall = _subscribed(self.observers, "on_stall")
        self._hazard = _subscribed(self.observers, "on_hazard")
        self._writeback = _subscribed(self.observers, "on_writeback")
        self._nvmm_read = _subscribed(self.observers, "on_nvmm_read")
        self._cleaner = _subscribed(self.observers, "on_cleaner")
        # Single-subscriber channels skip the fan-out loop entirely:
        # the publish hook *is* the observer's callback (an instance
        # attribute shadowing the method below), which cuts one Python
        # frame per event on the dominant tracing configurations.
        for channel, _method in CHANNELS.items():
            callbacks = getattr(self, "_" + channel)
            if len(callbacks) == 1:
                setattr(self, channel, callbacks[0])

    # -- publish hooks (called by the taps) --------------------------------

    def op(self, ev: OpExecuted) -> None:
        for fn in self._op:
            fn(ev)

    def mem_event(self, ev: MemEvent) -> None:
        for fn in self._mem_event:
            fn(ev)

    def stall(self, ev: StallCharged) -> None:
        for fn in self._stall:
            fn(ev)

    def hazard(self, ev: HazardHit) -> None:
        for fn in self._hazard:
            fn(ev)

    def writeback(self, ev: WritebackAccepted) -> None:
        for fn in self._writeback:
            fn(ev)

    def nvmm_read(self, ev: NvmmRead) -> None:
        for fn in self._nvmm_read:
            fn(ev)

    def cleaner(self, ev: CleanerPass) -> None:
        for fn in self._cleaner:
            fn(ev)

    def wants(self, channel: str) -> bool:
        """Whether any observer subscribed to ``channel`` (tap hint:
        taps skip installing a wrapper nobody listens to)."""
        return bool(getattr(self, "_" + channel))
