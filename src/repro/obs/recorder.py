"""Record the full probe-event stream of one run.

:class:`TraceRecorder` is the capture half of the tracing pipeline: it
subscribes to every probe channel except ``mem_event`` (which fires
once per memory *sub*-event and is only interesting to bespoke
observers) and stores the events verbatim, in arrival order.  The
Chrome-trace/Perfetto exporter (:mod:`repro.obs.perfetto`) renders a
recorder; tests reconcile its counts against
:class:`~repro.sim.stats.MachineStats`.

Memory cost is one small dataclass per event, so recording a full
scaled-machine run is cheap (hundreds of thousands of events); for
multi-minute campaigns prefer the :class:`~repro.obs.intervals.
IntervalSampler`, which aggregates instead of storing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.obs.bus import ProbeObserver
from repro.obs.events import (
    CleanerPass,
    HazardHit,
    NvmmRead,
    OpExecuted,
    StallCharged,
    WritebackAccepted,
)
from repro.sim.isa import Op


class TraceRecorder(ProbeObserver):
    """Store every published probe event, per channel, in order."""

    def __init__(self) -> None:
        self.ops: List[OpExecuted] = []
        self.stalls: List[StallCharged] = []
        self.hazards: List[HazardHit] = []
        self.writebacks: List[WritebackAccepted] = []
        self.nvmm_reads: List[NvmmRead] = []
        self.cleaner_passes: List[CleanerPass] = []
        # Hot path: each channel handler *is* the bound list.append —
        # the bus fetches callbacks per instance (the class methods
        # below keep channel detection working), so recording costs no
        # recorder-level Python frame at all per event.
        self.on_op = self.ops.append  # type: ignore[method-assign]
        self.on_stall = self.stalls.append  # type: ignore[method-assign]
        self.on_hazard = self.hazards.append  # type: ignore[method-assign]
        self.on_writeback = (  # type: ignore[method-assign]
            self.writebacks.append
        )
        self.on_nvmm_read = (  # type: ignore[method-assign]
            self.nvmm_reads.append
        )
        self.on_cleaner = (  # type: ignore[method-assign]
            self.cleaner_passes.append
        )

    # -- probe channels (shadowed by the bound appends above; kept so
    # ProbeBus._subscribed sees the channels overridden) --------------------

    def on_op(self, ev: OpExecuted) -> None:  # pragma: no cover - shadowed
        self.ops.append(ev)

    def on_stall(self, ev: StallCharged) -> None:  # pragma: no cover
        self.stalls.append(ev)

    def on_hazard(self, ev: HazardHit) -> None:  # pragma: no cover
        self.hazards.append(ev)

    def on_writeback(self, ev: WritebackAccepted) -> None:  # pragma: no cover
        self.writebacks.append(ev)

    def on_nvmm_read(self, ev: NvmmRead) -> None:  # pragma: no cover
        self.nvmm_reads.append(ev)

    def on_cleaner(self, ev: CleanerPass) -> None:  # pragma: no cover
        self.cleaner_passes.append(ev)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Total events recorded across all channels."""
        return (
            len(self.ops)
            + len(self.stalls)
            + len(self.hazards)
            + len(self.writebacks)
            + len(self.nvmm_reads)
            + len(self.cleaner_passes)
        )

    def core_ids(self) -> List[int]:
        """Sorted core ids that produced at least one op or stall."""
        ids = {ev.core_id for ev in self.ops}
        ids.update(ev.core_id for ev in self.stalls if ev.core_id >= 0)
        ids.update(ev.core_id for ev in self.hazards if ev.core_id >= 0)
        return sorted(ids)

    def op_counts(
        self, core_id: Optional[int] = None
    ) -> Dict[Type[Op], int]:
        """Recorded op counts by ISA type (optionally one core's)."""
        counts: Dict[Type[Op], int] = {}
        for ev in self.ops:
            if core_id is not None and ev.core_id != core_id:
                continue
            counts[type(ev.op)] = counts.get(type(ev.op), 0) + 1
        return counts

    @property
    def last_cycle(self) -> float:
        """Latest timestamp across every recorded event (0.0 if none)."""
        candidates = [0.0]
        if self.ops:
            candidates.append(max(ev.end for ev in self.ops))
        if self.stalls:
            candidates.append(max(ev.start + ev.cycles for ev in self.stalls))
        if self.writebacks:
            candidates.append(max(ev.durable_time for ev in self.writebacks))
        if self.nvmm_reads:
            candidates.append(max(ev.data_ready for ev in self.nvmm_reads))
        if self.cleaner_passes:
            candidates.append(max(ev.cycle for ev in self.cleaner_passes))
        return max(candidates)
