"""Coverage accounting for verification campaigns (``repro.obs.coverage``).

Crashcheck and litmus campaigns used to report only a verdict; this
module makes the *extent* of a campaign first-class: how many reachable
images were actually checked against the enumeration bound, how the
exhaustive/sampled split fell per frontier epoch (event-count bucket),
how many images recovered vs. diverged, how much shrinking the
counterexamples took, and how fast the campaign ran (images/sec).

:class:`CoverageStats` is a plain JSON-round-trippable document built
three ways:

* :func:`coverage_of_crashcheck` from a
  :class:`~repro.verify.checker.CrashCheckReport` (one per variant);
* :func:`coverage_of_campaign` from a single-image
  :class:`~repro.analysis.crashlab.CrashCampaignResult` (each trial
  checks exactly one schedule image);
* :func:`coverage_of_litmus` from a litmus
  :class:`~repro.verify.litmus.ModelVerdict`.

Each of those classes also exposes the same document as a
``.coverage()`` convenience method.  The invariants the test suite
pins: per-epoch image counts sum to the campaign total, and each
epoch's exhaustive flag equals the enumerator's own frontier decision
(``num_events <= max_exhaustive_events``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.analysis.crashlab import CrashCampaignResult
    from repro.verify.checker import CrashCheckReport
    from repro.verify.litmus import ModelVerdict

#: Bumped when the coverage-document layout changes.
COVERAGE_FORMAT_VERSION = 1


@dataclass
class EpochCoverage:
    """Coverage rolled up over all crash points with one event count.

    An *epoch* is an event-count bucket of the crash-state space: every
    point whose space has ``num_events`` persist events lands in the
    same epoch, and the whole epoch sits on one side of the enumeration
    frontier (``exhaustive``) by construction.
    """

    num_events: int
    points: int = 0
    images_checked: int = 0
    images_diverged: int = 0
    #: Candidate order ideals the enumerator generated for this epoch
    #: (before image dedup); ``images_checked <= bound`` always.
    bound: int = 0
    exhaustive: bool = True

    @property
    def images_recovered(self) -> int:
        return self.images_checked - self.images_diverged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_events": self.num_events,
            "points": self.points,
            "images_checked": self.images_checked,
            "images_diverged": self.images_diverged,
            "bound": self.bound,
            "exhaustive": self.exhaustive,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "EpochCoverage":
        return cls(
            num_events=int(d["num_events"]),
            points=int(d["points"]),
            images_checked=int(d["images_checked"]),
            images_diverged=int(d["images_diverged"]),
            bound=int(d["bound"]),
            exhaustive=bool(d["exhaustive"]),
        )


@dataclass
class CoverageStats:
    """How much of the crash-state space one campaign actually checked."""

    #: Campaign label: ``workload/variant`` for crashcheck, the
    #: workload name for single-image campaigns, the model name for
    #: litmus corpora.
    label: str
    #: ``"crashcheck"`` | ``"campaign"`` | ``"litmus"``.
    kind: str = "crashcheck"
    points: int = 0
    crashed_points: int = 0
    images_checked: int = 0
    images_diverged: int = 0
    counterexamples: int = 0
    #: Events dropped by counterexample shrinking, summed
    #: (``len(eids) - len(minimized_eids)`` per counterexample).
    shrink_steps: int = 0
    wall_s: float = 0.0
    epochs: List[EpochCoverage] = field(default_factory=list)

    # -- derived ---------------------------------------------------------

    @property
    def images_recovered(self) -> int:
        return self.images_checked - self.images_diverged

    @property
    def enumeration_bound(self) -> int:
        """Candidate ideals generated across every epoch."""
        return sum(e.bound for e in self.epochs)

    @property
    def exhaustive_points(self) -> int:
        return sum(e.points for e in self.epochs if e.exhaustive)

    @property
    def sampled_points(self) -> int:
        return sum(e.points for e in self.epochs if not e.exhaustive)

    @property
    def exhaustive_images(self) -> int:
        return sum(e.images_checked for e in self.epochs if e.exhaustive)

    @property
    def sampled_images(self) -> int:
        return sum(e.images_checked for e in self.epochs if not e.exhaustive)

    def exhaustive_fraction(self) -> float:
        """Fraction of checked images that came from exhaustive epochs."""
        if not self.images_checked:
            return 1.0
        return self.exhaustive_images / self.images_checked

    def images_per_sec(self) -> float:
        """Campaign throughput; 0.0 when no wall clock was recorded."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.images_checked / self.wall_s

    @property
    def ok(self) -> bool:
        return self.counterexamples == 0 and self.images_diverged == 0

    # -- accumulation ----------------------------------------------------

    def epoch(self, num_events: int, exhaustive: bool) -> EpochCoverage:
        """The epoch bucket for ``num_events``, created on first use."""
        for existing in self.epochs:
            if existing.num_events == num_events:
                return existing
        bucket = EpochCoverage(num_events=num_events, exhaustive=exhaustive)
        self.epochs.append(bucket)
        self.epochs.sort(key=lambda e: e.num_events)
        return bucket

    def add_point(
        self,
        num_events: int,
        images_checked: int,
        images_diverged: int = 0,
        bound: int = 0,
        exhaustive: bool = True,
        crashed: bool = True,
        wall_s: float = 0.0,
        counterexamples: int = 0,
        shrink_steps: int = 0,
    ) -> None:
        """Fold one crash point (or litmus program) into the stats.

        The same accumulator serves report-side builders and the
        journal's incremental ``campaign_point`` folding, so a
        mid-campaign coverage document reconciles with the final one.
        """
        self.points += 1
        self.crashed_points += 1 if crashed else 0
        self.images_checked += images_checked
        self.images_diverged += images_diverged
        self.counterexamples += counterexamples
        self.shrink_steps += shrink_steps
        self.wall_s += wall_s
        if crashed:
            bucket = self.epoch(num_events, exhaustive)
            bucket.points += 1
            bucket.images_checked += images_checked
            bucket.images_diverged += images_diverged
            bucket.bound += bound

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": COVERAGE_FORMAT_VERSION,
            "label": self.label,
            "kind": self.kind,
            "points": self.points,
            "crashed_points": self.crashed_points,
            "images_checked": self.images_checked,
            "images_recovered": self.images_recovered,
            "images_diverged": self.images_diverged,
            "counterexamples": self.counterexamples,
            "shrink_steps": self.shrink_steps,
            "enumeration_bound": self.enumeration_bound,
            "exhaustive_points": self.exhaustive_points,
            "sampled_points": self.sampled_points,
            "exhaustive_images": self.exhaustive_images,
            "sampled_images": self.sampled_images,
            "exhaustive_fraction": round(self.exhaustive_fraction(), 6),
            "wall_s": round(self.wall_s, 6),
            "images_per_sec": round(self.images_per_sec(), 3),
            "epochs": [e.to_dict() for e in self.epochs],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CoverageStats":
        stats = cls(
            label=str(d["label"]),
            kind=str(d.get("kind", "crashcheck")),
            points=int(d["points"]),
            crashed_points=int(d["crashed_points"]),
            images_checked=int(d["images_checked"]),
            images_diverged=int(d["images_diverged"]),
            counterexamples=int(d["counterexamples"]),
            shrink_steps=int(d.get("shrink_steps", 0)),
            wall_s=float(d.get("wall_s", 0.0)),
            epochs=[EpochCoverage.from_dict(e) for e in d.get("epochs", [])],
        )
        return stats

    def summary(self) -> str:
        """One human line for CLI output and progress footers."""
        split = (
            "exhaustive"
            if not self.sampled_images
            else f"{100.0 * self.exhaustive_fraction():.1f}% exhaustive"
        )
        rate = self.images_per_sec()
        rate_part = f", {rate:.0f} img/s" if rate else ""
        return (
            f"{self.label}: {self.images_checked} images over "
            f"{self.points} points ({split}, "
            f"{self.images_diverged} diverged{rate_part})"
        )


# ----------------------------------------------------------------------
# builders from the verification layer's report objects
# ----------------------------------------------------------------------


def coverage_of_crashcheck(
    report: "CrashCheckReport", label: Optional[str] = None
) -> CoverageStats:
    """Coverage of one crash-state checking campaign (one variant
    across its crash-point grid)."""
    stats = CoverageStats(
        label=label or f"{report.workload}/{report.variant}",
        kind="crashcheck",
    )
    for point in report.points:
        stats.add_point(
            num_events=point.num_events,
            images_checked=point.images_checked,
            images_diverged=point.images_diverged,
            bound=point.bound,
            exhaustive=point.exhaustive,
            crashed=point.crashed,
            wall_s=point.wall_s,
            counterexamples=len(point.counterexamples),
            shrink_steps=point.shrink_steps,
        )
    return stats


def coverage_of_campaign(result: "CrashCampaignResult") -> CoverageStats:
    """Coverage of a single-image crash campaign: each trial verifies
    exactly one schedule image (a graceful completion's output is
    verified too), so the single pseudo-epoch's image count equals the
    trial count — all in the sampled (non-exhaustive) bucket, with the
    event-count epoch unknown and recorded as 0."""
    stats = CoverageStats(label=result.workload, kind="campaign")
    for trial in result.trials:
        stats.add_point(
            num_events=0,
            images_checked=1,
            images_diverged=0 if trial.recovered_ok else 1,
            bound=1,
            exhaustive=False,
        )
    stats.crashed_points = sum(1 for t in result.trials if t.crashed)
    return stats


def coverage_of_litmus(verdict: "ModelVerdict") -> CoverageStats:
    """Coverage of one litmus corpus under one model.

    Litmus enumeration is always exhaustive (programs above the event
    cap are rejected outright), so each program's bound equals its
    deduplicated image count; a divergent program counts as a
    counterexample and its images as diverged.
    """
    stats = CoverageStats(label=verdict.model, kind="litmus")
    for num_events, images, divergent in verdict.program_points:
        stats.add_point(
            num_events=num_events,
            images_checked=images,
            images_diverged=images if divergent else 0,
            bound=images,
            exhaustive=True,
            crashed=True,
            counterexamples=1 if divergent else 0,
        )
    stats.wall_s = verdict.wall_s
    return stats


def load_coverage_docs(payload: Any) -> List[Dict[str, Any]]:
    """Normalize a loaded coverage JSON payload to a list of docs.

    Accepts a single document, a list of documents, or a mapping of
    label -> document (the ``--coverage-out`` shape for multi-variant
    campaigns).
    """
    if isinstance(payload, list):
        return [dict(doc) for doc in payload]
    if isinstance(payload, dict) and "label" in payload:
        return [dict(payload)]
    if isinstance(payload, dict):
        return [dict(doc) for doc in payload.values()]
    raise ValueError(f"not a coverage document: {type(payload).__name__}")
