"""Interval metrics: roll probe events into a per-N-cycles time series.

gem5 (the paper's simulator) dumps its stats per interval so a run can
be read as a *trajectory* rather than one opaque total — when do fence
stalls cluster, when does the MC write queue fill, when does the
cleaner wake up.  :class:`IntervalSampler` recreates that for this
simulator: subscribe one to a :class:`~repro.obs.bus.ProbeBus` and it
buckets every probe event into fixed-width windows of the publishing
core's clock.

Columns (one value per bucket; only columns that saw events exist):

===========================  ==========================================
``ops.core<i>``              ops retired on core *i* (bucket of op end)
``ipc.core<i>``              derived: ``ops.core<i> / interval``
``fences``                   Fence ops retired (all cores)
``stalls.<cause>``           stall cycles charged, bucketed at the
                             stall's *start* (a stall spanning buckets
                             is charged whole to its start bucket so
                             totals reconcile exactly with the ledger)
``lost_slots``               issue slots lost to stalls (the FUI
                             component the ledger folds in)
``hazards.<cause>``          structural-hazard events
``writes.<cause>``           NVMM writes accepted (bucket of accept)
``queue_delay_cycles``       MC write-queue backpressure felt
``mc_queue_depth.max``       peak write-queue occupancy sampled at
                             acceptances in the bucket
``volatility.max``           peak dirty-to-durable window closing in
                             the bucket
``nvmm_reads``               NVMM line reads (L2 miss fills)
``l1_misses``                demand misses leaving the L1 (= L2
                             accesses)
``l2_miss_rate``             derived: ``nvmm_reads / l1_misses``
``cleaner.passes``           periodic-cleaner passes
``cleaner.lines``            lines the cleaner wrote back
===========================  ==========================================

Sum-type columns sum *exactly* to the matching
:class:`~repro.sim.stats.MachineStats` counters (pinned by
``tests/obs/test_reconcile.py``); the series is JSON-safe
(:meth:`series`) and CSV-dumpable (:meth:`csv`), and rides on
:class:`~repro.analysis.experiments.ExperimentResult` as the
``intervals`` field when ``run_variant(..., obs_interval=N)`` is used.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.obs.bus import ProbeObserver
from repro.obs.events import (
    CleanerPass,
    HazardHit,
    MemEvent,
    NvmmRead,
    OpExecuted,
    StallCharged,
    WritebackAccepted,
)
from repro.sim.isa import Fence


class IntervalSampler(ProbeObserver):
    """Bucket probe events into ``interval``-cycle windows."""

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ConfigError("sampling interval must be positive cycles")
        self.interval = float(interval)
        #: column name -> {bucket index -> accumulated value}
        self._sum: Dict[str, Dict[int, float]] = {}
        #: column name -> {bucket index -> max value}
        self._max: Dict[str, Dict[int, float]] = {}
        # Hot-path caches: the column dicts the per-event handlers hit,
        # keyed without the f-string column-name formatting.  These are
        # views into ``_sum`` (same dict objects), so every aggregation
        # below stays byte-identical.
        self._ops_cols: Dict[int, Dict[int, float]] = {}
        self._stall_cols: Dict[str, Dict[int, float]] = {}
        self._write_cols: Dict[str, Dict[int, float]] = {}
        self._hazard_cols: Dict[str, Dict[int, float]] = {}

    # -- accumulation -------------------------------------------------------

    def _bucket(self, cycle: float) -> int:
        return int(cycle // self.interval)

    def _add(self, column: str, cycle: float, amount: float) -> None:
        col = self._sum.setdefault(column, {})
        b = self._bucket(cycle)
        col[b] = col.get(b, 0.0) + amount

    def _peak(self, column: str, cycle: float, value: float) -> None:
        col = self._max.setdefault(column, {})
        b = self._bucket(cycle)
        if value > col.get(b, float("-inf")):
            col[b] = value

    # -- probe channels -----------------------------------------------------

    def on_op(self, ev: OpExecuted) -> None:
        col = self._ops_cols.get(ev.core_id)
        if col is None:
            col = self._sum.setdefault(f"ops.core{ev.core_id}", {})
            self._ops_cols[ev.core_id] = col
        b = int(ev.end // self.interval)
        col[b] = col.get(b, 0.0) + 1.0
        if isinstance(ev.op, Fence):
            self._add("fences", ev.end, 1.0)

    def on_mem_event(self, ev: MemEvent) -> None:
        # LoadCommit/StoreCommit with l1_hit=False are exactly the
        # demand misses that access the L2 (CoreStats.l1_misses).
        if getattr(ev.event, "l1_hit", True) is False:
            self._add("l1_misses", ev.cycle, 1.0)

    def on_stall(self, ev: StallCharged) -> None:
        col = self._stall_cols.get(ev.cause)
        if col is None:
            col = self._sum.setdefault(f"stalls.{ev.cause}", {})
            self._stall_cols[ev.cause] = col
        b = int(ev.start // self.interval)
        col[b] = col.get(b, 0.0) + ev.cycles
        self._add("lost_slots", ev.start, float(ev.lost_slots))

    def on_hazard(self, ev: HazardHit) -> None:
        col = self._hazard_cols.get(ev.cause)
        if col is None:
            col = self._sum.setdefault(f"hazards.{ev.cause}", {})
            self._hazard_cols[ev.cause] = col
        b = int(ev.cycle // self.interval)
        col[b] = col.get(b, 0.0) + 1.0

    def on_writeback(self, ev: WritebackAccepted) -> None:
        col = self._write_cols.get(ev.cause)
        if col is None:
            col = self._sum.setdefault(f"writes.{ev.cause}", {})
            self._write_cols[ev.cause] = col
        b = int(ev.accept_time // self.interval)
        col[b] = col.get(b, 0.0) + 1.0
        self._add("queue_delay_cycles", ev.accept_time, ev.queue_delay)
        self._peak(
            "mc_queue_depth.max", ev.accept_time, float(ev.queue_depth)
        )
        if ev.volatility is not None:
            self._peak("volatility.max", ev.durable_time, ev.volatility)

    def on_nvmm_read(self, ev: NvmmRead) -> None:
        self._add("nvmm_reads", ev.issued, 1.0)

    def on_cleaner(self, ev: CleanerPass) -> None:
        self._add("cleaner.passes", ev.cycle, 1.0)
        self._add("cleaner.lines", ev.cycle, float(ev.lines_written))

    # -- output -------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Buckets from cycle 0 through the latest event seen."""
        last = -1
        for col in (*self._sum.values(), *self._max.values()):
            if col:
                last = max(last, max(col))
        return last + 1

    def series(self) -> Dict[str, object]:
        """The JSON-safe time series (dense lists, one row per bucket)."""
        nb = self.num_buckets
        columns: Dict[str, List[float]] = {}
        for name, col in self._sum.items():
            columns[name] = [col.get(b, 0.0) for b in range(nb)]
        for name, col in self._max.items():
            columns[name] = [col.get(b, 0.0) for b in range(nb)]
        # Derived columns.
        for name in list(columns):
            if name.startswith("ops.core"):
                core = name[len("ops.core"):]
                columns[f"ipc.core{core}"] = [
                    v / self.interval for v in columns[name]
                ]
        if "nvmm_reads" in columns and "l1_misses" in columns:
            columns["l2_miss_rate"] = [
                (r / a) if a else 0.0
                for r, a in zip(columns["nvmm_reads"], columns["l1_misses"])
            ]
        return {
            "interval": self.interval,
            "num_buckets": nb,
            "columns": {k: columns[k] for k in sorted(columns)},
        }

    def totals(self) -> Dict[str, float]:
        """Whole-run sums of every sum-type column (reconciliation)."""
        return {
            name: sum(col.values()) for name, col in sorted(self._sum.items())
        }

    def csv(self, series: Optional[Dict[str, object]] = None) -> str:
        """The series as CSV text (``bucket,start_cycle,<columns...>``)."""
        if series is None:
            series = self.series()
        columns = series["columns"]
        assert isinstance(columns, dict)
        names = sorted(columns)
        lines = [",".join(["bucket", "start_cycle", *names])]
        interval = float(series["interval"])  # type: ignore[arg-type]
        for b in range(int(series["num_buckets"])):  # type: ignore[call-overload]
            row = [str(b), repr(b * interval)]
            row += [repr(columns[name][b]) for name in names]
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"
