"""Stream-derived observability: the probe-bus surface, in batch.

The op-stream interpreter (:func:`repro.sim.opstream.execute_stream`)
never materialises op objects, so it cannot publish probe events — and
wrapping it in per-op callbacks would forfeit exactly the 100x+ it
exists for.  This module closes the gap the other way round: it
*derives* each observer's end state directly from the stream's numpy
arrays plus the memoised :class:`~repro.sim.opstream._SchedulePlan`,
with a handful of vectorised passes (``searchsorted`` bucketing into
intervals, ``bincount`` per-core and per-line rollups) instead of one
Python call per event.

Exactness contract (pinned by ``tests/obs/test_streamobs.py``): for
every derivable observer, the populated instance is indistinguishable
from the same observer attached to a probed replay machine running the
identical point through the general scheduling loop —

* :func:`derive_sampler` — same ``series()``, ``totals()`` and
  ``csv()`` output.  A replay run's only probe events are op
  retirements (functional timing never stalls, replay hierarchies
  never miss or write back), so the series is exactly the per-core op
  columns plus ``fences``, and summing 1.0 per event is exact integer
  float arithmetic — ``bincount`` reproduces it bit-for-bit.
* :func:`derive_heatmap` — same region map, store/flush line counts
  and (empty) writeback map, hence identical ``region_summary()`` /
  ``to_dict()`` / ``csv()``.
* :func:`derive_flame` — same (empty) stall attribution; provenance
  Phase frames are replayed so even the internal frame stacks match.
* :func:`derive_recorder` — a :class:`~repro.obs.recorder.
  TraceRecorder` holding equal :class:`~repro.obs.events.OpExecuted`
  objects (clocks from :func:`~repro.sim.opstream.op_end_cycles`, load
  results recovered vectorised from store history + the initial
  image), so :func:`repro.obs.perfetto.to_chrome_trace` renders the
  identical document.  This one materialises per-op Python objects —
  use it for trace export, not for bulk metrics.

Because streams encode trigger-free replay runs, the derivation is
also *complete*: there is no stall, hazard, writeback, read or cleaner
event a probed replay run would have seen that the derived observers
miss.  Timing-model attribution (stall flames with cycles in them, MC
queue dynamics) inherently needs a full machine — ``run_variant``
reports that as a fallback reason instead of silently downgrading
(see :func:`repro.analysis.experiments.stream_fallback_reason`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.events import OpExecuted
from repro.obs.intervals import IntervalSampler
from repro.obs.profile import StallFlame, WriteHeatmap
from repro.obs.recorder import TraceRecorder
from repro.sim.config import LINE_BYTES
from repro.sim.isa import (
    OP_BARRIER,
    OP_FENCE,
    OP_FLUSH,
    OP_FLUSHWB,
    OP_LOAD,
    OP_PHASE,
    OP_STORE,
)
from repro.sim.opstream import (
    _OP_COST,
    OpStream,
    _gather_init,
    op_end_cycles,
    schedule_plan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine

__all__ = [
    "derive_sampler",
    "derive_heatmap",
    "derive_flame",
    "derive_recorder",
]


def _bucket_counts(
    ends: "np.ndarray[object, object]", interval: float
) -> Dict[int, float]:
    """``{bucket: count}`` for event end cycles, ``bincount``-style.

    ``int(end // interval)`` per event, matching
    :meth:`IntervalSampler._bucket` exactly (ends are non-negative, so
    floor division and ``int()`` agree), then one bincount.
    """
    if ends.size == 0:
        return {}
    buckets = (ends // interval).astype(np.int64)
    counts = np.bincount(buckets)
    hot = np.flatnonzero(counts)
    return {
        int(b): float(counts[b]) for b in hot.tolist()
    }


def derive_sampler(stream: OpStream, interval: float) -> IntervalSampler:
    """An :class:`IntervalSampler` as a probed replay run would fill it.

    Only op-retirement columns exist (``ops.core<i>`` and ``fences``):
    replay machines never stall, never miss, and never touch the MC,
    so those are the only probe events the reference run publishes.
    """
    sampler = IntervalSampler(interval)
    ends = op_end_cycles(stream)
    code = stream.code
    published = code != np.int8(OP_BARRIER)  # Barrier never reaches a core
    for core in range(stream.num_threads):
        col = _bucket_counts(
            ends[published & (stream.cid == np.int32(core))],
            sampler.interval,
        )
        if col:
            sampler._sum[f"ops.core{core}"] = col
    fence_col = _bucket_counts(
        ends[code == np.int8(OP_FENCE)], sampler.interval
    )
    if fence_col:
        sampler._sum["fences"] = fence_col
    return sampler


def _line_counts(
    addrs: "np.ndarray[object, object]"
) -> Dict[int, int]:
    """``{line: count}`` over element addresses, one vectorised pass."""
    if addrs.size == 0:
        return {}
    lines = addrs & ~np.int64(LINE_BYTES - 1)
    uniq, counts = np.unique(lines, return_counts=True)
    return dict(zip(uniq.tolist(), counts.tolist()))


def derive_heatmap(stream: OpStream, machine: "Machine") -> WriteHeatmap:
    """A :class:`WriteHeatmap` as a probed replay run would fill it.

    ``machine`` supplies the allocator region map the observer would
    have captured in ``on_attach`` (any machine bound to the same
    point works — the map is fixed at bind time).  The writeback map
    stays empty: replay hierarchies never produce MC traffic.
    """
    heatmap = WriteHeatmap()
    heatmap.on_attach(machine)
    code = stream.code
    heatmap._line_stores = _line_counts(
        stream.addr[code == np.int8(OP_STORE)]
    )
    flush_mask = (code == np.int8(OP_FLUSH)) | (code == np.int8(OP_FLUSHWB))
    heatmap._line_flushes = _line_counts(stream.addr[flush_mask])
    return heatmap


def derive_flame(
    stream: OpStream, root: Optional[str] = None
) -> StallFlame:
    """A :class:`StallFlame` as a probed replay run would fill it.

    Trivially empty of charges — functional timing never stalls — but
    the per-core provenance frame stacks are replayed from the
    stream's Phase ops so the instance state matches the reference
    observer exactly, not just its public totals.
    """
    flame = StallFlame(root=root)
    phase_pos = np.flatnonzero(stream.code == np.int8(OP_PHASE))
    if phase_pos.size:
        cids = stream.cid[phase_pos].tolist()
        auxes = stream.aux[phase_pos].tolist()
        labels = stream.labels
        for cid, aux in zip(cids, auxes):
            stack = flame._stacks.setdefault(int(cid), [])
            if aux >= 0:
                stack.append(labels[aux])
            elif stack:
                stack.pop()
    return flame


def _load_results(
    stream: OpStream, machine: "Machine"
) -> Dict[int, float]:
    """``{stream row -> loaded value}`` for every Load in the stream.

    A load observes the last store to its address earlier in the
    stream (global order *is* execution order) or, absent one, the
    initial architectural image.  Recovered with one sort-free
    ``searchsorted`` over combined ``(dense address, position)`` keys.
    """
    plan = schedule_plan(stream)
    init = _gather_init(stream, plan, machine)
    code = stream.code
    load_pos = np.flatnonzero(code == np.int8(OP_LOAD))
    if load_pos.size == 0:
        return {}
    store_pos = np.flatnonzero(code == np.int8(OP_STORE))
    load_dense = np.searchsorted(plan.uniq_addrs, stream.addr[load_pos])

    n = int(code.shape[0]) + 1
    out: Dict[int, float] = {}
    if store_pos.size:
        # Stores keyed (dense, position): within one dense address the
        # positions ascend, so lexsort order == sorted combined keys.
        store_keys = plan.store_dense * n + store_pos
        order = np.argsort(store_keys, kind="stable")
        sorted_keys = store_keys[order]
        sorted_values = plan.store_value[order]
        idx = np.searchsorted(sorted_keys, load_dense * n + load_pos) - 1
        prev_dense = np.where(idx >= 0, sorted_keys[idx] // n, -1)
        hit = (idx >= 0) & (prev_dense == load_dense)
        for row, ok, j, dense in zip(
            load_pos.tolist(), hit.tolist(), idx.tolist(),
            load_dense.tolist(),
        ):
            if ok:
                out[row] = float(sorted_values[j])
            else:
                if not init.arch_present[dense]:
                    raise SimulationError(
                        "stream loads an address absent from the "
                        "machine's initial image; derive on a machine "
                        "bound to the stream's own point"
                    )
                out[row] = float(init.arch_values[dense])
    else:
        for row, dense in zip(load_pos.tolist(), load_dense.tolist()):
            if not init.arch_present[dense]:
                raise SimulationError(
                    "stream loads an address absent from the machine's "
                    "initial image; derive on a machine bound to the "
                    "stream's own point"
                )
            out[row] = float(init.arch_values[dense])
    return out


def derive_recorder(
    stream: OpStream, machine: "Machine"
) -> TraceRecorder:
    """A :class:`TraceRecorder` as a probed replay run would fill it.

    ``machine`` must hold the point's *pre-run* memory image (a fresh
    bound machine, or any machine whose stream already memoised its
    init image via :func:`~repro.sim.opstream.execute_stream`) — load
    results are recovered against it.  The recorder materialises one
    :class:`OpExecuted` per non-Barrier row, so this is the one
    derivation with per-op Python cost; it exists to feed
    :func:`repro.obs.perfetto.to_chrome_trace` unchanged.
    """
    recorder = TraceRecorder()
    ends = op_end_cycles(stream)
    starts = ends - _OP_COST[stream.code.astype(np.int64)]
    results = _load_results(stream, machine)
    code = stream.code.tolist()
    ops = recorder.ops
    for row, (cid, op) in enumerate(stream.decode()):
        if code[row] == OP_BARRIER:
            continue
        ops.append(
            OpExecuted(
                core_id=cid,
                op=op,
                result=results.get(row),
                start=float(starts[row]),
                end=float(ends[row]),
            )
        )
    return recorder
