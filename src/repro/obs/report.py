"""Run manifests: what ran, under what code, and what came out.

A :class:`RunReport` is the durable record of one experiment: the full
identity of the run (workload + parameters, variant, thread count,
timing model, a hash of the machine config, the simulator code
version, the scheduling seed) next to its headline metrics and
wall-clock.  ``repro run --report-out`` writes one per run;
``repro report a.json b.json ...`` renders any set of them as a
text or markdown comparison table (with columns normalized against
the first report), replacing ad-hoc per-command printing.

Reports are plain JSON on disk — one object, sorted keys — so they
diff cleanly in version control and load anywhere.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import IO, TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.analysis.reporting import format_markdown_table, format_table
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.experiments import ExperimentResult
    from repro.sim.config import MachineConfig

#: Bumped when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1

#: Metrics the comparison table normalizes against the first report.
_NORMALIZED_METRICS = ("exec_cycles", "nvmm_writes")


def config_hash(config: "MachineConfig") -> str:
    """Short content hash of a machine config (cache-key derived)."""
    return hashlib.sha256(config.cache_key().encode()).hexdigest()[:16]


@dataclass
class RunReport:
    """Manifest + headline metrics of one experiment run."""

    workload: str
    variant: str
    num_threads: int
    engine: str
    timing: str
    config_hash: str
    code_version: str
    seed: int
    wall_clock_s: float
    metrics: Dict[str, float]
    workload_params: Dict[str, object] = field(default_factory=dict)
    #: Interval time series of the run (``ExperimentResult.intervals``)
    #: when the run was sampled; rendered as sparklines by
    #: ``repro dashboard``.
    intervals: Optional[Dict[str, object]] = None
    #: Write-attribution document (``ExperimentResult.heatmap``).
    heatmap: Optional[Dict[str, object]] = None
    #: Harness telemetry snapshot (:meth:`repro.analysis.runner.
    #: RunTelemetry.to_dict`) when the run went through an
    #: instrumented ``run_jobs`` batch.
    telemetry: Optional[Dict[str, object]] = None
    #: How stream-tier observability was actually derived:
    #: ``"stream"`` (batch derivation), ``"probe-bus"`` (fell back to
    #: per-event probes), or None (machine tier / not applicable).
    obs_path: Optional[str] = None
    #: Why a stream-tier run fell back to the probe bus (None when it
    #: did not) — surfaced so silent fallbacks stay visible when
    #: comparing results.
    obs_fallback_reason: Optional[str] = None
    schema: int = REPORT_SCHEMA_VERSION

    @classmethod
    def from_result(
        cls,
        result: "ExperimentResult",
        config: "MachineConfig",
        *,
        engine: str = "modular",
        wall_clock_s: float = 0.0,
        workload_params: Optional[Dict[str, object]] = None,
        telemetry: Optional[Dict[str, object]] = None,
    ) -> "RunReport":
        """Build the report for one ``run_variant`` outcome."""
        from repro.analysis.runner import code_version

        metrics: Dict[str, float] = {}
        for key, value in result.summary_dict().items():
            metrics[key] = float(value)
        metrics["total_writes"] = float(result.total_writes)
        for cause, count in sorted(result.writes_by_cause.items()):
            metrics[f"writes_by_cause/{cause}"] = float(count)
        for cause, cycles in sorted(result.stalls.items()):
            metrics[f"stall_cycles/{cause}"] = float(cycles)
        return cls(
            workload=result.workload,
            variant=result.variant,
            num_threads=result.num_threads,
            engine=engine,
            timing=config.timing,
            config_hash=config_hash(config),
            code_version=code_version(),
            seed=config.schedule_seed,
            wall_clock_s=round(wall_clock_s, 4),
            metrics=metrics,
            workload_params=dict(workload_params or {}),
            intervals=result.intervals,
            heatmap=result.heatmap,
            telemetry=telemetry,
            obs_path=result.obs_path,
            obs_fallback_reason=result.obs_fallback_reason,
        )

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        data = dict(data)
        schema = data.get("schema", None)
        if schema != REPORT_SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported RunReport schema {schema!r} "
                f"(this code reads schema {REPORT_SCHEMA_VERSION})"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"malformed RunReport: {exc}") from None

    def save(self, out: Union[str, IO[str]]) -> None:
        """Write the report as sorted-key JSON."""
        if isinstance(out, str):
            with open(out, "w") as fh:
                json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        else:
            json.dump(self.to_dict(), out, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "RunReport":
        """Read a report written by :meth:`save`."""
        try:
            with open(path, "r") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read RunReport {path!r}: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigError(f"RunReport {path!r} is not a JSON object")
        return cls.from_dict(data)

    def label(self) -> str:
        """Column label in comparison tables."""
        return f"{self.workload}/{self.variant}"


def render_reports(
    reports: Sequence[RunReport], fmt: str = "text"
) -> str:
    """One comparison table across ``reports`` (text or markdown).

    Rows are the union of all metrics (manifest rows first); with two
    or more reports, ``exec_cycles`` and ``nvmm_writes`` gain a
    ``(xN.NN)`` annotation normalized against the *first* report.
    """
    if not reports:
        raise ConfigError("no reports to render")
    if fmt not in ("text", "md"):
        raise ConfigError(f"unknown report format {fmt!r}; use text or md")

    base = reports[0]
    metric_names: List[str] = []
    for report in reports:
        for name in report.metrics:
            if name not in metric_names:
                metric_names.append(name)

    manifest_rows = [
        ["workload"] + [r.workload for r in reports],
        ["variant"] + [r.variant for r in reports],
        ["threads"] + [r.num_threads for r in reports],
        ["timing"] + [r.timing for r in reports],
        ["engine"] + [r.engine for r in reports],
        ["seed"] + [r.seed for r in reports],
        ["config hash"] + [r.config_hash for r in reports],
        ["code version"] + [r.code_version[:12] for r in reports],
        ["wall clock (s)"] + [r.wall_clock_s for r in reports],
    ]
    # Observability-derivation rows only when some report carries them:
    # plain machine-tier comparisons keep their pre-stream-tier shape,
    # while any stream-tier run makes a silent probe-bus fallback (and
    # its reason) visible across the whole comparison.
    if any(r.obs_path is not None for r in reports):
        manifest_rows.append(
            ["obs path"] + [r.obs_path or "-" for r in reports]
        )
    if any(r.obs_fallback_reason is not None for r in reports):
        manifest_rows.append(
            ["obs fallback"]
            + [r.obs_fallback_reason or "-" for r in reports]
        )

    metric_rows: List[List[object]] = []
    for name in sorted(metric_names):
        row: List[object] = [name]
        for report in reports:
            value = report.metrics.get(name)
            if value is None:
                row.append("-")
                continue
            cell = _fmt_metric(value)
            if (
                len(reports) > 1
                and name in _NORMALIZED_METRICS
                and base.metrics.get(name)
            ):
                cell += f" (x{value / base.metrics[name]:.3f})"
            row.append(cell)
        metric_rows.append(row)

    headers = ["metric"] + [r.label() for r in reports]
    rows = manifest_rows + metric_rows
    render = format_markdown_table if fmt == "md" else format_table
    return render(headers, rows, title="Run comparison")


def _fmt_metric(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.4g}"
