"""The regression sentinel: committed perf baselines with noise bands.

The repo's perf story so far was eyeballed — benches print tables, CI
asserts a couple of coarse floors.  This module makes the trajectory
self-detecting: ``benchmarks/baselines/`` holds one JSON per baseline
case (workload x variant at a fixed size/thread count), each recording
the mean of the gated metrics over several scheduler seeds plus a
noise band estimated from the cross-seed spread.  ``repro regress``
re-runs every case with the same code-defined machine configs and
exits non-zero when a gated metric lands above its band — an
out-of-band execution-time slowdown or write-amp growth fails CI
instead of slipping through a table nobody reads.

Design notes:

* The per-seed machine configs come from :func:`baseline_config` — in
  code, not in the baseline file — so a deliberate machine-model change
  shows up as a regression to acknowledge (via ``--update-baselines``),
  never as silently incomparable numbers.  The config hash and code
  digest in the file are informational.
* The simulator is deterministic per seed, so the cross-seed spread
  (scheduler jitter is enabled) is the *real* variation a re-run can
  see; the band is that spread times a margin, floored at
  :data:`MIN_BAND` so a zero-spread case still tolerates trivia.
* Baselines ratchet: ``--update-baselines`` rewrites the files from a
  fresh measurement, and the diff is reviewed like any other code
  change.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.config import MachineConfig, scaled_machine

#: Bumped when the baseline file layout changes incompatibly.
BASELINE_SCHEMA_VERSION = 1

#: Metrics the sentinel gates (drawn from ExperimentResult).
GATED_METRICS = ("exec_cycles", "total_writes")

#: Minimum relative noise band, even for zero cross-seed spread.
MIN_BAND = 0.02

#: Band = max(MIN_BAND, BAND_MARGIN * relative cross-seed spread).
BAND_MARGIN = 1.5

#: Scheduler seeds each case is measured under.
BASELINE_SEEDS = (1, 2, 3)

#: Scheduling jitter for baseline runs: nonzero so the seeds actually
#: produce distinct interleavings and the band reflects real variance.
BASELINE_JITTER = 0.5


def baseline_config(seed: int, timing: str = "detailed") -> MachineConfig:
    """The machine config baseline cases run under, per seed.

    Code-defined on purpose (see module docstring): 2 worker threads
    on a 3-core scaled machine with scheduling jitter enabled.
    """
    config = scaled_machine(num_cores=3)
    return replace(
        config,
        schedule_seed=seed,
        schedule_jitter=BASELINE_JITTER,
        timing=timing,
    )


def mistimed(config: MachineConfig, factor: float) -> MachineConfig:
    """A config with core-issue latencies scaled by ``factor``.

    The injected-slowdown path: ``repro regress --mistime 1.1``
    proves the sentinel trips on a synthetic ~10% execution-time
    regression without touching any committed code.
    """
    if factor <= 0:
        raise ConfigError(f"mistime factor must be positive, got {factor}")
    core = config.core
    return replace(
        config,
        core=replace(
            core,
            compute_cpi=core.compute_cpi * factor,
            l1_hit_issue_cycles=core.l1_hit_issue_cycles * factor,
            store_drain_cycles=core.store_drain_cycles * factor,
            flush_issue_cycles=core.flush_issue_cycles * factor,
        ),
    )


@dataclass(frozen=True)
class BaselineCase:
    """One gated point: a workload x variant at fixed size/threads."""

    case_id: str
    workload: str
    params: Tuple[Tuple[str, int], ...]
    variant: str
    num_threads: int = 2

    def build_workload(self):
        from repro.workloads import get_workload

        return get_workload(self.workload)(**dict(self.params))


def _suite() -> Tuple[BaselineCase, ...]:
    sizes: Dict[str, Tuple[Tuple[str, int], ...]] = {
        "tmm": (("n", 24), ("bsize", 8), ("kk_tiles", 2)),
        "fft": (("n", 128),),
        "gauss": (("n", 24), ("row_block", 4)),
        "cholesky": (("n", 24), ("col_block", 4)),
        "conv2d": (("n", 16), ("row_block", 2)),
        "log": (("records", 32), ("width", 4), ("wb_batch", 8)),
        "hashmap": (
            ("capacity", 16),
            ("ops", 64),
            ("keys", 4),
            ("wb_batch", 8),
        ),
    }
    cases = []
    for workload, params in sizes.items():
        for variant in ("base", "lp", "ep"):
            cases.append(
                BaselineCase(
                    case_id=f"{workload}-{variant}",
                    workload=workload,
                    params=params,
                    variant=variant,
                )
            )
    return tuple(cases)


#: The committed suite: every workload x (base, lp, ep) at small-but-
#: not-smoke sizes, 2 worker threads.
DEFAULT_SUITE: Tuple[BaselineCase, ...] = _suite()


@dataclass
class Baseline:
    """One committed baseline record (one JSON file)."""

    case_id: str
    #: The measured workload, as a :func:`repro.analysis.runner.
    #: workload_spec` dict — authoritative for re-runs.
    spec: Dict[str, object]
    variant: str
    num_threads: int
    seeds: List[int]
    timing: str
    #: metric -> {"mean": .., "band": .., "per_seed": [..]}.
    metrics: Dict[str, Dict[str, object]]
    #: Informational: the config/code the measurement ran under.
    config_hash: str = ""
    code: str = ""
    schema: int = BASELINE_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Baseline":
        data = dict(data)
        schema = data.get("schema")
        if schema != BASELINE_SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported baseline schema {schema!r} (this code "
                f"reads schema {BASELINE_SCHEMA_VERSION})"
            )
        names = {f.name for f in fields(cls)}
        extra = set(data) - names
        if extra:
            raise ConfigError(
                f"unknown baseline fields: {sorted(extra)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"malformed baseline: {exc}") from None


class BaselineStore:
    """Directory of baseline JSONs (``benchmarks/baselines/`` in CI)."""

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, case_id: str) -> str:
        return os.path.join(self.root, f"{case_id}.json")

    def case_ids(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.root, name), "r") as fh:
                    data = json.load(fh)
            except (OSError, ValueError):
                # Unreadable files still surface as errors at load().
                out.append(name[: -len(".json")])
                continue
            if isinstance(data, dict) and "schema" not in data:
                # Not a baseline record: the directory also holds other
                # committed gate artifacts (e.g. throughput_floor.json,
                # the ratchet floor for the op-stream interpreter).
                continue
            out.append(name[: -len(".json")])
        return out

    def load(self, case_id: str) -> Baseline:
        path = self.path(case_id)
        try:
            with open(path, "r") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ConfigError(
                f"cannot read baseline {path!r}: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise ConfigError(f"baseline {path!r} is not a JSON object")
        return Baseline.from_dict(data)

    def save(self, baseline: Baseline) -> str:
        os.makedirs(self.root, exist_ok=True)
        path = self.path(baseline.case_id)
        with open(path, "w") as fh:
            json.dump(baseline.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


# ----------------------------------------------------------------------
# measurement and comparison
# ----------------------------------------------------------------------


def _metric_values(results) -> Dict[str, List[float]]:
    out: Dict[str, List[float]] = {m: [] for m in GATED_METRICS}
    for result in results:
        out["exec_cycles"].append(float(result.exec_cycles))
        out["total_writes"].append(float(result.total_writes))
    return out


def _case_jobs(
    workload,
    variant: str,
    num_threads: int,
    seeds,
    timing: str,
    mistime: Optional[float] = None,
):
    from repro.analysis.runner import Job

    jobs = []
    for seed in seeds:
        config = baseline_config(seed, timing=timing)
        if mistime is not None:
            config = mistimed(config, mistime)
        jobs.append(
            Job(
                workload,
                config,
                variant,
                num_threads=num_threads,
                drain=True,
            )
        )
    return jobs


def measure_case(
    case: BaselineCase,
    timing: str = "detailed",
    n_jobs: int = 1,
    cache=None,
) -> Baseline:
    """Measure one case across the baseline seeds into a Baseline."""
    from repro.analysis.runner import code_version, run_jobs, workload_spec
    from repro.obs.report import config_hash

    workload = case.build_workload()
    jobs = _case_jobs(
        workload, case.variant, case.num_threads, BASELINE_SEEDS, timing
    )
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    metrics: Dict[str, Dict[str, object]] = {}
    for name, values in _metric_values(results).items():
        mean = sum(values) / len(values)
        spread = (max(values) - min(values)) / mean if mean else 0.0
        metrics[name] = {
            "mean": mean,
            "band": max(MIN_BAND, BAND_MARGIN * spread),
            "per_seed": values,
        }
    return Baseline(
        case_id=case.case_id,
        spec=workload_spec(workload),
        variant=case.variant,
        num_threads=case.num_threads,
        seeds=list(BASELINE_SEEDS),
        timing=timing,
        metrics=metrics,
        config_hash=config_hash(baseline_config(BASELINE_SEEDS[0], timing)),
        code=code_version(),
    )


@dataclass
class Verdict:
    """One gated metric's fresh-vs-baseline outcome."""

    case_id: str
    metric: str
    baseline_mean: float
    band: float
    fresh_mean: float
    regressed: bool

    @property
    def ratio(self) -> float:
        if self.baseline_mean == 0:
            return float("inf") if self.fresh_mean else 1.0
        return self.fresh_mean / self.baseline_mean


def compare_case(
    baseline: Baseline,
    n_jobs: int = 1,
    cache=None,
    mistime: Optional[float] = None,
) -> List[Verdict]:
    """Re-run one baseline case and judge each gated metric.

    The workload is rebuilt from the stored spec; the machine configs
    are rebuilt from code (:func:`baseline_config`), so the comparison
    measures *code* drift, exactly what a CI gate should.  ``mistime``
    scales core latencies on the fresh side only — the injected-
    slowdown proof that the gate actually trips.
    """
    from repro.analysis.runner import run_jobs, workload_from_spec

    workload = workload_from_spec(baseline.spec)
    jobs = _case_jobs(
        workload,
        baseline.variant,
        baseline.num_threads,
        baseline.seeds,
        baseline.timing,
        mistime=mistime,
    )
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    verdicts = []
    for name, values in _metric_values(results).items():
        recorded = baseline.metrics.get(name)
        if recorded is None:
            continue
        mean = float(recorded["mean"])  # type: ignore[arg-type]
        band = float(recorded["band"])  # type: ignore[arg-type]
        fresh = sum(values) / len(values)
        verdicts.append(
            Verdict(
                case_id=baseline.case_id,
                metric=name,
                baseline_mean=mean,
                band=band,
                fresh_mean=fresh,
                regressed=fresh > mean * (1.0 + band),
            )
        )
    return verdicts


@dataclass
class RegressionReport:
    """All verdicts of one ``repro regress`` invocation."""

    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        from repro.analysis.reporting import format_table

        rows = []
        for v in self.verdicts:
            rows.append(
                [
                    v.case_id,
                    v.metric,
                    f"{v.baseline_mean:.1f}",
                    f"{v.fresh_mean:.1f}",
                    f"x{v.ratio:.3f}",
                    f"±{v.band * 100:.1f}%",
                    "REGRESSED" if v.regressed else "ok",
                ]
            )
        table = format_table(
            ["case", "metric", "baseline", "fresh", "ratio", "band",
             "verdict"],
            rows,
            title="Regression sentinel",
        )
        tail = (
            f"\n{len(self.regressions)} of {len(self.verdicts)} gated "
            "metrics out of band"
            if self.regressions
            else "\nall gated metrics within their noise bands"
        )
        return table + tail
