"""Machine configuration for the simulator.

The defaults mirror Table II of the paper (gem5 machine) and Table III
(real AMD system), plus a ``scaled_machine`` preset whose cache sizes are
shrunk in proportion to the scaled-down problem sizes a pure-Python
simulator can drive.  Every experiment knob the paper sweeps (NVMM
latencies, L2 size, core count, checksum kind) is a field here or a
benchmark parameter.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

from repro.errors import ConfigError
from repro.sim.model import DEFAULT_MODEL, PERSISTENCY_MODELS, get_model

#: Cache line size in bytes.  Fixed at 64B throughout the paper.
LINE_BYTES = 64

#: Size of one array element in bytes (we model 64-bit values).
ELEMENT_BYTES = 8

#: Elements per cache line.
ELEMS_PER_LINE = LINE_BYTES // ELEMENT_BYTES


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    hit_cycles: float
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache size and associativity must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"cache of {self.size_bytes}B is not divisible into "
                f"{self.ways}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class NVMMConfig:
    """NVMM device and memory-controller parameters.

    Latencies follow Table II: 150ns read / 300ns write at a 2GHz core
    clock (300 / 600 cycles).  ``write_service_cycles`` models internal
    bank parallelism: the per-write occupancy of the device write pipe,
    which is what bounds sustained write bandwidth (a full 600-cycle
    occupancy per write would make even the non-persistent baseline
    write-bound, which the paper's machine is not).
    """

    read_cycles: float = 300.0
    write_cycles: float = 600.0
    write_service_cycles: float = 20.0
    read_service_cycles: float = 10.0
    write_queue_depth: int = 64
    read_queue_depth: int = 32
    #: ADR: a write accepted into the MC write queue is durable (paper II-A).
    adr: bool = True

    def __post_init__(self) -> None:
        if self.read_cycles < 0 or self.write_cycles < 0:
            raise ConfigError("NVMM latencies must be non-negative")
        if self.write_queue_depth <= 0 or self.read_queue_depth <= 0:
            raise ConfigError("MC queue depths must be positive")


@dataclass(frozen=True)
class CoreConfig:
    """Per-core pipeline cost model.

    The paper's cores are 4-wide out-of-order (ROB 196, LSQ 48).  We use
    an in-order engine with throughput-style issue costs for hits and
    bounded asynchronous structures (store buffer, flush queue, MSHRs)
    whose backpressure produces the structural-hazard behaviour of
    Table VI.  See DESIGN.md section 4.
    """

    issue_width: int = 4
    #: Cycles charged per arithmetic op (1 / issue_width by default).
    compute_cpi: float = 0.25
    #: Issue cost of a load/store that hits in the L1 (two ports, pipelined).
    l1_hit_issue_cycles: float = 0.5
    #: Cycles to drain one store-buffer entry into an L1-resident line.
    store_drain_cycles: float = 1.0
    #: Issue cost of clflushopt / clwb (completion is asynchronous).
    flush_issue_cycles: float = 1.0
    mshr_entries: int = 8
    store_buffer_entries: int = 48
    flush_queue_entries: int = 8
    #: In-flight slots representing scheduler/FU capacity; compute ops that
    #: issue while this many async ops are outstanding count an FUI hazard.
    fu_pressure_threshold: int = 4

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigError("issue width must be positive")
        if self.mshr_entries <= 0 or self.store_buffer_entries <= 0:
            raise ConfigError("MSHR and store buffer must have entries")


@dataclass(frozen=True)
class MachineConfig:
    """Full machine: cores + cache hierarchy + NVMM."""

    num_cores: int = 9
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 8, hit_cycles=2.0)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, hit_cycles=11.0)
    )
    nvmm: NVMMConfig = field(default_factory=NVMMConfig)
    #: Penalty for a cache-to-cache transfer / upgrade (directory round trip).
    coherence_cycles: float = 11.0
    #: Cycles for a flushed line to travel from the caches into the MC's
    #: ADR-protected write queue (L2 access + interconnect).  This is the
    #: latency a following sfence must wait out per in-flight clflushopt,
    #: and the dominant per-flush cost of Eager Persistency.
    flush_transit_cycles: float = 40.0
    #: Address-space size in bytes (flat, line-aligned allocations).
    memory_bytes: int = 1 << 30
    #: Scheduling jitter in cycles: cores within this window of the
    #: minimum clock may be picked in a (seeded) random order.  0 means
    #: strict min-clock scheduling.  Used to stress recovery and
    #: coherence under many interleavings; timing runs keep it at 0.
    schedule_jitter: float = 0.0
    schedule_seed: int = 0
    #: Timing model (see :mod:`repro.sim.timing`): ``"detailed"`` is
    #: the Table II machine every performance figure uses;
    #: ``"functional"`` is the zero-latency round-robin model crash
    #: -state campaigns run on.  Part of :meth:`cache_key`, so results
    #: from different models never alias in the experiment cache.
    timing: str = "detailed"
    #: Persistency model (see :mod:`repro.sim.model`): who owns the
    #: persistence domain and what flush/fence mean.  ``"adr"`` is the
    #: paper's platform and the default every pre-existing artifact ran
    #: under; :meth:`cache_key` omits the field at its default so those
    #: artifacts stay byte-identical.
    model: str = DEFAULT_MODEL

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("need at least one core")
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigError("L1 and L2 must share a line size")
        if self.timing not in ("detailed", "functional"):
            raise ConfigError(
                f"unknown timing model {self.timing!r}; "
                "expected 'detailed' or 'functional'"
            )
        if self.model not in PERSISTENCY_MODELS:
            raise ConfigError(
                f"unknown persistency model {self.model!r}; "
                f"available: {', '.join(PERSISTENCY_MODELS)}"
            )
        # nvmm.adr=False predates the model axis and means exactly the
        # pre-ADR platform.  Forbid contradictory combinations; the
        # resolved_model property folds the legacy flag in.
        if self.model == "pre_adr" and self.nvmm.adr:
            raise ConfigError(
                "model='pre_adr' requires nvmm.adr=False "
                "(use MachineConfig.with_model to set both)"
            )
        if not self.nvmm.adr and self.model not in ("adr", "pre_adr"):
            raise ConfigError(
                f"nvmm.adr=False (the pre-ADR platform) contradicts "
                f"model={self.model!r}"
            )

    def with_l2_size(self, size_bytes: int) -> "MachineConfig":
        """Return a copy with a different L2 capacity (Fig 15a sweep)."""
        return replace(self, l2=replace(self.l2, size_bytes=size_bytes))

    def with_nvmm_latency(
        self, read_cycles: float, write_cycles: float
    ) -> "MachineConfig":
        """Return a copy with different NVMM latencies (Fig 14a sweep).

        Device service (bank occupancy) rates scale with the cell
        latencies: a slower NVMM drains its write queue more slowly,
        which is what turns higher write latency into flush/fence
        backpressure for Eager Persistency (the Figure 14a trend).
        """
        scale_w = write_cycles / self.nvmm.write_cycles
        scale_r = read_cycles / self.nvmm.read_cycles
        return replace(
            self,
            nvmm=replace(
                self.nvmm,
                read_cycles=read_cycles,
                write_cycles=write_cycles,
                write_service_cycles=self.nvmm.write_service_cycles * scale_w,
                read_service_cycles=self.nvmm.read_service_cycles * scale_r,
            ),
        )

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Return a copy with a different core count (Fig 14b sweep)."""
        return replace(self, num_cores=num_cores)

    def with_timing(self, timing: str) -> "MachineConfig":
        """Return a copy running under a different timing model."""
        return replace(self, timing=timing)

    def with_model(self, model: str) -> "MachineConfig":
        """Return a copy running under a different persistency model.

        Keeps the legacy ``nvmm.adr`` flag consistent: the pre-ADR
        platform is the one model where durability waits for device
        completion (MC undo records), and that is what ``adr=False``
        has always meant.
        """
        m = get_model(model)
        return replace(
            self,
            model=model,
            nvmm=replace(self.nvmm, adr=not m.mc_undo),
        )

    @property
    def resolved_model(self) -> str:
        """The persistency model actually in effect.

        Folds the legacy ``nvmm.adr=False`` spelling (which predates
        the model axis) into the model namespace: an explicit
        ``adr=False`` with the default model means the pre-ADR
        platform.
        """
        if not self.nvmm.adr and self.model == "adr":
            return "pre_adr"
        return self.model

    def cache_key(self) -> str:
        """Canonical serialization of every timing-relevant field.

        Two configs that simulate identically produce the same string,
        and any field change produces a different one — this is the
        config component of the experiment result cache's content hash
        (see :mod:`repro.analysis.runner`).  Keys are sorted and floats
        rendered by ``repr`` so the encoding is stable across processes
        and Python versions.

        ``model`` is omitted at its default ("adr") so every artifact
        hashed before the model axis existed keeps its key — the same
        omit-when-default discipline the runner applies to
        ``obs_interval`` and ``provenance``.
        """
        payload = asdict(self)
        if payload["model"] == DEFAULT_MODEL:
            del payload["model"]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def paper_machine(num_cores: int = 9) -> MachineConfig:
    """The Table II gem5 machine: 64KB L1, 512KB shared L2, NVMM 150/300ns."""
    return MachineConfig(num_cores=num_cores)


def scaled_machine(num_cores: int = 9) -> MachineConfig:
    """Table II scaled for Python-sized problems.

    Problem sizes in this reproduction are ~16x smaller per dimension
    than the paper's (e.g. TMM 96x96 vs 1024x1024), so cache capacities
    are scaled to keep the working-set-to-cache ratio in the same
    regime: the output matrix must overflow the L2 between outer-loop
    passes, and a handful of tiles must fit in the L1.
    """
    return MachineConfig(
        num_cores=num_cores,
        l1=CacheConfig(4 * 1024, 8, hit_cycles=2.0),
        l2=CacheConfig(48 * 1024, 8, hit_cycles=11.0),
    )


def tiny_machine(num_cores: int = 4) -> MachineConfig:
    """A deliberately small machine for crash-state enumeration.

    Crashcheck campaigns re-run recovery once per reachable NVMM image,
    so they want the smallest machine that still exercises the full
    stack: few cores, caches small enough that evictions and dirty
    lines actually occur at toy problem sizes, and the standard NVMM
    timing.  Not a performance preset — timing experiments use the
    scaled/paper machines.
    """
    return MachineConfig(
        num_cores=num_cores,
        l1=CacheConfig(1 * 1024, 2, hit_cycles=2.0),
        l2=CacheConfig(4 * 1024, 4, hit_cycles=11.0),
    )


def real_system_machine(num_cores: int = 9) -> MachineConfig:
    """The Table III AMD Opteron DRAM machine (Table VII experiment).

    DRAM-like latencies, a large last-level cache, and no persistency
    concern: Table VII only measures the instruction overhead of the
    checksum computation, so this preset makes memory cheap and caches
    big relative to the scaled working sets.
    """
    return MachineConfig(
        num_cores=num_cores,
        l1=CacheConfig(8 * 1024, 8, hit_cycles=2.0),
        l2=CacheConfig(128 * 1024, 8, hit_cycles=11.0),
        nvmm=NVMMConfig(
            read_cycles=120.0,
            write_cycles=120.0,
            write_service_cycles=16.0,
            read_service_cycles=16.0,
        ),
    )
