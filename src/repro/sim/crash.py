"""Crash injection helpers.

A crash is modelled exactly as the paper assumes: execution stops at an
arbitrary point, all volatile state (caches, store buffers, in-flight
ops) is lost, and the NVMM image — everything the ADR-protected memory
controller accepted — survives.  Recovery code then runs on a fresh
machine whose architectural state equals that image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.machine import Machine, RunResult, ThreadGen
from repro.sim.persist import CrashStateSpace


@dataclass(frozen=True)
class CrashPlan:
    """Where to stop the run.  Exactly one trigger must be set.

    ``at_flush`` stops right after the Nth flush op — a persist
    boundary, where a just-accepted flush has no ordering fence behind
    it yet and the reachable-image set is at its widest.  Crash-state
    campaigns sweep it alongside coarse ``at_op`` grids.
    """

    at_op: Optional[int] = None
    at_cycle: Optional[float] = None
    at_mark: Optional[int] = None
    at_flush: Optional[int] = None

    def __post_init__(self) -> None:
        triggers = [
            t
            for t in (self.at_op, self.at_cycle, self.at_mark, self.at_flush)
            if t is not None
        ]
        if len(triggers) != 1:
            raise ConfigError("CrashPlan needs exactly one trigger")


def run_with_crash(
    machine: Machine,
    threads: Iterable[ThreadGen],
    plan: CrashPlan,
) -> Tuple[RunResult, Machine]:
    """Run until the crash point; return the result and the post-crash
    machine (cold caches, NVMM image as architectural state).

    If the workload finishes before the trigger fires, the run result's
    ``crashed`` flag is False and the returned machine reflects a
    graceful end (the caller decides whether to treat that as a test
    failure or a no-crash control case).
    """
    result = machine.run(
        threads,
        crash_at_op=plan.at_op,
        crash_at_cycle=plan.at_cycle,
        crash_at_mark=plan.at_mark,
        crash_at_flush=plan.at_flush,
    )
    return result, machine.after_crash()


def run_to_crash_space(
    machine: Machine,
    threads: Iterable[ThreadGen],
    plan: CrashPlan,
) -> Tuple[RunResult, Optional[CrashStateSpace]]:
    """Run until the crash point and snapshot the *set* of reachable
    NVMM images (see :meth:`Machine.crash_state_space`).

    Returns ``(result, space)``; ``space`` is None when the workload
    finished before the trigger fired (nothing crashed, nothing to
    enumerate).  This is the model-checking counterpart of
    :func:`run_with_crash`, which commits to the single image the
    simulated schedule produced.
    """
    result = machine.run(
        threads,
        crash_at_op=plan.at_op,
        crash_at_cycle=plan.at_cycle,
        crash_at_mark=plan.at_mark,
        crash_at_flush=plan.at_flush,
    )
    if not result.crashed:
        return result, None
    return result, machine.crash_state_space()
