"""Pre-decoded op streams: the replay fast path, compiled.

A trigger-free replay run is a pure function of (workload, config,
variant): the functional model's round-robin schedule is deterministic,
every store's value is embedded in the :class:`~repro.sim.isa.Store` op
itself, and loads feed only the coroutine that issued them.  So the
whole run can be *decoded once* — drive the workload coroutines through
:meth:`Machine.run <repro.sim.machine.Machine.run>` recording the
global interleaved op order — and every later run of the same point
becomes interpretation of a flat, integer-coded stream with no
generator resumption, no dataclass dispatch, and no per-op Python at
all on the bulk path.

The stream format is five parallel numpy arrays (one row per executed
op, in global execution order):

======== ========= ====================================================
array    dtype     meaning
======== ========= ====================================================
code     int8      opcode (:data:`repro.sim.isa.OPCODES`)
cid      int32     issuing core
addr     int64     element address (Load/Store) or line address
                   operand (Flush/FlushWB); 0 otherwise
value    float64   stored value (Store) or flops (Compute); 0 otherwise
aux      int32     index into ``labels`` for RegionMark/Phase labels and
                   Compute kinds; -1 = no label (a Phase pop)
======== ========= ====================================================

:func:`execute_stream` interprets a stream on a fresh replay machine
with **array-backed state**: architectural and persistent values live
in dense float64 arrays (one slot per distinct address the stream or
the machine's initial image touches) with present-bit arrays alongside
— the array form of :class:`~repro.sim.valuestore.MemoryState`'s two
dicts.  Execution is batched at persist boundaries: every run of
non-flush ops between two Flush/FlushWB ops applies its stores with one
fancy-indexed assignment (numpy guarantees the last value wins on
duplicate indices, which is exactly program order within a segment),
and each flush then copies its line's present elements arch ->
persistent, the array form of
:meth:`~repro.sim.valuestore.MemoryState.persist_line`.  Consecutive
flushes with no stores between them collapse into one vectorised copy.
Clocks and counters are reconstructed exactly (see
:class:`_SchedulePlan`): every op costs one functional cycle except
RegionMark/Phase (free) and Barrier (free, but a barrier round
synchronises all parked cores to the latest arrival) — the same
invariant :meth:`Machine._run_replay` inlines, pinned bit-identical by
``tests/verify/test_stream_equivalence.py``.

Streams are cached on disk by :func:`repro.analysis.runner.
cached_op_stream` under a content-addressed key that includes
:func:`~repro.analysis.runner.code_version`, so editing the simulator
or a workload invalidates every stale stream automatically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.sim.config import ELEMENT_BYTES, LINE_BYTES
from repro.sim.isa import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_FENCE,
    OP_FLUSH,
    OP_FLUSHWB,
    OP_LOAD,
    OP_MARK,
    OP_PHASE,
    OP_STORE,
    OP_TYPES,
    OPCODES,
    Barrier,
    Compute,
    Fence,
    Flush,
    FlushWB,
    Load,
    Op,
    Phase,
    RegionMark,
    Store,
)

if TYPE_CHECKING:  # circular at runtime: machine imports this lazily
    from repro.sim.machine import Machine, RunResult

#: Bumped whenever the on-disk stream layout changes.
STREAM_FORMAT_VERSION = 1

_ELEMS_PER_LINE = LINE_BYTES // ELEMENT_BYTES

#: Functional cycle cost per opcode (index = opcode): one cycle for
#: every op except the free RegionMark/Phase/Barrier.
_OP_COST = np.array(
    [1, 1, 1, 1, 1, 1, 0, 0, 0], dtype=np.int64
)

#: Number of opcodes (row stride for the per-core x per-opcode bincount).
_NUM_OPCODES = len(OP_TYPES)


# ----------------------------------------------------------------------
# encoding / decoding
# ----------------------------------------------------------------------


@dataclass
class OpStream:
    """One run's ops, flat and integer-coded, in global execution order."""

    num_threads: int
    code: "np.ndarray[Any, Any]"
    cid: "np.ndarray[Any, Any]"
    addr: "np.ndarray[Any, Any]"
    value: "np.ndarray[Any, Any]"
    aux: "np.ndarray[Any, Any]"
    labels: List[str]
    #: Derived interpreter state, built lazily on first execution and
    #: reused across runs (it depends only on the stream itself plus
    #: the initial memory image, which the cache key fixes).
    _plan: Optional["_SchedulePlan"] = field(
        default=None, repr=False, compare=False
    )
    _init: Optional["_InitImage"] = field(
        default=None, repr=False, compare=False
    )
    #: Per-op functional end clocks (see :func:`op_end_cycles`), built
    #: on demand by the stream-derived observability layer.
    _op_end: Optional["np.ndarray[Any, Any]"] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return int(self.code.shape[0])

    def decode(self) -> List[Tuple[int, Op]]:
        """Rebuild ``(core_id, op)`` pairs; exact inverse of encoding.

        Per-op Python, for tests and offline inspection only — the
        interpreter never materialises op objects.
        """
        out: List[Tuple[int, Op]] = []
        labels = self.labels
        code = self.code.tolist()
        cids = self.cid.tolist()
        addrs = self.addr.tolist()
        values = self.value.tolist()
        auxes = self.aux.tolist()
        for i in range(len(code)):
            opc = code[i]
            op: Op
            if opc == OP_LOAD:
                op = Load(addrs[i])
            elif opc == OP_STORE:
                op = Store(addrs[i], values[i])
            elif opc == OP_COMPUTE:
                op = Compute(values[i], labels[auxes[i]])
            elif opc == OP_FLUSH:
                op = Flush(addrs[i])
            elif opc == OP_FLUSHWB:
                op = FlushWB(addrs[i])
            elif opc == OP_FENCE:
                op = Fence()
            elif opc == OP_MARK:
                op = RegionMark(labels[auxes[i]])
            elif opc == OP_PHASE:
                aux = auxes[i]
                op = Phase(labels[aux] if aux >= 0 else None)
            elif opc == OP_BARRIER:
                op = Barrier()
            else:
                raise SimulationError(f"unknown opcode {opc} at row {i}")
            out.append((cids[i], op))
        return out


def encode_ops(
    records: Iterable[Tuple[int, Op]], num_threads: int
) -> OpStream:
    """Flatten ``(core_id, op)`` pairs into an :class:`OpStream`."""
    codes: List[int] = []
    cids: List[int] = []
    addrs: List[int] = []
    values: List[float] = []
    auxes: List[int] = []
    labels: List[str] = []
    label_index: Dict[str, int] = {}

    def intern(label: Optional[str]) -> int:
        if label is None:
            return -1
        idx = label_index.get(label)
        if idx is None:
            idx = len(labels)
            label_index[label] = idx
            labels.append(label)
        return idx

    for cid, op in records:
        opc = OPCODES.get(type(op))
        if opc is None:
            raise SimulationError(f"op {op!r} has no stream opcode")
        addr = 0
        value = 0.0
        aux = -1
        if opc == OP_LOAD:
            addr = op.addr  # type: ignore[union-attr]
        elif opc == OP_STORE:
            addr = op.addr  # type: ignore[union-attr]
            value = op.value  # type: ignore[union-attr]
        elif opc == OP_COMPUTE:
            value = op.flops  # type: ignore[union-attr]
            aux = intern(op.kind)  # type: ignore[union-attr]
        elif opc in (OP_FLUSH, OP_FLUSHWB):
            addr = op.addr  # type: ignore[union-attr]
        elif opc in (OP_MARK, OP_PHASE):
            aux = intern(op.label)  # type: ignore[union-attr]
        codes.append(opc)
        cids.append(cid)
        addrs.append(addr)
        values.append(value)
        auxes.append(aux)

    return OpStream(
        num_threads=num_threads,
        code=np.array(codes, dtype=np.int8),
        cid=np.array(cids, dtype=np.int32),
        addr=np.array(addrs, dtype=np.int64),
        value=np.array(values, dtype=np.float64),
        aux=np.array(auxes, dtype=np.int32),
        labels=labels,
    )


# ----------------------------------------------------------------------
# recording (the one decode pass)
# ----------------------------------------------------------------------


def _recording_gen(
    cid: int,
    gen: Generator[Op, Optional[float], None],
    sink: List[Tuple[int, Op]],
) -> Generator[Op, Optional[float], None]:
    """Forward ``gen`` unchanged while appending each pulled op to
    ``sink`` — the sink ends up in global execution order because the
    scheduler pulls exactly the op it is about to execute."""
    result: Optional[float] = None
    while True:
        try:
            op = gen.send(result)
        except StopIteration:
            return
        sink.append((cid, op))
        result = yield op


def record_stream(
    machine: "Machine",
    threads: Iterable[Generator[Op, Optional[float], None]],
) -> Tuple[OpStream, "RunResult"]:
    """The decode pass: run ``threads`` on ``machine`` once, recording
    the globally interleaved op order, and encode it as an
    :class:`OpStream`.

    ``machine`` must be a trigger-free replay machine (the stream
    format bakes in the functional model's deterministic schedule).
    The machine is consumed: its memory holds the run's final state and
    the returned :class:`RunResult` is the run's own, so recording
    costs exactly one ordinary replay run plus the encode pass.
    """
    if not machine.replay:
        raise ConfigError(
            "op streams encode the replay schedule; record on a "
            "Machine(_replay=True)"
        )
    if machine.cleaner is not None or machine.on_mark is not None:
        raise ConfigError(
            "op-stream recording requires a trigger-free run "
            "(no cleaner, no on_mark hook)"
        )
    sink: List[Tuple[int, Op]] = []
    gens = [
        _recording_gen(cid, gen, sink)
        for cid, gen in enumerate(threads)
    ]
    result = machine.run(gens)
    if result.finished_threads < result.total_threads:
        raise SimulationError(
            f"only {result.finished_threads}/{result.total_threads} "
            "threads finished (deadlocked barrier?); such a run is not "
            "a replayable op stream"
        )
    return encode_ops(sink, len(gens)), result


# ----------------------------------------------------------------------
# the interpreter's derived state
# ----------------------------------------------------------------------


@dataclass
class _SchedulePlan:
    """Everything about a stream that does not depend on memory values:
    per-core counters, reconstructed functional clocks, store/flush
    positions, the dense address index, and the segment table.

    Built once per stream (a few vectorised passes) and reused by every
    execution."""

    # per-core counters, index = core id
    ops: "np.ndarray[Any, Any]"
    loads: "np.ndarray[Any, Any]"
    stores: "np.ndarray[Any, Any]"
    computes: "np.ndarray[Any, Any]"
    flushes: "np.ndarray[Any, Any]"
    fences: "np.ndarray[Any, Any]"
    cycles: "np.ndarray[Any, Any]"
    # run totals
    region_marks: int
    flush_ops: int
    # dense address space: sorted distinct element addresses
    uniq_addrs: "np.ndarray[Any, Any]"
    # stores, in stream order: global position, dense index, value
    store_dense: "np.ndarray[Any, Any]"
    store_value: "np.ndarray[Any, Any]"
    # flush segment table: flushes grouped by identical store prefix.
    # group g covers flushes [group_start[g], group_end[g]) in flush
    # order; group_stores[g] is how many stores precede the group.
    flush_elems: "np.ndarray[Any, Any]"  # (F, 8) dense idx of line elems
    group_stores: "np.ndarray[Any, Any]"
    group_start: "np.ndarray[Any, Any]"
    group_end: "np.ndarray[Any, Any]"


def _reconstruct_cycles(
    code: "np.ndarray[Any, Any]",
    cid: "np.ndarray[Any, Any]",
    num_threads: int,
) -> "np.ndarray[Any, Any]":
    """Final per-core functional clocks, including barrier releases.

    Between barrier rounds each core's clock advances by its number of
    costed ops; a barrier round parks every core still running (those
    with another Barrier in their stream) and releases them at the
    latest arrival.  Barrier rounds partition the stream: a parked core
    issues nothing until its round's last barrier has been pulled, so
    counting costed ops in the global window between round boundaries
    attributes every op to the right side of every release.
    """
    costed = _OP_COST[code.astype(np.int64)]
    if num_threads == 1:
        return np.array([float(np.sum(costed))])

    clock = np.zeros(num_threads, dtype=np.float64)
    barrier_pos = np.flatnonzero(code == OP_BARRIER)
    if barrier_pos.size == 0:
        np.add.at(clock, cid[costed.astype(bool)], 1.0)
        return clock

    barrier_cid = cid[barrier_pos]
    rounds = int(np.bincount(barrier_cid, minlength=num_threads).max())
    # r-th barrier position per core (-1 where a core has fewer rounds)
    pos_by_round = np.full((rounds, num_threads), -1, dtype=np.int64)
    seen = [0] * num_threads
    for pos, core in zip(barrier_pos.tolist(), barrier_cid.tolist()):
        pos_by_round[seen[core]][core] = pos
        seen[core] += 1

    # costed-op positions per core, for windowed counting
    per_core_pos = [
        np.flatnonzero((cid == core) & costed.astype(bool))
        for core in range(num_threads)
    ]
    edges = [0]
    parked_sets = []
    for r in range(rounds):
        parked = np.flatnonzero(pos_by_round[r] >= 0)
        parked_sets.append(parked)
        edges.append(int(pos_by_round[r].max()) + 1)
    edges.append(int(code.shape[0]))
    # cumulative costed counts per core at each edge
    cum = [
        np.searchsorted(per_core_pos[core], edges)
        for core in range(num_threads)
    ]
    for r in range(rounds):
        for core in range(num_threads):
            clock[core] += float(cum[core][r + 1] - cum[core][r])
        parked = parked_sets[r]
        clock[parked] = float(clock[parked].max())
    for core in range(num_threads):
        clock[core] += float(cum[core][rounds + 1] - cum[core][rounds])
    return clock


def _build_plan(stream: OpStream) -> _SchedulePlan:
    code = stream.code.astype(np.int64)
    cid = stream.cid.astype(np.int64)
    num_threads = stream.num_threads

    per = np.bincount(
        cid * _NUM_OPCODES + code,
        minlength=num_threads * _NUM_OPCODES,
    ).reshape(num_threads, _NUM_OPCODES)

    store_mask = code == OP_STORE
    flush_mask = (code == OP_FLUSH) | (code == OP_FLUSHWB)
    store_pos = np.flatnonzero(store_mask)
    flush_pos = np.flatnonzero(flush_mask)

    # Dense address space: every address a load/store/flush names, plus
    # every element of every flushed line (persist_line copies whatever
    # of the line the architectural map holds, named or not).
    addr_mask = store_mask | (code == OP_LOAD) | flush_mask
    touched = stream.addr[addr_mask]
    flush_lines = stream.addr[flush_pos] & ~np.int64(LINE_BYTES - 1)
    line_elems = (
        flush_lines[:, None]
        + np.arange(_ELEMS_PER_LINE, dtype=np.int64)[None, :] * ELEMENT_BYTES
    )
    uniq_addrs = np.unique(np.concatenate([touched, line_elems.ravel()]))

    store_dense = np.searchsorted(uniq_addrs, stream.addr[store_pos])
    flush_elems = np.searchsorted(uniq_addrs, line_elems)

    # Segment table: number of stores preceding each flush; flushes
    # sharing that count have no stores between them and collapse into
    # one vectorised persist.
    stores_before = np.searchsorted(store_pos, flush_pos)
    if flush_pos.size:
        change = np.flatnonzero(np.diff(stores_before)) + 1
        group_start = np.concatenate([[0], change])
        group_end = np.concatenate([change, [flush_pos.size]])
        group_stores = stores_before[group_start]
    else:
        group_start = np.zeros(0, dtype=np.int64)
        group_end = np.zeros(0, dtype=np.int64)
        group_stores = np.zeros(0, dtype=np.int64)

    return _SchedulePlan(
        ops=per.sum(axis=1),
        loads=per[:, OP_LOAD],
        stores=per[:, OP_STORE],
        computes=per[:, OP_COMPUTE],
        flushes=per[:, OP_FLUSH] + per[:, OP_FLUSHWB],
        fences=per[:, OP_FENCE],
        cycles=_reconstruct_cycles(code, cid, num_threads),
        region_marks=int(per[:, OP_MARK].sum()),
        flush_ops=int(flush_pos.size),
        uniq_addrs=uniq_addrs,
        store_dense=store_dense,
        store_value=stream.value[store_pos],
        flush_elems=flush_elems,
        group_stores=group_stores,
        group_start=group_start,
        group_end=group_end,
    )


def schedule_plan(stream: OpStream) -> _SchedulePlan:
    """The stream's memoised :class:`_SchedulePlan`, built on demand.

    The plan depends only on the stream itself, so it is shared between
    the interpreter (:func:`execute_stream`) and the stream-derived
    observability layer (:mod:`repro.obs.streamobs`).
    """
    plan = stream._plan
    if plan is None:
        plan = _build_plan(stream)
        stream._plan = plan
    return plan


def op_end_cycles(stream: OpStream) -> "np.ndarray[Any, Any]":
    """Per-op functional end clocks, one float64 per stream row.

    ``op_end_cycles(stream)[i]`` is the issuing core's clock *after*
    row ``i`` executes under the replay schedule — exactly the ``end``
    field the probe bus publishes in ``OpExecuted`` when the same run
    goes through the general loop on a probed replay machine (the op's
    start is ``end - cost``, where free ops cost zero).  Built with the
    same barrier-round bookkeeping as :func:`_reconstruct_cycles`: each
    core's clock is an inclusive prefix sum of costed ops plus a
    per-round offset, where a barrier round parks every core that still
    has a barrier in its stream and releases them all at the latest
    arrival; Barrier rows themselves end at the release clock.

    Memoised on the stream (``stream._op_end``); treat the returned
    array as read-only.
    """
    cached = stream._op_end
    if cached is not None:
        return cached
    code = stream.code.astype(np.int64)
    cid = stream.cid.astype(np.int64)
    num_threads = stream.num_threads
    cost = _OP_COST[code]
    n = int(code.shape[0])

    # Inclusive per-core prefix sums of op cost, in stream order.
    local = np.zeros(n, dtype=np.float64)
    core_positions: List["np.ndarray[Any, Any]"] = []
    for core in range(num_threads):
        pos = np.flatnonzero(cid == core)
        core_positions.append(pos)
        local[pos] = np.cumsum(cost[pos])

    ends = local.copy()
    barrier_pos = np.flatnonzero(code == OP_BARRIER)
    if barrier_pos.size:
        barrier_cid = cid[barrier_pos]
        rounds = int(np.bincount(barrier_cid, minlength=num_threads).max())
        pos_by_round = np.full((rounds, num_threads), -1, dtype=np.int64)
        seen = [0] * num_threads
        for pos_i, core in zip(barrier_pos.tolist(), barrier_cid.tolist()):
            pos_by_round[seen[core]][core] = pos_i
            seen[core] += 1
        # offsets[c][k] is core c's clock offset after its k-th barrier
        # (k = 0: before any barrier); releases[r] is round r's release.
        offset = np.zeros(num_threads, dtype=np.float64)
        offsets: List[List[float]] = [[0.0] for _ in range(num_threads)]
        releases = np.zeros(rounds, dtype=np.float64)
        for r in range(rounds):
            parked = np.flatnonzero(pos_by_round[r] >= 0)
            arrive = offset[parked] + local[pos_by_round[r][parked]]
            release = float(arrive.max())
            releases[r] = release
            offset[parked] = release - local[pos_by_round[r][parked]]
            for c in parked.tolist():
                offsets[c].append(float(offset[c]))
        for core in range(num_threads):
            pos = core_positions[core]
            if pos.size == 0:
                continue
            own_barriers = pos_by_round[:, core]
            own_barriers = own_barriers[own_barriers >= 0]
            k = np.searchsorted(own_barriers, pos, side="left")
            ends[pos] = np.asarray(offsets[core], dtype=np.float64)[k] + local[pos]
        for r in range(rounds):
            parked_rows = pos_by_round[r][pos_by_round[r] >= 0]
            ends[parked_rows] = releases[r]
    stream._op_end = ends
    return ends


@dataclass
class _InitImage:
    """The machine's pre-run memory image, gathered into the dense
    address space: the array-backed form of the two MemoryState dicts.

    Memoised on the stream after the first execution; the cache-key
    contract (one stream per workload x config x variant) guarantees
    every machine a stream runs on starts from the same image, which
    ``_gather_init`` spot-checks via the fingerprint.
    """

    fingerprint: Tuple[int, int]
    arch_values: "np.ndarray[Any, Any]"
    arch_present: "np.ndarray[Any, Any]"
    pers_values: "np.ndarray[Any, Any]"
    pers_present: "np.ndarray[Any, Any]"


def _gather_init(
    stream: OpStream, plan: _SchedulePlan, machine: "Machine"
) -> _InitImage:
    mem = machine.mem
    fingerprint = (len(mem.arch), len(mem.persistent))
    cached = stream._init
    if cached is not None and cached.fingerprint == fingerprint:
        return cached

    uniq = plan.uniq_addrs.tolist()
    size = len(uniq)
    arch_values = np.zeros(size, dtype=np.float64)
    arch_present = np.zeros(size, dtype=bool)
    pers_values = np.zeros(size, dtype=np.float64)
    pers_present = np.zeros(size, dtype=bool)
    arch = mem.arch
    persistent = mem.persistent
    for i, a in enumerate(uniq):
        v = arch.get(a)
        if v is not None:
            arch_values[i] = v
            arch_present[i] = True
        p = persistent.get(a)
        if p is not None:
            pers_values[i] = p
            pers_present[i] = True
    init = _InitImage(
        fingerprint, arch_values, arch_present, pers_values, pers_present
    )
    stream._init = init
    return init


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


def execute_stream(machine: "Machine", stream: OpStream) -> "RunResult":
    """Interpret ``stream`` on a fresh replay machine.

    Bit-identical to driving the original coroutines through
    :meth:`Machine.run <repro.sim.machine.Machine.run>`: same final
    architectural and persistent memory, same MachineStats counters,
    same per-core clocks (``tests/verify/test_stream_equivalence.py``
    pins all three against the generator loop, which is itself pinned
    against the heap scheduler).

    The machine must start from the same initial image the recording
    machine was bound with — guaranteed when both came from the same
    (workload, config, variant) point, which is what the stream cache
    keys on.
    """
    from repro.sim.machine import RunResult

    if not machine.replay:
        raise ConfigError("op streams execute on replay machines only")
    if machine.cleaner is not None or machine.on_mark is not None:
        raise ConfigError(
            "op-stream execution is trigger-free (no cleaner/on_mark)"
        )
    if stream.num_threads > machine.config.num_cores:
        raise ConfigError(
            f"stream has {stream.num_threads} threads but the machine "
            f"only {machine.config.num_cores} cores"
        )
    if any(c.clock for c in machine.cores) or any(
        c.ops for c in machine.stats.per_core
    ):
        raise ConfigError(
            "op streams replay whole runs; execute on a fresh machine"
        )

    plan = schedule_plan(stream)
    init = _gather_init(stream, plan, machine)

    # -- memory semantics: batched stores, vectorised persists ---------
    arch_values = init.arch_values.copy()
    arch_present = init.arch_present.copy()
    pers_values = init.pers_values.copy()
    pers_present = init.pers_present.copy()

    store_dense = plan.store_dense
    store_value = plan.store_value
    flush_elems = plan.flush_elems
    done = 0
    for g in range(plan.group_start.shape[0]):
        upto = plan.group_stores[g]
        if upto > done:
            seg_idx = store_dense[done:upto]
            arch_values[seg_idx] = store_value[done:upto]
            arch_present[seg_idx] = True
            done = upto
        elems = flush_elems[plan.group_start[g]:plan.group_end[g]].ravel()
        hot = elems[arch_present[elems]]
        pers_values[hot] = arch_values[hot]
        pers_present[hot] = True
    if done < store_dense.shape[0]:
        seg_idx = store_dense[done:]
        arch_values[seg_idx] = store_value[done:]
        arch_present[seg_idx] = True

    if machine.mem.persist_on_store:
        # eADR-class models: every store was durable the instant it
        # executed, so each stored address's final persistent value is
        # its final architectural value.  Fancy assignment is last-wins
        # in position order, so one bulk pass lands exactly what the
        # incremental replay loop's per-store persists produce (the
        # interleaved flush copies above are then redundant for stored
        # addresses, as they are in the replay loop).
        pers_values[store_dense] = store_value
        pers_present[store_dense] = True

    machine.mem.apply_updates(
        _as_map(plan.uniq_addrs, arch_values, arch_present),
        _as_map(plan.uniq_addrs, pers_values, pers_present),
    )

    # -- clocks and counters -------------------------------------------
    stats = machine.stats
    for core_id in range(stream.num_threads):
        per_core = stats.per_core[core_id]
        per_core.ops += int(plan.ops[core_id])
        per_core.loads += int(plan.loads[core_id])
        per_core.stores += int(plan.stores[core_id])
        per_core.computes += int(plan.computes[core_id])
        per_core.flushes += int(plan.flushes[core_id])
        per_core.fences += int(plan.fences[core_id])
        # every replay-machine access is an architectural L1 hit
        per_core.l1_hits += int(plan.loads[core_id] + plan.stores[core_id])
        machine.cores[core_id].timer.advance(float(plan.cycles[core_id]))
        per_core.cycles = machine.cores[core_id].clock

    return RunResult(
        stats=stats,
        crashed=False,
        ops_executed=len(stream),
        region_marks=plan.region_marks,
        finished_threads=stream.num_threads,
        total_threads=stream.num_threads,
        flush_ops=plan.flush_ops,
    )


def _as_map(
    addrs: "np.ndarray[Any, Any]",
    values: "np.ndarray[Any, Any]",
    present: "np.ndarray[Any, Any]",
) -> Dict[int, float]:
    """Materialise one dense value array back into an address map."""
    idx = np.flatnonzero(present)
    return dict(zip(addrs[idx].tolist(), values[idx].tolist()))


# ----------------------------------------------------------------------
# on-disk format
# ----------------------------------------------------------------------


def save_stream(stream: OpStream, path: str) -> None:
    """Write a stream as a compressed ``.npz`` (no pickling)."""
    np.savez_compressed(
        path,
        format=np.int64(STREAM_FORMAT_VERSION),
        num_threads=np.int64(stream.num_threads),
        code=stream.code,
        cid=stream.cid,
        addr=stream.addr,
        value=stream.value,
        aux=stream.aux,
        labels=np.array(json.dumps(stream.labels)),
    )


def load_stream(path: str) -> OpStream:
    """Read a stream written by :func:`save_stream`.

    Raises ``ValueError`` on any malformed or version-mismatched file,
    so cache layers can treat corruption as a miss.
    """
    with np.load(path, allow_pickle=False) as data:
        if int(data["format"]) != STREAM_FORMAT_VERSION:
            raise ValueError(
                f"stream format {int(data['format'])} != "
                f"{STREAM_FORMAT_VERSION}"
            )
        labels = json.loads(str(data["labels"]))
        if not isinstance(labels, list):
            raise ValueError("malformed label table")
        return OpStream(
            num_threads=int(data["num_threads"]),
            code=data["code"],
            cid=data["cid"],
            addr=data["addr"],
            value=data["value"],
            aux=data["aux"],
            labels=labels,
        )
