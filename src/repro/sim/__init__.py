"""Multicore cache-hierarchy / NVMM simulator substrate.

This subpackage is the stand-in for the paper's gem5+Ruby testbed: an
execution-driven simulator with per-core L1 caches, a shared inclusive
L2, MESI-style coherence, bounded MSHR/store-buffer structures, a memory
controller whose write queue is in the ADR persistence domain, and an
NVMM device with asymmetric read/write latencies.

The public surface re-exported here is everything workloads and the
persistency runtime need; deeper internals stay in their modules.
"""

from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    NVMMConfig,
    paper_machine,
    real_system_machine,
    scaled_machine,
)
from repro.sim.isa import (
    Barrier,
    Compute,
    Fence,
    Flush,
    FlushWB,
    Load,
    RegionMark,
    Store,
)
from repro.sim.machine import Machine, RunResult
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.stats import MachineStats

__all__ = [
    "Barrier",
    "PeriodicCleaner",
    "CacheConfig",
    "CoreConfig",
    "MachineConfig",
    "NVMMConfig",
    "paper_machine",
    "real_system_machine",
    "scaled_machine",
    "Compute",
    "Fence",
    "Flush",
    "FlushWB",
    "Load",
    "RegionMark",
    "Store",
    "Machine",
    "RunResult",
    "CrashPlan",
    "run_with_crash",
    "MachineStats",
]
