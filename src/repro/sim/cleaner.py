"""Periodic hardware cache cleanup (paper section III-E.1, Figure 11).

The paper's proposed hardware support writes back (without evicting)
all dirty blocks every ``T`` cycles, spacing the writebacks out in the
background so the performance impact is negligible while bounding the
recovery time: after a crash, at most the last period's worth of
regions can be inconsistent.

``period_cycles`` is the paper's "time between flushes"; Figure 11
expresses it as a fraction of total execution time, which the
Fig 11 bench computes from a baseline run.

The cleaner is timing-model-agnostic: it talks to the memory system
through the :class:`~repro.sim.coherence.MemorySystem` surface and is
driven by whatever clock the active timing model advances.  Under
:class:`~repro.sim.timing.FastFunctional` every op costs one cycle, so
a functional-mode period of ``N`` means "every N ops" — campaign code
that sweeps periods should size them against the active timing model's
clock, not assume detailed cycles.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.coherence import MemorySystem


class PeriodicCleaner:
    """Writes back all dirty lines every ``period_cycles``."""

    def __init__(self, period_cycles: float) -> None:
        if period_cycles <= 0:
            raise ConfigError("cleaner period must be positive")
        self.period_cycles = period_cycles
        self._next_due = period_cycles
        self.cleanups = 0
        self.lines_written = 0

    def maybe_clean(self, hierarchy: MemorySystem, now: float) -> int:
        """Run a cleanup pass if the period has elapsed.

        Returns the number of lines written in this call.  Multiple
        missed periods collapse into one pass (the blocks are the same
        dirty blocks either way).

        Probe tap point (``CleanerPass``): ``repro.obs`` wraps this
        method and publishes one event per pass actually taken
        (detected via the ``cleanups`` counter).
        """
        if now < self._next_due:
            return 0
        written = hierarchy.clean_all(now, cause="cleaner")
        self.cleanups += 1
        self.lines_written += written
        while self._next_due <= now:
            self._next_due += self.period_cycles
        return written

    @property
    def recovery_bound_cycles(self) -> float:
        """Upper bound on volatility duration the cleaner guarantees."""
        return 2.0 * self.period_cycles
