"""Set-associative write-back cache with LRU replacement.

One :class:`Cache` instance models either a private L1 or the shared L2.
Lines carry a MESI state; the coherence protocol in
:mod:`repro.sim.coherence` drives the state transitions, this module
only provides the storage structure (lookup, install, evict, LRU).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.sim.config import CacheConfig


class State(enum.Enum):
    """MESI line states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    # INVALID lines are simply absent from the cache.


@dataclass
class Line:
    """One resident cache line."""

    addr: int
    state: State
    #: Cycle at which the line's data first diverged from NVMM, for
    #: volatility-duration accounting; None while clean.
    dirty_since: Optional[float] = None
    last_used: int = 0

    @property
    def dirty(self) -> bool:
        return self.state is State.MODIFIED


_lru_clock = itertools.count(1)


class Cache:
    """Set-associative store of :class:`Line` objects."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: List[Dict[int, Line]] = [
            {} for _ in range(config.num_sets)
        ]

    # -- geometry ---------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        """Set index the line address maps to."""
        return (line_addr // self.config.line_bytes) % self.config.num_sets

    def _set_of(self, line_addr: int) -> Dict[int, Line]:
        return self._sets[self.set_index(line_addr)]

    # -- lookups ----------------------------------------------------------

    def get(self, line_addr: int) -> Optional[Line]:
        """Return the resident line, or None, without touching LRU."""
        return self._set_of(line_addr).get(line_addr)

    def access(self, line_addr: int) -> Optional[Line]:
        """Lookup that refreshes LRU on hit."""
        line = self.get(line_addr)
        if line is not None:
            line.last_used = next(_lru_clock)
        return line

    def contains(self, line_addr: int) -> bool:
        """True if the line is resident (no LRU update)."""
        return line_addr in self._set_of(line_addr)

    # -- mutation ---------------------------------------------------------

    def install(self, line_addr: int, state: State) -> Line:
        """Insert a line; the set must have room (evict first)."""
        cset = self._set_of(line_addr)
        if line_addr in cset:
            raise SimulationError(
                f"{self.name}: double install of line {line_addr:#x}"
            )
        if len(cset) >= self.config.ways:
            raise SimulationError(
                f"{self.name}: set full installing {line_addr:#x}; "
                "victim must be evicted first"
            )
        line = Line(addr=line_addr, state=state, last_used=next(_lru_clock))
        cset[line_addr] = line
        return line

    def victim_for(self, line_addr: int) -> Optional[Line]:
        """The LRU line that must leave before ``line_addr`` can install."""
        cset = self._set_of(line_addr)
        if len(cset) < self.config.ways or line_addr in cset:
            return None
        return min(cset.values(), key=lambda ln: ln.last_used)

    def remove(self, line_addr: int) -> Line:
        """Evict a resident line; returns it."""
        cset = self._set_of(line_addr)
        try:
            return cset.pop(line_addr)
        except KeyError:
            raise SimulationError(
                f"{self.name}: removing absent line {line_addr:#x}"
            ) from None

    def drop_all(self) -> None:
        """Invalidate the whole cache (used by crash rebuild and tests)."""
        for cset in self._sets:
            cset.clear()

    # -- iteration --------------------------------------------------------

    def lines(self) -> Iterator[Line]:
        """Iterate all resident lines."""
        for cset in self._sets:
            yield from cset.values()

    def dirty_lines(self) -> Iterator[Line]:
        """Iterate resident MODIFIED lines."""
        return (ln for ln in self.lines() if ln.dirty)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
