"""Flat address space and allocator.

All persistent data lives in one flat byte-addressed space.  Values are
modelled at 8-byte element granularity (doubles / int64); cache lines
are 64 bytes, so one line holds eight elements.  The allocator hands out
line-aligned regions so distinct arrays never share a cache line, which
matches how persistent heaps align allocations in practice and keeps
false sharing out of the reproduction unless a workload asks for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.errors import AddressError
from repro.sim.config import ELEMENT_BYTES, LINE_BYTES


def line_of(addr: int) -> int:
    """The line-aligned base address containing ``addr``."""
    return addr & ~(LINE_BYTES - 1)


def element_addrs_of_line(line_addr: int) -> range:
    """Element-aligned addresses covered by the line at ``line_addr``."""
    return range(line_addr, line_addr + LINE_BYTES, ELEMENT_BYTES)


def is_element_aligned(addr: int) -> bool:
    """True if ``addr`` is 8-byte (element) aligned."""
    return addr % ELEMENT_BYTES == 0


@dataclass(frozen=True)
class Region:
    """A contiguous allocated region of persistent memory."""

    name: str
    base: int
    num_elements: int

    @property
    def size_bytes(self) -> int:
        return self.num_elements * ELEMENT_BYTES

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def addr(self, index: int) -> int:
        """Element address for a flat index into this region."""
        if not 0 <= index < self.num_elements:
            raise AddressError(
                f"index {index} out of range for region {self.name!r} "
                f"of {self.num_elements} elements"
            )
        return self.base + index * ELEMENT_BYTES

    def element_addrs(self) -> Iterator[int]:
        """Element addresses of this region, in order."""
        return iter(range(self.base, self.end, ELEMENT_BYTES))

    def lines(self) -> Iterator[int]:
        """Line base addresses covering this region."""
        return iter(range(line_of(self.base), self.end, LINE_BYTES))


class Allocator:
    """Bump allocator over the flat space; allocations are line-aligned."""

    def __init__(self, memory_bytes: int, base: int = LINE_BYTES) -> None:
        # Start at one line in so that address 0 is never valid data;
        # a zero address showing up in the hierarchy is then always a bug.
        self._next = base
        self._limit = memory_bytes
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, num_elements: int) -> Region:
        """Allocate ``num_elements`` under ``name``; line-aligned."""
        if num_elements <= 0:
            raise AddressError(f"cannot allocate {num_elements} elements")
        if name in self._regions:
            raise AddressError(f"region name {name!r} already allocated")
        base = self._next
        size = num_elements * ELEMENT_BYTES
        # Round region size up to whole lines so regions never share lines.
        padded = (size + LINE_BYTES - 1) & ~(LINE_BYTES - 1)
        if base + padded > self._limit:
            raise AddressError(
                f"out of simulated memory allocating {name!r} "
                f"({padded}B at {base:#x}, limit {self._limit:#x})"
            )
        self._next = base + padded
        region = Region(name=name, base=base, num_elements=num_elements)
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up a region by name; raises AddressError if absent."""
        try:
            return self._regions[name]
        except KeyError:
            raise AddressError(f"no region named {name!r}") from None

    @property
    def regions(self) -> Dict[str, Region]:
        return dict(self._regions)

    @property
    def bytes_allocated(self) -> int:
        return self._next - LINE_BYTES
