"""Persist-order tracking: which NVMM writes are *guaranteed* durable
at a crash, and which are still reorderable under ADR.

The base simulator commits a line's data to the persistent image the
moment the memory controller accepts it, and a crash keeps exactly that
image.  That models one *schedule*, but a real crash exposes a **set**
of NVMM images:

* ``clflushopt``/``clwb`` are weakly ordered — a flush whose following
  ``sfence`` has not retired may or may not have reached the ADR
  domain when power fails;
* a dirty cache line can be written back by the hardware at *any*
  moment, so each dirty line at the crash may or may not have made it
  to the MC with its current data, independent of every other line.

This module records, during a run, the information needed to
reconstruct that set exactly:

* **floor** — writes that are durable in *every* reachable image:
  natural evictions, cleaner/drain writebacks (ADR accepts them
  directly), and flushes ordered by a completed ``sfence``;
* **pending flush events** — MC-accepted flushes whose fence had not
  retired; each may independently be present or absent (subject to
  same-line ordering below);
* **dirty-line events** — lines still dirty in the hierarchy at the
  crash, discovered by the crash snapshot;
* **persist-order edges** — same-line events form a chain (an older
  version of a line can only be observed if no newer persist of that
  line happened; choosing a newer event subsumes the older ones), so a
  reachable image corresponds to a *downward-closed* subset (an order
  ideal) of the event graph.

:class:`CrashStateSpace` is the crash-time snapshot consumed by
:mod:`repro.verify` to enumerate and check every reachable image.

The rules above are ADR's; the tracker is parameterised by a
:class:`~repro.sim.model.PersistencyModel` that bends them per model:

* eADR-class models (``persist_on_store``) have no reorderable window
  at all — every store is durable, so the space collapses to the
  single full-architectural image;
* epoch persistency (``epoch_edges``) turns fences into *ordering*
  marks instead of commits: accepted flushes stay pending forever, but
  a flush from a core's epoch N+1 can only persist if every flush from
  its epoch N did (extra cross-line edges);
* the pre-ADR platform is not enumerable — durability is governed by
  device completion times and the in-flight undo machinery in
  :mod:`repro.sim.nvmm` — so :meth:`PersistOrderTracker.snapshot`
  refuses to run (``ConfigError`` naming the models that do support
  enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.address import element_addrs_of_line
from repro.sim.model import enumerable_model_names, get_model
from repro.sim.valuestore import MemoryState

#: Event kinds.
KIND_FLUSH = "flush"
KIND_DIRTY = "dirty"


@dataclass(frozen=True)
class PersistEvent:
    """One potentially-durable NVMM write that a crash may or may not
    have made visible."""

    #: Stable id; ids increase in persist order along each line's chain.
    eid: int
    line_addr: int
    kind: str
    #: Issuing core for flushes (fence scoping); None for dirty lines.
    core_id: Optional[int]
    #: MC accept time (flush) or crash time (dirty line).
    time: float
    #: Element values this event makes persistent if it "happened".
    values: Dict[int, float]
    #: Persistent values it overwrote (``None`` = address was absent);
    #: only flush events carry this (their effect must be undoable).
    prior: Dict[int, Optional[float]] = field(default_factory=dict)


@dataclass
class CrashStateSpace:
    """Everything reachable from one crash point.

    ``floor`` maps element address -> value durable in every image.
    ``events`` are the reorderable persists; ``edges`` is a list of
    ``(before_eid, after_eid)`` pairs meaning *after* can only be in an
    image if *before* is (same-line version chains).  Images are in
    bijection with the order ideals of this DAG, up to value collisions.
    """

    floor: Dict[int, float]
    events: List[PersistEvent]
    edges: List[Tuple[int, int]]
    crash_time: float = 0.0

    @property
    def num_events(self) -> int:
        return len(self.events)

    def event(self, eid: int) -> PersistEvent:
        for ev in self.events:
            if ev.eid == eid:
                return ev
        raise KeyError(f"no persist event with id {eid}")

    def image_for(self, chosen_eids: Iterable[int]) -> Dict[int, float]:
        """Materialize the NVMM image for a downward-closed event set.

        Events apply in id order; same-line chains have increasing ids,
        so the newest chosen version of each line wins.
        """
        chosen = set(chosen_eids)
        image = dict(self.floor)
        for ev in self.events:
            if ev.eid in chosen:
                image.update(ev.values)
        return image

    def schedule_eids(self) -> List[int]:
        """Events the simulator's own schedule persisted (all pending
        flushes, no extra dirty-line writebacks) — the image the plain
        single-image crash path observes."""
        return [ev.eid for ev in self.events if ev.kind == KIND_FLUSH]

    def signature(self) -> Tuple[Tuple[object, ...], ...]:
        """Canonical, time-independent form of the space.

        Two spaces with equal signatures expose exactly the same
        reachable-image set: the floor, each line's event version
        chain (kind, issuing core and persisted values, in chain
        order), and the order edges rewritten as ``(line, chain
        position)`` pairs.  Event ids and accept/crash *times* — the
        parts a timing model is free to change — are excluded, which
        is what lets the equivalence tests compare spaces produced by
        different :class:`~repro.sim.timing.TimingModel` pipelines.
        """
        pos: Dict[int, Tuple[int, int]] = {}
        chains: Dict[int, List[PersistEvent]] = {}
        for ev in sorted(self.events, key=lambda e: e.eid):
            chain = chains.setdefault(ev.line_addr, [])
            pos[ev.eid] = (ev.line_addr, len(chain))
            chain.append(ev)
        lines = tuple(
            (
                line_addr,
                tuple(
                    (
                        ev.kind,
                        ev.core_id,
                        tuple(sorted(ev.values.items())),
                        tuple(sorted(ev.prior.items())),
                    )
                    for ev in chain
                ),
            )
            for line_addr, chain in sorted(chains.items())
        )
        edges = tuple(sorted((pos[a], pos[b]) for a, b in self.edges))
        floor = tuple(sorted(self.floor.items()))
        return (floor, lines, edges)


class PersistOrderTracker:
    """Runtime recorder of pending (unfenced) flush persists.

    The memory controller calls :meth:`on_accept` for every write it
    accepts; cores call :meth:`on_fence` when an ``sfence`` retires.
    Dirty lines are not tracked during the run — they are discovered by
    the crash snapshot from the cache hierarchy.
    """

    def __init__(
        self,
        mem: MemoryState,
        model: str = "adr",
        *,
        adr: Optional[bool] = None,
    ) -> None:
        # ``adr=`` predates the model axis: adr=True is the default ADR
        # platform, adr=False the pre-ADR one.  Kept so existing
        # constructions keep meaning what they always did.
        if adr is not None:
            model = "adr" if adr else "pre_adr"
        self.mem = mem
        self.model = get_model(model)
        self._next_eid = 0
        #: Pending flush events, in acceptance order.
        self._pending: List[PersistEvent] = []
        #: eid -> issuing core's epoch counter at accept (epoch models).
        self._epoch_of: Dict[int, int] = {}
        #: Per-core epoch counter, bumped by each retired fence.
        self._core_epoch: Dict[int, int] = {}

    @property
    def adr(self) -> bool:
        """Legacy view: True unless this is the pre-ADR platform."""
        return not self.model.mc_undo

    # -- hooks ------------------------------------------------------------

    def on_accept(
        self,
        line_addr: int,
        cause: str,
        core_id: Optional[int],
        accept_time: float,
    ) -> None:
        """Called by the MC *before* it copies the line's data into the
        persistent image."""
        if self.model.persist_on_store:
            # Caches are inside the persistence domain: the data this
            # write carries was durable the moment it was stored, so
            # there is never a reorderable window to track.
            self._absorb_line(line_addr)
            return
        if cause == "flush" and core_id is not None:
            prior = {
                addr: self.mem.persistent.get(addr)
                for addr in element_addrs_of_line(line_addr)
            }
            values = {
                addr: self.mem.arch[addr]
                for addr in element_addrs_of_line(line_addr)
                if addr in self.mem.arch
            }
            self._pending.append(
                PersistEvent(
                    eid=self._next_eid,
                    line_addr=line_addr,
                    kind=KIND_FLUSH,
                    core_id=core_id,
                    time=accept_time,
                    values=values,
                    prior=prior,
                )
            )
            if self.model.epoch_edges:
                self._epoch_of[self._next_eid] = self._core_epoch.get(
                    core_id, 0
                )
            self._next_eid += 1
            return
        # Evictions, the cleaner, and drains are hardware writebacks the
        # ADR domain accepted: durable, and they supersede any older
        # uncertainty about this line.
        self._absorb_line(line_addr)

    def on_fence(self, core_id: int, now: float) -> None:
        """An sfence retired on ``core_id``.

        Under ADR it orders that core's accepted flushes into the
        persistence domain — durable for sure.  Under epoch persistency
        it only closes the core's current epoch: pending flushes stay
        reorderable, but later epochs' persists will be constrained to
        come after them (see :meth:`snapshot`).  Broken no-fence
        variants ignore it entirely.
        """
        if self.model.epoch_edges:
            self._core_epoch[core_id] = self._core_epoch.get(core_id, 0) + 1
            return
        if not self.model.fence_commits:
            return
        committed = [
            ev
            for ev in self._pending
            if ev.core_id == core_id and ev.time <= now
        ]
        if not committed:
            return
        # A committed flush's line durably holds its data, so an *older*
        # pending flush of the same line (e.g. another core's, before
        # ownership migrated) can never be observed any more — absorb
        # it, or the snapshot floor would wrongly undo the committed
        # values on its behalf.  Newer pending flushes of the line stay:
        # their prior values are the committed ones, which is exactly
        # what undoing them restores.
        committed_eids = {ev.eid for ev in committed}
        newest_committed: Dict[int, int] = {}
        for ev in committed:
            newest_committed[ev.line_addr] = ev.eid
        self._pending = [
            ev
            for ev in self._pending
            if ev.eid not in committed_eids
            and ev.eid > newest_committed.get(ev.line_addr, -1)
        ]

    def _absorb_line(self, line_addr: int) -> None:
        self._pending = [
            ev for ev in self._pending if ev.line_addr != line_addr
        ]

    # -- introspection ----------------------------------------------------

    @property
    def pending_flush_count(self) -> int:
        return len(self._pending)

    def pending_lines(self) -> List[int]:
        """Line addresses with at least one unfenced flush outstanding."""
        return sorted({ev.line_addr for ev in self._pending})

    # -- crash snapshot ---------------------------------------------------

    def snapshot(
        self, dirty_line_addrs: Iterable[int], crash_time: float
    ) -> CrashStateSpace:
        """Build the reachable-image space at a crash.

        ``dirty_line_addrs`` is the hierarchy's dirty-line set at the
        crash instant; their *current architectural* values are what a
        last-moment hardware writeback would have persisted.
        """
        if not self.model.enumerable:
            raise ConfigError(
                f"crash-state enumeration is not defined for the "
                f"{self.model.name!r} persistency model: its durability "
                f"is completion-timed (MC undo records), not "
                f"order-ideal-shaped. Models that support enumeration: "
                f"{', '.join(enumerable_model_names())}"
            )
        if self.model.persist_on_store:
            # Every store was durable the instant it executed: the
            # persistent image *is* the architectural state and there
            # is exactly one reachable crash image.
            return CrashStateSpace(
                floor=dict(self.mem.persistent),
                events=[],
                edges=[],
                crash_time=crash_time,
            )
        # Floor: the persistent image with every pending (unfenced)
        # flush undone, newest-first so overlapping flushes restore the
        # oldest surviving values.
        floor = dict(self.mem.persistent)
        for ev in reversed(self._pending):
            for addr, value in ev.prior.items():
                if value is None:
                    floor.pop(addr, None)
                else:
                    floor[addr] = value

        events: List[PersistEvent] = list(self._pending)
        for line_addr in sorted(dirty_line_addrs):
            values = {
                addr: self.mem.arch[addr]
                for addr in element_addrs_of_line(line_addr)
                if addr in self.mem.arch
            }
            if not values:
                continue
            events.append(
                PersistEvent(
                    eid=self._next_eid,
                    line_addr=line_addr,
                    kind=KIND_DIRTY,
                    core_id=None,
                    time=crash_time,
                    values=values,
                )
            )
            self._next_eid += 1

        # Same-line chains: an event is only observable if every older
        # event on the same line also "happened" (its values are what
        # the newer write overwrote on the way to the MC).
        edges: List[Tuple[int, int]] = []
        by_line: Dict[int, List[PersistEvent]] = {}
        for ev in sorted(events, key=lambda e: e.eid):
            chain = by_line.setdefault(ev.line_addr, [])
            if chain:
                edges.append((chain[-1].eid, ev.eid))
            chain.append(ev)

        if self.model.epoch_edges:
            # Epoch persistency: within one core, a flush from epoch
            # N+1 can only persist if every flush from the core's
            # previous non-empty epoch did.  Adjacent non-empty epochs
            # get the complete bipartite edge set; transitivity covers
            # the rest.  Dirty-line writebacks are hardware-initiated
            # and stay unordered (beyond same-line chains).
            seen = {(a, b) for a, b in edges}
            by_core: Dict[int, Dict[int, List[PersistEvent]]] = {}
            for ev in events:
                if ev.kind != KIND_FLUSH or ev.core_id is None:
                    continue
                epochs = by_core.setdefault(ev.core_id, {})
                epochs.setdefault(self._epoch_of.get(ev.eid, 0), []).append(ev)
            for epochs in by_core.values():
                ordered = [epochs[e] for e in sorted(epochs)]
                for older, newer in zip(ordered, ordered[1:]):
                    for before in older:
                        for after in newer:
                            if (before.eid, after.eid) not in seen:
                                seen.add((before.eid, after.eid))
                                edges.append((before.eid, after.eid))

        return CrashStateSpace(
            floor=floor,
            events=sorted(events, key=lambda e: e.eid),
            edges=edges,
            crash_time=crash_time,
        )
