"""Lightweight op tracing for debugging and white-box tests.

There is one tracing path: the probe bus (:mod:`repro.obs`).  A
:class:`Trace` is a minimal observer of its ``op`` channel — it
defines ``on_op`` and the bus's duck-typed subscription picks it up
without this module importing ``repro.obs``::

    trace = Trace()
    with probed(machine, [trace]):
        machine.run(threads)
    trace.count(Store)      # ops now carry commit cycles + core ids

For generator-level unit tests that have no machine (or that want one
thread's ops in isolation), :func:`traced` remains as a thin adapter
that feeds the same ``Trace`` while ops pass through; entries recorded
that way have no cycle/core attribution (``None``).  Tracing is opt-in
and adds no cost to untraced runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Protocol, Tuple, Type

from repro.sim.isa import Op


class _OpEvent(Protocol):
    """Structural view of :class:`repro.obs.events.OpExecuted` (kept
    local so ``repro.sim`` does not depend on ``repro.obs``)."""

    core_id: int
    op: Op
    result: Optional[float]
    end: float


@dataclass
class Trace:
    """Recorded (op, result) pairs, with per-op commit cycle and core.

    ``events[i]``, ``cycles[i]`` and ``cores[i]`` describe the same
    op; the latter two are ``None`` for entries recorded through the
    :func:`traced` generator adapter rather than the probe bus.
    """

    events: List[Tuple[Op, Optional[float]]] = field(default_factory=list)
    #: Commit cycle of each op (``None`` when recorded off-machine).
    cycles: List[Optional[float]] = field(default_factory=list)
    #: Core that executed each op (``None`` when recorded off-machine).
    cores: List[Optional[int]] = field(default_factory=list)

    def on_op(self, ev: _OpEvent) -> None:
        """Probe-bus ``op`` channel: record a retired op."""
        self.events.append((ev.op, ev.result))
        self.cycles.append(ev.end)
        self.cores.append(ev.core_id)

    def record(
        self,
        op: Op,
        result: Optional[float],
        cycle: Optional[float] = None,
        core: Optional[int] = None,
    ) -> None:
        """Append one entry, keeping the parallel lists in step."""
        self.events.append((op, result))
        self.cycles.append(cycle)
        self.cores.append(core)

    def ops(self) -> List[Op]:
        """The recorded ops, without results."""
        return [op for op, _ in self.events]

    def count(self, op_type: Type[Op]) -> int:
        """Number of recorded ops of the given type."""
        return sum(1 for op, _ in self.events if isinstance(op, op_type))

    def __len__(self) -> int:
        return len(self.events)


def traced(
    gen: Generator[Op, Optional[float], None], trace: Trace
) -> Generator[Op, Optional[float], None]:
    """Pass ops through while recording them into ``trace``.

    A thin adapter over the same :class:`Trace` the probe bus fills;
    use it when there is no machine to tap (pure generator tests).
    """
    result: Optional[float] = None
    while True:
        try:
            op = gen.send(result)
        except StopIteration:
            return
        result = yield op
        trace.record(op, result)
