"""Lightweight op tracing for debugging and white-box tests.

Wrap a thread generator with :func:`traced` to record every op it
yields (and the machine's reply) into a :class:`Trace`.  Tracing is
opt-in and adds no cost to untraced runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple, Type

from repro.sim.isa import Op


@dataclass
class Trace:
    """Recorded (op, result) pairs for one thread."""

    events: List[Tuple[Op, Optional[float]]] = field(default_factory=list)

    def ops(self) -> List[Op]:
        """The recorded ops, without results."""
        return [op for op, _ in self.events]

    def count(self, op_type: Type[Op]) -> int:
        """Number of recorded ops of the given type."""
        return sum(1 for op, _ in self.events if isinstance(op, op_type))

    def __len__(self) -> int:
        return len(self.events)


def traced(
    gen: Generator[Op, Optional[float], None], trace: Trace
) -> Generator[Op, Optional[float], None]:
    """Pass ops through while recording them into ``trace``."""
    result: Optional[float] = None
    while True:
        try:
            op = gen.send(result)
        except StopIteration:
            return
        result = yield op
        trace.events.append((op, result))
