"""The machine: cores + hierarchy + MC, and the interleaving scheduler.

Workload threads are generators yielding :mod:`repro.sim.isa` ops.  The
scheduler always advances the runnable core with the smallest local
clock, so multicore interleavings are timing-driven and deterministic.
Execution time of a run is the slowest core's final clock.

Crash injection stops the run after a chosen number of ops, cycles, or
region marks; everything the MC accepted up to that point is durable
(ADR) and everything else is lost.  :meth:`Machine.after_crash` builds
the post-failure machine: cold caches, fresh clocks, and an
architectural state equal to the NVMM image — exactly what recovery
code observes on real hardware after power loss.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ConfigError, SimulationError
from repro.sim.address import Allocator, Region
from repro.sim.coherence import Hierarchy, MemorySystem, ReplayHierarchy
from repro.sim.config import MachineConfig
from repro.sim.core import _OP_HANDLERS, Core
from repro.sim.isa import (
    Barrier,
    Compute,
    Flush,
    FlushWB,
    Load,
    Op,
    Phase,
    RegionMark,
    Store,
)
from repro.sim.model import enumerable_model_names, get_model
from repro.sim.nvmm import MemoryController
from repro.sim.persist import CrashStateSpace, PersistOrderTracker
from repro.sim.stats import CoreStats, MachineStats
from repro.sim.timing import CoreTiming, make_timing_model
from repro.sim.valuestore import MemoryState

if TYPE_CHECKING:  # runtime import stays lazy (opstream imports us back)
    from repro.sim.opstream import OpStream

ThreadGen = Generator[Op, Optional[float], None]

#: One live core's scheduling slot in the replay fast loop:
#: ``(core_id, generator.send, core, core.timer, core.stats)``.
_ReplaySlot = Tuple[
    int, Callable[[Optional[float]], Op], Core, CoreTiming, CoreStats
]


@dataclass
class RunResult:
    """Outcome of one :meth:`Machine.run` call."""

    stats: MachineStats
    crashed: bool
    ops_executed: int
    region_marks: int
    finished_threads: int
    total_threads: int
    #: Flush/FlushWB ops executed (bounds the at_flush crash trigger).
    flush_ops: int = 0

    @property
    def exec_cycles(self) -> float:
        return self.stats.exec_cycles

    @property
    def nvmm_writes(self) -> int:
        return self.stats.nvmm_writes

    def summary(self) -> Dict[str, float]:
        """Flat metric dict (stats summary + crash flag)."""
        out = self.stats.summary()
        out["crashed"] = float(self.crashed)
        return out


class Machine:
    """A configured multicore NVMM machine.

    Observability (:mod:`repro.obs`) taps a machine by shadowing a
    fixed set of component methods with per-instance wrappers (parked
    under ``_probe_session``); an untapped machine runs the unmodified
    class methods — no hot-path branches.  A *probed* replay machine
    takes the general scheduling loop instead of the inlined
    ``_run_replay`` fast path (the two interleave identically), so the
    taps still see every op; stream runs derive the same surface in
    batch via :mod:`repro.obs.streamobs`.
    """

    def __init__(
        self,
        config: MachineConfig,
        *,
        _mem: Optional[MemoryState] = None,
        _allocator: Optional[Allocator] = None,
        _replay: bool = False,
    ) -> None:
        self.config = config
        self.mem = _mem if _mem is not None else MemoryState()
        self.allocator = (
            _allocator
            if _allocator is not None
            else Allocator(config.memory_bytes)
        )
        #: Replay machines (see :meth:`after_crash_with_image`) execute
        #: architectural semantics only: no caches, no persist-order
        #: tracking, functional timing.  They exist to answer "does
        #: this code compute the right values" as fast as possible.
        self.replay = _replay
        self.stats = MachineStats().for_cores(config.num_cores)
        #: The timing layer: one pluggable model (``config.timing``)
        #: hands each component its timing view; every stall it charges
        #: is attributed through the stats ledger (accounting layer).
        self.timing = make_timing_model(
            "functional" if _replay else config.timing,
            config,
            self.stats.ledger,
        )
        #: Persistency model in effect (see :mod:`repro.sim.model`);
        #: resolved_model folds the legacy nvmm.adr=False spelling in.
        self.pmodel = get_model(config.resolved_model)
        #: eADR-class models persist at store time; the flag lives on
        #: the value store so every execution tier (heap scheduler,
        #: replay loop, op-stream interpreter) inherits it through the
        #: one store entry point.
        self.mem.persist_on_store = self.pmodel.persist_on_store
        #: Persist-order recorder for crash-state enumeration.  Absent
        #: on models whose durability is completion-timed (pre-ADR: MC
        #: undo records govern instead) and on replay machines.
        self.persist_tracker = (
            PersistOrderTracker(self.mem, self.pmodel.name)
            if self.pmodel.enumerable and not _replay
            else None
        )
        self.mc = MemoryController(
            config.nvmm,
            self.mem,
            self.stats,
            self.persist_tracker,
            timing=self.timing.mc_view(),
            model=self.pmodel,
        )
        self.hierarchy: MemorySystem = (
            ReplayHierarchy(self.mem, self.mc)
            if _replay
            else Hierarchy(
                config,
                self.mem,
                self.stats,
                self.mc,
                timing=self.timing.hierarchy_view(),
            )
        )
        self.cores = [
            Core(
                i,
                config.core,
                self.hierarchy,
                self.mem,
                self.stats.per_core[i],
                timer=self.timing.core_view(i, self.stats.per_core[i]),
            )
            for i in range(config.num_cores)
        ]
        #: Optional periodic cleaner; see :mod:`repro.sim.cleaner`.
        self.cleaner = None
        #: Seeded tie-breaker for jittered scheduling (deterministic).
        self._sched_rng = random.Random(config.schedule_seed)
        #: Optional callback invoked on every RegionMark (tracing/tests).
        self.on_mark: Optional[Callable[[RegionMark, int, float], None]] = None

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    def alloc(self, name: str, num_elements: int) -> Region:
        """Allocate a persistent region; contents start durably at 0.0."""
        region = self.allocator.alloc(name, num_elements)
        for addr in region.element_addrs():
            self.mem.init(addr, 0.0)
        return region

    def alloc_init(self, name: str, values: Sequence[float]) -> Region:
        """Allocate and durably initialise a region from ``values``."""
        region = self.allocator.alloc(name, len(values))
        for addr, value in zip(region.element_addrs(), values):
            self.mem.init(addr, value)
        return region

    def scalar(self, name: str, value: float = 0.0) -> Region:
        """Allocate a one-element region (markers, counters)."""
        region = self.allocator.alloc(name, 1)
        self.mem.init(region.base, value)
        return region

    def region(self, name: str) -> Region:
        """Look up an allocated region by name."""
        return self.allocator.region(name)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        threads: Iterable[ThreadGen],
        *,
        crash_at_op: Optional[int] = None,
        crash_at_cycle: Optional[float] = None,
        crash_at_mark: Optional[int] = None,
        crash_at_flush: Optional[int] = None,
        op_limit: Optional[int] = None,
    ) -> RunResult:
        """Drive thread generators to completion (or crash/limit).

        Threads are assigned to cores in order; the paper's runs use
        one master + N worker threads on N+1 cores, which callers model
        by passing N+1 generators.
        """
        gens: List[ThreadGen] = list(threads)
        if len(gens) > self.config.num_cores:
            raise ConfigError(
                f"{len(gens)} threads exceed {self.config.num_cores} cores"
            )
        if not gens:
            raise ConfigError("no threads to run")

        if (
            self.replay
            and crash_at_op is None
            and crash_at_cycle is None
            and crash_at_mark is None
            and crash_at_flush is None
            and op_limit is None
            and self.cleaner is None
            and self.on_mark is None
            and not self.config.schedule_jitter
            and getattr(self, "_probe_session", None) is None
        ):
            # Replay machines with no triggers take the tight loop;
            # its interleaving exactly matches this general loop (see
            # _run_replay), so the choice is pure mechanics.  Probed
            # replay machines stay on the general loop so the taps see
            # every op — that run is the reconciliation reference for
            # the stream-derived observability layer.
            return self._run_replay(gens)

        heap: List = []
        jitter = self.config.schedule_jitter

        def push(cid: int) -> None:
            priority = self.cores[cid].clock
            if jitter:
                priority += self._sched_rng.uniform(0.0, jitter)
            heapq.heappush(heap, (priority, cid))

        for cid in range(len(gens)):
            push(cid)

        pending_result: Dict[int, Optional[float]] = {
            cid: None for cid in range(len(gens))
        }
        ops_executed = 0
        region_marks = 0
        flush_ops = 0
        crashed = False
        finished = 0
        barrier_wait: List[int] = []

        def barrier_ready() -> bool:
            return barrier_wait and len(barrier_wait) == len(gens) - finished

        def release_barrier() -> None:
            release_time = max(self.cores[c].clock for c in barrier_wait)
            for c in barrier_wait:
                self.cores[c].clock = release_time
                push(c)
            barrier_wait.clear()

        while heap:
            _, cid = heapq.heappop(heap)
            core = self.cores[cid]
            gen = gens[cid]
            try:
                op = gen.send(pending_result[cid])
            except StopIteration:
                finished += 1
                if barrier_ready():
                    release_barrier()
                continue

            if crash_at_op is not None and ops_executed >= crash_at_op:
                crashed = True
                self.mc.discard_in_flight(core.clock)
                break
            if crash_at_cycle is not None and core.clock >= crash_at_cycle:
                crashed = True
                self.mc.discard_in_flight(core.clock)
                break
            if op_limit is not None and ops_executed >= op_limit:
                break

            if isinstance(op, Barrier):
                # the core parks until every live thread arrives
                pending_result[cid] = None
                ops_executed += 1
                core.stats.ops += 1
                barrier_wait.append(cid)
                if barrier_ready():
                    release_barrier()
                continue

            pending_result[cid] = core.execute(op)
            ops_executed += 1

            if isinstance(op, (Flush, FlushWB)):
                # Persist-boundary crash trigger: stop right after the
                # Nth flush issued, i.e. with its line accepted by the
                # MC but any ordering fence still ahead — the instants
                # where the reachable-image set is at its widest.
                flush_ops += 1
                if crash_at_flush is not None and flush_ops >= crash_at_flush:
                    crashed = True
                    self.mc.discard_in_flight(core.clock)
                    break

            if isinstance(op, RegionMark):
                region_marks += 1
                if self.on_mark is not None:
                    self.on_mark(op, cid, core.clock)
                if crash_at_mark is not None and region_marks >= crash_at_mark:
                    crashed = True
                    self.mc.discard_in_flight(core.clock)
                    break

            if self.cleaner is not None:
                self.cleaner.maybe_clean(self.hierarchy, core.clock)

            push(cid)

        for cid in range(len(gens)):
            self.stats.per_core[cid].cycles = self.cores[cid].clock

        return RunResult(
            stats=self.stats,
            crashed=crashed,
            ops_executed=ops_executed,
            region_marks=region_marks,
            finished_threads=finished,
            total_threads=len(gens),
            flush_ops=flush_ops,
        )

    def _run_replay(self, gens: List[ThreadGen]) -> RunResult:
        """Round-robin fast loop for trigger-free replay runs.

        This is the hot path of crash-state checking (one call per
        enumerated image), so it strips the general loop down to the
        scheduling the functional cost model actually produces.  It
        exactly emulates the min-``(clock, core_id)`` heap for that
        model: every op advances its core's clock by one cycle (region
        marks are free), so cores take turns in core-id order, a core
        keeps its turn while its clock does not advance, and a barrier
        parks every live core and releases them in core-id order at
        the common release time.  ``tests/verify`` pins the
        equivalence against the general loop.
        """
        cores = self.cores
        handlers = _OP_HANDLERS
        arch = self.mem.arch
        mem_load = self.mem.load
        mem_store = self.mem.store
        pending: List[Optional[float]] = [None] * len(gens)
        ops_executed = 0
        region_marks = 0
        flush_ops = 0
        finished = 0
        barrier_wait: List[_ReplaySlot] = []
        # One slot per live core; iterating the list in order and
        # taking one costed op per slot per pass reproduces the
        # cid-cyclic order the heap produces for the +1-cost model.
        # The functional model charges exactly one cycle to every op
        # except region marks (which are free), so "did the clock
        # move" reduces to an op-type check — the replay-vs-general
        # equivalence tests in tests/verify pin this invariant.
        slots: List[_ReplaySlot] = [
            (cid, gens[cid].send, core, core.timer, core.stats)
            for cid, core in enumerate(cores[: len(gens)])
        ]

        while slots:
            dead: Optional[Set[int]] = None
            for slot in slots:
                cid, send, core, timer, stats = slot
                while True:
                    try:
                        op = send(pending[cid])
                    except StopIteration:
                        finished += 1
                        dead = {cid} if dead is None else dead | {cid}
                        break
                    # Loads/stores/computes — the bulk of every kernel
                    # — are inlined: on a replay hierarchy every access
                    # is an architectural hit costing one cycle, so the
                    # handler + event round trip reduces to a value-map
                    # access and a tick.  The inlined bookkeeping is
                    # op-for-op identical to _exec_load/_exec_store/
                    # _exec_compute over a ReplayHierarchy (pinned by
                    # the equivalence tests).  The checks are spelled
                    # ``type(op) is X`` (not an aliased type) so the
                    # union narrows for the attribute accesses below.
                    if type(op) is Load:
                        stats.ops += 1
                        stats.loads += 1
                        try:
                            value = arch[op.addr]
                        except KeyError:
                            value = mem_load(op.addr)  # raises AddressError
                        stats.l1_hits += 1
                        timer.clock += 1.0
                        pending[cid] = value
                        ops_executed += 1
                        break
                    if type(op) is Store:
                        stats.ops += 1
                        stats.stores += 1
                        mem_store(op.addr, op.value)
                        stats.l1_hits += 1
                        timer.clock += 1.0
                        pending[cid] = None
                        ops_executed += 1
                        break
                    if type(op) is Compute:
                        stats.ops += 1
                        stats.computes += 1
                        timer.clock += 1.0
                        pending[cid] = None
                        ops_executed += 1
                        break
                    if type(op) is Barrier:
                        pending[cid] = None
                        ops_executed += 1
                        stats.ops += 1
                        barrier_wait.append(slot)
                        dead = {cid} if dead is None else dead | {cid}
                        break
                    op_type = type(op)
                    try:
                        handler = handlers[op_type]
                    except KeyError:
                        raise SimulationError(f"unknown op {op!r}") from None
                    stats.ops += 1
                    pending[cid] = handler(core, op)
                    ops_executed += 1
                    if op_type is RegionMark:
                        region_marks += 1
                        continue  # free op: the core keeps its turn
                    if op_type is Phase:
                        continue  # free op (provenance frame): same deal
                    if op_type is Flush or op_type is FlushWB:
                        flush_ops += 1
                    break
            if dead is not None:
                slots = [s for s in slots if s[0] not in dead]
            # All live cores are parked exactly when a pass ends with
            # no live slots and a non-empty barrier set (parked +
            # finished = all).
            if (
                not slots
                and barrier_wait
                and len(barrier_wait) == len(gens) - finished
            ):
                release = max(s[3].clock for s in barrier_wait)
                barrier_wait.sort(key=lambda s: s[0])
                for slot in barrier_wait:
                    slot[3].clock = release
                slots = barrier_wait
                barrier_wait = []

        for cid in range(len(gens)):
            self.stats.per_core[cid].cycles = cores[cid].clock

        return RunResult(
            stats=self.stats,
            crashed=False,
            ops_executed=ops_executed,
            region_marks=region_marks,
            finished_threads=finished,
            total_threads=len(gens),
            flush_ops=flush_ops,
        )

    def run_stream(self, stream: "OpStream") -> RunResult:
        """Interpret a pre-decoded op stream (see :mod:`repro.sim.opstream`).

        The third execution tier: heap scheduler (general), generator
        fast loop (:meth:`_run_replay`), and this — a table-driven
        interpreter over integer-coded op arrays, for replay runs whose
        op sequence was recorded once and cached.  Bit-identical to
        running the original coroutines on this machine; valid only on
        a fresh, trigger-free replay machine (enforced by the
        interpreter).
        """
        from repro.sim.opstream import execute_stream

        return execute_stream(self, stream)

    # ------------------------------------------------------------------
    # persistence / crash
    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Write back every dirty line (graceful shutdown, not a crash)."""
        now = max(c.clock for c in self.cores)
        return self.hierarchy.clean_all(now, cause="drain")

    def after_crash(self) -> "Machine":
        """The machine as recovery code finds it after power loss."""
        return Machine(
            self.config,
            _mem=self.mem.crashed_copy(),
            _allocator=self.allocator,
        )

    def crash_state_space(self) -> CrashStateSpace:
        """The set of NVMM images a crash *now* could expose.

        Call on a machine whose run just crashed: combines the persist
        tracker's pending (unfenced) flushes with the hierarchy's dirty
        lines into a persist-order constraint graph whose order ideals
        are exactly the reachable post-crash images (see
        :mod:`repro.sim.persist` and :mod:`repro.verify`).
        """
        if self.replay:
            raise ConfigError(
                "replay machines execute architectural semantics only; "
                "crash-state enumeration needs a full machine"
            )
        if self.persist_tracker is None:
            raise ConfigError(
                f"crash-state enumeration is not defined for the "
                f"{self.pmodel.name!r} persistency model. Models that "
                f"support enumeration: "
                f"{', '.join(enumerable_model_names())}"
            )
        crash_time = max(c.clock for c in self.cores)
        return self.persist_tracker.snapshot(
            self.hierarchy.dirty_line_addrs(), crash_time
        )

    def after_crash_with_image(
        self, image: Dict[int, float], *, replay: bool = False
    ) -> "Machine":
        """A post-crash machine whose NVMM holds ``image``.

        ``image`` is one member of :meth:`crash_state_space`'s reachable
        set (or any address->value map); the rebuilt machine has cold
        caches and architectural state equal to the image, exactly like
        :meth:`after_crash` but for a chosen image instead of the one
        the simulated schedule happened to produce.

        With ``replay=True`` the rebuilt machine is a **replay
        machine**: cache-free architectural semantics under functional
        timing.  Caches are architecturally transparent, so replaying
        recovery code on it computes exactly the values a full machine
        would — at a fraction of the cost — which is what the
        crash-state checker's per-image recovery verification needs.
        Replay machines cannot snapshot crash-state spaces.
        """
        return Machine(
            self.config,
            _mem=MemoryState.from_image(image),
            _allocator=self.allocator,
            _replay=replay,
        )

    # -- value introspection ------------------------------------------------

    def arch_value(self, addr: int) -> float:
        """Architectural (program-visible) value at ``addr``."""
        return self.mem.load(addr)

    def persistent_value(self, addr: int, default: Optional[float] = None) -> float:
        """NVMM-image value at ``addr`` (post-crash view)."""
        return self.mem.persisted(addr, default)

    def read_region(self, region: Region, persistent: bool = False) -> List[float]:
        """Bulk-read a region's values (validation helper, no timing)."""
        if persistent:
            return [self.mem.persisted(a, 0.0) for a in region.element_addrs()]
        return [self.mem.load(a) for a in region.element_addrs()]
