"""NVMM device and memory controller.

The memory controller owns a bounded write queue.  With **ADR** (the
paper's platform, section II-A), that queue sits inside the
persistence domain: the instant a line is accepted its data is
durable, so that is where the simulator copies architectural values
into the persistent image and counts an NVMM write.

With ``adr=False`` the model reverts to the pre-ADR (pcommit-era)
platform the paper contrasts against: a write is durable only when the
NVMM device *completes* it.  Acceptance still copies data into the
persistent image (the common case is no crash), but every write leaves
an undo record until its completion time; a crash rolls back the
records still in flight, and fences observe the completion time rather
than the acceptance time.

The MC is the semantics layer's persistence point; the queue/pipe
*arithmetic* (when a write is accepted, when the device finishes) is a
pluggable :class:`~repro.sim.timing.MCTiming` view — the detailed view
reproduces the Table II behaviour, the functional view accepts and
completes instantly.

Replay machines bypass the MC entirely: their hierarchy
(:class:`~repro.sim.coherence.ReplayHierarchy`) persists lines
directly, so replay runs — generator loop and op-stream interpreter
alike (:mod:`repro.sim.opstream`) — never count ``nvmm_writes``.  The
stream interpreter preserves that by construction (it touches no MC
state at all), which is part of the bit-identical-counters contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.address import element_addrs_of_line
from repro.sim.config import NVMMConfig
from repro.sim.model import PersistencyModel, get_model
from repro.sim.persist import PersistOrderTracker
from repro.sim.stats import MachineStats
from repro.sim.timing import DetailedMCTiming, MCTiming
from repro.sim.valuestore import MemoryState


@dataclass
class _UndoRecord:
    """A non-ADR write that is not yet durable."""

    completion: float
    line_addr: int
    prior_values: Dict[int, Optional[float]]


class MemoryController:
    """MC + NVMM device persistence point (timing via an MCTiming view)."""

    def __init__(
        self,
        config: NVMMConfig,
        mem: MemoryState,
        stats: MachineStats,
        tracker: Optional[PersistOrderTracker] = None,
        timing: Optional[MCTiming] = None,
        model: Optional[PersistencyModel] = None,
    ) -> None:
        self.config = config
        self.mem = mem
        self.stats = stats
        #: Optional persist-order recorder (crash-state enumeration).
        self.tracker = tracker
        #: Queue/pipe arithmetic; directly constructed MCs (tests)
        #: default to the detailed Table II timing.
        self.timing = (
            timing if timing is not None else DetailedMCTiming(config)
        )
        #: Persistency model; directly constructed MCs (tests) derive
        #: it from the legacy adr flag: True -> ADR, False -> pre-ADR.
        self.model = (
            model
            if model is not None
            else get_model("adr" if config.adr else "pre_adr")
        )
        #: pre-ADR only: rollback records for in-flight writes.
        self._undo: List[_UndoRecord] = []

    # -- reads --------------------------------------------------------------

    def read(self, line_addr: int, now: float) -> float:
        """Issue a line read at ``now``; returns the data-return time.

        Probe tap point (``NvmmRead``): must stay the single path for
        NVMM line reads so traced read counts match ``nvmm_reads``.
        """
        completion = self.timing.read(now)
        self.stats.nvmm_reads += 1
        return completion

    # -- writes ---------------------------------------------------------------

    def accept_write(
        self,
        line_addr: int,
        now: float,
        cause: str,
        dirty_since: Optional[float] = None,
        core_id: Optional[int] = None,
    ) -> float:
        """Accept a dirty line into the MC write queue.

        Returns the *durable* time: acceptance under ADR, device
        completion otherwise.  Backpressure (a full queue) delays
        acceptance either way.  Use :meth:`accept_write_timed` when the
        caller needs acceptance and durability separately.
        """
        accept, durable = self.accept_write_timed(
            line_addr, now, cause, dirty_since, core_id
        )
        return durable

    def accept_write_timed(
        self,
        line_addr: int,
        now: float,
        cause: str,
        dirty_since: Optional[float] = None,
        core_id: Optional[int] = None,
    ) -> Tuple[float, float]:
        """Accept a write; returns ``(accept_time, durable_time)``.

        Probe tap point (``WritebackAccepted``): every write entering
        the persistence domain — eviction, flush, cleaner, drain —
        must come through this method, one call per counted write, so
        traced writeback counts reconcile exactly with ``nvmm_writes``.
        """
        accept_time, completion = self.timing.write(now)

        if self.model.mc_undo:
            # pre-ADR: the data is not safe until the device finishes;
            # remember how to undo it if a crash lands in between.
            prior = {
                addr: self.mem.persistent.get(addr)
                for addr in element_addrs_of_line(line_addr)
            }
            self._undo.append(_UndoRecord(completion, line_addr, prior))

        if self.tracker is not None:
            # Must run before persist_line: flush events snapshot the
            # persistent values they are about to overwrite.
            self.tracker.on_accept(line_addr, cause, core_id, accept_time)
        self.mem.persist_line(line_addr)
        self.stats.count_write(cause, line_addr=line_addr)
        durable_time = completion if self.model.mc_undo else accept_time
        if dirty_since is not None:
            self.stats.record_volatility(durable_time - dirty_since)
        return accept_time, durable_time

    # -- crash handling -------------------------------------------------------

    def discard_in_flight(self, crash_time: float) -> int:
        """Roll back writes not yet durable at ``crash_time``.

        A no-op on every model except pre-ADR.  Returns the number of
        lines rolled back.  Records are undone newest-first so
        overlapping writes to the same line restore the oldest
        surviving values.
        """
        if not self.model.mc_undo:
            return 0
        lost = [r for r in self._undo if r.completion > crash_time]
        for record in sorted(lost, key=lambda r: r.completion, reverse=True):
            for addr, value in record.prior_values.items():
                if value is None:
                    self.mem.persistent.pop(addr, None)
                else:
                    self.mem.persistent[addr] = value
        self._undo = [r for r in self._undo if r.completion <= crash_time]
        return len(lost)

    def prune_undo(self, now: float) -> None:
        """Drop undo records whose writes have completed (bookkeeping)."""
        self._undo = [r for r in self._undo if r.completion > now]

    # -- introspection ----------------------------------------------------

    @property
    def write_queue_occupancy(self) -> int:
        occupancy = getattr(self.timing, "write_queue_occupancy", 0)
        return int(occupancy)
