"""Bounded completion-time queues: MSHRs, store buffer, flush queue.

Each structure tracks the completion times of in-flight asynchronous
operations.  The core prunes entries that completed before its clock,
counts a hazard event when an op finds the structure full, and stalls
until the earliest completion.  This is the mechanism behind the
Table VI structural-hazard reproduction: flushes and store misses park
long-latency completions here, and everything behind them backs up.
"""

from __future__ import annotations

from typing import List


class BoundedQueue:
    """Completion-time slots with a fixed capacity."""

    def __init__(self, capacity: int, name: str) -> None:
        self.capacity = capacity
        self.name = name
        self._completions: List[float] = []

    def prune(self, now: float) -> None:
        """Drop entries whose operation completed at or before ``now``."""
        self._completions = [t for t in self._completions if t > now]

    def full(self, now: float) -> bool:
        """True if no slot is free at ``now``."""
        self.prune(now)
        return len(self._completions) >= self.capacity

    def earliest_free(self, now: float) -> float:
        """Time at which a slot opens; ``now`` if one is already free."""
        self.prune(now)
        if len(self._completions) < self.capacity:
            return now
        return min(self._completions)

    def push(self, completion: float) -> None:
        """Occupy a slot until ``completion``."""
        self._completions.append(completion)

    def drain_time(self, now: float) -> float:
        """Completion time of the last in-flight entry (``now`` if empty)."""
        self.prune(now)
        if not self._completions:
            return now
        return max(self._completions)

    def occupancy(self, now: float) -> int:
        """In-flight entries at ``now``."""
        self.prune(now)
        return len(self._completions)

    def clear(self) -> None:
        """Drop all entries (crash/reset)."""
        self._completions.clear()
