"""Pluggable persistency models: who owns the persistence domain.

The paper evaluates Lazy vs Eager Persistency under one platform
assumption — ADR, where the MC write queue is the persistence domain —
and the simulator used to hard-code that assumption across
:mod:`~repro.sim.nvmm`, :mod:`~repro.sim.persist`, and the cache
hierarchy as an ``adr: bool`` plus implicit rules.  This module makes
the model an explicit, named object that every consumer reads instead:

* **adr** — the paper's platform (section II-A).  A write is durable
  the instant the MC write queue accepts it; ``clflushopt`` persists a
  line but reorders freely until the issuing core's ``sfence``
  retires; dirty lines may be written back by hardware at any moment.
* **eadr** — extended ADR: the caches sit inside the persistence
  domain, so every *store* is durable at once, flush instructions are
  architectural no-ops (no MC traffic, no fence drains), and a crash
  preserves the full architectural state.
* **strict** — strict persistency: every store synchronously writes
  its line through to the MC.  Crash images match eADR's (stores are
  never lost) but every store pays MC write traffic and queue
  backpressure — the write-amplification strawman.
* **epoch** — epoch persistency (BPFS-style): a fence is an *ordering*
  barrier, not a durability barrier.  Flush persists from one epoch
  may reorder among themselves but never with a later epoch of the
  same core; a crash can lose any suffix of a core's epochs, fenced
  or not.
* **pre_adr** — the pcommit-era platform the paper contrasts against:
  durability waits for device *completion* and is modelled by the MC
  undo records (:mod:`~repro.sim.nvmm`).  Crash-state enumeration is
  not available (the reachable set is completion-time-, not
  order-ideal-shaped).
* **eadr_nofence** — a **deliberately broken** eADR: it claims eADR's
  crash semantics (every store durable) while its caches actually stay
  volatile and its flushes/fences are inert.  It exists so the litmus
  harness (:mod:`repro.verify.litmus`) provably catches a model whose
  implementation diverges from its declarative spec, mirroring the
  ``ep_nofence`` broken-workload pattern.

The flags below are the *entire* behavioural surface: the memory
controller keys undo records off :attr:`PersistencyModel.mc_undo`, the
hierarchy keys flush/store traffic off :attr:`flush_writes` /
:attr:`store_writes`, :class:`~repro.sim.valuestore.MemoryState` keys
store-time durability off :attr:`persist_on_store` (which the replay
tiers and the op-stream interpreter inherit), and the persist-order
tracker keys fence semantics off :attr:`fence_commits` /
:attr:`epoch_edges`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError


@dataclass(frozen=True)
class PersistencyModel:
    """One persistency model's behavioural contract."""

    name: str
    #: One-line description (CLI help, docs tables).
    summary: str
    #: Stores are durable the moment they execute (persistence domain
    #: includes the caches).  Read by MemoryState.store and the
    #: op-stream interpreter.
    persist_on_store: bool
    #: Flush instructions traverse the hierarchy to the MC.  False
    #: makes ``clflushopt``/``clwb`` architectural no-ops: no MC
    #: write, no transit latency, no fence drain.
    flush_writes: bool
    #: Every store synchronously writes its line through to the MC
    #: (strict persistency's per-store traffic and backpressure).
    store_writes: bool
    #: A retired fence makes the issuing core's MC-accepted flushes
    #: durable (ADR's sfence).  False leaves them reorderable.
    fence_commits: bool
    #: Fences delimit per-core epochs that order flush persists:
    #: an event from epoch N+1 can only persist if every event from
    #: epoch N did (epoch persistency).
    epoch_edges: bool
    #: Durability waits for device completion; the MC keeps undo
    #: records for in-flight writes (the pre-ADR platform).
    mc_undo: bool
    #: Crash-state enumeration (order-ideal reachable-image sets) is
    #: defined for this model.
    enumerable: bool
    #: Name of the declarative litmus spec this model *claims* to
    #: implement (see :mod:`repro.verify.litmus`).  For sound models
    #: this is the model's own semantics; for deliberately broken
    #: variants it is the semantics they falsely advertise.
    spec: str
    #: Deliberately-wrong model: the litmus harness must flag it.
    broken: bool = False


#: The registry.  Order is presentation order (CLI choices, docs).
PERSISTENCY_MODELS: Dict[str, PersistencyModel] = {
    m.name: m
    for m in (
        PersistencyModel(
            name="adr",
            summary="MC write queue is the persistence domain "
            "(paper II-A); flush+fence required",
            persist_on_store=False,
            flush_writes=True,
            store_writes=False,
            fence_commits=True,
            epoch_edges=False,
            mc_undo=False,
            enumerable=True,
            spec="adr",
        ),
        PersistencyModel(
            name="eadr",
            summary="caches inside the persistence domain; stores "
            "durable at once, flushes are no-ops",
            persist_on_store=True,
            flush_writes=False,
            store_writes=False,
            fence_commits=True,
            epoch_edges=False,
            mc_undo=False,
            enumerable=True,
            spec="eadr",
        ),
        PersistencyModel(
            name="strict",
            summary="strict persistency: every store writes through "
            "to the MC synchronously",
            persist_on_store=True,
            flush_writes=True,
            store_writes=True,
            fence_commits=True,
            epoch_edges=False,
            mc_undo=False,
            enumerable=True,
            spec="strict",
        ),
        PersistencyModel(
            name="epoch",
            summary="epoch persistency: fences order (per-core "
            "epochs) but do not drain/commit",
            persist_on_store=False,
            flush_writes=True,
            store_writes=False,
            fence_commits=False,
            epoch_edges=True,
            mc_undo=False,
            enumerable=True,
            spec="epoch",
        ),
        PersistencyModel(
            name="pre_adr",
            summary="pcommit-era platform: durability at device "
            "completion (MC undo records); not enumerable",
            persist_on_store=False,
            flush_writes=True,
            store_writes=False,
            fence_commits=True,
            epoch_edges=False,
            mc_undo=True,
            enumerable=False,
            spec="pre_adr",
        ),
        PersistencyModel(
            name="eadr_nofence",
            summary="DELIBERATELY BROKEN eADR: claims store-time "
            "durability but caches stay volatile and "
            "flushes/fences are inert",
            persist_on_store=False,
            flush_writes=False,
            store_writes=False,
            fence_commits=False,
            epoch_edges=False,
            mc_undo=False,
            enumerable=True,
            spec="eadr",
            broken=True,
        ),
    )
}

#: The model every pre-existing config ran under; its cache keys must
#: stay byte-identical (see MachineConfig.cache_key).
DEFAULT_MODEL = "adr"


def get_model(name: str) -> PersistencyModel:
    """Look up a registered persistency model by name."""
    try:
        return PERSISTENCY_MODELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown persistency model {name!r}; "
            f"available: {', '.join(model_names())}"
        ) from None


def model_names() -> List[str]:
    """Every registered model name, in registry order."""
    return list(PERSISTENCY_MODELS)


def enumerable_model_names() -> List[str]:
    """Models for which crash-state enumeration is defined."""
    return [m.name for m in PERSISTENCY_MODELS.values() if m.enumerable]


def litmus_model_names() -> List[str]:
    """Models the litmus harness can cross-check (enumeration plus a
    declarative spec; includes deliberately broken variants)."""
    return enumerable_model_names()
