"""The MemoryEvent protocol between the semantics and timing layers.

The core's op handlers (:mod:`repro.sim.core`) perform architectural
semantics — value updates, coherence transitions, persist-order hooks —
and describe what happened as a stream of small frozen events.  A
:class:`~repro.sim.timing.CoreTiming` view consumes the stream and is
the only thing that moves the core's clock or charges stalls, which is
what makes timing a pluggable policy (detailed vs functional) over one
shared semantics layer.

Each op emits a fixed event sequence, at the same program points for
every timing model:

========  ======================================================
op        events (in order)
========  ======================================================
Load      hierarchy access, then :class:`LoadCommit`
Store     :class:`StoreReserve`, hierarchy access,
          :class:`StoreCommit`
Compute   :class:`ComputeIssue`
Flush     :class:`FlushReserve`, hierarchy flush,
(clwb)    :class:`FlushCommit`
Fence     :class:`FenceIssue` (persist tracker notified after)
Mark      *(none — region marks are free)*
========  ======================================================

``*Reserve`` events fire *before* the semantic access so a detailed
model can apply structural backpressure first (the access then happens
at the post-stall clock, exactly like the pre-refactor code);
``*Commit`` events carry the access outcome so the model can charge
the latency afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class LoadCommit:
    """A load's hierarchy access finished with this outcome."""

    l1_hit: bool
    #: Cycles beyond the L1-hit issue cost until the data arrived.
    extra_latency: float


@dataclass(frozen=True)
class StoreReserve:
    """A store is about to issue and needs a store-buffer slot."""


@dataclass(frozen=True)
class StoreCommit:
    """A store's value update and ownership acquisition completed."""

    l1_hit: bool
    #: Drain cost of acquiring ownership (charged to the store buffer).
    extra_latency: float


@dataclass(frozen=True)
class ComputeIssue:
    """An arithmetic op issued."""

    flops: int


@dataclass(frozen=True)
class FlushReserve:
    """A clflushopt/clwb is about to issue and needs a flush-queue slot."""


@dataclass(frozen=True)
class FlushCommit:
    """A flush's line reached (or was already clean at) the MC."""

    #: Whether dirty data was actually written to the MC.
    wrote: bool
    #: When the MC accepted the data (== issue time if nothing dirty).
    accept_time: float


@dataclass(frozen=True)
class FenceIssue:
    """An sfence retired; in-flight persistence work must drain."""


MemoryEvent = Union[
    LoadCommit,
    StoreReserve,
    StoreCommit,
    ComputeIssue,
    FlushReserve,
    FlushCommit,
    FenceIssue,
]

#: Terminal events — the ones the functional timing model charges its
#: single cycle to (reserve-phase events are free).  This is the
#: event-level statement of the one-cycle-per-op invariant; the op-level
#: image is :data:`repro.sim.isa.COSTED_OPCODES` (each costed op emits
#: exactly one of these), which is what lets the op-stream interpreter
#: (:mod:`repro.sim.opstream`) reconstruct functional clocks without
#: replaying the event stream at all.  Keep the two in sync.
FUNCTIONAL_TICKS = frozenset(
    {LoadCommit, StoreCommit, ComputeIssue, FlushCommit, FenceIssue}
)

#: Reusable instances of the field-less events (one per op is a lot of
#: allocation churn in the hot loop for no information).
STORE_RESERVE = StoreReserve()
FLUSH_RESERVE = FlushReserve()
FENCE_ISSUE = FenceIssue()

#: Hit-path commit outcomes are always identical, so the semantics
#: layer reuses one frozen instance instead of allocating per access —
#: the L1-hit path is by far the most common event in every run.
LOAD_HIT = LoadCommit(l1_hit=True, extra_latency=0.0)
STORE_HIT = StoreCommit(l1_hit=True, extra_latency=0.0)
