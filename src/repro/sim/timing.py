"""Pluggable timing models: the timing layer of the three-layer split.

A :class:`TimingModel` turns one machine configuration into per-component
timing *views*:

* :class:`CoreTiming` — owns a core's clock and its bounded structures
  (store buffer, flush queue, MSHRs) and consumes the core's
  :mod:`~repro.sim.events` stream; it is the only thing that advances
  the clock or charges stalls (through the
  :class:`~repro.sim.ledger.LatencyLedger`);
* :class:`MCTiming` — the memory controller's queue/pipe arithmetic
  (acceptance and completion times), separated from the MC's
  persistence semantics;
* :class:`HierarchyTiming` — the component latencies the cache
  hierarchy accumulates while it walks coherence state.

Two models ship:

* :class:`DetailedTiming` — the paper's Table II behaviour, verbatim
  (the arithmetic is relocated, not re-derived; golden-run tests pin it
  bit-identical to the pre-refactor simulator);
* :class:`FastFunctional` — zero component latency, every op costs one
  cycle, so the min-clock scheduler degrades to a deterministic
  round-robin interleaving.  Persist-order semantics stay exact — a
  flush's MC accept time always precedes the retire time of any later
  fence on the same core — which is what lets crash-state enumeration
  campaigns (``repro crashcheck``, :mod:`repro.verify`) run on it at a
  fraction of the detailed cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple, Type

from repro.errors import ConfigError, SimulationError
from repro.sim.config import CoreConfig, MachineConfig, NVMMConfig
from repro.sim.events import (
    FUNCTIONAL_TICKS,
    ComputeIssue,
    FenceIssue,
    FlushCommit,
    FlushReserve,
    LoadCommit,
    MemoryEvent,
    StoreCommit,
    StoreReserve,
)
from repro.sim.ledger import LatencyLedger
from repro.sim.queues import BoundedQueue
from repro.sim.stats import CoreStats

#: Event type -> handler method name; shared by every CoreTiming
#: implementation (the core-side op table lives in repro.sim.core).
_EVENT_HANDLERS: Dict[type, str] = {
    LoadCommit: "on_load_commit",
    StoreReserve: "on_store_reserve",
    StoreCommit: "on_store_commit",
    ComputeIssue: "on_compute",
    FlushReserve: "on_flush_reserve",
    FlushCommit: "on_flush_commit",
    FenceIssue: "on_fence",
}


# ----------------------------------------------------------------------
# per-component view interfaces
# ----------------------------------------------------------------------


class CoreTiming(ABC):
    """One core's clock, bounded structures, and stall policy."""

    def __init__(
        self, config: CoreConfig, stats: CoreStats, ledger: LatencyLedger
    ) -> None:
        self.config = config
        self.stats = stats
        self.ledger = ledger
        self.clock = 0.0
        self.store_buffer = BoundedQueue(
            config.store_buffer_entries, "store_buffer"
        )
        self.flush_queue = BoundedQueue(
            config.flush_queue_entries, "flush_queue"
        )
        self.mshrs = BoundedQueue(config.mshr_entries, "mshr")
        self._last_drain_complete = 0.0

    def on_event(self, event: MemoryEvent) -> None:
        """Consume one memory event (type-dispatched).

        Probe tap point: ``repro.obs`` shadows this per instance to
        publish a ``MemEvent`` per call — route every memory event
        through here (as the op handlers already do).
        """
        name = _EVENT_HANDLERS.get(type(event))
        if name is None:
            raise SimulationError(f"unknown memory event {event!r}")
        getattr(self, name)(event)

    def outstanding_drain_time(self) -> float:
        """When all of this core's in-flight persistence work completes."""
        return max(
            self.store_buffer.drain_time(self.clock),
            self.flush_queue.drain_time(self.clock),
        )

    def advance(self, cycles: float) -> None:
        """Advance the clock by a pre-computed batch of cycles.

        Batch API for interpreters that reconstruct a whole run's cycle
        arithmetic outside the event stream (the op-stream interpreter,
        :mod:`repro.sim.opstream`, which charges each core its entire
        reconstructed functional clock in one call).  Only meaningful
        for models whose per-event costs are context-free — the
        functional model's constant one-cycle tick; a detailed view
        would lose its structural-hazard state, so nothing routes
        batches at it.
        """
        self.clock += cycles

    # -- event handlers ----------------------------------------------------

    @abstractmethod
    def on_load_commit(self, ev: LoadCommit) -> None: ...

    @abstractmethod
    def on_store_reserve(self, ev: StoreReserve) -> None: ...

    @abstractmethod
    def on_store_commit(self, ev: StoreCommit) -> None: ...

    @abstractmethod
    def on_compute(self, ev: ComputeIssue) -> None: ...

    @abstractmethod
    def on_flush_reserve(self, ev: FlushReserve) -> None: ...

    @abstractmethod
    def on_flush_commit(self, ev: FlushCommit) -> None: ...

    @abstractmethod
    def on_fence(self, ev: FenceIssue) -> None: ...


class MCTiming(ABC):
    """Memory-controller queue/pipe arithmetic."""

    @abstractmethod
    def read(self, now: float) -> float:
        """Issue a line read at ``now``; returns the data-return time."""

    @abstractmethod
    def write(self, now: float) -> Tuple[float, float]:
        """Accept a line write; returns ``(accept_time, completion)``."""


@dataclass(frozen=True)
class HierarchyTiming:
    """Component latencies the cache hierarchy accumulates."""

    l2_hit_cycles: float
    coherence_cycles: float
    flush_transit_cycles: float


# ----------------------------------------------------------------------
# detailed model (Table II, bit-identical to the pre-refactor code)
# ----------------------------------------------------------------------


class DetailedCoreTiming(CoreTiming):
    """The paper-machine core pipeline: issue costs, background drains,
    and structural-hazard backpressure (Table VI).  The arithmetic here
    is the pre-refactor ``Core._load/_store/_compute/_flush/_fence``
    moved verbatim; ``tests/sim/test_timing_golden.py`` pins it."""

    def on_load_commit(self, ev: LoadCommit) -> None:
        if ev.l1_hit:
            self.clock += self.config.l1_hit_issue_cycles
            return
        if self.mshrs.occupancy(self.clock) > 0:
            # the miss had to arbitrate with in-flight transactions
            self.ledger.event(self.stats, "load_arbitration")
        if self._async_pressure() >= self.config.fu_pressure_threshold:
            self.ledger.event(self.stats, "load_pressure")
        if self.mshrs.full(self.clock):
            self.ledger.event(self.stats, "mshr_full")
            self._stall_to(self.mshrs.earliest_free(self.clock), "mshr_full")
        # Blocking miss: the core waits for the data; the MSHR entry
        # documents the occupancy window for cross-pressure with flushes.
        self.clock += self.config.l1_hit_issue_cycles + ev.extra_latency
        self.mshrs.push(self.clock)

    def on_store_reserve(self, ev: StoreReserve) -> None:
        if self.store_buffer.full(self.clock):
            self.ledger.event(self.stats, "store_buffer_full")
            self._stall_to(
                self.store_buffer.earliest_free(self.clock),
                "store_buffer_full",
            )

    def on_store_commit(self, ev: StoreCommit) -> None:
        # The state transitions already happened; the timing cost is
        # charged to the background drain of the store buffer.
        drain_cost = self.config.store_drain_cycles + ev.extra_latency
        start = max(self.clock, self._last_drain_complete)
        completion = start + drain_cost
        self._last_drain_complete = completion
        self.store_buffer.push(completion)
        if not ev.l1_hit:
            # A store miss occupies an MSHR for its RFO window.
            if self.mshrs.full(self.clock):
                self.ledger.event(self.stats, "mshr_full")
                self._stall_to(
                    self.mshrs.earliest_free(self.clock), "mshr_full"
                )
            self.mshrs.push(completion)
        self.clock += self.config.l1_hit_issue_cycles

    def on_compute(self, ev: ComputeIssue) -> None:
        if self._async_pressure() >= self.config.fu_pressure_threshold:
            self.ledger.event(self.stats, "compute_pressure")
        self.clock += ev.flops * self.config.compute_cpi

    def on_flush_reserve(self, ev: FlushReserve) -> None:
        if self.flush_queue.full(self.clock):
            self.ledger.event(self.stats, "flush_queue_full")
            self._stall_to(
                self.flush_queue.earliest_free(self.clock),
                "flush_queue_full",
            )
        self.clock += self.config.flush_issue_cycles

    def on_flush_commit(self, ev: FlushCommit) -> None:
        completion = max(ev.accept_time, self.clock)
        self.flush_queue.push(completion)
        # clflushopt occupies a store-queue slot on x86 until the data
        # leaves for the persistence domain — this is what backs stores
        # up behind flushes (FUW pressure under Eager Persistency).
        if self.store_buffer.full(self.clock):
            self.ledger.event(self.stats, "store_buffer_full")
            self._stall_to(
                self.store_buffer.earliest_free(self.clock),
                "store_buffer_full",
            )
        self.store_buffer.push(completion)
        if ev.wrote:
            # Flush data occupies an MSHR/WB buffer until MC acceptance.
            if self.mshrs.full(self.clock):
                self.ledger.event(self.stats, "mshr_full")
                self._stall_to(
                    self.mshrs.earliest_free(self.clock), "mshr_full"
                )
            self.mshrs.push(completion)

    def on_fence(self, ev: FenceIssue) -> None:
        target = self.outstanding_drain_time()
        if target > self.clock:
            self._stall_to(target, "fence_drain")

    # -- internals ---------------------------------------------------------

    def _stall_to(self, target: float, cause: str) -> None:
        """Advance the clock through a structural stall.  The ledger
        attributes the cycles to ``cause`` and charges the lost
        integer-issue slots to the FUI counter (a stalled front end
        issues nothing, which is how eager flushing inflates the
        paper's Table VI FU counters)."""
        if target <= self.clock:
            return
        self.ledger.stall(
            self.stats, cause, target - self.clock, self.config.issue_width
        )
        self.clock = target

    def _async_pressure(self) -> int:
        return self.store_buffer.occupancy(
            self.clock
        ) + self.flush_queue.occupancy(self.clock)


class DetailedMCTiming(MCTiming):
    """MC write/read queue + device pipe timing (pre-refactor
    ``MemoryController`` arithmetic, moved verbatim)."""

    def __init__(
        self, config: NVMMConfig, ledger: Optional[LatencyLedger] = None
    ) -> None:
        self.config = config
        self.ledger = ledger
        #: Time the device write pipe frees up.
        self._write_pipe_free = 0.0
        #: Time the device read path frees up.
        self._read_pipe_free = 0.0
        #: Completion times of writes currently occupying queue slots.
        self._write_queue: List[float] = []
        #: Completion times of reads currently occupying queue slots.
        self._read_queue: List[float] = []

    def read(self, now: float) -> float:
        self._read_queue = [t for t in self._read_queue if t > now]
        start = now
        if len(self._read_queue) >= self.config.read_queue_depth:
            start = min(self._read_queue)
        start = max(start, self._read_pipe_free)
        self._read_pipe_free = start + self.config.read_service_cycles
        completion = start + self.config.read_cycles
        self._read_queue.append(completion)
        return completion

    def write(self, now: float) -> Tuple[float, float]:
        accept_time = max(now, self._queue_slot_free_time(now))
        if self.ledger is not None:
            self.ledger.queue_delay("mc_write_queue", accept_time - now)
        # The write occupies the device pipe for its service time; its
        # queue slot frees when the device finishes the full write.
        start = max(accept_time, self._write_pipe_free)
        self._write_pipe_free = start + self.config.write_service_cycles
        completion = start + self.config.write_cycles
        self._write_queue.append(completion)
        return accept_time, completion

    def _queue_slot_free_time(self, now: float) -> float:
        """Earliest time a write-queue slot is free."""
        self._write_queue = [t for t in self._write_queue if t > now]
        if len(self._write_queue) < self.config.write_queue_depth:
            return now
        return min(self._write_queue)

    @property
    def write_queue_occupancy(self) -> int:
        return len(self._write_queue)


# ----------------------------------------------------------------------
# functional model (zero latency, round-robin, exact persist semantics)
# ----------------------------------------------------------------------

#: Terminal events — the ones that cost the functional model's single
#: cycle per op (reserve-phase events are free).  Defined in
#: :mod:`repro.sim.events` next to the protocol, shared with the
#: op-stream interpreter's cost table (see
#: :data:`repro.sim.isa.COSTED_OPCODES`).
_TICK_EVENTS = FUNCTIONAL_TICKS


class FunctionalCoreTiming(CoreTiming):
    """One cycle per op, no structure ever fills, no stall ever charged.

    The inherited bounded structures stay empty, so
    :meth:`outstanding_drain_time` is always the current clock and a
    fence never stalls.  Each op's terminal event advances the clock by
    exactly one cycle; with the machine's min-``(clock, core_id)``
    scheduler this yields a deterministic round-robin interleaving.

    Persist-order exactness: a flush's line is accepted by the MC at
    the pre-advance clock ``t`` and the clock then moves to ``t + 1``,
    so any later fence on the same core retires at a strictly greater
    time and :meth:`~repro.sim.persist.PersistOrderTracker.on_fence`
    orders exactly the flushes it should.
    """

    def on_event(self, event: MemoryEvent) -> None:
        # Flat dispatch override: this is the hot path of crash-state
        # campaigns, so skip the table + getattr indirection.  Every
        # terminal event costs one cycle; reserve events are free.
        if type(event) in _TICK_EVENTS:
            self.clock += 1.0
        elif type(event) not in _EVENT_HANDLERS:
            raise SimulationError(f"unknown memory event {event!r}")

    def on_load_commit(self, ev: LoadCommit) -> None:
        self.clock += 1.0

    def on_store_reserve(self, ev: StoreReserve) -> None:
        pass

    def on_store_commit(self, ev: StoreCommit) -> None:
        self.clock += 1.0

    def on_compute(self, ev: ComputeIssue) -> None:
        self.clock += 1.0

    def on_flush_reserve(self, ev: FlushReserve) -> None:
        pass

    def on_flush_commit(self, ev: FlushCommit) -> None:
        self.clock += 1.0

    def on_fence(self, ev: FenceIssue) -> None:
        self.clock += 1.0


class FunctionalMCTiming(MCTiming):
    """Writes are accepted and complete instantly; reads return at once."""

    def read(self, now: float) -> float:
        return now

    def write(self, now: float) -> Tuple[float, float]:
        return now, now

    @property
    def write_queue_occupancy(self) -> int:
        return 0


# ----------------------------------------------------------------------
# the models themselves
# ----------------------------------------------------------------------


class TimingModel(ABC):
    """Factory of per-component timing views for one machine."""

    name: ClassVar[str]

    def __init__(self, config: MachineConfig, ledger: LatencyLedger) -> None:
        self.config = config
        self.ledger = ledger

    @abstractmethod
    def core_view(self, core_id: int, stats: CoreStats) -> CoreTiming: ...

    @abstractmethod
    def mc_view(self) -> MCTiming: ...

    @abstractmethod
    def hierarchy_view(self) -> HierarchyTiming: ...


class DetailedTiming(TimingModel):
    """The current Table II behaviour (golden-pinned bit-identical)."""

    name = "detailed"

    def core_view(self, core_id: int, stats: CoreStats) -> CoreTiming:
        return DetailedCoreTiming(self.config.core, stats, self.ledger)

    def mc_view(self) -> MCTiming:
        return DetailedMCTiming(self.config.nvmm, self.ledger)

    def hierarchy_view(self) -> HierarchyTiming:
        return HierarchyTiming(
            l2_hit_cycles=self.config.l2.hit_cycles,
            coherence_cycles=self.config.coherence_cycles,
            flush_transit_cycles=self.config.flush_transit_cycles,
        )


class FastFunctional(TimingModel):
    """Zero-latency semantics-first model for crash-state campaigns."""

    name = "functional"

    def core_view(self, core_id: int, stats: CoreStats) -> CoreTiming:
        return FunctionalCoreTiming(self.config.core, stats, self.ledger)

    def mc_view(self) -> MCTiming:
        return FunctionalMCTiming()

    def hierarchy_view(self) -> HierarchyTiming:
        return HierarchyTiming(
            l2_hit_cycles=0.0,
            coherence_cycles=0.0,
            flush_transit_cycles=0.0,
        )


TIMING_MODELS: Dict[str, Type[TimingModel]] = {
    DetailedTiming.name: DetailedTiming,
    FastFunctional.name: FastFunctional,
}


def make_timing_model(
    name: str, config: MachineConfig, ledger: LatencyLedger
) -> TimingModel:
    """Instantiate a registered timing model by name."""
    try:
        cls = TIMING_MODELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown timing model {name!r}; "
            f"available: {sorted(TIMING_MODELS)}"
        ) from None
    return cls(config, ledger)
