"""Architectural vs. persistent value state.

The simulator tracks data at element (8-byte) granularity in two maps:

* the **architectural** view — what a load returns during execution;
  updated immediately by every store.  On real hardware this is the
  union of caches and memory; it is volatile.
* the **persistent** image — what the NVMM holds.  Updated only when a
  line's data is accepted into the memory controller's ADR-protected
  write queue (natural eviction, clflushopt/clwb, or the periodic
  cleaner).

A crash discards the architectural view; the post-crash machine is
rebuilt with ``arch = copy(persistent)``, which is exactly the paper's
failure model: store values that never left the cache hierarchy are
lost, everything accepted by the MC survives.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AddressError
from repro.sim.address import element_addrs_of_line, is_element_aligned

Value = float  # elements are numbers; ints are preserved exactly too


class MemoryState:
    """Paired architectural / persistent value maps."""

    def __init__(self) -> None:
        self.arch: Dict[int, Value] = {}
        self.persistent: Dict[int, Value] = {}
        #: Stores are durable the instant they execute (eADR-class
        #: persistency models, where the caches sit inside the
        #: persistence domain).  Set by the Machine from its
        #: :class:`~repro.sim.model.PersistencyModel`; placing the
        #: branch here makes every execution tier — heap scheduler,
        #: replay loop, op-stream interpreter — inherit it through the
        #: one store entry point.
        self.persist_on_store = False

    # -- program-visible accesses ----------------------------------------

    def load(self, addr: int) -> Value:
        """Architectural load (what the program sees)."""
        # Hot path: only aligned positive addresses ever enter the map
        # (init/store validate before writing), so a present key needs
        # no re-validation; diagnose alignment only on the miss path.
        try:
            return self.arch[addr]
        except KeyError:
            self._check(addr)
            raise AddressError(f"load from unwritten address {addr:#x}") from None

    def store(self, addr: int, value: Value) -> None:
        """Architectural store (volatile until a line writeback, unless
        the persistency model puts the caches in the domain)."""
        self._check(addr)
        self.arch[addr] = value
        if self.persist_on_store:
            self.persistent[addr] = value

    # -- initialisation ---------------------------------------------------

    def init(self, addr: int, value: Value) -> None:
        """Initialise an address durably (pre-existing NVMM contents).

        Array allocation and input data are treated as already durable,
        like data loaded into a persistent heap before the kernel runs.
        """
        self._check(addr)
        self.arch[addr] = value
        self.persistent[addr] = value

    # -- persistence ------------------------------------------------------

    def persist_line(self, line_addr: int) -> None:
        """Copy a line's current architectural data into the NVMM image."""
        for addr in element_addrs_of_line(line_addr):
            if addr in self.arch:
                self.persistent[addr] = self.arch[addr]

    def apply_updates(
        self, arch: Dict[int, Value], persistent: Dict[int, Value]
    ) -> None:
        """Bulk-merge pre-computed value updates into both views.

        Writeback path of the op-stream interpreter
        (:mod:`repro.sim.opstream`), which evolves dense array copies of
        the two maps and merges the result back in one call.  Addresses
        absent from the updates are untouched — the interpreter's dense
        space covers exactly the addresses its stream can modify.
        """
        self.arch.update(arch)
        self.persistent.update(persistent)

    def persisted(self, addr: int, default: Optional[Value] = None) -> Value:
        """The NVMM-image value, or ``default`` if provided."""
        self._check(addr)
        if addr in self.persistent:
            return self.persistent[addr]
        if default is not None:
            return default
        raise AddressError(f"address {addr:#x} has no persistent value")

    def is_divergent(self, addr: int) -> bool:
        """True if the architectural value has not been persisted."""
        self._check(addr)
        return self.arch.get(addr) != self.persistent.get(addr)

    # -- crash ------------------------------------------------------------

    def crashed_copy(self) -> "MemoryState":
        """State as seen after power loss: only the NVMM image survives."""
        return MemoryState.from_image(self.persistent)

    @classmethod
    def from_image(cls, image: Dict[int, Value]) -> "MemoryState":
        """State whose NVMM holds ``image`` and nothing else survives.

        This is the post-crash construction rule in one place: the
        architectural view equals the persistent image (recovery code
        reads exactly what the NVMM kept).  Used both for the schedule
        the simulator happened to produce (:meth:`crashed_copy`) and
        for any other member of a crash's reachable-image set
        (:meth:`repro.sim.machine.Machine.after_crash_with_image`).
        """
        fresh = cls()
        fresh.persistent = dict(image)
        fresh.arch = dict(image)
        return fresh

    @staticmethod
    def _check(addr: int) -> None:
        if not is_element_aligned(addr):
            raise AddressError(f"address {addr:#x} is not 8-byte aligned")
        if addr <= 0:
            raise AddressError(f"invalid address {addr:#x}")
