"""Architectural vs. persistent value state.

The simulator tracks data at element (8-byte) granularity in two maps:

* the **architectural** view — what a load returns during execution;
  updated immediately by every store.  On real hardware this is the
  union of caches and memory; it is volatile.
* the **persistent** image — what the NVMM holds.  Updated only when a
  line's data is accepted into the memory controller's ADR-protected
  write queue (natural eviction, clflushopt/clwb, or the periodic
  cleaner).

A crash discards the architectural view; the post-crash machine is
rebuilt with ``arch = copy(persistent)``, which is exactly the paper's
failure model: store values that never left the cache hierarchy are
lost, everything accepted by the MC survives.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AddressError
from repro.sim.address import element_addrs_of_line, is_element_aligned

Value = float  # elements are numbers; ints are preserved exactly too


class MemoryState:
    """Paired architectural / persistent value maps."""

    def __init__(self) -> None:
        self.arch: Dict[int, Value] = {}
        self.persistent: Dict[int, Value] = {}

    # -- program-visible accesses ----------------------------------------

    def load(self, addr: int) -> Value:
        """Architectural load (what the program sees)."""
        self._check(addr)
        try:
            return self.arch[addr]
        except KeyError:
            raise AddressError(f"load from unwritten address {addr:#x}") from None

    def store(self, addr: int, value: Value) -> None:
        """Architectural store (volatile until a line writeback)."""
        self._check(addr)
        self.arch[addr] = value

    # -- initialisation ---------------------------------------------------

    def init(self, addr: int, value: Value) -> None:
        """Initialise an address durably (pre-existing NVMM contents).

        Array allocation and input data are treated as already durable,
        like data loaded into a persistent heap before the kernel runs.
        """
        self._check(addr)
        self.arch[addr] = value
        self.persistent[addr] = value

    # -- persistence ------------------------------------------------------

    def persist_line(self, line_addr: int) -> None:
        """Copy a line's current architectural data into the NVMM image."""
        for addr in element_addrs_of_line(line_addr):
            if addr in self.arch:
                self.persistent[addr] = self.arch[addr]

    def persisted(self, addr: int, default: Optional[Value] = None) -> Value:
        """The NVMM-image value, or ``default`` if provided."""
        self._check(addr)
        if addr in self.persistent:
            return self.persistent[addr]
        if default is not None:
            return default
        raise AddressError(f"address {addr:#x} has no persistent value")

    def is_divergent(self, addr: int) -> bool:
        """True if the architectural value has not been persisted."""
        self._check(addr)
        return self.arch.get(addr) != self.persistent.get(addr)

    # -- crash ------------------------------------------------------------

    def crashed_copy(self) -> "MemoryState":
        """State as seen after power loss: only the NVMM image survives."""
        fresh = MemoryState()
        fresh.persistent = dict(self.persistent)
        fresh.arch = dict(self.persistent)
        return fresh

    @staticmethod
    def _check(addr: int) -> None:
        if not is_element_aligned(addr):
            raise AddressError(f"address {addr:#x} is not 8-byte aligned")
        if addr <= 0:
            raise AddressError(f"invalid address {addr:#x}")
