"""Core execution engine: op costs, bounded structures, hazard events.

The paper's cores are 4-wide out-of-order; we model an in-order engine
with throughput-style costs for common ops plus three bounded
asynchronous structures whose backpressure recreates the structural
hazards of Table VI:

* **store buffer** — stores retire immediately and drain in the
  background; a store that finds it full counts an FUW event (the
  paper's "store queue full") and stalls,
* **flush queue** — clflushopt/clwb completions park here until the MC
  accepts the data; a full queue counts an MSHR-full event (flushes
  occupy writeback buffers/MSHRs on real cores) and stalls,
* **MSHRs** — load misses and background store-miss drains occupy
  entries for the miss window.

FUI (integer FU / issue pressure) is counted when a compute op issues
while the async structures hold many in-flight ops, and FUR (load
issue pressure) when a load miss issues under the same condition —
both are documented proxies, see DESIGN.md section 4.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.address import line_of
from repro.sim.coherence import Hierarchy
from repro.sim.config import CoreConfig
from repro.sim.isa import (
    Compute,
    Fence,
    Flush,
    FlushWB,
    Load,
    Op,
    RegionMark,
    Store,
)
from repro.sim.stats import CoreStats
from repro.sim.valuestore import MemoryState


class Core:
    """One hardware thread context."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        hierarchy: Hierarchy,
        mem: MemoryState,
        stats: CoreStats,
    ) -> None:
        from repro.sim.queues import BoundedQueue

        self.core_id = core_id
        self.config = config
        self.hierarchy = hierarchy
        self.mem = mem
        self.stats = stats
        self.clock = 0.0
        self.store_buffer = BoundedQueue(
            config.store_buffer_entries, "store_buffer"
        )
        self.flush_queue = BoundedQueue(
            config.flush_queue_entries, "flush_queue"
        )
        self.mshrs = BoundedQueue(config.mshr_entries, "mshr")
        self._last_drain_complete = 0.0

    # ------------------------------------------------------------------

    def execute(self, op: Op) -> Optional[float]:
        """Run one op at the current clock; returns the load value if any."""
        self.stats.ops += 1
        if isinstance(op, Load):
            return self._load(op)
        if isinstance(op, Store):
            self._store(op)
            return None
        if isinstance(op, Compute):
            self._compute(op)
            return None
        if isinstance(op, Flush):
            self._flush(op.addr, invalidate=True)
            return None
        if isinstance(op, FlushWB):
            self._flush(op.addr, invalidate=False)
            return None
        if isinstance(op, Fence):
            self._fence()
            return None
        if isinstance(op, RegionMark):
            return None
        raise SimulationError(f"unknown op {op!r}")

    # -- op handlers -------------------------------------------------------

    def _load(self, op: Load) -> float:
        self.stats.loads += 1
        access = self.hierarchy.load(self.core_id, op.addr, self.clock)
        if access.l1_hit:
            self.stats.l1_hits += 1
            self.clock += self.config.l1_hit_issue_cycles
            return self.mem.load(op.addr)

        self.stats.l1_misses += 1
        if self.mshrs.occupancy(self.clock) > 0:
            # the miss had to arbitrate with in-flight transactions
            self.stats.fu_read_events += 1
        if self._async_pressure() >= self.config.fu_pressure_threshold:
            self.stats.fu_read_events += 1
        if self.mshrs.full(self.clock):
            self.stats.mshr_full_events += 1
            self._stall_to(self.mshrs.earliest_free(self.clock))
        # Blocking miss: the core waits for the data; the MSHR entry
        # documents the occupancy window for cross-pressure with flushes.
        self.clock += self.config.l1_hit_issue_cycles + access.extra_latency
        self.mshrs.push(self.clock)
        return self.mem.load(op.addr)

    def _store(self, op: Store) -> None:
        self.stats.stores += 1
        if self.store_buffer.full(self.clock):
            self.stats.fu_write_events += 1
            self._stall_to(self.store_buffer.earliest_free(self.clock))

        # State transitions happen now; the timing cost is charged to
        # the background drain of the store buffer.
        access = self.hierarchy.store(self.core_id, op.addr, op.value, self.clock)
        if access.l1_hit:
            self.stats.l1_hits += 1
        else:
            self.stats.l1_misses += 1
        drain_cost = self.config.store_drain_cycles + access.extra_latency
        start = max(self.clock, self._last_drain_complete)
        completion = start + drain_cost
        self._last_drain_complete = completion
        self.store_buffer.push(completion)
        if not access.l1_hit:
            # A store miss occupies an MSHR for its RFO window.
            if self.mshrs.full(self.clock):
                self.stats.mshr_full_events += 1
                self._stall_to(self.mshrs.earliest_free(self.clock))
            self.mshrs.push(completion)
        self.clock += self.config.l1_hit_issue_cycles

    def _compute(self, op: Compute) -> None:
        self.stats.computes += 1
        if self._async_pressure() >= self.config.fu_pressure_threshold:
            self.stats.fu_int_events += 1
        self.clock += op.flops * self.config.compute_cpi

    def _flush(self, addr: int, invalidate: bool) -> None:
        self.stats.flushes += 1
        if self.flush_queue.full(self.clock):
            self.stats.mshr_full_events += 1
            self._stall_to(self.flush_queue.earliest_free(self.clock))
        self.clock += self.config.flush_issue_cycles
        wrote, accept_time = self.hierarchy.flush_line(
            line_of(addr), self.clock, invalidate=invalidate,
            core_id=self.core_id,
        )
        completion = max(accept_time, self.clock)
        self.flush_queue.push(completion)
        # clflushopt occupies a store-queue slot on x86 until the data
        # leaves for the persistence domain — this is what backs stores
        # up behind flushes (FUW pressure under Eager Persistency).
        if self.store_buffer.full(self.clock):
            self.stats.fu_write_events += 1
            self._stall_to(self.store_buffer.earliest_free(self.clock))
        self.store_buffer.push(completion)
        if wrote:
            # Flush data occupies an MSHR/WB buffer until MC acceptance.
            if self.mshrs.full(self.clock):
                self.stats.mshr_full_events += 1
                self._stall_to(self.mshrs.earliest_free(self.clock))
            self.mshrs.push(completion)

    def _fence(self) -> None:
        self.stats.fences += 1
        target = max(
            self.store_buffer.drain_time(self.clock),
            self.flush_queue.drain_time(self.clock),
        )
        if target > self.clock:
            self.stats.fence_stall_cycles += target - self.clock
            self._stall_to(target)
        tracker = self.hierarchy.mc.tracker
        if tracker is not None:
            # The retired sfence orders every previously accepted flush
            # from this core into the persistence domain.
            tracker.on_fence(self.core_id, self.clock)

    def _stall_to(self, target: float) -> None:
        """Advance the clock through a structural stall, charging the
        lost integer-issue slots to the FUI counter (a stalled front
        end issues nothing, which is how eager flushing inflates the
        paper's Table VI FU counters)."""
        if target <= self.clock:
            return
        self.stats.fu_int_events += int(
            (target - self.clock) * self.config.issue_width
        )
        self.clock = target

    # -- helpers -----------------------------------------------------------

    def _async_pressure(self) -> int:
        return self.store_buffer.occupancy(self.clock) + self.flush_queue.occupancy(
            self.clock
        )

    def outstanding_drain_time(self) -> float:
        """When all of this core's in-flight persistence work completes."""
        return max(
            self.store_buffer.drain_time(self.clock),
            self.flush_queue.drain_time(self.clock),
        )
