"""Core execution engine: the semantics layer of the op pipeline.

The paper's cores are 4-wide out-of-order; the *detailed* timing model
(:mod:`repro.sim.timing`) models an in-order engine with
throughput-style costs for common ops plus three bounded asynchronous
structures whose backpressure recreates the structural hazards of
Table VI:

* **store buffer** — stores retire immediately and drain in the
  background; a store that finds it full counts an FUW event (the
  paper's "store queue full") and stalls,
* **flush queue** — clflushopt/clwb completions park here until the MC
  accepts the data; a full queue counts an MSHR-full event (flushes
  occupy writeback buffers/MSHRs on real cores) and stalls,
* **MSHRs** — load misses and background store-miss drains occupy
  entries for the miss window.

FUI (integer FU / issue pressure) is counted when a compute op issues
while the async structures hold many in-flight ops, and FUR (load
issue pressure) when a load miss issues under the same condition —
both are documented proxies, see DESIGN.md section 4.

This module itself is timing-agnostic: each op handler performs the
*semantics* (value updates, coherence transitions, persist-order
hooks) and narrates what happened to a pluggable
:class:`~repro.sim.timing.CoreTiming` view as a stream of
:mod:`~repro.sim.events`; the view owns the clock, the bounded
structures, and every stall.  Dispatch is a type-keyed handler table
shared by all timing models (no isinstance chain).

This handler table is the first of three execution tiers.  The machine
scheduler inlines the hot handlers for trigger-free replay runs
(:meth:`Machine._run_replay <repro.sim.machine.Machine._run_replay>`),
and the op-stream interpreter (:mod:`repro.sim.opstream`) replaces
per-op dispatch entirely with batched array operations over a recorded
stream.  All three are pinned op-for-op equivalent by ``tests/verify``;
a semantic change to any handler here must be mirrored in both fast
tiers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Type

from repro.errors import SimulationError
from repro.sim.address import line_of
from repro.sim.coherence import MemorySystem
from repro.sim.config import CoreConfig
from repro.sim.events import (
    FENCE_ISSUE,
    FLUSH_RESERVE,
    LOAD_HIT,
    STORE_HIT,
    STORE_RESERVE,
    ComputeIssue,
    FlushCommit,
    LoadCommit,
    StoreCommit,
)
from repro.sim.isa import (
    Compute,
    Fence,
    Flush,
    FlushWB,
    Load,
    Op,
    Phase,
    RegionMark,
    Store,
)
from repro.sim.ledger import LatencyLedger
from repro.sim.queues import BoundedQueue
from repro.sim.stats import CoreStats
from repro.sim.timing import CoreTiming, DetailedCoreTiming
from repro.sim.valuestore import MemoryState


class Core:
    """One hardware thread context."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        hierarchy: MemorySystem,
        mem: MemoryState,
        stats: CoreStats,
        timer: Optional[CoreTiming] = None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.hierarchy = hierarchy
        self.mem = mem
        self.stats = stats
        #: The timing view (clock + structures + stalls).  Directly
        #: constructed cores (tests, examples) default to the detailed
        #: model with a private ledger.
        self.timer = (
            timer
            if timer is not None
            else DetailedCoreTiming(config, stats, LatencyLedger())
        )

    # -- timing-view delegation (back-compat surface) ----------------------

    @property
    def clock(self) -> float:
        return self.timer.clock

    @clock.setter
    def clock(self, value: float) -> None:
        self.timer.clock = value

    @property
    def store_buffer(self) -> BoundedQueue:
        return self.timer.store_buffer

    @property
    def flush_queue(self) -> BoundedQueue:
        return self.timer.flush_queue

    @property
    def mshrs(self) -> BoundedQueue:
        return self.timer.mshrs

    def outstanding_drain_time(self) -> float:
        """When all of this core's in-flight persistence work completes."""
        return self.timer.outstanding_drain_time()

    # ------------------------------------------------------------------

    def execute(self, op: Op) -> Optional[float]:
        """Run one op at the current clock; returns the load value if any.

        Probe tap point: ``repro.obs`` shadows this method on tapped
        machines to publish one ``OpExecuted`` per call (op, result,
        start/end cycle).  Keep it the single entry for op execution —
        emitting ops elsewhere would escape observability.
        """
        self.stats.ops += 1
        handler = _OP_HANDLERS.get(type(op))
        if handler is None:
            raise SimulationError(f"unknown op {op!r}")
        return handler(self, op)

    # -- op handlers (semantics; timing flows through self.timer) ----------

    def _exec_load(self, op: Load) -> float:
        self.stats.loads += 1
        access = self.hierarchy.load(self.core_id, op.addr, self.timer.clock)
        if access.l1_hit:
            self.stats.l1_hits += 1
            self.timer.on_event(LOAD_HIT)
        else:
            self.stats.l1_misses += 1
            self.timer.on_event(LoadCommit(False, access.extra_latency))
        return self.mem.load(op.addr)

    def _exec_store(self, op: Store) -> None:
        self.stats.stores += 1
        # Reserve first: a full store buffer stalls the issue, so the
        # state transitions below happen at the post-stall clock.
        self.timer.on_event(STORE_RESERVE)
        access = self.hierarchy.store(
            self.core_id, op.addr, op.value, self.timer.clock
        )
        if access.l1_hit:
            self.stats.l1_hits += 1
        else:
            self.stats.l1_misses += 1
        if access.l1_hit and access.extra_latency == 0.0:
            # The common case (hit in M/E, no upgrade traffic) always
            # has this exact outcome; reuse the frozen instance.
            self.timer.on_event(STORE_HIT)
        else:
            self.timer.on_event(
                StoreCommit(access.l1_hit, access.extra_latency)
            )
        return None

    def _exec_compute(self, op: Compute) -> None:
        self.stats.computes += 1
        self.timer.on_event(ComputeIssue(op.flops))
        return None

    def _exec_flush(self, op: Flush) -> None:
        self._flush(op.addr, invalidate=True)
        return None

    def _exec_flushwb(self, op: FlushWB) -> None:
        self._flush(op.addr, invalidate=False)
        return None

    def _flush(self, addr: int, invalidate: bool) -> None:
        self.stats.flushes += 1
        self.timer.on_event(FLUSH_RESERVE)
        wrote, accept_time = self.hierarchy.flush_line(
            line_of(addr), self.timer.clock, invalidate=invalidate,
            core_id=self.core_id,
        )
        self.timer.on_event(FlushCommit(wrote, accept_time))

    def _exec_fence(self, op: Fence) -> None:
        self.stats.fences += 1
        self.timer.on_event(FENCE_ISSUE)
        tracker = self.hierarchy.mc.tracker
        if tracker is not None:
            # The retired sfence orders every previously accepted flush
            # from this core into the persistence domain.
            tracker.on_fence(self.core_id, self.timer.clock)
        return None

    def _exec_mark(self, op: RegionMark) -> None:
        return None

    def _exec_phase(self, op: Phase) -> None:
        # Provenance frames are free: no events, no cycles.  Profiling
        # observers see them through the OpExecuted probe channel.
        return None


#: Type-keyed op dispatch, shared by every timing model (Barriers are
#: scheduler-level and handled by the machine, so they are absent here
#: and raise like any unknown op).
_OP_HANDLERS: Dict[Type[Op], Callable[[Core, Any], Optional[float]]] = {
    Load: Core._exec_load,
    Store: Core._exec_store,
    Compute: Core._exec_compute,
    Flush: Core._exec_flush,
    FlushWB: Core._exec_flushwb,
    Fence: Core._exec_fence,
    RegionMark: Core._exec_mark,
    Phase: Core._exec_phase,
}
