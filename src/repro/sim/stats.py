"""Statistics collected during a simulation run.

Every number the paper reports is derived from these counters:

* execution time            -> max over cores of ``core.cycles``
* number of writes (Fig 10) -> ``nvmm_writes`` (L2 writebacks + flushes
                               + cleaner writebacks accepted at the MC)
* Table VI hazards          -> ``mshr_full_events`` / ``fu_int_events`` /
                               ``fu_read_events`` / ``fu_write_events``
* L2 miss rate              -> ``l2_misses / l2_accesses``
* maxvdur (section VI)      -> ``max_volatility_cycles``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.ledger import LatencyLedger


@dataclass
class CoreStats:
    """Per-core counters."""

    cycles: float = 0.0
    ops: int = 0
    loads: int = 0
    stores: int = 0
    computes: int = 0
    flushes: int = 0
    fences: int = 0
    fence_stall_cycles: float = 0.0
    mshr_full_events: int = 0
    fu_int_events: int = 0
    fu_read_events: int = 0
    fu_write_events: int = 0
    l1_hits: int = 0
    l1_misses: int = 0


@dataclass
class MachineStats:
    """Whole-machine counters plus per-core breakdowns."""

    per_core: List[CoreStats] = field(default_factory=list)

    l2_accesses: int = 0
    l2_misses: int = 0

    #: Lines accepted into the MC write queue (the persistence domain):
    #: the paper's "number of writes".
    nvmm_writes: int = 0
    #: Breakdown of nvmm_writes by cause.
    writes_by_cause: Dict[str, int] = field(default_factory=dict)
    nvmm_reads: int = 0

    #: Volatility duration: cycles between a line becoming dirty in the
    #: hierarchy and its data reaching the persistence domain.
    max_volatility_cycles: float = 0.0
    total_volatility_cycles: float = 0.0
    volatility_samples: int = 0

    #: NVMM wear: writes per line address.  The paper motivates LP with
    #: NVM's limited write endurance; eager flushing concentrates and
    #: multiplies writes, which shows up here as a higher per-line
    #: maximum (the cell that wears out first).
    writes_per_line: Dict[int, int] = field(default_factory=dict)

    #: The accounting layer (see :mod:`repro.sim.ledger`): every stall
    #: cycle the timing model charges, attributed to its cause.  The
    #: legacy counters above stay authoritative for the paper's
    #: metrics; the ledger adds the cause breakdown.
    ledger: LatencyLedger = field(default_factory=LatencyLedger)

    def for_cores(self, num_cores: int) -> "MachineStats":
        """Initialise per-core counters; returns self."""
        self.per_core = [CoreStats() for _ in range(num_cores)]
        return self

    # -- derived metrics -------------------------------------------------

    @property
    def exec_cycles(self) -> float:
        """Parallel execution time: the slowest core's clock."""
        if not self.per_core:
            return 0.0
        return max(c.cycles for c in self.per_core)

    @property
    def l2_miss_rate(self) -> float:
        if self.l2_accesses == 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    @property
    def total_ops(self) -> int:
        return sum(c.ops for c in self.per_core)

    @property
    def mean_volatility_cycles(self) -> float:
        if self.volatility_samples == 0:
            return 0.0
        return self.total_volatility_cycles / self.volatility_samples

    def hazard_totals(self) -> Dict[str, int]:
        """Summed Table VI hazard counters across cores."""
        return {
            "mshr": sum(c.mshr_full_events for c in self.per_core),
            "fui": sum(c.fu_int_events for c in self.per_core),
            "fur": sum(c.fu_read_events for c in self.per_core),
            "fuw": sum(c.fu_write_events for c in self.per_core),
        }

    def count_write(self, cause: str, line_addr: Optional[int] = None) -> None:
        """Record one NVMM write, by cause and (optionally) line."""
        self.nvmm_writes += 1
        self.writes_by_cause[cause] = self.writes_by_cause.get(cause, 0) + 1
        if line_addr is not None:
            self.writes_per_line[line_addr] = (
                self.writes_per_line.get(line_addr, 0) + 1
            )

    # -- wear metrics ------------------------------------------------------

    @property
    def max_line_writes(self) -> int:
        """Writes to the most-written line (the endurance-limiting cell)."""
        if not self.writes_per_line:
            return 0
        return max(self.writes_per_line.values())

    def wear_percentile(self, pct: float) -> int:
        """Per-line write count at the given percentile (0-100)."""
        if not self.writes_per_line:
            return 0
        counts = sorted(self.writes_per_line.values())
        index = min(len(counts) - 1, int(len(counts) * pct / 100.0))
        return counts[index]

    def record_volatility(self, cycles: float) -> None:
        """Record one volatility-duration sample."""
        if cycles < 0:
            cycles = 0.0
        self.volatility_samples += 1
        self.total_volatility_cycles += cycles
        if cycles > self.max_volatility_cycles:
            self.max_volatility_cycles = cycles

    def stall_summary(self) -> Dict[str, float]:
        """Stall cycles by cause (the ledger's attribution), flat."""
        return dict(self.ledger.stall_cycles)

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline metrics, for reporting.

        Besides the long-standing headline keys (stable — external
        tooling reads them), the dict carries the cause breakdowns
        under namespaced keys: ``writes_by_cause/<cause>`` for the
        NVMM-write split and ``stall_cycles/<cause>`` /
        ``stall_events/<cause>`` for the ledger's attribution.  Earlier
        versions dropped these breakdowns here entirely, so a summary
        consumer could not tell cleaner writes from flush writes.
        """
        hz = self.hazard_totals()
        out = {
            "exec_cycles": self.exec_cycles,
            "nvmm_writes": float(self.nvmm_writes),
            "nvmm_reads": float(self.nvmm_reads),
            "l2_miss_rate": self.l2_miss_rate,
            "max_volatility_cycles": self.max_volatility_cycles,
            "mshr_full": float(hz["mshr"]),
            "fui": float(hz["fui"]),
            "fur": float(hz["fur"]),
            "fuw": float(hz["fuw"]),
            "total_ops": float(self.total_ops),
        }
        for cause in sorted(self.writes_by_cause):
            out[f"writes_by_cause/{cause}"] = float(self.writes_by_cause[cause])
        for cause in sorted(self.ledger.stall_cycles):
            out[f"stall_cycles/{cause}"] = self.ledger.stall_cycles[cause]
        for cause in sorted(self.ledger.stall_events):
            out[f"stall_events/{cause}"] = float(self.ledger.stall_events[cause])
        return out
