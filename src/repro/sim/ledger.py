"""Latency accounting: one ledger, every stall attributed to a cause.

Before the semantics/timing split, stall accounting was scattered as
ad-hoc counter bumps through ``Core._load/_store/_flush/_stall_to`` and
the hierarchy: an MSHR-full stall incremented one counter here, charged
lost issue slots there, and nothing recorded *how many cycles* each
cause actually cost.  The :class:`LatencyLedger` is the accounting
layer of the three-layer pipeline (see docs/architecture.md): every
structural-hazard event, every stall, and every MC queue delay flows
through exactly one of its methods, which

* attributes the stall cycles to a named cause
  (``mshr_full``, ``flush_queue_full``, ``store_buffer_full``,
  ``fence_drain``, ``mc_write_queue``), and
* keeps the paper's legacy Table VI counters (``mshr_full_events``,
  ``fu_int/read/write_events``, ``fence_stall_cycles``) bit-identical
  to the pre-refactor simulator by bumping them from the same single
  place.

The ledger is deliberately import-free within ``repro.sim`` so the
stats module can own one without a cycle; core-level counters are
duck-typed through :class:`HazardCounters`.
"""

from __future__ import annotations

from typing import Dict, Protocol

#: Causes of structural-hazard *events* (an op found a structure full
#: or arbitrated for a busy resource), mapped to the legacy Table VI
#: counter each one bumps.  ``flush_queue_full`` lands on the MSHR
#: counter because flushes occupy writeback buffers / MSHRs on real
#: cores (see the core-module docstring).
EVENT_CAUSES: Dict[str, str] = {
    "mshr_full": "mshr_full_events",
    "flush_queue_full": "mshr_full_events",
    "store_buffer_full": "fu_write_events",
    "load_arbitration": "fu_read_events",
    "load_pressure": "fu_read_events",
    "compute_pressure": "fu_int_events",
}


class HazardCounters(Protocol):
    """The per-core legacy counters the ledger keeps bit-identical
    (structurally matched by :class:`repro.sim.stats.CoreStats`)."""

    fence_stall_cycles: float
    mshr_full_events: int
    fu_int_events: int
    fu_read_events: int
    fu_write_events: int


class LatencyLedger:
    """Machine-wide stall attribution shared by all timing views."""

    def __init__(self) -> None:
        #: Stall cycles per cause, summed across cores.
        self.stall_cycles: Dict[str, float] = {}
        #: Structural-hazard events per cause, summed across cores.
        self.stall_events: Dict[str, int] = {}

    # -- recording hooks ---------------------------------------------------

    def event(self, stats: HazardCounters, cause: str) -> None:
        """An op hit a structural hazard (no cycles charged yet).

        Probe tap point (``HazardHit``): one call here is one hazard
        event; traced counts reconcile with the legacy counters.
        """
        self.stall_events[cause] = self.stall_events.get(cause, 0) + 1
        legacy = EVENT_CAUSES[cause]
        setattr(stats, legacy, getattr(stats, legacy) + 1)

    def stall(
        self,
        stats: HazardCounters,
        cause: str,
        cycles: float,
        issue_width: int,
    ) -> None:
        """A core front-end stalled ``cycles`` for ``cause``.

        A stalled front end issues nothing, so the lost issue slots are
        charged to the FUI counter exactly as the pre-refactor
        ``Core._stall_to`` did; fence-drain stalls additionally feed the
        legacy ``fence_stall_cycles`` total.

        Probe tap point (``StallCharged``): callers invoke this before
        advancing the core clock, so the tap reads the stall's start
        time from the timer — keep that ordering.
        """
        if cycles <= 0:
            return
        self.stall_cycles[cause] = self.stall_cycles.get(cause, 0.0) + cycles
        stats.fu_int_events += int(cycles * issue_width)
        if cause == "fence_drain":
            stats.fence_stall_cycles += cycles

    def queue_delay(self, cause: str, cycles: float) -> None:
        """Backpressure delay inside a shared resource (MC queues).

        Not a core stall — the issuing core may never feel it directly
        — so no legacy counter moves; the cycles are attributed for the
        stall breakdown only.
        """
        if cycles <= 0:
            return
        self.stall_cycles[cause] = self.stall_cycles.get(cause, 0.0) + cycles

    # -- reporting ---------------------------------------------------------

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Cause-attributed totals: ``{"stall_cycles": .., "events": ..}``."""
        return {
            "stall_cycles": dict(self.stall_cycles),
            "events": {k: float(v) for k, v in self.stall_events.items()},
        }

    @property
    def total_stall_cycles(self) -> float:
        return sum(self.stall_cycles.values())
