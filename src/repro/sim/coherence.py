"""Two-level coherent cache hierarchy (private L1s, shared inclusive L2).

Implements the paper's "MESI two-level protocol" at the granularity the
reproduction needs: line states, ownership transfer, upgrade
invalidations, inclusive back-invalidation, and — crucially for Lazy
Persistency — the exact paths by which dirty data reaches the memory
controller:

* natural eviction of a dirty L2 line (or recall of an L1 ``M`` copy
  when its inclusive L2 line is evicted),
* ``clflushopt`` (persist + invalidate),
* ``clwb`` (persist, keep resident clean),
* the periodic hardware cleaner of section III-E.1.

Because the machine scheduler serialises ops, protocol transient states
and races do not arise; transitions are applied atomically at the
issuing core's clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.sim.address import line_of
from repro.sim.cache import Cache, Line, State
from repro.sim.config import MachineConfig
from repro.sim.model import get_model
from repro.sim.nvmm import MemoryController
from repro.sim.stats import MachineStats
from repro.sim.timing import HierarchyTiming
from repro.sim.valuestore import MemoryState


@dataclass
class Access:
    """Outcome of a load/store as seen by the issuing core."""

    l1_hit: bool
    #: Cycles beyond the L1-hit issue cost until data/ownership arrives.
    extra_latency: float = 0.0


class MemorySystem(Protocol):
    """What the semantics layer requires of the memory system.

    Cores and the machine talk to the memory system only through this
    surface: value-bearing loads/stores, the flush path to the MC, and
    the bulk-clean / dirty-set hooks the cleaner and crash machinery
    use.  Two implementations exist — the full coherent
    :class:`Hierarchy` and the cache-free :class:`ReplayHierarchy` used
    for recovery replay.
    """

    mc: MemoryController

    def load(self, core_id: int, addr: int, now: float) -> Access: ...

    def store(
        self, core_id: int, addr: int, value: float, now: float
    ) -> Access: ...

    def flush_line(
        self,
        line_addr: int,
        now: float,
        invalidate: bool,
        cause: str = "flush",
        core_id: Optional[int] = None,
    ) -> Tuple[bool, float]: ...

    def clean_all(self, now: float, cause: str = "cleaner") -> int: ...

    def dirty_line_addrs(self) -> Set[int]: ...


class Hierarchy:
    """All caches plus the persistence path to the MC."""

    def __init__(
        self,
        config: MachineConfig,
        mem: MemoryState,
        stats: MachineStats,
        mc: MemoryController,
        timing: Optional[HierarchyTiming] = None,
    ) -> None:
        self.config = config
        self.mem = mem
        self.stats = stats
        self.mc = mc
        #: Component latencies (timing layer).  Coherence *state* below
        #: never depends on these; they only size the latencies a core
        #: feels.  Directly constructed hierarchies default to the
        #: detailed (Table II) values from the config.
        self.timing = (
            timing
            if timing is not None
            else HierarchyTiming(
                l2_hit_cycles=config.l2.hit_cycles,
                coherence_cycles=config.coherence_cycles,
                flush_transit_cycles=config.flush_transit_cycles,
            )
        )
        #: Persistency model: gates the flush path (eADR-class models
        #: make clflushopt/clwb no-ops) and the write-through store
        #: path (strict persistency).
        self.model = get_model(config.resolved_model)
        self.l1s: List[Cache] = [
            Cache(config.l1, name=f"L1[{i}]") for i in range(config.num_cores)
        ]
        self.l2 = Cache(config.l2, name="L2")

    # ------------------------------------------------------------------
    # directory scans (L1 population is small; derive sharers by probing)
    # ------------------------------------------------------------------

    def _owner(self, line_addr: int, exclude: int = -1) -> Optional[int]:
        """Core holding the line in M (at most one), or None."""
        for cid, l1 in enumerate(self.l1s):
            if cid == exclude:
                continue
            line = l1.get(line_addr)
            if line is not None and line.state is State.MODIFIED:
                return cid
        return None

    def _sharers(self, line_addr: int, exclude: int = -1) -> List[int]:
        return [
            cid
            for cid, l1 in enumerate(self.l1s)
            if cid != exclude and l1.contains(line_addr)
        ]

    # ------------------------------------------------------------------
    # loads
    # ------------------------------------------------------------------

    def load(self, core_id: int, addr: int, now: float) -> Access:
        """Service a load: hit fast-path or fill + coherence actions."""
        line_addr = line_of(addr)
        l1 = self.l1s[core_id]
        if l1.access(line_addr) is not None:
            return Access(l1_hit=True)

        latency = self.timing.l2_hit_cycles
        self.stats.l2_accesses += 1

        # Another core may hold the only up-to-date copy in M: downgrade
        # it to S and mark the inclusive L2 line dirty (data merges down).
        owner = self._owner(line_addr, exclude=core_id)
        if owner is not None:
            owner_line = self.l1s[owner].get(line_addr)
            assert owner_line is not None
            self._merge_dirty_into_l2(owner_line, now)
            owner_line.state = State.SHARED
            owner_line.dirty_since = None
            latency += self.timing.coherence_cycles
        else:
            # A remote EXCLUSIVE copy must drop to SHARED so its core
            # cannot later write it without an upgrade.
            for cid in self._sharers(line_addr, exclude=core_id):
                remote = self.l1s[cid].get(line_addr)
                if remote is not None and remote.state is State.EXCLUSIVE:
                    remote.state = State.SHARED

        l2_line = self.l2.access(line_addr)
        if l2_line is None:
            self.stats.l2_misses += 1
            latency += self._fill_l2(line_addr, now + latency)

        state = (
            State.SHARED
            if self._sharers(line_addr, exclude=core_id)
            else State.EXCLUSIVE
        )
        latency += self._install_l1(core_id, line_addr, state, now + latency)
        return Access(l1_hit=False, extra_latency=latency)

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------

    def store(self, core_id: int, addr: int, value: float, now: float) -> Access:
        """Apply a store: architectural update + ownership acquisition.

        The returned latency is the cost of the *drain* (acquiring
        ownership and writing the L1), which the core charges to its
        store buffer, not to the main pipeline.  Under strict
        persistency every store additionally writes its line through to
        the MC and the drain absorbs that queue backpressure — the
        model's per-store traffic cost.
        """
        access = self._store_coherent(core_id, addr, value, now)
        if self.model.store_writes:
            line_addr = line_of(addr)
            accept, _ = self.mc.accept_write_timed(
                line_addr, now, "store", now, core_id
            )
            # Written through: the cached copy is no longer dirty.
            line = self.l1s[core_id].get(line_addr)
            if line is not None and line.state is State.MODIFIED:
                line.state = State.EXCLUSIVE
                line.dirty_since = None
            access.extra_latency += max(0.0, accept - now)
        return access

    def _store_coherent(
        self, core_id: int, addr: int, value: float, now: float
    ) -> Access:
        self.mem.store(addr, value)
        line_addr = line_of(addr)
        l1 = self.l1s[core_id]
        line = l1.access(line_addr)

        if line is not None:
            if line.state is State.MODIFIED:
                return Access(l1_hit=True)
            if line.state is State.EXCLUSIVE:
                line.state = State.MODIFIED
                line.dirty_since = now
                return Access(l1_hit=True)
            # SHARED: upgrade, invalidating the other copies.
            for cid in self._sharers(line_addr, exclude=core_id):
                self.l1s[cid].remove(line_addr)
            line.state = State.MODIFIED
            line.dirty_since = now
            return Access(l1_hit=True, extra_latency=self.timing.coherence_cycles)

        # Write miss: read-for-ownership.
        latency = self.timing.l2_hit_cycles
        self.stats.l2_accesses += 1
        inherited_dirty_since: Optional[float] = None

        owner = self._owner(line_addr, exclude=core_id)
        if owner is not None:
            owner_line = self.l1s[owner].remove(line_addr)
            # Ownership (and the un-persisted data obligation) transfers.
            inherited_dirty_since = owner_line.dirty_since
            latency += self.timing.coherence_cycles
        for cid in self._sharers(line_addr, exclude=core_id):
            self.l1s[cid].remove(line_addr)

        if self.l2.access(line_addr) is None:
            self.stats.l2_misses += 1
            latency += self._fill_l2(line_addr, now + latency)

        latency += self._install_l1(
            core_id, line_addr, State.MODIFIED, now + latency
        )
        new_line = self.l1s[core_id].get(line_addr)
        assert new_line is not None
        new_line.dirty_since = (
            now if inherited_dirty_since is None else inherited_dirty_since
        )
        return Access(l1_hit=False, extra_latency=latency)

    # ------------------------------------------------------------------
    # flushes (clflushopt / clwb) and the periodic cleaner
    # ------------------------------------------------------------------

    def flush_line(
        self,
        line_addr: int,
        now: float,
        invalidate: bool,
        cause: str = "flush",
        core_id: Optional[int] = None,
    ) -> Tuple[bool, float]:
        """Persist a line (and invalidate it for clflushopt).

        Returns ``(wrote, completion_time)``; ``completion_time`` is
        when the data was accepted into the ADR domain (== ``now`` when
        nothing was dirty).  ``core_id`` names the core whose fence
        orders this flush (persist-order tracking); hardware-initiated
        writebacks (cleaner, drain) pass None and are durable at once.

        Persistency models without a flush path (eADR-class: the data
        was durable at store time) make program-issued flushes complete
        instantly with no cache-state or MC effect; hardware writebacks
        (cleaner, drain, eviction) still persist normally — caches have
        finite capacity on every platform.
        """
        if cause == "flush" and not self.model.flush_writes:
            return False, now
        dirty_since: Optional[float] = None
        dirty = False

        owner = self._owner(line_addr)
        if owner is not None:
            owner_line = self.l1s[owner].get(line_addr)
            assert owner_line is not None
            dirty = True
            dirty_since = owner_line.dirty_since
            if invalidate:
                self.l1s[owner].remove(line_addr)
            else:
                owner_line.state = State.EXCLUSIVE
                owner_line.dirty_since = None

        l2_line = self.l2.get(line_addr)
        if l2_line is not None and l2_line.dirty:
            dirty = True
            if dirty_since is None or (
                l2_line.dirty_since is not None
                and l2_line.dirty_since < dirty_since
            ):
                dirty_since = l2_line.dirty_since
            if not invalidate:
                l2_line.state = State.EXCLUSIVE
                l2_line.dirty_since = None

        if invalidate:
            for cid in self._sharers(line_addr):
                self.l1s[cid].remove(line_addr)
            if l2_line is not None:
                self.l2.remove(line_addr)

        if not dirty:
            return False, now
        arrival = now + self.timing.flush_transit_cycles
        accept = self.mc.accept_write(
            line_addr, arrival, cause, dirty_since, core_id
        )
        return True, accept

    def clean_all(self, now: float, cause: str = "cleaner") -> int:
        """Write back every dirty line, keeping lines resident (clwb-like).

        Used by the periodic hardware cleaner (section III-E.1); the
        paper spaces these writebacks out in the background, so no core
        latency is charged here — only MC traffic.
        """
        written = 0
        dirty_lines = set()
        for l1 in self.l1s:
            for line in l1.dirty_lines():
                dirty_lines.add(line.addr)
        for line in self.l2.dirty_lines():
            dirty_lines.add(line.addr)
        for line_addr in sorted(dirty_lines):
            wrote, _ = self.flush_line(line_addr, now, invalidate=False, cause=cause)
            if wrote:
                written += 1
        return written

    # ------------------------------------------------------------------
    # internals: fills and evictions
    # ------------------------------------------------------------------

    def _fill_l2(self, line_addr: int, now: float) -> float:
        """Bring a line into the L2 from NVMM; returns added latency."""
        latency = 0.0
        victim = self.l2.victim_for(line_addr)
        if victim is not None:
            latency += self._evict_l2_line(victim, now)
        data_ready = self.mc.read(line_addr, now + latency)
        latency += data_ready - (now + latency)
        self.l2.install(line_addr, State.EXCLUSIVE)
        return latency

    def _evict_l2_line(self, victim: Line, now: float) -> float:
        """Evict an L2 line: back-invalidate L1 copies, persist if dirty."""
        dirty = victim.dirty
        dirty_since = victim.dirty_since
        for l1 in self.l1s:
            l1_line = l1.get(victim.addr)
            if l1_line is None:
                continue
            if l1_line.state is State.MODIFIED:
                dirty = True
                if dirty_since is None or (
                    l1_line.dirty_since is not None
                    and l1_line.dirty_since < dirty_since
                ):
                    dirty_since = l1_line.dirty_since
            l1.remove(victim.addr)
        self.l2.remove(victim.addr)
        if not dirty:
            return 0.0
        # evictions are asynchronous: the evicting core only feels the
        # queue backpressure (acceptance), never the device completion
        accept, _ = self.mc.accept_write_timed(
            victim.addr, now, "eviction", dirty_since
        )
        return max(0.0, accept - now)

    def _install_l1(
        self, core_id: int, line_addr: int, state: State, now: float
    ) -> float:
        """Install into an L1, evicting its LRU victim first if needed."""
        l1 = self.l1s[core_id]
        latency = 0.0
        victim = l1.victim_for(line_addr)
        if victim is not None:
            if victim.state is State.MODIFIED:
                self._merge_dirty_into_l2(victim, now)
            l1.remove(victim.addr)
        l1.install(line_addr, state)
        return latency

    def _merge_dirty_into_l2(self, l1_line: Line, now: float) -> None:
        """Write an L1 ``M`` line's data down into the inclusive L2."""
        l2_line = self.l2.get(l1_line.addr)
        if l2_line is None:
            # Inclusion guarantees presence; tolerate a miss defensively
            # by pushing straight to the MC (data must not be lost).
            self.mc.accept_write(
                l1_line.addr, now, "eviction", l1_line.dirty_since
            )
            return
        l2_line.state = State.MODIFIED
        if l2_line.dirty_since is None or (
            l1_line.dirty_since is not None
            and l1_line.dirty_since < l2_line.dirty_since
        ):
            l2_line.dirty_since = l1_line.dirty_since

    # ------------------------------------------------------------------
    # introspection for tests and the crash machinery
    # ------------------------------------------------------------------

    def dirty_line_addrs(self) -> Set[int]:
        """All line addresses whose data has not reached the MC."""
        dirty = {ln.addr for ln in self.l2.dirty_lines()}
        for l1 in self.l1s:
            dirty.update(ln.addr for ln in l1.dirty_lines())
        return dirty

    def check_inclusion(self) -> None:
        """Assert the inclusive-L2 invariant (test hook)."""
        from repro.errors import SimulationError

        for cid, l1 in enumerate(self.l1s):
            for line in l1.lines():
                if not self.l2.contains(line.addr):
                    raise SimulationError(
                        f"inclusion violated: L1[{cid}] holds "
                        f"{line.addr:#x} absent from L2"
                    )

    def check_single_writer(self) -> None:
        """Assert at most one M copy per line across L1s (test hook)."""
        from repro.errors import SimulationError

        owners: Dict[int, int] = {}
        for cid, l1 in enumerate(self.l1s):
            for line in l1.lines():
                if line.state is State.MODIFIED:
                    if line.addr in owners:
                        raise SimulationError(
                            f"two M copies of {line.addr:#x}: cores "
                            f"{owners[line.addr]} and {cid}"
                        )
                    owners[line.addr] = cid


# ----------------------------------------------------------------------
# cache-free replay (recovery verification fast path)
# ----------------------------------------------------------------------

#: Shared load/store outcome for replay accesses.  Treated as read-only
#: by every consumer (core timing views only inspect it).
_REPLAY_HIT = Access(l1_hit=True, extra_latency=0.0)


class ReplayHierarchy:
    """Architectural-semantics-only memory system (no caches).

    Caches are architecturally transparent: a load's value comes from
    :class:`~repro.sim.valuestore.MemoryState` and a store updates it,
    regardless of what any cache holds.  When the *only* question is
    "does this code compute the right values" — which is exactly what
    the crash-state checker asks of each per-image recovery run — the
    coherence walk is pure timing/persistence bookkeeping, so this
    implementation of :class:`MemorySystem` skips it: every access is
    an L1 hit, a flush persists the line's architectural data at once,
    and there is never any dirty state to clean.

    Replay machines must never feed crash-state enumeration (their
    dirty set and persist order are intentionally vacuous);
    :meth:`repro.sim.machine.Machine.crash_state_space` guards this.

    The op-stream interpreter (:mod:`repro.sim.opstream`) vectorises
    exactly this class's semantics — stores as fancy-indexed array
    assignment, :meth:`flush_line` as a bulk arch→persistent copy of
    the line's present elements, loads as no-ops (every access hits and
    the recorded coroutines already consumed their values).  Changing
    replay semantics here therefore requires the matching change there;
    ``tests/verify/test_stream_equivalence.py`` pins the pair together.
    """

    def __init__(self, mem: MemoryState, mc: MemoryController) -> None:
        self.mem = mem
        self.mc = mc

    def load(self, core_id: int, addr: int, now: float) -> Access:
        return _REPLAY_HIT

    def store(
        self, core_id: int, addr: int, value: float, now: float
    ) -> Access:
        self.mem.store(addr, value)
        return _REPLAY_HIT

    def flush_line(
        self,
        line_addr: int,
        now: float,
        invalidate: bool,
        cause: str = "flush",
        core_id: Optional[int] = None,
    ) -> Tuple[bool, float]:
        # Persist the line's architectural data directly; with no cache
        # state there is no dirty window and nothing for the MC queue
        # to backpressure.
        self.mem.persist_line(line_addr)
        return False, now

    def clean_all(self, now: float, cause: str = "cleaner") -> int:
        return 0

    def dirty_line_addrs(self) -> Set[int]:
        return set()
