"""Op vocabulary executed by workload coroutines.

Workloads are Python generators that ``yield`` these ops; the machine
executes each op on the issuing core and ``send``s back the result
(the loaded value for :class:`Load`, ``None`` otherwise).  The set maps
onto the paper's x86-64 + PMEM primitives:

===========  ==========================================================
Op           Meaning
===========  ==========================================================
Load         8-byte load
Store        8-byte store
Flush        ``clflushopt``: write the line to the persistence domain
             and invalidate it everywhere; completion is asynchronous
             and ordered only by a following Fence
FlushWB      ``clwb``: write the line back but keep it cached
Fence        ``sfence``: stall until the core's outstanding stores and
             flushes are accepted by the persistence domain
Compute      ``flops`` arithmetic operations (issue-width limited)
RegionMark   zero-cost annotation used by tracing/tests and the crash
             machinery to name persistency-region boundaries
Phase        zero-cost provenance frame: a label pushes one frame on
             the issuing core's phase stack, ``None`` pops — consumed
             only by profiling observers (stall flamegraphs)
===========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class Load:
    addr: int


@dataclass(frozen=True)
class Store:
    addr: int
    value: float


@dataclass(frozen=True)
class Flush:
    """clflushopt: persist + invalidate, asynchronous until a Fence."""

    addr: int


@dataclass(frozen=True)
class FlushWB:
    """clwb: persist but retain the (now clean) line in the caches."""

    addr: int


@dataclass(frozen=True)
class Fence:
    """sfence: drain this core's store buffer and flush queue."""


@dataclass(frozen=True)
class Compute:
    """``flops`` arithmetic ops; ``kind`` is informational."""

    flops: float = 1.0
    kind: str = "int"


@dataclass(frozen=True)
class RegionMark:
    """Named, zero-cost marker (region begin/end) for traces and tests."""

    label: str


@dataclass(frozen=True)
class Phase:
    """Provenance frame delimiter: push ``label`` on the issuing core's
    phase stack, or pop the innermost frame when ``label`` is ``None``.

    Free on every engine (no events, no cycles, no state); workloads
    emit Phases only when provenance tagging is opted into, so untagged
    op streams are byte-identical to pre-provenance runs."""

    label: Optional[str] = None


@dataclass(frozen=True)
class Barrier:
    """Thread barrier: every running thread must reach a Barrier before
    any proceeds; all clocks synchronise to the latest arrival.  Used by
    stage-structured kernels (Cholesky column blocks, FFT stages)."""


Op = Union[
    Load, Store, Flush, FlushWB, Fence, Compute, RegionMark, Phase, Barrier
]


# ----------------------------------------------------------------------
# integer op encoding (the pre-decoded stream format)
# ----------------------------------------------------------------------

#: Integer opcodes for the flat pre-decoded op-stream format
#: (:mod:`repro.sim.opstream`).  The numbering is part of the on-disk
#: stream layout: reordering or renumbering it invalidates every cached
#: stream, which is safe only because stream cache keys include
#: :func:`repro.analysis.runner.code_version` (this file is in the
#: versioned subtree), but keep the order stable anyway.
OP_LOAD = 0
OP_STORE = 1
OP_COMPUTE = 2
OP_FLUSH = 3
OP_FLUSHWB = 4
OP_FENCE = 5
OP_MARK = 6
OP_PHASE = 7
OP_BARRIER = 8

#: Op class -> opcode.  Covers the full vocabulary, including the
#: scheduler-level Barrier (the stream records the scheduler's view).
OPCODES = {
    Load: OP_LOAD,
    Store: OP_STORE,
    Compute: OP_COMPUTE,
    Flush: OP_FLUSH,
    FlushWB: OP_FLUSHWB,
    Fence: OP_FENCE,
    RegionMark: OP_MARK,
    Phase: OP_PHASE,
    Barrier: OP_BARRIER,
}

#: Opcode -> op class (decode direction); index equals the opcode.
OP_TYPES = (
    Load, Store, Compute, Flush, FlushWB, Fence, RegionMark, Phase, Barrier
)

#: Opcodes that advance the issuing core's functional clock by one
#: cycle.  RegionMark and Phase are free everywhere; Barrier costs no
#: cycles itself (the release synchronises clocks instead).  This is
#: the same invariant the replay fast loop inlines — the stream
#: interpreter and ``Machine._run_replay`` must agree on it.
COSTED_OPCODES = frozenset(
    {OP_LOAD, OP_STORE, OP_COMPUTE, OP_FLUSH, OP_FLUSHWB, OP_FENCE}
)
