"""repro — reproduction of "Lazy Persistency" (ISCA 2018).

Three layers:

* :mod:`repro.sim` — the substrate: a multicore cache-hierarchy / NVMM
  simulator standing in for the paper's gem5 testbed.
* :mod:`repro.core` — the contribution: the Lazy Persistency runtime
  (checksummed regions over natural cache evictions) plus the Eager
  Persistency baselines it is compared against (EagerRecompute, WAL).
* :mod:`repro.workloads` — the paper's five kernels (TMM, Cholesky,
  2D-conv, Gauss, FFT) in base / LP / EP / WAL variants with recovery.

Quickstart::

    from repro import scaled_machine, Machine
    from repro.workloads import get_workload

    wl = get_workload("tmm")(n=32, bsize=8)
    machine = Machine(scaled_machine(num_cores=2))
    result = wl.run(machine, variant="lp", num_threads=1)
    print(result.exec_cycles, result.nvmm_writes)
"""

from repro.errors import (
    AddressError,
    ConfigError,
    RecoveryError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.sim import (
    CacheConfig,
    CoreConfig,
    CrashPlan,
    Machine,
    MachineConfig,
    MachineStats,
    NVMMConfig,
    RunResult,
    paper_machine,
    real_system_machine,
    run_with_crash,
    scaled_machine,
)

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "ConfigError",
    "RecoveryError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "CacheConfig",
    "CoreConfig",
    "CrashPlan",
    "Machine",
    "MachineConfig",
    "MachineStats",
    "NVMMConfig",
    "RunResult",
    "paper_machine",
    "real_system_machine",
    "run_with_crash",
    "scaled_machine",
    "__version__",
]
